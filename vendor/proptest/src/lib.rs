//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! crate reimplements the subset of the proptest API the workspace uses:
//! the [`Strategy`] trait with `prop_map` / `prop_flat_map` /
//! `prop_filter`, range and tuple strategies, [`Just`], [`any`],
//! [`collection::vec`] / [`collection::btree_set`], simplified string
//! "regex" strategies, and the [`proptest!`] / [`prop_assert!`] /
//! [`prop_oneof!`] macros.
//!
//! Semantics differ from real proptest in two deliberate ways:
//!
//! * **No shrinking.** A failing case panics with the generated inputs in
//!   the panic message (via the deterministic per-test RNG seed) but is
//!   not minimized.
//! * **String strategies are approximate.** A `&str` pattern is not a
//!   full regex engine; it honours a trailing `{m,n}` repetition count
//!   and otherwise produces printable-unicode soup, which is what the
//!   fuzz tests in this workspace want from `"\\PC{0,200}"`.
//!
//! Runs are fully deterministic: the RNG seed is derived from the test
//! function's name, so failures reproduce without a persistence file.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::BTreeSet;
use std::fmt::Debug;
use std::marker::PhantomData;
use std::ops::Range;

/// The deterministic RNG driving all generation (SplitMix64).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates an RNG whose stream is a pure function of `label`
    /// (typically the test function name).
    pub fn deterministic(label: &str) -> Self {
        // FNV-1a over the label gives a stable, well-mixed seed.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in label.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: h }
    }

    /// Returns the next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Returns a float uniform in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Returns a uniform index in `[0, n)`. `n` must be nonzero.
    pub fn below(&mut self, n: usize) -> usize {
        ((self.next_u64() as u128 * n as u128) >> 64) as usize
    }
}

/// A property-test failure, mirroring
/// `proptest::test_runner::TestCaseError`. Property bodies may
/// `return Err(TestCaseError::fail(..))`; the runner turns it into a
/// panic (there is no shrinking to drive here).
#[derive(Clone, Debug)]
pub struct TestCaseError {
    reason: String,
}

impl TestCaseError {
    /// A failure with the given explanation.
    pub fn fail(reason: impl Into<String>) -> Self {
        TestCaseError {
            reason: reason.into(),
        }
    }

    /// A rejected (discarded) case; treated as a failure by this
    /// simplified runner rather than being silently retried.
    pub fn reject(reason: impl Into<String>) -> Self {
        TestCaseError::fail(reason)
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.reason)
    }
}

/// Runner configuration, mirroring `proptest::test_runner::ProptestConfig`.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A generator of random values of type [`Strategy::Value`].
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then generates from the strategy `f` returns
    /// for it.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Retries generation until `f` accepts the value (up to an internal
    /// retry bound, then panics).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            whence,
            f,
        }
    }

    /// Type-erases this strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: Box::new(self),
        }
    }
}

/// Object-safe core of [`Strategy`], used by [`BoxedStrategy`].
trait DynStrategy<V> {
    fn generate_dyn(&self, rng: &mut TestRng) -> V;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased strategy, as returned by [`Strategy::boxed`].
pub struct BoxedStrategy<V> {
    inner: Box<dyn DynStrategy<V>>,
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        self.inner.generate_dyn(rng)
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy returned by [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;
    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Strategy returned by [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter rejected 1000 candidates in a row: {}",
            self.whence
        );
    }
}

/// A strategy that always produces a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// A uniform choice between type-erased alternatives; built by
/// [`prop_oneof!`].
pub struct Union<V> {
    options: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// Chooses uniformly among `options` on every draw.
    ///
    /// # Panics
    ///
    /// Panics if `options` is empty.
    pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let i = rng.below(self.options.len());
        self.options[i].generate(rng)
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                self.start + ((rng.next_u64() as u128 * span) >> 64) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(usize, u8, u16, u32, u64, i8, i16, i32, i64);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J);

/// Types with a canonical "any value" strategy; see [`any`].
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value of this type.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(usize, u8, u16, u32, u64, i8, i16, i32, i64);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// The strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// A strategy producing arbitrary values of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// Simplified string "regex" strategy: a `&str` pattern generates
/// printable-unicode strings. A trailing `{m,n}` bounds the character
/// count; everything before it only informs the alphabet crudely
/// (`\PC` ⇒ printable unicode, the default).
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let (min, max) = parse_repeat_bounds(self).unwrap_or((0, 32));
        let len = min + rng.below(max - min + 1);
        // Mostly ASCII with occasional multi-byte characters, which is
        // what lexer robustness tests want to see.
        (0..len)
            .map(|_| match rng.below(10) {
                0 => char::from_u32(0x00A1 + rng.below(0x500) as u32).unwrap_or('¿'),
                1 => ['\n', '\t', '"', '\\', '\u{1F600}'][rng.below(5)],
                _ => (0x20u8 + rng.below(0x5F) as u8) as char,
            })
            .collect()
    }
}

fn parse_repeat_bounds(pattern: &str) -> Option<(usize, usize)> {
    let body = pattern.strip_suffix('}')?;
    let open = body.rfind('{')?;
    let (min, max) = body[open + 1..].split_once(',')?;
    Some((min.trim().parse().ok()?, max.trim().parse().ok()?))
}

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use super::{BTreeSet, Strategy, TestRng};
    use std::ops::Range;

    /// A size bound for generated collections.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty collection size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    /// Strategy for `Vec`s of values drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// The strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.min + rng.below(self.size.max - self.size.min + 1);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `BTreeSet`s of values drawn from `element`.
    ///
    /// The size bound applies to the number of *draws*; duplicates
    /// collapse, exactly as in real proptest.
    pub fn btree_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }

    /// The strategy returned by [`btree_set`].
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let n = self.size.min + rng.below(self.size.max - self.size.min + 1);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything a property test file needs, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError, TestRng,
    };
}

/// Defines property tests.
///
/// Each function runs [`ProptestConfig::cases`] times with fresh random
/// inputs drawn from the strategies after `in`. Attributes (including
/// `#[test]`) are passed through.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run ($cfg); $($rest)*);
    };
    (@run ($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::deterministic(stringify!($name));
            for case in 0..config.cases {
                $(let $pat = $crate::Strategy::generate(&($strat), &mut rng);)+
                // The closure is load-bearing: it lets `$body` use `?`
                // and early `return` with `TestCaseError`.
                #[allow(clippy::redundant_closure_call)]
                let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!("property {} failed at case {case}: {e}", stringify!($name));
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@run ($crate::ProptestConfig::default()); $($rest)*);
    };
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// A uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_and_tuples() {
        let mut rng = TestRng::deterministic("ranges_and_tuples");
        let s = (3usize..10, 0.0f64..0.5, any::<bool>());
        for _ in 0..200 {
            let (a, b, _c) = s.generate(&mut rng);
            assert!((3..10).contains(&a));
            assert!((0.0..0.5).contains(&b));
        }
    }

    #[test]
    fn map_filter_flat_map() {
        let mut rng = TestRng::deterministic("map_filter_flat_map");
        let s = (1usize..5)
            .prop_flat_map(|n| crate::collection::vec(0usize..10, n..n + 1))
            .prop_map(|v| v.len())
            .prop_filter("nonempty", |n| *n > 0);
        for _ in 0..100 {
            let n = s.generate(&mut rng);
            assert!((1..5).contains(&n));
        }
    }

    #[test]
    fn oneof_covers_options() {
        let mut rng = TestRng::deterministic("oneof_covers_options");
        let s = prop_oneof![Just("a"), Just("b"), Just("c")];
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..100 {
            seen.insert(s.generate(&mut rng));
        }
        assert_eq!(seen.len(), 3);
    }

    #[test]
    fn string_pattern_bounds() {
        let mut rng = TestRng::deterministic("string_pattern_bounds");
        for _ in 0..100 {
            let s = "\\PC{0,200}".generate(&mut rng);
            assert!(s.chars().count() <= 200);
        }
    }

    #[test]
    fn collections_respect_bounds() {
        let mut rng = TestRng::deterministic("collections_respect_bounds");
        let vs = crate::collection::vec(0usize..5, 2..7);
        let ss = crate::collection::btree_set(0usize..100, 0..10);
        for _ in 0..100 {
            let v = vs.generate(&mut rng);
            assert!((2..7).contains(&v.len()));
            assert!(ss.generate(&mut rng).len() < 10);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn the_macro_itself_works(x in 0usize..10, flip in any::<bool>()) {
            prop_assert!(x < 10);
            let _ = flip;
        }
    }

    proptest! {
        #[test]
        fn default_config_form_works(v in crate::collection::vec(0u8..255, 0..4)) {
            prop_assert!(v.len() < 4);
        }
    }
}
