//! Offline stand-in for the [`serde`](https://crates.io/crates/serde)
//! crate.
//!
//! The build environment has no access to crates.io. The workspace only
//! references serde behind `cpplookup-chg`'s **off-by-default** `serde`
//! feature (`#[cfg_attr(feature = "serde", derive(...))]`), so all that
//! is needed for dependency resolution is a crate with this name and a
//! `derive` feature. The `Serialize`/`Deserialize` *derive macros* are
//! deliberately not provided — enabling the `serde` feature downstream
//! will fail to compile until the real crate is vendored. That is a
//! conscious trade: the default build (and tier-1 verification) never
//! enables it.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}
