//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! crate provides the API subset the workspace's benches use —
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_with_input`] /
//! [`BenchmarkGroup::bench_function`], [`BenchmarkId`], [`black_box`],
//! and the [`criterion_group!`] / [`criterion_main!`] macros — backed by
//! a simple median-of-samples wall-clock timer instead of criterion's
//! statistical machinery.
//!
//! Like real criterion, running a `harness = false` bench under
//! `cargo test` (i.e. without `--bench` in the args) executes each
//! benchmark once as a smoke test rather than timing it.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// An opaque identity function that prevents the optimizer from deleting
/// a benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// The benchmark manager. One instance is threaded through every
/// benchmark function of a [`criterion_group!`].
pub struct Criterion {
    smoke_test: bool,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        // Under `cargo test`, bench executables are invoked without
        // `--bench`; criterion proper treats that as "run each benchmark
        // once to check it works" and so do we.
        let bench_mode = std::env::args().any(|a| a == "--bench");
        Criterion {
            smoke_test: !bench_mode,
            sample_size: 10,
        }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size,
        }
    }

    /// Registers and immediately runs a single benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, mut f: F) {
        let label = id.to_string();
        run_one(&label, self.smoke_test, self.sample_size, |b| f(b));
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Runs `f` as a benchmark identified by `id`, passing it `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.label);
        run_one(&label, self.criterion.smoke_test, self.sample_size, |b| {
            f(b, input)
        });
        self
    }

    /// Runs `f` as a benchmark identified by `id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Display,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id);
        run_one(&label, self.criterion.smoke_test, self.sample_size, |b| {
            f(b)
        });
        self
    }

    /// Ends the group. (Reporting happens eagerly; this exists for API
    /// compatibility.)
    pub fn finish(self) {}
}

/// A two-part benchmark identifier (`function_name/parameter`).
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Builds an id from a function name and a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Builds an id from a parameter value alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// Passed to every benchmark closure; [`iter`](Bencher::iter) does the
/// timing.
pub struct Bencher {
    smoke_test: bool,
    samples: usize,
    median: Option<Duration>,
}

impl Bencher {
    /// Times `f`, storing the median over the configured sample count.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if self.smoke_test {
            black_box(f());
            return;
        }
        let mut times: Vec<Duration> = (0..self.samples.max(1))
            .map(|_| {
                let start = Instant::now();
                black_box(f());
                start.elapsed()
            })
            .collect();
        times.sort();
        self.median = Some(times[times.len() / 2]);
    }
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, smoke_test: bool, samples: usize, mut f: F) {
    let mut b = Bencher {
        smoke_test,
        samples,
        median: None,
    };
    f(&mut b);
    if smoke_test {
        println!("bench {label}: ok (smoke test)");
    } else {
        match b.median {
            Some(t) => println!("bench {label}: median {t:?} over {samples} samples"),
            None => println!("bench {label}: no measurement recorded"),
        }
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the `main` function running one or more benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("adds");
        group.sample_size(3);
        group.bench_with_input(BenchmarkId::new("sum", 100), &100u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
        c.bench_function("direct", |b| b.iter(|| black_box(2) + 2));
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn harness_runs() {
        benches();
    }

    #[test]
    fn ids_format() {
        assert_eq!(BenchmarkId::new("f", 32).label, "f/32");
        assert_eq!(BenchmarkId::from_parameter("x").label, "x");
    }
}
