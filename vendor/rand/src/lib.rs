//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! crate provides the (small) subset of the `rand 0.8` API the workspace
//! actually uses: [`rngs::SmallRng`], [`SeedableRng::seed_from_u64`], and
//! the [`Rng`] methods [`gen_range`](Rng::gen_range) /
//! [`gen_bool`](Rng::gen_bool). The generator is xoshiro256++ seeded via
//! SplitMix64 — the same construction `rand 0.8`'s `SmallRng` uses on
//! 64-bit targets, so it is a faithful drop-in in spirit (streams differ;
//! nothing in the workspace depends on the exact stream).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::Range;

/// A source of 64-bit random words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Deterministic construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be sampled uniformly from a half-open range.
pub trait SampleUniform: Copy {
    /// Samples uniformly from `[low, high)`. The caller guarantees
    /// `low < high`.
    fn sample_range(rng: &mut dyn FnMut() -> u64, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range(rng: &mut dyn FnMut() -> u64, low: Self, high: Self) -> Self {
                let span = (high as i128 - low as i128) as u128;
                // Multiply-shift rejection-free mapping; the bias is at
                // most span / 2^64, irrelevant for test workloads.
                let x = rng() as u128;
                low + ((x * span) >> 64) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(usize, u8, u16, u32, u64, i8, i16, i32, i64);

impl SampleUniform for f64 {
    fn sample_range(rng: &mut dyn FnMut() -> u64, low: Self, high: Self) -> Self {
        let unit = (rng() >> 11) as f64 / (1u64 << 53) as f64;
        low + unit * (high - low)
    }
}

/// Convenience sampling methods layered over [`RngCore`].
pub trait Rng: RngCore {
    /// Samples uniformly from a half-open range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T: SampleUniform + PartialOrd>(&mut self, range: Range<T>) -> T {
        assert!(range.start < range.end, "cannot sample from empty range");
        let mut next = || self.next_u64();
        T::sample_range(&mut next, range.start, range.end)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} is not a probability");
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, non-cryptographic generator (xoshiro256++).
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion, as rand_core does for u64 seeds.
            let mut x = state;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            SmallRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_in_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
    }

    #[test]
    fn ranges_are_respected() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let f = rng.gen_range(-1.5f64..2.5);
            assert!((-1.5..2.5).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SmallRng::seed_from_u64(2);
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2000..4000).contains(&heads), "p=0.3 gave {heads}/10000");
    }

    #[test]
    fn seeds_decorrelate() {
        let mut a = SmallRng::seed_from_u64(0);
        let mut b = SmallRng::seed_from_u64(1);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }
}
