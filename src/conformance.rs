//! The cross-backend conformance corpus: every hierarchy the paper uses
//! as a running example, with the expected verdict for every
//! `(class, member)` query, shared by all lookup implementations.
//!
//! The corpus covers the paper's figures end to end: Figure 1 (the
//! replicated-base ambiguity), Figure 2 (its virtual-inheritance
//! resolution), Figure 3 — the hierarchy Figures 4–7 trace the red/blue
//! propagation over — and the Figure 9 hierarchy on which g++ 2.7.2.1's
//! breadth-first lookup wrongly reported an ambiguity. Three more
//! hierarchies pin the Section 6 static-member semantics and the
//! textbook dominance diamond.
//!
//! Backends differ in which semantics they implement, so each query
//! records **two** verdicts:
//!
//! * [`Query::cpp`] — the Definition 17 answer (C++ semantics: a lookup
//!   whose maximal definitions all name one static member is
//!   well-defined). This is what [`LookupTable`](crate::LookupTable)
//!   and everything built on it must answer.
//! * [`Query::def9`] — the Definition 9 answer, where those
//!   shared-static lookups stay ambiguous. The baselines (naive
//!   propagation, both g++ variants) implement this older semantics;
//!   `None` means the two agree.
//!
//! Queries where the *faithful* g++ baseline historically disagreed are
//! flagged [`Query::gxx_divergent`]; [`Conformance::GxxFaithful`] turns
//! the check around and **requires** the divergence, so the corpus
//! also pins the bug the paper diagnoses.
//!
//! # Examples
//!
//! ```
//! use cpplookup::conformance::{check_backend, Conformance};
//! use cpplookup::{LookupTable, MemberLookup};
//!
//! check_backend(Conformance::Full, |g| Box::new(LookupTable::build(g))).unwrap();
//! ```

use cpplookup_chg::{fixtures, Chg};
use cpplookup_core::{LookupOutcome, MemberLookup};

/// The expected answer for one query.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// Resolves to the member declared by the named class.
    Resolved(&'static str),
    /// The lookup is ambiguous.
    Ambiguous,
    /// The member is not visible in the class at all.
    NotFound,
}

impl Verdict {
    /// Whether `outcome` matches this verdict in `g`.
    pub fn matches(self, g: &Chg, outcome: &LookupOutcome) -> bool {
        match (self, outcome) {
            (Verdict::Resolved(name), LookupOutcome::Resolved { class, .. }) => {
                g.class_name(*class) == name
            }
            (Verdict::Ambiguous, LookupOutcome::Ambiguous { .. }) => true,
            (Verdict::NotFound, LookupOutcome::NotFound) => true,
            _ => false,
        }
    }

    /// Renders `outcome` the way corpus verdicts are written, for
    /// failure messages.
    pub fn describe(g: &Chg, outcome: &LookupOutcome) -> String {
        match outcome {
            LookupOutcome::Resolved { class, .. } => {
                format!("Resolved({})", g.class_name(*class))
            }
            LookupOutcome::Ambiguous { .. } => "Ambiguous".to_owned(),
            LookupOutcome::NotFound => "NotFound".to_owned(),
        }
    }
}

/// One `(class, member)` query with its expected verdicts.
#[derive(Clone, Copy, Debug)]
pub struct Query {
    /// The class the lookup starts from.
    pub class: &'static str,
    /// The member name looked up.
    pub member: &'static str,
    /// The Definition 17 (C++ statics rule) verdict.
    pub cpp: Verdict,
    /// The Definition 9 verdict, when it differs from [`Query::cpp`]
    /// (shared-static lookups stay ambiguous under Definition 9).
    pub def9: Option<Verdict>,
    /// Whether the faithful g++ breadth-first baseline historically
    /// answers this query *incorrectly* (the Figure 9 bug).
    pub gxx_divergent: bool,
}

impl Query {
    /// The verdict a Definition 9 backend must produce.
    pub fn def9_verdict(&self) -> Verdict {
        self.def9.unwrap_or(self.cpp)
    }
}

/// One corpus hierarchy with its query set.
pub struct Case {
    /// Stable case name (used in failure messages and goldens).
    pub name: &'static str,
    /// Builds the hierarchy.
    pub build: fn() -> Chg,
    /// Every query with a pinned verdict.
    pub queries: &'static [Query],
}

const fn q(class: &'static str, member: &'static str, cpp: Verdict) -> Query {
    Query {
        class,
        member,
        cpp,
        def9: None,
        gxx_divergent: false,
    }
}

use Verdict::{Ambiguous, NotFound, Resolved};

/// Every conformance case: the paper's figures plus the Section 6
/// static-member hierarchies and the textbook dominance diamond.
pub const CASES: &[Case] = &[
    Case {
        name: "fig1",
        build: fixtures::fig1,
        queries: &[
            q("A", "m", Resolved("A")),
            q("B", "m", Resolved("A")),
            q("C", "m", Resolved("A")),
            q("D", "m", Resolved("D")),
            // Two A subobjects: D::m dominates only one of them.
            q("E", "m", Ambiguous),
        ],
    },
    Case {
        name: "fig2",
        build: fixtures::fig2,
        queries: &[
            q("A", "m", Resolved("A")),
            q("B", "m", Resolved("A")),
            q("C", "m", Resolved("A")),
            q("D", "m", Resolved("D")),
            // The virtual B makes the A subobject shared; D::m dominates.
            q("E", "m", Resolved("D")),
        ],
    },
    Case {
        name: "fig3",
        build: fixtures::fig3,
        queries: &[
            q("A", "foo", Resolved("A")),
            q("A", "bar", NotFound),
            q("B", "foo", Resolved("A")),
            q("B", "bar", NotFound),
            q("C", "foo", Resolved("A")),
            q("C", "bar", NotFound),
            q("D", "foo", Ambiguous),
            q("D", "bar", Resolved("D")),
            q("E", "foo", NotFound),
            q("E", "bar", Resolved("E")),
            q("F", "foo", Ambiguous),
            q("F", "bar", Ambiguous),
            q("G", "foo", Resolved("G")),
            q("G", "bar", Resolved("G")),
            // The paper's headline results: lookup(H, foo) = {GH},
            // lookup(H, bar) = ⊥ (Figures 4-7 trace these).
            q("H", "foo", Resolved("G")),
            q("H", "bar", Ambiguous),
        ],
    },
    Case {
        name: "fig9",
        build: fixtures::fig9,
        queries: &[
            q("S", "m", Resolved("S")),
            q("A", "m", Resolved("A")),
            q("B", "m", Resolved("B")),
            q("C", "m", Resolved("C")),
            q("D", "m", Resolved("C")),
            // The counterexample: C::m dominates both A::m and B::m,
            // but a BFS meets A::m and B::m first and gives up.
            Query {
                class: "E",
                member: "m",
                cpp: Resolved("C"),
                def9: None,
                gxx_divergent: true,
            },
        ],
    },
    Case {
        name: "static_diamond",
        build: fixtures::static_diamond,
        queries: &[
            q("A", "s", Resolved("A")),
            q("A", "d", Resolved("A")),
            q("B", "s", Resolved("A")),
            q("B", "d", Resolved("A")),
            q("C", "s", Resolved("A")),
            q("C", "d", Resolved("A")),
            // Definition 17: both maximal definitions are the same
            // static A::s, so C++ accepts what Definition 9 rejects.
            Query {
                class: "D",
                member: "s",
                cpp: Resolved("A"),
                def9: Some(Ambiguous),
                gxx_divergent: false,
            },
            q("D", "d", Ambiguous),
        ],
    },
    Case {
        name: "static_override_mix",
        build: fixtures::static_override_mix,
        queries: &[
            q("S0", "id", Resolved("S0")),
            q("M", "id", Resolved("S0")),
            Query {
                class: "J",
                member: "id",
                cpp: Resolved("S0"),
                def9: Some(Ambiguous),
                gxx_divergent: false,
            },
            q("W", "id", Resolved("W")),
            // W::id dominates only the virtual S0; the replicated S0
            // under the direct J base survives — ambiguous under both
            // semantics.
            q("T", "id", Ambiguous),
        ],
    },
    Case {
        name: "dominance_diamond",
        build: fixtures::dominance_diamond,
        queries: &[
            q("Top", "f", Resolved("Top")),
            q("Left", "f", Resolved("Left")),
            q("Right", "f", Resolved("Top")),
            q("Bottom", "f", Resolved("Left")),
        ],
    },
];

/// What a backend promises, which decides how each query is checked.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Conformance {
    /// Definition 17 / C++ semantics: must match [`Query::cpp`]
    /// everywhere. The paper's algorithm in all its forms.
    Full,
    /// Definition 9 semantics: must match [`Query::def9_verdict`]
    /// everywhere. The statics-unaware baselines.
    Definition9,
    /// The faithful g++ BFS: Definition 9 **except** on queries flagged
    /// [`Query::gxx_divergent`], where it must *disagree* — matching
    /// there means the reproduced bug is gone.
    GxxFaithful,
    /// Sound only when the lookup is unambiguous: checked against
    /// [`Query::cpp`] on non-ambiguous queries, unchecked on ambiguous
    /// ones (the Section 7.2 topological shortcut).
    NonAmbiguousOnly,
}

/// Runs every corpus query against a backend and collects mismatches.
///
/// `make` receives each case's hierarchy and returns the backend under
/// test; a fresh backend is built per case.
///
/// # Errors
///
/// One human-readable line per failed query.
pub fn check_backend<F>(level: Conformance, mut make: F) -> Result<(), Vec<String>>
where
    F: for<'a> FnMut(&'a Chg) -> Box<dyn MemberLookup + 'a>,
{
    let mut failures = Vec::new();
    for case in CASES {
        let g = (case.build)();
        let mut backend = make(&g);
        for query in case.queries {
            let c = g
                .class_by_name(query.class)
                .unwrap_or_else(|| panic!("{}: no class {}", case.name, query.class));
            let m = g
                .member_by_name(query.member)
                .unwrap_or_else(|| panic!("{}: no member {}", case.name, query.member));
            let outcome = backend.lookup(c, m);
            let failure = match level {
                Conformance::Full => {
                    (!query.cpp.matches(&g, &outcome)).then(|| format!("expected {:?}", query.cpp))
                }
                Conformance::Definition9 => (!query.def9_verdict().matches(&g, &outcome))
                    .then(|| format!("expected {:?}", query.def9_verdict())),
                Conformance::GxxFaithful => {
                    let expected = query.def9_verdict();
                    if query.gxx_divergent {
                        expected.matches(&g, &outcome).then(|| {
                            format!(
                                "expected divergence from {expected:?}, but it agrees — \
                                 the reproduced g++ bug is gone"
                            )
                        })
                    } else {
                        (!expected.matches(&g, &outcome)).then(|| format!("expected {expected:?}"))
                    }
                }
                Conformance::NonAmbiguousOnly => match query.cpp {
                    Ambiguous => None,
                    expected => {
                        (!expected.matches(&g, &outcome)).then(|| format!("expected {expected:?}"))
                    }
                },
            };
            if let Some(why) = failure {
                failures.push(format!(
                    "{} lookup({}, {}): got {}, {why}",
                    case.name,
                    query.class,
                    query.member,
                    Verdict::describe(&g, &outcome)
                ));
            }
        }
    }
    if failures.is_empty() {
        Ok(())
    } else {
        Err(failures)
    }
}

/// Total number of corpus queries (used by tests to pin coverage).
pub fn query_count() -> usize {
    CASES.iter().map(|c| c.queries.len()).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_is_well_formed() {
        assert_eq!(CASES.len(), 7);
        assert!(query_count() >= 45);
        // Every named class/member exists in its hierarchy.
        for case in CASES {
            let g = (case.build)();
            for q in case.queries {
                assert!(
                    g.class_by_name(q.class).is_some(),
                    "{}: {}",
                    case.name,
                    q.class
                );
                assert!(
                    g.member_by_name(q.member).is_some(),
                    "{}: {}",
                    case.name,
                    q.member
                );
            }
        }
    }

    #[test]
    fn fig9_counterexample_is_flagged() {
        let fig9 = CASES.iter().find(|c| c.name == "fig9").unwrap();
        let flagged: Vec<_> = fig9.queries.iter().filter(|q| q.gxx_divergent).collect();
        assert_eq!(flagged.len(), 1);
        assert_eq!(flagged[0].class, "E");
        assert_eq!(flagged[0].cpp, Verdict::Resolved("C"));
    }
}
