//! `cpplookup` — member lookup for C++ class hierarchies.
//!
//! A faithful, production-grade implementation of *“A Member Lookup
//! Algorithm for C++”* (G. Ramalingam & Harini Srinivasan, PLDI 1997),
//! together with everything needed to reproduce the paper: the
//! Rossie–Friedman subobject model as an executable specification, the
//! baselines the paper discusses (including the historically buggy g++
//! strategy), a mini-C++ front end, and workload generators.
//!
//! This crate is a facade re-exporting the workspace members:
//!
//! | Module | Crate | Contents |
//! |--------|-------|----------|
//! | [`chg`] | `cpplookup-chg` | class hierarchy graphs, paths, closures, fixtures |
//! | [`subobject`] | `cpplookup-subobject` | subobject graphs, reference lookup semantics, Theorem 1 |
//! | [`lookup`] | `cpplookup-core` | **the paper's algorithm**: eager/lazy/parallel tables, traces, access rights |
//! | [`obs`] | `cpplookup-obs` (via `cpplookup-core`) | metrics registries, histograms, event sinks, exporters |
//! | [`baselines`] | `cpplookup-baselines` | g++ BFS (faithful + corrected), naive propagation, topo shortcut |
//! | [`frontend`] | `cpplookup-frontend` | mini-C++ parser, lowering, and name resolution |
//! | [`hiergen`] | `cpplookup-hiergen` | structured and random hierarchy generators |
//! | [`layout`] | `cpplookup-layout` | subobject-accurate object layouts (offsets, vptrs, virtual bases) |
//! | [`snapshot`] | `cpplookup-snapshot` | compile-once/serve-many binary snapshots of compiled tables |
//! | [`wal`] | `cpplookup-wal` | durable write-ahead edit log: crash recovery, tailing, compaction |
//! | [`server`] | `cpplookup-server` | multi-tenant wire-protocol server, blocking client, load generator, replication |
//!
//! The most common types are re-exported at the top level.
//!
//! For deployments that build the table once and serve it from many
//! processes, [`Snapshot`] serializes a compiled hierarchy into a
//! checksummed binary artifact and [`SnapshotTable`] answers lookups
//! straight from the loaded bytes:
//!
//! ```
//! use cpplookup::{chg::fixtures, Snapshot, SnapshotTable};
//!
//! let snap = Snapshot::compile(&fixtures::fig2());
//! let table = SnapshotTable::from_bytes(snap.into_bytes())?;
//! let e = table.class_by_name("E").unwrap();
//! let m = table.member_by_name("m").unwrap();
//! assert_eq!(table.lookup(e, m).resolved_class(), table.class_by_name("D"));
//! # Ok::<(), cpplookup::SnapshotError>(())
//! ```
//!
//! For serving heavy query traffic, [`DispatchIndex`] pre-decodes any
//! backend into a flat, cache-dense index whose
//! [`lookup_ref`](DispatchIndex::lookup_ref) fast path never allocates,
//! and [`ServeHandle`] / [`IndexedEngine`] republish fresh index
//! versions atomically while readers keep serving:
//!
//! ```
//! use cpplookup::{chg::fixtures, DispatchIndex, LookupTable};
//!
//! let g = fixtures::fig2();
//! let index = DispatchIndex::from_table(LookupTable::build(&g));
//! let e = g.class_by_name("E").unwrap();
//! let m = g.member_by_name("m").unwrap();
//! assert!(index.lookup_ref(e, m).is_resolved());
//! ```
//!
//! # Quickstart
//!
//! ```
//! use cpplookup::{ChgBuilder, Inheritance, LookupOutcome, LookupTable};
//!
//! // struct Top { int x; };
//! // struct Left : virtual Top { int x; };
//! // struct Right : virtual Top {};
//! // struct Bottom : Left, Right {};
//! let mut b = ChgBuilder::new();
//! let top = b.class("Top");
//! let left = b.class("Left");
//! let right = b.class("Right");
//! let bottom = b.class("Bottom");
//! b.member(top, "x");
//! b.member(left, "x");
//! b.derive(left, top, Inheritance::Virtual)?;
//! b.derive(right, top, Inheritance::Virtual)?;
//! b.derive(bottom, left, Inheritance::NonVirtual)?;
//! b.derive(bottom, right, Inheritance::NonVirtual)?;
//! let chg = b.finish()?;
//!
//! let table = LookupTable::build(&chg);
//! let x = chg.member_by_name("x").unwrap();
//! match table.lookup(bottom, x) {
//!     LookupOutcome::Resolved { class, .. } => {
//!         assert_eq!(chg.class_name(class), "Left"); // dominance!
//!     }
//!     other => panic!("unexpected: {other:?}"),
//! }
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! Or straight from C++ source:
//!
//! ```
//! use cpplookup::frontend::{analyze, QueryResult};
//!
//! let analysis = analyze(
//!     "struct A { int m; };\n\
//!      struct B : A {}; struct C : A {};\n\
//!      struct D : B, C {};\n\
//!      int main() { D d; d.m; }",
//! );
//! assert_eq!(analysis.queries[0].result, QueryResult::AmbiguousMember);
//! ```
//!
//! For long-lived tooling (language servers, incremental compilers),
//! [`LookupEngine`] owns the hierarchy, serves concurrent queries from a
//! sharded cache, and survives edits by incremental invalidation:
//!
//! ```
//! use cpplookup::{chg::fixtures, LookupEngine, MemberLookup};
//!
//! let mut engine = LookupEngine::new(fixtures::fig2());
//! let e = engine.chg().class_by_name("E").unwrap();
//! let m = engine.chg().member_by_name("m").unwrap();
//! assert!(engine.lookup(e, m).is_resolved());
//!
//! // Hierarchies grow during parsing; only the dirty entries recompute.
//! engine.add_member(e, "fresh").unwrap();
//! let fresh = engine.chg().member_by_name("fresh").unwrap();
//! assert!(engine.lookup(e, fresh).is_resolved());
//! println!("{}", engine.stats());
//!
//! // `MemberLookup` unifies the engine, the tables, and the baselines.
//! fn answer(l: &mut dyn MemberLookup, c: cpplookup::ClassId, m: cpplookup::MemberId) -> bool {
//!     l.lookup(c, m).is_resolved()
//! }
//! assert!(answer(&mut engine, e, m));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod conformance;

pub use cpplookup_baselines as baselines;
pub use cpplookup_chg as chg;
pub use cpplookup_core as lookup;
pub use cpplookup_core::obs;
pub use cpplookup_frontend as frontend;
pub use cpplookup_hiergen as hiergen;
pub use cpplookup_layout as layout;
pub use cpplookup_server as server;
pub use cpplookup_snapshot as snapshot;
pub use cpplookup_subobject as subobject;
pub use cpplookup_wal as wal;

pub use cpplookup_chg::{
    apply_edits, Access, Chg, ChgBuilder, ChgError, ClassId, Edit, Inheritance, MemberDecl,
    MemberId, MemberKind, Path,
};
pub use cpplookup_core::{
    DirectoryKind, DispatchIndex, EngineBacking, EngineOptions, EngineStats, IndexedEngine,
    IntoDispatchIndex, LazyLookup, LeastVirtual, LookupEngine, LookupOptions, LookupOutcome,
    LookupTable, MemberLookup, OutcomeRef, RedAbs, ServeHandle, StaticRule,
};
pub use cpplookup_snapshot::{Snapshot, SnapshotError, SnapshotTable};
pub use cpplookup_subobject::{Resolution, Subobject, SubobjectGraph};

pub mod prelude {
    //! The stable one-line import: `use cpplookup::prelude::*;`.
    //!
    //! Extends [`cpplookup_core::prelude`] with the hierarchy-building
    //! types and the snapshot container, so examples, tests, and
    //! downstream tools pull the whole supported surface from one
    //! place.
    pub use cpplookup_chg::{
        Chg, ChgBuilder, ChgError, ClassId, Edit, Inheritance, MemberDecl, MemberId, MemberKind,
    };
    pub use cpplookup_core::prelude::*;
    pub use cpplookup_snapshot::{Snapshot, SnapshotError, SnapshotTable};
}
