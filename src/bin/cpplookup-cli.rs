//! `cpplookup-cli` — drive the member lookup pipeline from the command
//! line, compiler style.
//!
//! ```text
//! cpplookup-cli check  <file.cpp>            resolve every member access, print diagnostics
//! cpplookup-cli table  <file.cpp>            dump the whole lookup table
//! cpplookup-cli trace  <file.cpp> <member> [--dot|--json]
//!                                            red/blue propagation trace (paper Figures 6-7)
//! cpplookup-cli layout <file.cpp> [class]    object layouts and dispatch tables
//! cpplookup-cli audit  <file.cpp>            ambiguity lint + subobject blowup report
//! cpplookup-cli dot    <file.cpp>            Graphviz export of the class hierarchy
//! cpplookup-cli export <file.cpp>            JSON export of the class hierarchy
//! cpplookup-cli stats  <file.cpp> [--json|--prometheus] [--backend B]
//!                                            sweep every (class, member) pair through the
//!                                            lookup engine, then dump the metrics registry
//! cpplookup-cli batch  <file.cpp> [--metrics] [--jobs N] [--serve] [--backend B]
//!                                            answer `class member` query pairs from stdin
//!                                            via the concurrent lookup engine; engine
//!                                            statistics go to stderr on exit. With
//!                                            --metrics, runs a lazy timed engine, accepts
//!                                            `!class N` / `!member C N` /
//!                                            `!edge D B [virtual]` edit directives, and
//!                                            finishes with a JSON metrics snapshot on
//!                                            stdout (per-edit invalidation sizes included).
//!                                            --jobs N sets the worker thread count
//!                                            (default: available parallelism). With
//!                                            --serve, queries are answered from the flat
//!                                            dispatch index published by an IndexedEngine
//!                                            (edit directives refresh the dirty rows and
//!                                            publish a new epoch); index size and epochs
//!                                            are reported to stderr
//! cpplookup-cli compile <file.cpp> -o <out.snap> [--jobs N]
//!                                            compile the hierarchy and lookup table into a
//!                                            binary snapshot ("compile once, serve many");
//!                                            --jobs N compiles the table on N worker
//!                                            threads (byte-identical output)
//! cpplookup-cli query  <file.cpp> <class> <member> [--backend B]
//!                                            answer one lookup query
//! cpplookup-cli query  --snapshot <file.snap> <class> <member>
//!                                            the same, served straight from a snapshot
//!                                            without rebuilding the table
//! cpplookup-cli batch  --snapshot <file.snap> [--metrics] [--serve]
//!                                            batch mode over an engine warm-started from
//!                                            the snapshot's serialized entries; --serve
//!                                            serves from the flat dispatch index instead
//! cpplookup-cli stats  --snapshot <file.snap> [--json|--prometheus]
//!                                            pack the dispatch index straight from the
//!                                            snapshot and dump the metrics registry
//! cpplookup-cli serve   [--addr HOST:PORT] [--tenant NAME=PATH]...
//!                                            run the multi-tenant wire-protocol server
//!                                            (see cpplookup-serverd for all flags)
//! cpplookup-cli loadgen --addr HOST:PORT --snapshot PATH [...]
//!                                            drive load at a running server
//!                                            (see cpplookup-loadgen for all flags)
//! cpplookup-cli query  --addr HOST:PORT --tenant NAME CLASS MEMBER [--trace]
//!                                            one query over the wire; --trace prints the
//!                                            server's span tree as an attributed breakdown
//! ```
//!
//! `query`, `batch`, and `stats` answer through one of four backends
//! behind the same unified `IntoDispatchIndex` API, selected with
//! `--backend {table,engine,snapshot,index}`:
//!
//! * `table` — the freshly built immutable [`LookupTable`] (default
//!   for `query`; in `batch` it rejects edit directives),
//! * `engine` — a [`LookupEngine`] (default for `batch` and `stats`),
//! * `snapshot` — a loaded binary snapshot; spelled `--snapshot
//!   <file.snap>` since it needs the artifact path,
//! * `index` — the flat [`DispatchIndex`] packed from the table (for
//!   `batch` this is the epoch-published serve loop, alias `--serve`).
//!
//! `--snapshot`/`--serve` stay as the canonical spellings of the
//! snapshot and index backends; contradictory combinations (e.g.
//! `--snapshot` with `--backend table`) exit 2.
//!
//! Exit status: 0 on success, 1 on resolution errors (`check`) or
//! unknown query names (`batch`, `query`), 2 on usage/IO errors
//! (including snapshot integrity failures).

use std::process::ExitCode;
use std::sync::Arc;

use cpplookup::chg::dot::to_dot;
use cpplookup::chg::spec::ChgSpec;
use cpplookup::frontend::{analyze, render_all, Analysis};
use cpplookup::layout::{NvLayouts, ObjectLayout, Vtables};
use cpplookup::lookup::dispatch::build_dispatch_map;
use cpplookup::lookup::trace::{render_trace, trace_member, trace_to_dot, trace_to_json};
use cpplookup::obs;
use cpplookup::subobject::stats::count_subobjects;
use cpplookup::{
    Access, Chg, ClassId, DispatchIndex, Edit, EngineOptions, IndexedEngine, Inheritance,
    LookupEngine, LookupOptions, LookupOutcome, MemberDecl, MemberId, MemberKind, Snapshot,
    SnapshotTable,
};

const USAGE: &str = "usage: cpplookup-cli <check|table|trace|layout|audit|dot|export|stats|batch|compile|query> <file.cpp> [args]\n       cpplookup-cli <query|batch|stats> --snapshot <file.snap> [args]\n       cpplookup-cli <query|batch|stats> <file.cpp> --backend <table|engine|snapshot|index> [args]\n       cpplookup-cli serve [--addr HOST:PORT] [--tenant NAME=PATH]...\n       cpplookup-cli loadgen --addr HOST:PORT --snapshot PATH [args]\n       cpplookup-cli query --addr HOST:PORT --tenant NAME CLASS MEMBER [--trace]";

/// The lookup backend a `query`/`batch`/`stats` invocation answers
/// from. All four sit behind [`DispatchIndex::from_backend`]'s
/// `IntoDispatchIndex` surface; the CLI names them so the same command
/// can exercise any of them.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Backend {
    /// The freshly built immutable [`LookupTable`].
    Table,
    /// A [`LookupEngine`] (edits allowed in `batch`).
    Engine,
    /// A loaded binary snapshot (needs the `--snapshot <path>` form).
    Snapshot,
    /// The flat [`DispatchIndex`]; in `batch`, the epoch-published
    /// serve loop (alias `--serve`).
    Index,
}

impl Backend {
    fn name(self) -> &'static str {
        match self {
            Backend::Table => "table",
            Backend::Engine => "engine",
            Backend::Snapshot => "snapshot",
            Backend::Index => "index",
        }
    }
}

/// Extracts an optional `--backend B` flag, returning the backend and
/// the remaining arguments.
fn parse_backend(rest: &[String]) -> Result<(Option<Backend>, Vec<String>), String> {
    let mut backend = None;
    let mut remaining = Vec::new();
    let mut it = rest.iter();
    while let Some(arg) = it.next() {
        if arg != "--backend" {
            remaining.push(arg.clone());
            continue;
        }
        let value = it
            .next()
            .ok_or("--backend expects one of table, engine, snapshot, index")?;
        let parsed = match value.as_str() {
            "table" => Backend::Table,
            "engine" => Backend::Engine,
            "snapshot" => Backend::Snapshot,
            "index" => Backend::Index,
            other => return Err(format!("unknown backend `{other}`")),
        };
        if backend.replace(parsed).is_some() {
            return Err("--backend given more than once".to_owned());
        }
    }
    Ok((backend, remaining))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // The server front ends take no C++ source at all; they dispatch
    // before everything else. Parsing and run bodies are shared with
    // the standalone cpplookup-serverd / cpplookup-loadgen bins.
    match args.split_first() {
        Some((command, rest)) if command == "serve" => return serve_cmd(rest),
        Some((command, rest)) if command == "loadgen" => return loadgen_cmd(rest),
        // `query --addr` goes over the wire to a running server; the
        // snapshot/source forms of `query` never take --addr.
        Some((command, rest)) if command == "query" && rest.iter().any(|a| a == "--addr") => {
            return wire_query_cmd(rest)
        }
        _ => {}
    }
    // Snapshot-serving modes take a binary snapshot, not C++ source, so
    // they dispatch before the UTF-8 source read below.
    if let [command, flag, file, rest @ ..] = args.as_slice() {
        if flag == "--snapshot" {
            // `--snapshot <path>` is the canonical spelling of
            // `--backend snapshot`; naming any other backend alongside
            // it is a contradiction.
            let rest = match parse_backend(rest) {
                Ok((None | Some(Backend::Snapshot), rest)) => rest,
                Ok((Some(other), _)) => {
                    eprintln!(
                        "cpplookup-cli: --snapshot conflicts with --backend {}",
                        other.name()
                    );
                    return ExitCode::from(2);
                }
                Err(e) => {
                    eprintln!("cpplookup-cli: {e}\n{USAGE}");
                    return ExitCode::from(2);
                }
            };
            match command.as_str() {
                "query" => return snapshot_query(file, &rest),
                "batch" => return snapshot_batch(file, &rest),
                "stats" => return snapshot_stats(file, &rest),
                other => {
                    eprintln!("cpplookup-cli: `{other}` does not take --snapshot\n{USAGE}");
                    return ExitCode::from(2);
                }
            }
        }
    }
    let (command, file, rest) = match args.as_slice() {
        [command, file, rest @ ..] => (command.as_str(), file.as_str(), rest),
        _ => {
            eprintln!("{USAGE}");
            return ExitCode::from(2);
        }
    };
    let source = match std::fs::read_to_string(file) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cpplookup-cli: cannot read {file}: {e}");
            return ExitCode::from(2);
        }
    };
    let analysis = analyze(&source);
    match command {
        "check" => check(&analysis, file, &source),
        "table" => {
            table(&analysis);
            ExitCode::SUCCESS
        }
        "trace" => trace(&analysis, rest),
        "layout" => layout(&analysis, rest),
        "audit" => {
            audit(&analysis);
            ExitCode::SUCCESS
        }
        "dot" => {
            print!("{}", to_dot(&analysis.chg));
            ExitCode::SUCCESS
        }
        "export" => {
            println!("{}", ChgSpec::from_chg(&analysis.chg).to_json());
            ExitCode::SUCCESS
        }
        "stats" => stats(&analysis, rest),
        "batch" => batch(&analysis, rest),
        "compile" => compile(&analysis, rest),
        "query" => query(&analysis, rest),
        other => {
            eprintln!("cpplookup-cli: unknown command `{other}`\n{USAGE}");
            ExitCode::from(2)
        }
    }
}

fn check(analysis: &Analysis, file: &str, source: &str) -> ExitCode {
    for query in &analysis.queries {
        let verdict = match &query.result {
            cpplookup::frontend::QueryResult::Resolved {
                declaring_class,
                access,
            } => {
                format!(
                    "ok: {}::{} ({access})",
                    analysis.chg.class_name(*declaring_class),
                    query.member
                )
            }
            other => format!("{other:?}"),
        };
        println!("{:<20} {verdict}", query.description);
    }
    if analysis.diagnostics.is_empty() {
        println!("\nno diagnostics.");
        ExitCode::SUCCESS
    } else {
        println!("\n{}", render_all(&analysis.diagnostics, file, source));
        ExitCode::from(1)
    }
}

fn table(analysis: &Analysis) {
    let chg = &analysis.chg;
    for c in chg.classes() {
        let mut members: Vec<_> = analysis.table.members_of(c).collect();
        members.sort();
        if members.is_empty() {
            continue;
        }
        println!("{}:", chg.class_name(c));
        for m in members {
            let line = match analysis.table.lookup(c, m) {
                LookupOutcome::Resolved { class, .. } => {
                    let path = analysis
                        .table
                        .resolve_path(chg, c, m)
                        .map(|p| format!("  via {}", p.display(chg)))
                        .unwrap_or_default();
                    format!("{}::{}{}", chg.class_name(class), chg.member_name(m), path)
                }
                LookupOutcome::Ambiguous { .. } => "<ambiguous>".to_owned(),
                LookupOutcome::NotFound => unreachable!("members_of lists visible members"),
            };
            println!("  {:<12} -> {line}", chg.member_name(m));
        }
    }
}

/// One buffered `batch` input line: either a `class member` query kept
/// as raw names (resolution happens at flush time, *after* any
/// preceding edit directives), or a line that already failed to parse.
type PendingLine = (String, Result<(String, String), String>);

/// Resolves the pending lines' names against `chg`, answers the valid
/// queries through one `lookup` batch, and prints a verdict per line.
/// Returns whether any line failed.
fn flush_pending(
    chg: &Chg,
    pending: &mut Vec<PendingLine>,
    lookup: impl FnOnce(&[(ClassId, MemberId)]) -> Vec<LookupOutcome>,
) -> bool {
    let resolved: Vec<Result<(ClassId, MemberId), String>> = pending
        .iter()
        .map(|(_, slot)| match slot {
            Err(e) => Err(e.clone()),
            Ok((class, member)) => match (chg.class_by_name(class), chg.member_by_name(member)) {
                (Some(c), Some(m)) => Ok((c, m)),
                (None, _) => Err(format!("no class named `{class}`")),
                (_, None) => Err(format!("no member named `{member}`")),
            },
        })
        .collect();
    let queries: Vec<_> = resolved
        .iter()
        .filter_map(|r| r.as_ref().ok().copied())
        .collect();
    let mut outcomes = lookup(&queries).into_iter();
    let mut failed = false;
    for ((label, _), slot) in pending.iter().zip(&resolved) {
        let verdict = match slot {
            Err(e) => {
                failed = true;
                format!("error: {e}")
            }
            Ok((_, m)) => match outcomes.next().expect("one outcome per valid query") {
                LookupOutcome::Resolved { class, .. } => {
                    format!("{}::{}", chg.class_name(class), chg.member_name(*m))
                }
                LookupOutcome::Ambiguous { .. } => "ambiguous".to_owned(),
                LookupOutcome::NotFound => "not found".to_owned(),
            },
        };
        println!("{label:<24} {verdict}");
    }
    pending.clear();
    failed
}

/// [`flush_pending`] through a [`LookupEngine`] batch.
fn flush_batch(engine: &LookupEngine, pending: &mut Vec<PendingLine>) -> bool {
    flush_pending(engine.chg(), pending, |queries| {
        engine.lookup_batch(queries)
    })
}

/// [`flush_pending`] through the currently published [`DispatchIndex`]:
/// the handle is loaded once per flush, exactly as a reader thread
/// would pin an epoch for a batch.
fn flush_serve(serving: &IndexedEngine, pending: &mut Vec<PendingLine>) -> bool {
    let published = serving.handle().load();
    flush_pending(serving.engine().chg(), pending, |queries| {
        published.index().lookup_batch(queries)
    })
}

/// Parses a `class member` query line into a buffered [`PendingLine`].
fn parse_query_line(line: &str) -> PendingLine {
    let mut words = line.split_whitespace();
    let slot = match (words.next(), words.next(), words.next()) {
        (Some(class), Some(member), None) => Ok((class.to_owned(), member.to_owned())),
        _ => Err("expected `class member`".to_owned()),
    };
    let label = match &slot {
        Ok((class, member)) => format!("{class}::{member}"),
        Err(_) => line.to_owned(),
    };
    (label, slot)
}

/// Applies one `!class` / `!member` / `!edge` edit directive to the
/// engine, acknowledging it on stderr.
fn apply_directive(engine: &mut LookupEngine, line: &str) -> Result<(), String> {
    let words: Vec<&str> = line.split_whitespace().collect();
    let class_id = |engine: &LookupEngine, name: &str| {
        engine
            .chg()
            .class_by_name(name)
            .ok_or_else(|| format!("no class named `{name}`"))
    };
    match words.as_slice() {
        ["!class", name] => {
            engine.add_class(name).map_err(|e| e.to_string())?;
        }
        ["!member", class, name] => {
            let c = class_id(engine, class)?;
            engine.add_member(c, name).map_err(|e| e.to_string())?;
        }
        ["!edge", derived, base, rest @ ..] => {
            let inheritance = match rest {
                [] => Inheritance::NonVirtual,
                ["virtual"] => Inheritance::Virtual,
                _ => return Err("expected `!edge DERIVED BASE [virtual]`".to_owned()),
            };
            let d = class_id(engine, derived)?;
            let b = class_id(engine, base)?;
            engine
                .add_edge(d, b, inheritance)
                .map_err(|e| e.to_string())?;
        }
        _ => {
            return Err(
                "expected `!class NAME`, `!member CLASS NAME`, or `!edge DERIVED BASE [virtual]`"
                    .to_owned(),
            )
        }
    }
    eprintln!("applied: {line}");
    Ok(())
}

/// Renders the engine's metrics snapshot as JSON with a per-edit array
/// (sizes taken from the [`obs::Event::EditApplied`] events captured by
/// the in-memory sink) spliced in.
fn metrics_json(engine: &LookupEngine, sink: &obs::MemorySink) -> String {
    let mut out = engine.metrics_snapshot().render_json();
    debug_assert!(out.ends_with('}'));
    out.pop();
    out.push_str(",\"edits\":[");
    let mut first = true;
    for event in sink.events() {
        if let obs::Event::EditApplied {
            edits,
            dirty,
            invalidated,
            recomputed,
            generation,
        } = event
        {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!(
                "{{\"edits\":{edits},\"dirty\":{dirty},\"invalidated\":{invalidated},\
                 \"recomputed\":{recomputed},\"generation\":{generation}}}"
            ));
        }
    }
    out.push_str("]}");
    out
}

/// Reads whitespace-separated `class member` pairs from stdin (blank
/// lines and `#` comments skipped), answers them all through a
/// [`LookupEngine`] batch, and reports the engine's statistics to
/// stderr at the end.
///
/// With `--metrics` the engine runs lazy and timed, lines starting with
/// `!` are edit directives (each one flushes the buffered queries
/// first, so lookups observe the hierarchy as of their position in the
/// stream), and a JSON metrics snapshot — including per-edit dirty-set
/// and invalidation sizes — is printed to stdout at the end.
fn batch(analysis: &Analysis, rest: &[String]) -> ExitCode {
    let (backend, rest) = match parse_backend(rest) {
        Ok(parsed) => parsed,
        Err(e) => {
            eprintln!("cpplookup-cli: {e}");
            return ExitCode::from(2);
        }
    };
    let metrics = rest.iter().any(|a| a == "--metrics");
    let serve = rest.iter().any(|a| a == "--serve");
    // `--serve` is the canonical spelling of `--backend index`.
    let backend = match (backend, serve) {
        (None | Some(Backend::Index), true) => Backend::Index,
        (Some(other), true) => {
            eprintln!(
                "cpplookup-cli: --serve conflicts with --backend {}",
                other.name()
            );
            return ExitCode::from(2);
        }
        (Some(b), false) => b,
        (None, false) => Backend::Engine,
    };
    let jobs = match parse_jobs(&rest) {
        Ok(jobs) => jobs,
        Err(e) => {
            eprintln!("cpplookup-cli: {e}");
            return ExitCode::from(2);
        }
    };
    match backend {
        Backend::Snapshot => {
            eprintln!(
                "cpplookup-cli: the snapshot backend needs the artifact path: \
                 `batch --snapshot <file.snap>`"
            );
            ExitCode::from(2)
        }
        Backend::Index => {
            if metrics {
                eprintln!(
                    "cpplookup-cli: --serve and --metrics are mutually exclusive \
                     (the serve loop reports index size and epochs to stderr)"
                );
                return ExitCode::from(2);
            }
            let engine =
                LookupEngine::with_options(analysis.chg.clone(), EngineOptions::parallel(jobs));
            serve_loop(IndexedEngine::new(engine))
        }
        Backend::Table => {
            if metrics {
                eprintln!(
                    "cpplookup-cli: --metrics requires the engine backend \
                     (the table backend is immutable and untimed)"
                );
                return ExitCode::from(2);
            }
            table_loop(analysis)
        }
        Backend::Engine => {
            let options = if metrics {
                let mut o = EngineOptions::lazy();
                o.timing = true;
                o
            } else {
                EngineOptions::parallel(jobs)
            };
            let engine = LookupEngine::with_options(analysis.chg.clone(), options);
            batch_loop(engine, metrics)
        }
    }
}

/// Parses an optional `--jobs N` flag (N ≥ 1); absent means one worker
/// per available hardware thread.
fn parse_jobs(rest: &[String]) -> Result<usize, String> {
    match rest.iter().position(|a| a == "--jobs") {
        None => Ok(std::thread::available_parallelism().map_or(1, usize::from)),
        Some(i) => match rest.get(i + 1).map(|n| n.parse::<usize>()) {
            Some(Ok(n)) if n >= 1 => Ok(n),
            _ => Err("--jobs expects a thread count of at least 1".to_owned()),
        },
    }
}

/// The stdin query loop shared by source-backed and snapshot-backed
/// batch modes.
fn batch_loop(mut engine: LookupEngine, metrics: bool) -> ExitCode {
    use std::io::BufRead;

    let sink = Arc::new(obs::MemorySink::new());
    if metrics {
        engine.set_event_sink(Some(sink.clone()));
    }

    let mut pending: Vec<PendingLine> = Vec::new();
    let mut failed = false;
    for line in std::io::stdin().lock().lines() {
        let line = match line {
            Ok(l) => l,
            Err(e) => {
                eprintln!("cpplookup-cli: cannot read stdin: {e}");
                return ExitCode::from(2);
            }
        };
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if line.starts_with('!') {
            failed |= flush_batch(&engine, &mut pending);
            if !metrics {
                println!("{line:<24} error: edit directives require --metrics");
                failed = true;
            } else if let Err(e) = apply_directive(&mut engine, line) {
                println!("{line:<24} error: {e}");
                failed = true;
            }
            continue;
        }
        pending.push(parse_query_line(line));
    }
    failed |= flush_batch(&engine, &mut pending);

    if metrics {
        println!("{}", metrics_json(&engine, &sink));
    }
    eprintln!("{}", engine.stats());
    if failed {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}

/// The stdin loop for `--backend table`: queries are answered straight
/// from the freshly built immutable [`LookupTable`] — no engine, no
/// cache, no edits. Edit directives are rejected per line (the rest of
/// the stream still runs) so a mixed script degrades loudly, not
/// silently.
fn table_loop(analysis: &Analysis) -> ExitCode {
    use std::io::BufRead;

    let flush = |pending: &mut Vec<PendingLine>| {
        flush_pending(&analysis.chg, pending, |queries| {
            queries
                .iter()
                .map(|&(c, m)| analysis.table.lookup(c, m))
                .collect()
        })
    };
    let mut pending: Vec<PendingLine> = Vec::new();
    let mut failed = false;
    for line in std::io::stdin().lock().lines() {
        let line = match line {
            Ok(l) => l,
            Err(e) => {
                eprintln!("cpplookup-cli: cannot read stdin: {e}");
                return ExitCode::from(2);
            }
        };
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if line.starts_with('!') {
            // The directive itself is the failure; the flush verdicts
            // still print so preceding queries get their answers.
            flush(&mut pending);
            println!("{line:<24} error: edit directives require the engine or index backend");
            failed = true;
            continue;
        }
        pending.push(parse_query_line(line));
    }
    failed |= flush(&mut pending);
    let stats = analysis.table.stats();
    eprintln!(
        "table backend: {} classes, {} lookup entries ({} ambiguous)",
        analysis.chg.class_count(),
        stats.entries,
        stats.blue
    );
    if failed {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}

/// Parses one `!class` / `!member` / `!edge` directive into an [`Edit`]
/// (names resolve against the current hierarchy; new members are plain
/// public functions, new edges public inheritance).
fn parse_edit(chg: &Chg, line: &str) -> Result<Edit, String> {
    let words: Vec<&str> = line.split_whitespace().collect();
    let class_id = |name: &str| {
        chg.class_by_name(name)
            .ok_or_else(|| format!("no class named `{name}`"))
    };
    match words.as_slice() {
        ["!class", name] => Ok(Edit::AddClass {
            name: (*name).to_owned(),
        }),
        ["!member", class, name] => Ok(Edit::AddMember {
            class: class_id(class)?,
            name: (*name).to_owned(),
            decl: MemberDecl::public(MemberKind::Function),
        }),
        ["!edge", derived, base, rest @ ..] => {
            let inheritance = match rest {
                [] => Inheritance::NonVirtual,
                ["virtual"] => Inheritance::Virtual,
                _ => return Err("expected `!edge DERIVED BASE [virtual]`".to_owned()),
            };
            Ok(Edit::AddEdge {
                derived: class_id(derived)?,
                base: class_id(base)?,
                inheritance,
                access: Access::Public,
            })
        }
        _ => Err(
            "expected `!class NAME`, `!member CLASS NAME`, or `!edge DERIVED BASE [virtual]`"
                .to_owned(),
        ),
    }
}

/// The stdin loop for `--serve`: queries are answered from the flat
/// [`DispatchIndex`] pinned off the [`IndexedEngine`]'s serve handle —
/// exactly what a reader thread would serve from — and `!` edit
/// directives go through [`IndexedEngine::apply`] (incremental
/// invalidation, dirty-row refresh, atomic republish), so queries after
/// a directive observe the new epoch.
fn serve_loop(mut serving: IndexedEngine) -> ExitCode {
    use std::io::BufRead;

    let handle = serving.handle();
    {
        let published = handle.load();
        let index = published.index();
        eprintln!(
            "serve index: {} entries, {} bytes ({:.1} bytes/entry), epoch {}",
            index.entry_count(),
            index.size_bytes(),
            index.bytes_per_entry(),
            published.epoch()
        );
    }
    let mut pending: Vec<PendingLine> = Vec::new();
    let mut failed = false;
    for line in std::io::stdin().lock().lines() {
        let line = match line {
            Ok(l) => l,
            Err(e) => {
                eprintln!("cpplookup-cli: cannot read stdin: {e}");
                return ExitCode::from(2);
            }
        };
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if line.starts_with('!') {
            // Flush first so buffered lookups observe the hierarchy as
            // of their position in the stream, like `--metrics` mode.
            failed |= flush_serve(&serving, &mut pending);
            match parse_edit(serving.engine().chg(), line)
                .and_then(|edit| serving.apply(&[edit]).map_err(|e| e.to_string()))
            {
                Ok(epoch) => eprintln!("applied: {line} (epoch {epoch})"),
                Err(e) => {
                    println!("{line:<24} error: {e}");
                    failed = true;
                }
            }
            continue;
        }
        pending.push(parse_query_line(line));
    }
    failed |= flush_serve(&serving, &mut pending);

    let published = handle.load();
    eprintln!(
        "served epoch {}: {} entries, {} bytes",
        published.epoch(),
        published.index().entry_count(),
        published.index().size_bytes()
    );
    eprintln!("{}", serving.engine().stats());
    if failed {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}

/// `compile <file.cpp> -o <out.snap> [--jobs N]`: compiles the lookup
/// table with the work-stealing parallel sweep (default: one worker per
/// hardware thread — the output is byte-identical at any thread count)
/// and serializes table + hierarchy into a binary snapshot.
fn compile(analysis: &Analysis, rest: &[String]) -> ExitCode {
    let usage = "usage: cpplookup-cli compile <file.cpp> -o <out.snap> [--jobs N]";
    let out = match rest.iter().position(|a| a == "-o") {
        Some(i) => match rest.get(i + 1) {
            Some(out) => out,
            None => {
                eprintln!("{usage}");
                return ExitCode::from(2);
            }
        },
        None => {
            eprintln!("{usage}");
            return ExitCode::from(2);
        }
    };
    let jobs = match parse_jobs(rest) {
        Ok(jobs) => jobs,
        Err(e) => {
            eprintln!("cpplookup-cli: {e}\n{usage}");
            return ExitCode::from(2);
        }
    };
    let snap = if jobs == 1 {
        Snapshot::from_table(&analysis.chg, &analysis.table)
    } else {
        Snapshot::compile_parallel(&analysis.chg, analysis.table.options(), jobs)
    };
    match snap.write_to(out) {
        Ok(()) => {
            eprintln!(
                "wrote {out}: {} bytes ({} classes, {} entries, {jobs} jobs)",
                snap.len(),
                analysis.chg.class_count(),
                analysis.table.stats().entries
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("cpplookup-cli: {e}");
            ExitCode::from(2)
        }
    }
}

/// Renders one lookup verdict in the `batch` style.
fn render_verdict(
    outcome: LookupOutcome,
    member: &str,
    class_name_of: impl Fn(cpplookup::ClassId) -> String,
) -> String {
    match outcome {
        LookupOutcome::Resolved { class, .. } => {
            format!("{}::{member}", class_name_of(class))
        }
        LookupOutcome::Ambiguous { .. } => "ambiguous".to_owned(),
        LookupOutcome::NotFound => "not found".to_owned(),
    }
}

/// `query <file.cpp> <class> <member> [--backend B]`: one lookup,
/// answered by the chosen backend (default: the freshly built table).
/// All three source-backed backends go through the same names and must
/// agree; the flag exists to exercise any one of them on demand.
fn query(analysis: &Analysis, rest: &[String]) -> ExitCode {
    let (backend, rest) = match parse_backend(rest) {
        Ok(parsed) => parsed,
        Err(e) => {
            eprintln!("cpplookup-cli: {e}");
            return ExitCode::from(2);
        }
    };
    let [class, member] = rest.as_slice() else {
        eprintln!("usage: cpplookup-cli query <file.cpp> <class> <member> [--backend B]");
        return ExitCode::from(2);
    };
    let chg = &analysis.chg;
    let (Some(c), Some(m)) = (chg.class_by_name(class), chg.member_by_name(member)) else {
        eprintln!("cpplookup-cli: unknown class or member `{class}::{member}`");
        return ExitCode::from(1);
    };
    let outcome = match backend.unwrap_or(Backend::Table) {
        Backend::Snapshot => {
            eprintln!(
                "cpplookup-cli: the snapshot backend needs the artifact path: \
                 `query --snapshot <file.snap> <class> <member>`"
            );
            return ExitCode::from(2);
        }
        Backend::Table => analysis.table.lookup(c, m),
        Backend::Engine => {
            let engine = LookupEngine::new(analysis.chg.clone());
            engine.lookup_batch(&[(c, m)]).remove(0)
        }
        Backend::Index => DispatchIndex::from_backend(analysis.table.clone()).lookup(c, m),
    };
    let verdict = render_verdict(outcome, member, |c| chg.class_name(c).to_owned());
    println!("{:<24} {verdict}", format!("{class}::{member}"));
    ExitCode::SUCCESS
}

/// `query --snapshot <file.snap> <class> <member>`: the same verdict,
/// served straight from the validated snapshot bytes — no table build.
fn snapshot_query(file: &str, rest: &[String]) -> ExitCode {
    let [class, member] = rest else {
        eprintln!("usage: cpplookup-cli query --snapshot <file.snap> <class> <member>");
        return ExitCode::from(2);
    };
    let snap = match SnapshotTable::load(file) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cpplookup-cli: {e}");
            return ExitCode::from(2);
        }
    };
    let (Some(c), Some(m)) = (snap.class_by_name(class), snap.member_by_name(member)) else {
        eprintln!("cpplookup-cli: unknown class or member `{class}::{member}`");
        return ExitCode::from(1);
    };
    let verdict = render_verdict(SnapshotTable::lookup(&snap, c, m), member, |c| {
        snap.class_name(c).unwrap_or("?").to_owned()
    });
    println!("{:<24} {verdict}", format!("{class}::{member}"));
    ExitCode::SUCCESS
}

/// `batch --snapshot <file.snap>`: the batch loop over an engine whose
/// memo cache is warm-started from the snapshot's serialized entries,
/// so no lookup triggers a cold propagation unless an edit directive
/// invalidates it first.
fn snapshot_batch(file: &str, rest: &[String]) -> ExitCode {
    let metrics = rest.iter().any(|a| a == "--metrics");
    let serve = rest.iter().any(|a| a == "--serve");
    if serve && metrics {
        eprintln!(
            "cpplookup-cli: --serve and --metrics are mutually exclusive \
             (the serve loop reports index size and epochs to stderr)"
        );
        return ExitCode::from(2);
    }
    let snap = match SnapshotTable::load(file) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cpplookup-cli: {e}");
            return ExitCode::from(2);
        }
    };
    let chg = match snap.to_chg() {
        Ok(g) => g,
        Err(e) => {
            eprintln!("cpplookup-cli: {e}");
            return ExitCode::from(2);
        }
    };
    let mut options = EngineOptions::lazy();
    options.lookup = snap.options();
    options.timing = metrics;
    let mut engine = LookupEngine::with_options(chg, options);
    engine.seed_entries(snap.entries());
    eprintln!(
        "warm start: {} entries seeded from {} ({} bytes)",
        snap.entry_count(),
        file,
        snap.size_bytes()
    );
    if serve {
        // The seeded memo is complete, so the initial index packs
        // straight from it — no cold propagation.
        return serve_loop(IndexedEngine::new(engine));
    }
    batch_loop(engine, metrics)
}

fn trace(analysis: &Analysis, rest: &[String]) -> ExitCode {
    let Some(member) = rest.first() else {
        eprintln!("usage: cpplookup-cli trace <file.cpp> <member>");
        return ExitCode::from(2);
    };
    let Some(m) = analysis.chg.member_by_name(member) else {
        eprintln!("cpplookup-cli: no member named `{member}`");
        return ExitCode::from(2);
    };
    let trace = trace_member(&analysis.chg, m, LookupOptions::default());
    if rest.iter().any(|a| a == "--dot") {
        print!("{}", trace_to_dot(&analysis.chg, m, &trace));
    } else if rest.iter().any(|a| a == "--json") {
        println!("{}", trace_to_json(&analysis.chg, m, &trace));
    } else {
        print!("{}", render_trace(&analysis.chg, &trace));
    }
    ExitCode::SUCCESS
}

/// Sweeps every `(class, member)` pair through a lazy, timed
/// [`LookupEngine`] so the metrics registry has something to say, then
/// dumps the engine's registry merged with the process-global one
/// (propagation counters, baseline query counts) in the requested
/// format.
fn stats(analysis: &Analysis, rest: &[String]) -> ExitCode {
    let (backend, rest) = match parse_backend(rest) {
        Ok(parsed) => parsed,
        Err(e) => {
            eprintln!("cpplookup-cli: {e}");
            return ExitCode::from(2);
        }
    };
    let backend = backend.unwrap_or(Backend::Engine);
    if backend == Backend::Snapshot {
        eprintln!(
            "cpplookup-cli: the snapshot backend needs the artifact path: \
             `stats --snapshot <file.snap>`"
        );
        return ExitCode::from(2);
    }
    let mut options = EngineOptions::lazy();
    options.timing = true;
    let engine = LookupEngine::with_options(analysis.chg.clone(), options);
    let chg = engine.chg();
    let queries: Vec<_> = chg
        .classes()
        .flat_map(|c| chg.member_ids().map(move |m| (c, m)))
        .collect();
    engine.lookup_batch(&queries);

    // Pack the chosen backend into a dispatch index through the unified
    // `IntoDispatchIndex` surface so the serve-side build metrics
    // (index size, entry count, build time) appear in the dump. Every
    // backend packs the same entries; the flag picks which impl runs.
    let index = match backend {
        Backend::Engine => DispatchIndex::from_backend(&engine),
        Backend::Table => DispatchIndex::from_backend(analysis.table.clone()),
        Backend::Index => {
            // The identity impl: an already packed index passes through.
            DispatchIndex::from_backend(DispatchIndex::from_backend(analysis.table.clone()))
        }
        Backend::Snapshot => unreachable!("rejected above"),
    };
    eprintln!(
        "dispatch index: {} entries, {} bytes ({:.1} bytes/entry)",
        index.entry_count(),
        index.size_bytes(),
        index.bytes_per_entry()
    );

    let mut snapshot = engine.metrics_snapshot();
    snapshot.extend(obs::global().snapshot());
    render_metrics(&snapshot, &rest);
    ExitCode::SUCCESS
}

/// Prints a metrics snapshot in the format chosen by
/// `--json`/`--prometheus` (default: plain text).
fn render_metrics(snapshot: &obs::Snapshot, rest: &[String]) {
    if rest.iter().any(|a| a == "--json") {
        println!("{}", snapshot.render_json());
    } else if rest.iter().any(|a| a == "--prometheus") {
        print!("{}", snapshot.render_prometheus());
    } else {
        print!("{}", snapshot.render_text());
    }
}

/// `stats --snapshot <file.snap>`: pack the dispatch index straight
/// from the loaded snapshot bytes (the `&SnapshotTable` backend — no
/// table rebuild, no engine) and dump the process-global metrics
/// registry.
fn snapshot_stats(file: &str, rest: &[String]) -> ExitCode {
    let snap = match SnapshotTable::load(file) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cpplookup-cli: {e}");
            return ExitCode::from(2);
        }
    };
    let index = DispatchIndex::from_backend(&snap);
    eprintln!(
        "dispatch index: {} entries, {} bytes ({:.1} bytes/entry)",
        index.entry_count(),
        index.size_bytes(),
        index.bytes_per_entry()
    );
    render_metrics(&obs::global().snapshot(), rest);
    ExitCode::SUCCESS
}

/// `serve [flags]`: run the multi-tenant wire-protocol server in the
/// foreground. Parsing and the serve loop are shared with the
/// standalone `cpplookup-serverd` bin.
fn serve_cmd(rest: &[String]) -> ExitCode {
    use cpplookup::server::cli as server_cli;

    match server_cli::parse_server_args(rest) {
        Ok(config) => {
            let e = server_cli::serve_forever(config);
            eprintln!("cpplookup-cli: {e}");
            ExitCode::from(2)
        }
        Err(e) => {
            eprintln!(
                "cpplookup-cli: {e}\nusage: cpplookup-cli serve {}",
                server_cli::SERVE_USAGE
            );
            ExitCode::from(2)
        }
    }
}

/// `loadgen [flags]`: drive load at a running server. Parsing and the
/// run body are shared with the standalone `cpplookup-loadgen` bin.
fn loadgen_cmd(rest: &[String]) -> ExitCode {
    use cpplookup::server::cli as server_cli;

    let parsed = match server_cli::parse_loadgen_args(rest) {
        Ok(parsed) => parsed,
        Err(e) => {
            eprintln!(
                "cpplookup-cli: {e}\nusage: cpplookup-cli loadgen {}",
                server_cli::LOADGEN_USAGE
            );
            return ExitCode::from(2);
        }
    };
    match server_cli::run_loadgen(&parsed) {
        Ok(report) => {
            println!("{report}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("cpplookup-cli: {e}");
            ExitCode::from(2)
        }
    }
}

/// `query --addr HOST:PORT --tenant NAME CLASS MEMBER [--trace]`: one
/// wire query against a running server; with `--trace` the server's
/// span tree follows as an attributed breakdown. Parsing and the run
/// body are shared with `cpplookup-loadgen query`.
fn wire_query_cmd(rest: &[String]) -> ExitCode {
    use cpplookup::server::cli as server_cli;

    let parsed = match server_cli::parse_query_args(rest) {
        Ok(parsed) => parsed,
        Err(e) => {
            eprintln!(
                "cpplookup-cli: {e}\nusage: cpplookup-cli {}",
                server_cli::QUERY_USAGE
            );
            return ExitCode::from(2);
        }
    };
    match server_cli::run_wire_query(&parsed) {
        Ok(text) => {
            println!("{text}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("cpplookup-cli: {e}");
            ExitCode::from(2)
        }
    }
}

fn layout(analysis: &Analysis, rest: &[String]) -> ExitCode {
    let chg = &analysis.chg;
    let nv = NvLayouts::compute(chg);
    let classes: Vec<_> = match rest.first() {
        Some(name) => match chg.class_by_name(name) {
            Some(c) => vec![c],
            None => {
                eprintln!("cpplookup-cli: no class named `{name}`");
                return ExitCode::from(2);
            }
        },
        None => chg.classes().collect(),
    };
    for c in classes {
        match ObjectLayout::compute(chg, &nv, c, 1_000_000) {
            Ok(l) => {
                print!("{}", l.render(chg, &nv));
                let vt = Vtables::compute(chg, &nv, &l, &analysis.table);
                if !vt.tables().is_empty() {
                    print!("{}", vt.render(chg, &l));
                }
                println!();
            }
            Err(e) => println!("layout of {}: {e}\n", chg.class_name(c)),
        }
    }
    let dispatch = build_dispatch_map(chg, &analysis.table);
    print!("{}", dispatch.render(chg));
    ExitCode::SUCCESS
}

fn audit(analysis: &Analysis) {
    let chg = &analysis.chg;
    let stats = analysis.table.stats();
    println!(
        "{} classes, {} edges, {} member names; {} lookup entries ({} ambiguous)",
        chg.class_count(),
        chg.edge_count(),
        chg.member_name_count(),
        stats.entries,
        stats.blue
    );
    for c in chg.classes() {
        for m in analysis.table.members_of(c).collect::<Vec<_>>() {
            if matches!(analysis.table.lookup(c, m), LookupOutcome::Ambiguous { .. }) {
                println!("  ambiguous: {}::{}", chg.class_name(c), chg.member_name(m));
            }
        }
    }
    let mut worst: Vec<(usize, &str)> = chg
        .classes()
        .filter_map(|c| {
            count_subobjects(chg, c, 1_000_000)
                .ok()
                .map(|n| (n, chg.class_name(c)))
        })
        .collect();
    worst.sort_by_key(|&(n, _)| std::cmp::Reverse(n));
    println!("largest objects by subobject count:");
    for (n, name) in worst.iter().take(5) {
        println!("  {name:<16} {n}");
    }
}
