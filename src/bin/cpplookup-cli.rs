//! `cpplookup-cli` — drive the member lookup pipeline from the command
//! line, compiler style.
//!
//! ```text
//! cpplookup-cli check  <file.cpp>            resolve every member access, print diagnostics
//! cpplookup-cli table  <file.cpp>            dump the whole lookup table
//! cpplookup-cli trace  <file.cpp> <member> [--dot]
//!                                            red/blue propagation trace (paper Figures 6-7)
//! cpplookup-cli layout <file.cpp> [class]    object layouts and dispatch tables
//! cpplookup-cli audit  <file.cpp>            ambiguity lint + subobject blowup report
//! cpplookup-cli dot    <file.cpp>            Graphviz export of the class hierarchy
//! cpplookup-cli export <file.cpp>            JSON export of the class hierarchy
//! cpplookup-cli batch  <file.cpp>            answer `class member` query pairs from stdin
//!                                            via the concurrent lookup engine; engine
//!                                            statistics go to stderr on exit
//! ```
//!
//! Exit status: 0 on success, 1 on resolution errors (`check`) or
//! unknown query names (`batch`), 2 on usage/IO errors.

use std::process::ExitCode;

use cpplookup::chg::dot::to_dot;
use cpplookup::chg::spec::ChgSpec;
use cpplookup::frontend::{analyze, render_all, Analysis};
use cpplookup::layout::{NvLayouts, ObjectLayout, Vtables};
use cpplookup::lookup::dispatch::build_dispatch_map;
use cpplookup::lookup::trace::{render_trace, trace_member, trace_to_dot};
use cpplookup::subobject::stats::count_subobjects;
use cpplookup::{EngineOptions, LookupEngine, LookupOptions, LookupOutcome};

const USAGE: &str =
    "usage: cpplookup-cli <check|table|trace|layout|audit|dot|export|batch> <file.cpp> [args]";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (command, file, rest) = match args.as_slice() {
        [command, file, rest @ ..] => (command.as_str(), file.as_str(), rest),
        _ => {
            eprintln!("{USAGE}");
            return ExitCode::from(2);
        }
    };
    let source = match std::fs::read_to_string(file) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cpplookup-cli: cannot read {file}: {e}");
            return ExitCode::from(2);
        }
    };
    let analysis = analyze(&source);
    match command {
        "check" => check(&analysis, file, &source),
        "table" => {
            table(&analysis);
            ExitCode::SUCCESS
        }
        "trace" => trace(&analysis, rest),
        "layout" => layout(&analysis, rest),
        "audit" => {
            audit(&analysis);
            ExitCode::SUCCESS
        }
        "dot" => {
            print!("{}", to_dot(&analysis.chg));
            ExitCode::SUCCESS
        }
        "export" => {
            println!("{}", ChgSpec::from_chg(&analysis.chg).to_json());
            ExitCode::SUCCESS
        }
        "batch" => batch(&analysis),
        other => {
            eprintln!("cpplookup-cli: unknown command `{other}`\n{USAGE}");
            ExitCode::from(2)
        }
    }
}

fn check(analysis: &Analysis, file: &str, source: &str) -> ExitCode {
    for query in &analysis.queries {
        let verdict = match &query.result {
            cpplookup::frontend::QueryResult::Resolved {
                declaring_class,
                access,
            } => {
                format!(
                    "ok: {}::{} ({access})",
                    analysis.chg.class_name(*declaring_class),
                    query.member
                )
            }
            other => format!("{other:?}"),
        };
        println!("{:<20} {verdict}", query.description);
    }
    if analysis.diagnostics.is_empty() {
        println!("\nno diagnostics.");
        ExitCode::SUCCESS
    } else {
        println!("\n{}", render_all(&analysis.diagnostics, file, source));
        ExitCode::from(1)
    }
}

fn table(analysis: &Analysis) {
    let chg = &analysis.chg;
    for c in chg.classes() {
        let mut members: Vec<_> = analysis.table.members_of(c).collect();
        members.sort();
        if members.is_empty() {
            continue;
        }
        println!("{}:", chg.class_name(c));
        for m in members {
            let line = match analysis.table.lookup(c, m) {
                LookupOutcome::Resolved { class, .. } => {
                    let path = analysis
                        .table
                        .resolve_path(chg, c, m)
                        .map(|p| format!("  via {}", p.display(chg)))
                        .unwrap_or_default();
                    format!("{}::{}{}", chg.class_name(class), chg.member_name(m), path)
                }
                LookupOutcome::Ambiguous { .. } => "<ambiguous>".to_owned(),
                LookupOutcome::NotFound => unreachable!("members_of lists visible members"),
            };
            println!("  {:<12} -> {line}", chg.member_name(m));
        }
    }
}

/// Reads whitespace-separated `class member` pairs from stdin (blank
/// lines and `#` comments skipped), answers them all through a
/// [`LookupEngine`] batch, and reports the engine's statistics to
/// stderr at the end.
fn batch(analysis: &Analysis) -> ExitCode {
    use std::io::BufRead;

    let engine = LookupEngine::with_options(analysis.chg.clone(), EngineOptions::parallel(4));
    let chg = engine.chg();
    let mut labels: Vec<String> = Vec::new();
    let mut resolved: Vec<Result<(cpplookup::ClassId, cpplookup::MemberId), String>> = Vec::new();
    for line in std::io::stdin().lock().lines() {
        let line = match line {
            Ok(l) => l,
            Err(e) => {
                eprintln!("cpplookup-cli: cannot read stdin: {e}");
                return ExitCode::from(2);
            }
        };
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut words = line.split_whitespace();
        let (Some(class), Some(member), None) = (words.next(), words.next(), words.next()) else {
            labels.push(line.to_owned());
            resolved.push(Err("expected `class member`".to_owned()));
            continue;
        };
        labels.push(format!("{class}::{member}"));
        resolved.push(
            match (chg.class_by_name(class), chg.member_by_name(member)) {
                (Some(c), Some(m)) => Ok((c, m)),
                (None, _) => Err(format!("no class named `{class}`")),
                (_, None) => Err(format!("no member named `{member}`")),
            },
        );
    }

    let queries: Vec<_> = resolved
        .iter()
        .filter_map(|r| r.as_ref().ok().copied())
        .collect();
    let mut outcomes = engine.lookup_batch(&queries).into_iter();
    let mut failed = false;
    for (label, slot) in labels.iter().zip(&resolved) {
        let verdict = match slot {
            Err(e) => {
                failed = true;
                format!("error: {e}")
            }
            Ok((_, m)) => match outcomes.next().expect("one outcome per valid query") {
                LookupOutcome::Resolved { class, .. } => {
                    format!("{}::{}", chg.class_name(class), chg.member_name(*m))
                }
                LookupOutcome::Ambiguous { .. } => "ambiguous".to_owned(),
                LookupOutcome::NotFound => "not found".to_owned(),
            },
        };
        println!("{label:<24} {verdict}");
    }
    eprintln!("{}", engine.stats());
    if failed {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}

fn trace(analysis: &Analysis, rest: &[String]) -> ExitCode {
    let Some(member) = rest.first() else {
        eprintln!("usage: cpplookup-cli trace <file.cpp> <member>");
        return ExitCode::from(2);
    };
    let Some(m) = analysis.chg.member_by_name(member) else {
        eprintln!("cpplookup-cli: no member named `{member}`");
        return ExitCode::from(2);
    };
    let trace = trace_member(&analysis.chg, m, LookupOptions::default());
    if rest.iter().any(|a| a == "--dot") {
        print!("{}", trace_to_dot(&analysis.chg, m, &trace));
    } else {
        print!("{}", render_trace(&analysis.chg, &trace));
    }
    ExitCode::SUCCESS
}

fn layout(analysis: &Analysis, rest: &[String]) -> ExitCode {
    let chg = &analysis.chg;
    let nv = NvLayouts::compute(chg);
    let classes: Vec<_> = match rest.first() {
        Some(name) => match chg.class_by_name(name) {
            Some(c) => vec![c],
            None => {
                eprintln!("cpplookup-cli: no class named `{name}`");
                return ExitCode::from(2);
            }
        },
        None => chg.classes().collect(),
    };
    for c in classes {
        match ObjectLayout::compute(chg, &nv, c, 1_000_000) {
            Ok(l) => {
                print!("{}", l.render(chg, &nv));
                let vt = Vtables::compute(chg, &nv, &l, &analysis.table);
                if !vt.tables().is_empty() {
                    print!("{}", vt.render(chg, &l));
                }
                println!();
            }
            Err(e) => println!("layout of {}: {e}\n", chg.class_name(c)),
        }
    }
    let dispatch = build_dispatch_map(chg, &analysis.table);
    print!("{}", dispatch.render(chg));
    ExitCode::SUCCESS
}

fn audit(analysis: &Analysis) {
    let chg = &analysis.chg;
    let stats = analysis.table.stats();
    println!(
        "{} classes, {} edges, {} member names; {} lookup entries ({} ambiguous)",
        chg.class_count(),
        chg.edge_count(),
        chg.member_name_count(),
        stats.entries,
        stats.blue
    );
    for c in chg.classes() {
        for m in analysis.table.members_of(c).collect::<Vec<_>>() {
            if matches!(analysis.table.lookup(c, m), LookupOutcome::Ambiguous { .. }) {
                println!("  ambiguous: {}::{}", chg.class_name(c), chg.member_name(m));
            }
        }
    }
    let mut worst: Vec<(usize, &str)> = chg
        .classes()
        .filter_map(|c| {
            count_subobjects(chg, c, 1_000_000)
                .ok()
                .map(|n| (n, chg.class_name(c)))
        })
        .collect();
    worst.sort_by_key(|&(n, _)| std::cmp::Reverse(n));
    println!("largest objects by subobject count:");
    for (n, name) in worst.iter().take(5) {
        println!("  {name:<16} {n}");
    }
}
