//! Object layouts and dispatch tables — the physical consequences of the
//! subobject model: replication under non-virtual inheritance, sharing
//! under virtual inheritance, and what each dispatch slot binds to.
//!
//! Run with: `cargo run --example object_layout`

use cpplookup::chg::fixtures;
use cpplookup::layout::{NvLayouts, ObjectLayout, Vtables};
use cpplookup::lookup::dispatch::build_dispatch_map;
use cpplookup::LookupTable;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== the paper's Figure 1 vs Figure 2, in memory ==\n");
    for (name, g) in [
        ("Figure 1 (non-virtual)", fixtures::fig1()),
        ("Figure 2 (virtual)", fixtures::fig2()),
    ] {
        let nv = NvLayouts::compute(&g);
        let e = g.class_by_name("E").unwrap();
        let layout = ObjectLayout::compute(&g, &nv, e, 10_000)?;
        println!("--- {name} ---");
        print!("{}", layout.render(&g, &nv));
        let a = g.class_by_name("A").unwrap();
        println!(
            "  => {} A subobject(s); that is exactly why `p->m()` is {}\n",
            layout.graph().subobjects_of_class(a).count(),
            if layout.graph().subobjects_of_class(a).count() > 1 {
                "ambiguous"
            } else {
                "fine"
            }
        );
    }

    println!("== dispatch tables for the dominance diamond ==\n");
    let g = fixtures::dominance_diamond();
    let table = LookupTable::build(&g);
    let dispatch = build_dispatch_map(&g, &table);
    print!("{}", dispatch.render(&g));

    let nv = NvLayouts::compute(&g);
    let bottom = g.class_by_name("Bottom").unwrap();
    let layout = ObjectLayout::compute(&g, &nv, bottom, 10_000)?;
    println!();
    print!("{}", layout.render(&g, &nv));
    println!(
        "\nsizeof(Bottom) = {} bytes; the shared virtual Top sits at offset {}\n",
        layout.size(),
        layout.vbase_offsets()[0].1
    );

    let vtables = Vtables::compute(&g, &nv, &layout, &table);
    print!("{}", vtables.render(&g, &layout));
    println!("\n(non-zero `this` adjustments are the thunks a real ABI would emit)");
    Ok(())
}
