//! Reproduces every worked figure of the paper on stdout:
//!
//! * Figures 1–2 — the motivating programs and their verdicts,
//! * Figure 3 — the running example's `Defns` sets and dominance facts,
//! * Figures 4–5 — full-path propagation with killed definitions,
//! * Figures 6–7 — red/blue abstraction propagation,
//! * Figure 9 — the g++ counterexample.
//!
//! Run with: `cargo run --example paper_figures`

use cpplookup::baselines::gxx::{gxx_lookup, gxx_lookup_corrected, GxxResult};
use cpplookup::baselines::naive::{propagate, PropagationConfig};
use cpplookup::chg::fixtures;
use cpplookup::lookup::trace::{render_trace, trace_member};
use cpplookup::subobject::{defns, lookup};
use cpplookup::{LookupOptions, LookupOutcome, LookupTable, Resolution, SubobjectGraph};

fn main() {
    // --- Figures 1 & 2 ---------------------------------------------------
    println!("== Figures 1 & 2: non-virtual vs virtual inheritance ==");
    for (name, g) in [
        ("fig1 (non-virtual)", fixtures::fig1()),
        ("fig2 (virtual)", fixtures::fig2()),
    ] {
        let e = g.class_by_name("E").unwrap();
        let m = g.member_by_name("m").unwrap();
        let t = LookupTable::build(&g);
        let verdict = match t.lookup(e, m) {
            LookupOutcome::Resolved { class, .. } => {
                format!("resolves to {}::m", g.class_name(class))
            }
            LookupOutcome::Ambiguous { .. } => "ambiguous".to_owned(),
            LookupOutcome::NotFound => "not found".to_owned(),
        };
        let sg = SubobjectGraph::build(&g, e, 1000).expect("tiny graph");
        println!("  {name}: p->m {verdict}   (E has {} subobjects)", sg.len());
    }
    println!();

    // --- Figure 3: Defns sets --------------------------------------------
    let g = fixtures::fig3();
    let h = g.class_by_name("H").unwrap();
    let sg = SubobjectGraph::build(&g, h, 1000).expect("tiny graph");
    println!("== Figure 3: the running example ==");
    for member in ["foo", "bar"] {
        let m = g.member_by_name(member).unwrap();
        let defs: Vec<String> = defns(&g, &sg, m)
            .into_iter()
            .map(|id| sg.subobject(id).display(&g).to_string())
            .collect();
        let verdict = match lookup(&g, &sg, m) {
            Resolution::Subobject(id) => {
                format!("lookup(H, {member}) = {}", sg.subobject(id).display(&g))
            }
            Resolution::Ambiguous(_) => format!("lookup(H, {member}) = ⊥ (ambiguous)"),
            other => format!("{other:?}"),
        };
        println!("  Defns(H, {member}) = {{ {} }}", defs.join(", "));
        println!("  {verdict}");
    }
    println!();

    // --- Figures 4 & 5: path propagation with killing ----------------------
    println!("== Figures 4 & 5: definition propagation (crossed-out = killed) ==");
    for member in ["foo", "bar"] {
        let m = g.member_by_name(member).unwrap();
        let prop = propagate(&g, m, PropagationConfig::default()).expect("small graph");
        println!("  member {member}:");
        for node in &prop.nodes {
            let mut parts: Vec<String> = Vec::new();
            for p in &node.reaching {
                let text = format!("{}", p.display(&g));
                if node.killed.contains(p) {
                    parts.push(format!("~~{text}~~"));
                } else if node.most_dominant.as_ref() == Some(p) {
                    parts.push(format!("**{text}**"));
                } else {
                    parts.push(text);
                }
            }
            println!("    {}: {}", g.class_name(node.class), parts.join(", "));
        }
    }
    println!();

    // --- Figures 6 & 7: abstraction propagation ----------------------------
    println!("== Figures 6 & 7: red/blue abstraction propagation ==");
    for member in ["foo", "bar"] {
        let m = g.member_by_name(member).unwrap();
        println!("  member {member}:");
        let text = render_trace(&g, &trace_member(&g, m, LookupOptions::default()));
        for line in text.lines() {
            println!("    {line}");
        }
    }
    println!();

    // --- Figure 9 ----------------------------------------------------------
    println!("== Figure 9: the counterexample for the g++ algorithm ==");
    let g9 = fixtures::fig9();
    let e9 = g9.class_by_name("E").unwrap();
    let m9 = g9.member_by_name("m").unwrap();
    let sg9 = SubobjectGraph::build(&g9, e9, 1000).expect("tiny graph");
    let t9 = LookupTable::build(&g9);
    let ours = match t9.lookup(e9, m9) {
        LookupOutcome::Resolved { class, .. } => format!("{}::m", g9.class_name(class)),
        other => format!("{other:?}"),
    };
    let faithful = match gxx_lookup(&g9, &sg9, m9) {
        GxxResult::Ambiguous => "ambiguous (WRONG)".to_owned(),
        other => format!("{other:?}"),
    };
    let corrected = match gxx_lookup_corrected(&g9, &sg9, m9) {
        GxxResult::Resolved(id) => format!("{}::m", g9.class_name(sg9.subobject(id).class())),
        other => format!("{other:?}"),
    };
    println!("  paper's algorithm : e.m resolves to {ours}");
    println!("  faithful g++ 2.7.2: {faithful}");
    println!("  corrected BFS     : e.m resolves to {corrected}");
}
