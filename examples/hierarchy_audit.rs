//! Hierarchy audit: lint a class hierarchy for ambiguous member lookups
//! and subobject blowup — the kind of tooling the paper's whole-table
//! algorithm makes cheap (`O((|M|+|N|)·(|N|+|E|))` for a clean
//! hierarchy).
//!
//! Run with: `cargo run --example hierarchy_audit [seed]`

use cpplookup::hiergen::{random_hierarchy, RandomConfig};
use cpplookup::subobject::stats::measure_blowup;
use cpplookup::{LookupOutcome, LookupTable};

fn main() {
    let seed = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(42);

    // A mid-sized "codebase" with occasional multiple inheritance.
    let chg = random_hierarchy(&RandomConfig {
        classes: 120,
        extra_base_prob: 0.3,
        max_bases: 3,
        virtual_prob: 0.25,
        member_pool: 6,
        member_prob: 0.25,
        static_prob: 0.1,
        seed,
    });

    println!(
        "auditing hierarchy: {} classes, {} edges, {} member names (seed {seed})",
        chg.class_count(),
        chg.edge_count(),
        chg.member_name_count()
    );

    let table = LookupTable::build(&chg);
    let stats = table.stats();
    println!(
        "lookup table: {} entries, {} unambiguous, {} ambiguous",
        stats.entries, stats.red, stats.blue
    );
    println!();

    // Report every ambiguous (class, member) pair — each would be a
    // compile error the moment someone writes `obj.m`.
    let mut ambiguous = Vec::new();
    for class in chg.classes() {
        for member in table.members_of(class).collect::<Vec<_>>() {
            if let LookupOutcome::Ambiguous { witnesses } = table.lookup(class, member) {
                ambiguous.push((class, member, witnesses.len()));
            }
        }
    }
    ambiguous.sort_by_key(|&(c, m, _)| (chg.topo_position(c), m));
    println!("ambiguous lookups ({}):", ambiguous.len());
    for (class, member, nwitnesses) in ambiguous.iter().take(15) {
        println!(
            "  {}::{}  ({} conflicting inheritance routes)",
            chg.class_name(*class),
            chg.member_name(*member),
            nwitnesses.max(&2)
        );
    }
    if ambiguous.len() > 15 {
        println!("  ... and {} more", ambiguous.len() - 15);
    }
    println!();

    // Subobject blowup: classes whose objects replicate many base
    // subobjects (a code-size / object-size smell).
    let blowup = measure_blowup(&chg, 1_000_000);
    let mut worst: Vec<_> = blowup
        .per_class
        .iter()
        .filter_map(|c| c.subobjects.map(|n| (c.class, n)))
        .collect();
    worst.sort_by_key(|&(_, n)| std::cmp::Reverse(n));
    println!("largest objects (by subobject count):");
    for (class, n) in worst.iter().take(5) {
        println!("  {:8} {} subobjects", chg.class_name(*class), n);
    }
    println!(
        "total subobjects across all complete types: {}",
        blowup.total_subobjects
    );
}
