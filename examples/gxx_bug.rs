//! The g++ 2.7.2.1 false-ambiguity bug at scale: stacks of the Figure 9
//! pattern where every stage's lookup is unambiguous, yet the faithful
//! breadth-first strategy reports ambiguity at every one of them.
//!
//! Run with: `cargo run --example gxx_bug [stages]`

use cpplookup::baselines::gxx::{gxx_lookup, gxx_lookup_corrected, GxxResult};
use cpplookup::hiergen::families::gxx_trap;
use cpplookup::{LookupOutcome, LookupTable, SubobjectGraph};

fn main() {
    let stages: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(5);

    let chg = gxx_trap(stages);
    let table = LookupTable::build(&chg);
    let m = chg.member_by_name("m").unwrap();

    println!(
        "gxx_trap({stages}): {} classes, {} edges",
        chg.class_count(),
        chg.edge_count()
    );
    println!();
    println!(
        "{:<8} {:<18} {:<22} {:<18}",
        "class", "paper algorithm", "faithful g++ 2.7.2.1", "corrected BFS"
    );

    let mut wrong = 0usize;
    for i in 1..=stages {
        let e = chg.class_by_name(&format!("E{i}")).unwrap();
        let ours = match table.lookup(e, m) {
            LookupOutcome::Resolved { class, .. } => {
                format!("{}::m", chg.class_name(class))
            }
            other => format!("{other:?}"),
        };
        let sg = SubobjectGraph::build(&chg, e, 1_000_000).expect("linear-size graph");
        let faithful = match gxx_lookup(&chg, &sg, m) {
            GxxResult::Ambiguous => {
                wrong += 1;
                "ambiguous  ✗".to_owned()
            }
            GxxResult::Resolved(id) => {
                format!("{}::m", chg.class_name(sg.subobject(id).class()))
            }
            GxxResult::NotFound => "not found".to_owned(),
        };
        let corrected = match gxx_lookup_corrected(&chg, &sg, m) {
            GxxResult::Resolved(id) => {
                format!("{}::m  ✓", chg.class_name(sg.subobject(id).class()))
            }
            other => format!("{other:?}"),
        };
        println!(
            "{:<8} {:<18} {:<22} {:<18}",
            format!("E{i}"),
            ours,
            faithful,
            corrected
        );
    }

    println!();
    println!("the faithful g++ strategy reported a spurious ambiguity on {wrong}/{stages} stages;");
    println!("the paper notes 3 of the 7 compilers tried in 1997 shared this bug.");
    assert_eq!(
        wrong, stages,
        "every stage must trip the faithful algorithm"
    );
}
