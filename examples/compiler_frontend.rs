//! A miniature C++ "front end" session: parse real C++ source, build the
//! class hierarchy, resolve every member access, and print gcc-style
//! diagnostics — the deployment context the paper's algorithm was built
//! for.
//!
//! Run with: `cargo run --example compiler_frontend [file.cpp]`
//! Without an argument it analyzes a built-in program combining the
//! paper's Figure 1, Figure 2, and Figure 9 examples.

use std::fmt::Write as _;

use cpplookup::frontend::{analyze, render_all, QueryResult};

const DEMO: &str = r#"
// --- Figure 1 of the paper: non-virtual inheritance, ambiguous ---
class A1 { public: void m(); };
class B1 : public A1 {};
class C1 : public B1 {};
class D1 : public B1 { public: void m(); };
class E1 : public C1, public D1 {};

// --- Figure 2: virtual inheritance, unambiguous ---
class A2 { public: void m(); };
class B2 : public A2 {};
class C2 : virtual public B2 {};
class D2 : virtual public B2 { public: void m(); };
class E2 : public C2, public D2 {};

// --- Figure 9: the lookup several 1997 compilers got wrong ---
struct S  { int m; };
struct A9 : virtual S { int m; };
struct B9 : virtual S { int m; };
struct C9 : virtual A9, virtual B9 { int m; };
struct D9 : C9 {};
struct E9 : virtual A9, virtual B9, D9 {};

int main() {
    E1 *p;
    p->m();       // error: ambiguous (two A1 subobjects)
    E2 q;
    q.m();        // fine: D2::m dominates
    E9 e;
    e.m = 10;     // fine: C9::m dominates A9::m and B9::m
}
"#;

fn main() {
    let (name, source) = match std::env::args().nth(1) {
        Some(path) => {
            let text = std::fs::read_to_string(&path)
                .unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
            (path, text)
        }
        None => ("<demo>".to_owned(), DEMO.to_owned()),
    };

    let analysis = analyze(&source);

    println!(
        "parsed {} classes, {} inheritance edges, {} member names",
        analysis.chg.class_count(),
        analysis.chg.edge_count(),
        analysis.chg.member_name_count()
    );
    println!();

    let mut report = String::new();
    for query in &analysis.queries {
        let verdict = match &query.result {
            QueryResult::Resolved {
                declaring_class,
                access,
            } => format!(
                "resolved to {}::{} ({access})",
                analysis.chg.class_name(*declaring_class),
                query.member
            ),
            QueryResult::AccessDenied { declaring_class } => format!(
                "resolved to {}::{} but INACCESSIBLE here",
                analysis.chg.class_name(*declaring_class),
                query.member
            ),
            QueryResult::AmbiguousMember => "AMBIGUOUS member lookup".to_owned(),
            QueryResult::NoSuchMember => "no such member".to_owned(),
            QueryResult::LocalVariable => "a local variable".to_owned(),
            QueryResult::GlobalVariable => "a global variable".to_owned(),
            other => format!("{other:?}"),
        };
        let _ = writeln!(report, "  {:12} -> {verdict}", query.description);
    }
    println!("member accesses:");
    print!("{report}");
    println!();

    if analysis.diagnostics.is_empty() {
        println!("no diagnostics: the program is well-formed.");
    } else {
        println!("diagnostics:");
        println!("{}", render_all(&analysis.diagnostics, &name, &source));
    }

    // The demo program must produce exactly one error: Figure 1's lookup.
    if name == "<demo>" {
        let failed: Vec<_> = analysis.failed_queries().collect();
        assert_eq!(failed.len(), 1, "only p->m() should fail");
        assert_eq!(failed[0].result, QueryResult::AmbiguousMember);
    }
}
