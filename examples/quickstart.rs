//! Quickstart: build a class hierarchy, run the lookup algorithm, and
//! inspect the results.
//!
//! Run with: `cargo run --example quickstart`

use cpplookup::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The "dreaded diamond" with an override:
    //
    //   struct Top    { void draw(); void area(); };
    //   struct Left   : virtual Top { void draw(); };
    //   struct Right  : virtual Top { void area(); };
    //   struct Bottom : Left, Right {};
    let mut b = ChgBuilder::new();
    let top = b.class("Top");
    let left = b.class("Left");
    let right = b.class("Right");
    let bottom = b.class("Bottom");
    b.member(top, "draw");
    b.member(top, "area");
    b.member(left, "draw");
    b.member(right, "area");
    b.derive(left, top, Inheritance::Virtual)?;
    b.derive(right, top, Inheritance::Virtual)?;
    b.derive(bottom, left, Inheritance::NonVirtual)?;
    b.derive(bottom, right, Inheritance::NonVirtual)?;
    let chg = b.finish()?;

    // One pass over the hierarchy tabulates every lookup.
    let table = LookupTable::build(&chg);

    println!(
        "hierarchy: {} classes, {} edges",
        chg.class_count(),
        chg.edge_count()
    );
    println!();

    for class in chg.classes() {
        for member in table.members_of(class).collect::<Vec<_>>() {
            let outcome = table.lookup(class, member);
            let verdict = match &outcome {
                LookupOutcome::Resolved { class: decl, .. } => {
                    format!(
                        "resolves to {}::{}",
                        chg.class_name(*decl),
                        chg.member_name(member)
                    )
                }
                LookupOutcome::Ambiguous { .. } => "AMBIGUOUS".to_owned(),
                LookupOutcome::NotFound => unreachable!("members_of only lists visible members"),
            };
            let path = table
                .resolve_path(&chg, class, member)
                .map(|p| format!(" via path {}", p.display(&chg)))
                .unwrap_or_default();
            println!(
                "lookup({}, {:5}) {verdict}{path}",
                chg.class_name(class),
                chg.member_name(member),
            );
        }
    }

    // Both lookups in Bottom are unambiguous thanks to dominance: the
    // overrides in Left and Right hide Top's members through the shared
    // virtual base.
    let draw = chg.member_by_name("draw").expect("declared above");
    match table.lookup(bottom, draw) {
        LookupOutcome::Resolved { class, .. } => {
            assert_eq!(chg.class_name(class), "Left");
        }
        other => panic!("expected Left::draw, got {other:?}"),
    }
    println!();
    println!("Bottom::draw binds to Left::draw by the C++ dominance rule.");
    Ok(())
}
