//! Devirtualization and hierarchy slicing — the "static analysis" and
//! "class hierarchy slicing" applications the paper names in Section 1,
//! running on a generated plugin-style hierarchy.
//!
//! Run with: `cargo run --example devirtualize [seed]`

use cpplookup::hiergen::{random_hierarchy, RandomConfig};
use cpplookup::lookup::cha::{call_targets, devirtualization_census};
use cpplookup::lookup::slice::slice_hierarchy;
use cpplookup::{LookupOutcome, LookupTable};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let seed = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(9);
    let chg = random_hierarchy(&RandomConfig::realistic(150, seed));
    let table = LookupTable::build(&chg);

    // --- CHA: which virtual calls can be compiled as direct calls? ----
    let census = devirtualization_census(&chg, &table);
    println!(
        "CHA devirtualization census (seed {seed}): {}/{} resolvable call \
         sites are provably monomorphic",
        census.monomorphic, census.call_sites
    );

    // Show a few interesting polymorphic sites.
    let mut shown = 0;
    println!("\npolymorphic call sites:");
    'outer: for c in chg.classes() {
        for m in chg.member_ids() {
            if !matches!(table.lookup(c, m), LookupOutcome::Resolved { .. }) {
                continue;
            }
            let targets = call_targets(&chg, &table, c, m);
            if targets.targets.len() > 1 {
                let names: Vec<&str> = targets.targets.iter().map(|&t| chg.class_name(t)).collect();
                println!(
                    "  ({} *)->{}()  may bind to {}",
                    chg.class_name(c),
                    chg.member_name(m),
                    names.join(", ")
                );
                shown += 1;
                if shown >= 5 {
                    break 'outer;
                }
            }
        }
    }

    // --- Slicing: shrink the hierarchy to what one query needs --------
    let root = *chg.topo_order().last().expect("nonempty hierarchy");
    let member = chg
        .member_ids()
        .find(|&m| chg.is_member_visible(root, m))
        .expect("the most derived class sees something");
    let slice = slice_hierarchy(&chg, &[root], &[member])?;
    println!(
        "\nslicing to lookup({}, {}): {} -> {} classes \
         ({} dropped, {} declarations dropped from retained classes)",
        chg.class_name(root),
        chg.member_name(member),
        chg.class_count(),
        slice.chg.class_count(),
        slice.dropped_classes,
        slice.dropped_declarations,
    );

    // The preserved query still answers identically.
    let sliced_table = LookupTable::build(&slice.chg);
    let before = table.lookup(root, member);
    let after = sliced_table.lookup(
        slice.class(root).expect("root retained"),
        slice.member(member).expect("member mapped"),
    );
    let show = |t: &cpplookup::Chg, o: &LookupOutcome| match o {
        LookupOutcome::Resolved { class, .. } => t.class_name(*class).to_owned(),
        other => format!("{other:?}"),
    };
    println!(
        "verdict before: {}   after: {}   (identical by the slicing guarantee)",
        show(&chg, &before),
        show(&slice.chg, &after)
    );
    Ok(())
}
