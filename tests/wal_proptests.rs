//! Property-based tests of the durable edit log under crashes and
//! corruption.
//!
//! The contract mirrors `tests/snapshot_proptests.rs` for the other
//! on-disk format: killing a writer at *any* byte boundary must recover
//! a clean prefix of the appended records (and a farm replayed from
//! that prefix must equal a from-scratch rebuild that applied the same
//! edits), while *any* byte damage must surface as a structured
//! [`WalError`] with the damage localized — never a panic, never a
//! silently wrong record.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use cpplookup::chg::fixtures;
use cpplookup::prelude::*;
use cpplookup::server::{ErrorCode, Farm, FarmOptions, WireOutcome};
use cpplookup::wal::{read_all, recover_bytes, Stamped, WalError, WalRecord, WalStore, WalWriter};
use proptest::prelude::*;

static NEXT_DIR: AtomicU64 = AtomicU64::new(0);

/// A fresh scratch directory per call; the caller removes it.
fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "cpplookup-walprop-{name}-{}-{}",
        std::process::id(),
        NEXT_DIR.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// The probe vocabulary every state comparison walks: the base
/// hierarchy's names plus everything an edit script can introduce.
fn probe_names() -> (Vec<String>, Vec<String>) {
    let mut classes: Vec<String> = ["A", "B", "C", "D", "E"]
        .iter()
        .map(|s| (*s).to_owned())
        .collect();
    classes.extend((0..4).map(|i| format!("K{i}")));
    let mut members = vec!["m".to_owned()];
    members.extend((0..3).map(|i| format!("m{i}")));
    (classes, members)
}

/// Queries every probe and keeps the outcome (or its error code) — two
/// farms with equal fingerprints are indistinguishable to readers.
fn fingerprint(farm: &Farm) -> Fingerprint {
    let (classes, members) = probe_names();
    let mut out = Vec::new();
    for c in &classes {
        for m in &members {
            out.push(farm.query("t", c, m).map_err(|(code, _)| code));
        }
    }
    out
}

/// The current published epoch of tenant `t`, if it has one.
fn current_epoch(farm: &Farm) -> Option<u64> {
    farm.retained_epochs("t")
        .ok()
        .and_then(|v| v.last().copied())
}

/// One step of a generated edit script. Every rendered directive is
/// grammatically valid; whether the engine *accepts* it (duplicates,
/// unknown names, cycles) is exactly the behavior under test — the
/// leader and every replayer must agree on each verdict.
#[derive(Debug, Clone)]
enum Op {
    Class(u8),
    Member(u8, u8),
    Edge(u8, u8, bool),
}

impl Op {
    fn render(&self) -> String {
        let class = |i: u8| {
            if i < 5 {
                ["A", "B", "C", "D", "E"][i as usize].to_owned()
            } else {
                format!("K{}", i % 4)
            }
        };
        match self {
            Op::Class(i) => format!("class K{}", i % 4),
            Op::Member(c, m) => format!("member {} m{}", class(c % 9), m % 3),
            Op::Edge(a, b, false) => format!("edge {} {}", class(a % 9), class(b % 9)),
            Op::Edge(a, b, true) => format!("edge {} {} virtual", class(a % 9), class(b % 9)),
        }
    }
}

fn edit_script() -> impl Strategy<Value = Vec<String>> {
    let op = prop_oneof![
        any::<u8>().prop_map(Op::Class),
        (any::<u8>(), any::<u8>()).prop_map(|(c, m)| Op::Member(c, m)),
        (any::<u8>(), any::<u8>(), any::<bool>()).prop_map(|(a, b, v)| Op::Edge(a, b, v)),
    ];
    proptest::collection::vec(op.prop_map(|op| op.render()), 0..12)
}

/// What a query fingerprint looks like: one outcome (or error code) per
/// probe, in probe order.
type Fingerprint = Vec<Result<WireOutcome, ErrorCode>>;

/// Runs `script` through a logging leader farm and returns the log's
/// stamped records, its raw bytes, and the leader's final fingerprint.
fn leader_run(dir: &Path, script: &[String]) -> (Vec<Stamped>, Vec<u8>, Fingerprint, Option<u64>) {
    let snap = dir.join("t.snap");
    Snapshot::compile(&fixtures::fig2())
        .write_to(&snap)
        .unwrap();
    let wal_path = dir.join("edits.wal");
    let (store, recovered) = WalStore::open(&wal_path, 1).unwrap();
    assert!(recovered.is_empty());
    let farm = Farm::with_options(FarmOptions {
        wal: Some(Arc::new(store)),
        ..FarmOptions::default()
    });
    farm.load("t", &snap).unwrap();
    for d in script {
        let _ = farm.edit("t", d); // engine rejections are part of the experiment
    }
    let records = read_all(&wal_path).unwrap();
    let bytes = std::fs::read(&wal_path).unwrap();
    let print = fingerprint(&farm);
    let epoch = current_epoch(&farm);
    (records, bytes, print, epoch)
}

/// Replays stamped records through a read-only replica farm.
fn replica_of(dir: &Path, records: &[Stamped]) -> Farm {
    let farm = Farm::with_options(FarmOptions {
        read_only: true,
        ..FarmOptions::default()
    });
    for r in records {
        farm.apply_replica_record(&r.record)
            .expect("replaying a valid log never fails structurally");
    }
    let _ = dir; // snapshot paths inside Open records are absolute
    farm
}

/// Rebuilds the same state from scratch down the *client edit* path:
/// loads for Open records, `edit` for Edit records (rejections and all).
fn rebuild_of(records: &[Stamped]) -> Farm {
    let farm = Farm::new();
    for r in records {
        match &r.record {
            WalRecord::Open { tenant, path } => {
                farm.load(tenant, Path::new(path)).unwrap();
            }
            WalRecord::Edit { tenant, directive } => {
                let _ = farm.edit(tenant, directive);
            }
            WalRecord::Checkpoint { tenant, path, .. } => {
                if !farm.has_tenant(tenant) {
                    farm.load(tenant, Path::new(path)).unwrap();
                }
            }
        }
    }
    farm
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Kill-at-random-offset: truncating the log anywhere recovers a
    /// clean prefix of the appended records, and both a log replay and
    /// a from-scratch edit-path rebuild of that prefix converge to the
    /// same observable state — same query outcomes, same epoch.
    #[test]
    fn truncation_recovers_a_replayable_prefix(script in edit_script(), cut in any::<u64>()) {
        let dir = scratch("cut");
        let (records, bytes, leader_print, leader_epoch) = leader_run(&dir, &script);
        let at = (cut % (bytes.len() as u64 + 1)) as usize;

        let recovery = recover_bytes(&bytes[..at]);
        prop_assert!(
            recovery.records.len() <= records.len()
                && recovery.records[..] == records[..recovery.records.len()],
            "recovered records are not a prefix (cut at {at})"
        );

        let replica = replica_of(&dir, &recovery.records);
        let rebuild = rebuild_of(&recovery.records);
        prop_assert_eq!(fingerprint(&replica), fingerprint(&rebuild), "cut at {}", at);
        prop_assert_eq!(current_epoch(&replica), current_epoch(&rebuild), "cut at {}", at);

        if at == bytes.len() {
            prop_assert_eq!(fingerprint(&replica), leader_print, "full replay != leader");
            prop_assert_eq!(current_epoch(&replica), leader_epoch, "full replay epoch");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Crash-then-continue: a writer reopening a truncated log repairs
    /// the torn tail, reports exactly the surviving prefix, and appends
    /// cleanly after it with strictly increasing sequence numbers.
    #[test]
    fn reopening_a_torn_log_repairs_and_continues(script in edit_script(), cut in any::<u64>()) {
        let dir = scratch("reopen");
        let (records, bytes, _, _) = leader_run(&dir, &script);
        let at = (cut % (bytes.len() as u64 + 1)) as usize;
        let torn = dir.join("torn.wal");
        std::fs::write(&torn, &bytes[..at]).unwrap();

        let (mut writer, recovered) = WalWriter::open(&torn, 1).unwrap();
        prop_assert!(recovered[..] == records[..recovered.len()]);
        let stamped = writer.append(WalRecord::Edit {
            tenant: "t".to_owned(),
            directive: "class Tail".to_owned(),
        }).unwrap();
        prop_assert!(stamped.seq > recovered.last().map_or(0, |r| r.seq));
        drop(writer);

        let strict = read_all(&torn).unwrap();
        prop_assert_eq!(strict.len(), recovered.len() + 1);
        prop_assert_eq!(strict.last().unwrap(), &stamped);
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Corruption safety, bit-flip edition: XOR-damaging any byte of a
    /// valid log makes the strict reader fail with a structured error,
    /// and lenient recovery still yields an intact record prefix —
    /// damage is localized, never amplified, never a panic.
    #[test]
    fn any_byte_flip_is_structured_and_localized(
        script in edit_script(),
        position in any::<u64>(),
        mask in 0u8..255,
    ) {
        let dir = scratch("flip");
        let (records, bytes, _, _) = leader_run(&dir, &script);
        let mask = mask + 1; // 1..=255: never the identity flip
        let at = (position % bytes.len() as u64) as usize;
        let mut damaged = bytes;
        damaged[at] ^= mask;

        let flipped = dir.join("flipped.wal");
        std::fs::write(&flipped, &damaged).unwrap();
        let result = std::panic::catch_unwind(|| read_all(&flipped));
        match result {
            Ok(read) => prop_assert!(
                read.is_err(),
                "strict read accepted a log with byte {at} xor {mask:#04x}"
            ),
            Err(_) => prop_assert!(false, "panicked on byte {} xor {:#04x}", at, mask),
        }

        let recovery = recover_bytes(&damaged);
        prop_assert!(recovery.damage.is_some(), "no damage reported for byte {at}");
        prop_assert!(
            recovery.records.len() <= records.len()
                && recovery.records[..] == records[..recovery.records.len()],
            "recovered records are not an intact prefix (byte {at})"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Corruption safety, garbage edition: arbitrary byte soup never
    /// panics recovery, the strict reader, or the repairing writer.
    #[test]
    fn arbitrary_bytes_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let dir = scratch("soup");
        let path = dir.join("soup.wal");
        std::fs::write(&path, &bytes).unwrap();
        let result = std::panic::catch_unwind(|| {
            let _ = recover_bytes(&bytes);
            let _ = read_all(&path);
            let _ = WalWriter::open(&path, 1);
        });
        prop_assert!(result.is_ok(), "panicked on arbitrary bytes");
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// The exhaustive satellite: one scripted log, truncated at **every**
/// byte boundary. Each cut recovers a clean record prefix whose damage
/// classification is crash-shaped (`None` at a frame boundary,
/// [`WalError::TornTail`] inside a frame) — truncation alone can never
/// look like corruption or a foreign file.
#[test]
fn every_byte_boundary_recovers_a_clean_prefix() {
    let dir = scratch("exhaustive");
    let script: Vec<String> = [
        "member E fresh",
        "class K0",
        "edge K0 E",
        "member K0 m0",
        "edge E K0", // cycle: rejected by the engine, still logged
        "class K1",
        "edge K1 K0 virtual",
    ]
    .iter()
    .map(|s| (*s).to_owned())
    .collect();
    let (records, bytes, _, _) = leader_run(&dir, &script);
    assert!(
        records.len() > script.len(),
        "expected Open + every edit logged"
    );

    let mut boundary_cuts = 0;
    for at in 0..=bytes.len() {
        let recovery = recover_bytes(&bytes[..at]);
        assert!(
            recovery.records.len() <= records.len()
                && recovery.records[..] == records[..recovery.records.len()],
            "cut at {at}: recovered records are not a prefix"
        );
        match &recovery.damage {
            None => {
                boundary_cuts += 1;
                assert_eq!(
                    recovery.valid_len, at as u64,
                    "clean recovery at {at} must consume every byte"
                );
            }
            Some(WalError::TornTail { offset }) => {
                assert!(
                    *offset <= at as u64,
                    "cut at {at}: torn tail reported past the cut ({offset})"
                );
            }
            Some(other) => panic!("cut at {at}: truncation classified as {other:?}"),
        }
    }
    // Clean cuts are exactly: the empty file, plus one per frame
    // boundary (header included).
    assert_eq!(
        boundary_cuts,
        records.len() + 2,
        "unexpected frame boundary count"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// Replay equivalence at every *record* boundary of a scripted log:
/// replica replay and from-scratch rebuild agree at each prefix, and
/// the full-log replay equals the leader exactly (same epoch, same
/// outcomes) — the wire-follower convergence guarantee, minus the wire.
#[test]
fn every_record_prefix_replays_to_the_rebuilt_state() {
    let dir = scratch("prefixes");
    let script: Vec<String> = [
        "member E fresh",
        "class K0",
        "edge K0 E",
        "member K0 m0",
        "edge E K0", // rejected: would form a cycle
        "class K1",
        "edge K1 K0 virtual",
        "member K1 m1",
        "member D m2",
    ]
    .iter()
    .map(|s| (*s).to_owned())
    .collect();
    let (records, _, leader_print, leader_epoch) = leader_run(&dir, &script);

    for k in 0..=records.len() {
        let replica = replica_of(&dir, &records[..k]);
        let rebuild = rebuild_of(&records[..k]);
        assert_eq!(
            fingerprint(&replica),
            fingerprint(&rebuild),
            "prefix of {k} records diverged"
        );
        assert_eq!(
            current_epoch(&replica),
            current_epoch(&rebuild),
            "prefix {k} epoch"
        );
    }
    let full = replica_of(&dir, &records);
    assert_eq!(fingerprint(&full), leader_print, "full replay != leader");
    assert_eq!(
        current_epoch(&full),
        leader_epoch,
        "full replay epoch != leader"
    );
    std::fs::remove_dir_all(&dir).ok();
}
