//! Property-based tests of the formalism's invariants, driven by random
//! hierarchies: the lemmas and the theorem of the paper, plus structural
//! invariants of our data structures.

use cpplookup::hiergen::{edit_script, random_hierarchy, EditScriptConfig, RandomConfig};
use cpplookup::subobject::isomorphism::{
    check_theorem1_all, enumerate_paths_to, equivalence_classes, path_dominates,
};
use cpplookup::subobject::{lookup, lookup_cpp, Resolution};
use cpplookup::{
    Chg, Edit, EngineOptions, LeastVirtual, LookupEngine, LookupOptions, LookupOutcome,
    LookupTable, StaticRule, Subobject, SubobjectGraph,
};
use proptest::prelude::*;

/// A proptest strategy producing small, ambiguity-rich hierarchies.
fn small_chg() -> impl Strategy<Value = Chg> {
    (
        3usize..10,   // classes
        0.0f64..0.7,  // extra_base_prob
        0.0f64..0.6,  // virtual_prob
        1usize..3,    // member pool
        0.2f64..0.6,  // member_prob
        0.0f64..0.5,  // static_prob
        any::<u64>(), // seed
    )
        .prop_map(
            |(
                classes,
                extra_base_prob,
                virtual_prob,
                member_pool,
                member_prob,
                static_prob,
                seed,
            )| {
                random_hierarchy(&RandomConfig {
                    classes,
                    extra_base_prob,
                    max_bases: 3,
                    virtual_prob,
                    member_pool,
                    member_prob,
                    static_prob,
                    seed,
                })
            },
        )
}

/// A strategy producing a small clash-heavy base hierarchy plus an edit
/// script guaranteed to replay cleanly against it.
fn edit_scripts() -> impl Strategy<Value = (Chg, Vec<Edit>)> {
    (4usize..24, any::<u64>())
        .prop_map(|(edits, seed)| edit_script(&EditScriptConfig::stress(edits, seed)))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Theorem 1: the ≈-class poset and the subobject poset are
    /// isomorphic, for every class of every generated hierarchy.
    #[test]
    fn theorem1_holds(chg in small_chg()) {
        check_theorem1_all(&chg, 100_000).unwrap();
    }

    /// Lemma 2: *dominates* is a partial order on subobjects.
    #[test]
    fn dominance_is_a_partial_order(chg in small_chg()) {
        for c in chg.classes() {
            let sg = SubobjectGraph::build(&chg, c, 100_000).unwrap();
            for x in sg.iter() {
                prop_assert!(sg.dominates(x, x), "reflexive");
                for y in sg.iter() {
                    if sg.dominates(x, y) && sg.dominates(y, x) {
                        prop_assert_eq!(x, y, "antisymmetric");
                    }
                    for z in sg.iter() {
                        if sg.dominates(x, y) && sg.dominates(y, z) {
                            prop_assert!(sg.dominates(x, z), "transitive");
                        }
                    }
                }
            }
        }
    }

    /// Lemma 3: path extension distributes over dominance —
    /// `γ·(X→Y)` dominates `δ·(X→Y)` iff `γ` dominates `δ`.
    #[test]
    fn lemma3_extension_distributes(chg in small_chg()) {
        for x in chg.classes() {
            let Ok(paths) = enumerate_paths_to(&chg, x, 2_000) else { continue };
            if paths.len() > 40 {
                continue; // keep the quadratic pair loop bounded
            }
            let classes = equivalence_classes(&chg, &paths);
            for &y in chg.direct_derived(x) {
                let extended: Vec<_> = paths.iter().map(|p| p.extended(&chg, y)).collect();
                let ext_classes = equivalence_classes(&chg, &extended);
                for gamma in &paths {
                    for delta in &paths {
                        let before = path_dominates(
                            gamma,
                            &classes[&Subobject::from_path(&chg, delta)],
                        );
                        let after = path_dominates(
                            &gamma.extended(&chg, y),
                            &ext_classes[&Subobject::from_path(&chg, &delta.extended(&chg, y))],
                        );
                        prop_assert_eq!(before, after, "Lemma 3 violated");
                    }
                }
            }
        }
    }

    /// Definition 15 really abstracts `leastVirtual`:
    /// `leastVirtual(β·e) = leastVirtual(β) ∘ e` for every extension.
    #[test]
    fn definition15_commutes(chg in small_chg()) {
        for x in chg.classes() {
            let Ok(paths) = enumerate_paths_to(&chg, x, 1_000) else { continue };
            for p in &paths {
                for &y in chg.direct_derived(x) {
                    let inh = chg.edge(x, y).unwrap();
                    let q = p.extended(&chg, y);
                    prop_assert_eq!(
                        LeastVirtual::of_path(&chg, &q),
                        LeastVirtual::of_path(&chg, p).extend(x, inh)
                    );
                }
            }
        }
    }

    /// `fixed` is a non-virtual prefix and is idempotent (Definition 2).
    #[test]
    fn fixed_prefix_properties(chg in small_chg()) {
        for x in chg.classes() {
            let Ok(paths) = enumerate_paths_to(&chg, x, 1_000) else { continue };
            for p in &paths {
                let f = p.fixed(&chg);
                prop_assert!(f.is_prefix_of(p));
                prop_assert!(!f.is_v_path(&chg));
                prop_assert_eq!(f.fixed(&chg), f.clone(), "idempotent");
                prop_assert_eq!(f.ldc(), p.ldc());
            }
        }
    }

    /// The algorithm agrees with the subobject oracle (Definition 9
    /// semantics) — the proptest-shrinkable version of the big
    /// differential test.
    #[test]
    fn algorithm_matches_oracle(chg in small_chg()) {
        let table = LookupTable::build_with(
            &chg,
            LookupOptions { statics: StaticRule::Ignore },
        );
        for c in chg.classes() {
            let sg = SubobjectGraph::build(&chg, c, 100_000).unwrap();
            for m in chg.member_ids() {
                let ours = table.lookup(c, m);
                let oracle = lookup(&chg, &sg, m);
                match (&ours, &oracle) {
                    (LookupOutcome::NotFound, Resolution::NotFound) => {}
                    (LookupOutcome::Ambiguous { .. }, Resolution::Ambiguous(_)) => {}
                    (
                        LookupOutcome::Resolved { class, .. },
                        Resolution::Subobject(u),
                    ) => {
                        prop_assert_eq!(*class, sg.subobject(*u).class());
                    }
                    other => {
                        return Err(TestCaseError::fail(format!(
                            "mismatch at ({}, {}): {other:?}",
                            chg.class_name(c),
                            chg.member_name(m)
                        )))
                    }
                }
            }
        }
    }

    /// Definition 12 (red definitions): every proper prefix of a
    /// recovered winning path is itself a winner at its own class.
    #[test]
    fn recovered_paths_are_red(chg in small_chg()) {
        let table = LookupTable::build_with(
            &chg,
            LookupOptions { statics: StaticRule::Ignore },
        );
        for c in chg.classes() {
            for m in chg.member_ids() {
                let Some(path) = table.resolve_path(&chg, c, m) else { continue };
                for prefix in path.proper_prefixes() {
                    let mid = prefix.mdc();
                    match table.lookup(mid, m) {
                        LookupOutcome::Resolved { class, .. } => {
                            prop_assert_eq!(class, prefix.ldc());
                        }
                        other => {
                            return Err(TestCaseError::fail(format!(
                                "prefix of a red path not red at {}: {other:?}",
                                chg.class_name(mid)
                            )))
                        }
                    }
                }
            }
        }
    }

    /// After any random edit sequence, the incremental engine (each
    /// backing), a from-scratch `LookupTable::build`, and the subobject
    /// oracle all agree on every `(class, member)` pair — the engine's
    /// three-way equivalence contract.
    #[test]
    fn engine_after_edit_script_matches_rebuild_and_oracle(
        (base, edits) in edit_scripts(),
        backing in 0usize..3,
    ) {
        let options = match backing {
            0 => EngineOptions::default(),
            1 => EngineOptions::lazy(),
            _ => EngineOptions::parallel(3),
        };
        let mut engine = LookupEngine::with_options(base.clone(), options);
        let mut current = base;
        for edit in &edits {
            current = cpplookup::apply_edits(&current, std::slice::from_ref(edit)).unwrap();
            engine.apply(std::slice::from_ref(edit)).unwrap();
        }
        prop_assert_eq!(engine.generation(), edits.len() as u64);
        let rebuilt = LookupTable::build(&current);
        for c in current.classes() {
            let sg = SubobjectGraph::build(&current, c, 100_000).unwrap();
            for m in current.member_ids() {
                let entry = engine.entry(c, m);
                prop_assert_eq!(
                    entry.as_ref(),
                    rebuilt.entry(c, m),
                    "engine diverged from rebuild at ({}, {})",
                    current.class_name(c),
                    current.member_name(m)
                );
                let oracle = lookup_cpp(&current, &sg, m);
                match (LookupOutcome::from_entry(entry.as_ref()), &oracle) {
                    (LookupOutcome::NotFound, Resolution::NotFound) => {}
                    (LookupOutcome::Ambiguous { .. }, Resolution::Ambiguous(_)) => {}
                    (LookupOutcome::Resolved { class, .. }, oracle) => {
                        prop_assert_eq!(
                            Some(class),
                            oracle.resolved_class(&sg),
                            "winner mismatch at ({}, {})",
                            current.class_name(c),
                            current.member_name(m)
                        );
                    }
                    other => {
                        return Err(TestCaseError::fail(format!(
                            "engine/oracle mismatch at ({}, {}): {other:?}",
                            current.class_name(c),
                            current.member_name(m)
                        )))
                    }
                }
            }
        }
    }

    /// Every subobject's canonical form is reachable in the subobject
    /// graph, and `id_of` inverts `subobject` (bijective interning).
    #[test]
    fn subobject_interning_roundtrips(chg in small_chg()) {
        for c in chg.classes() {
            let sg = SubobjectGraph::build(&chg, c, 100_000).unwrap();
            for id in sg.iter() {
                let so = sg.subobject(id).clone();
                prop_assert_eq!(sg.id_of(&so), Some(id));
                prop_assert!(so.complete() == c);
            }
        }
    }
}
