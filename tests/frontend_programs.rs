//! End-to-end frontend tests: realistic mini-C++ translation units
//! through parse → lower → table → resolve, checked against known
//! verdicts.

use cpplookup::frontend::{analyze, render_all, QueryResult, Severity};

/// A shape library exercising most of the subset at once.
const SHAPES: &str = r#"
// A small widget library.
struct Object {
    static int instances;
    typedef int id_type;
    enum Kind { WIDGET, GADGET };
    void describe();
protected:
    int refcount;
private:
    int secret;
};

struct Drawable : virtual Object {
    void draw();
};

struct Clickable : virtual Object {
    void click();
    void describe();   // overrides Object::describe by dominance
};

struct Button : Drawable, Clickable {
    void press() {
        click();        // unqualified -> Clickable::click
        describe();     // unqualified -> Clickable::describe (dominance)
        refcount = 1;   // protected, but we are inside a member
    }
};

Button button;

int main() {
    button.press();
    button.describe();       // Clickable::describe via dominance
    button.draw();
    Button *b;
    b->click();
    Object::instances = 0;   // qualified static access
    button.refcount;         // error: protected
    button.secret;           // error: private
    button.frobnicate();     // error: no such member
}
"#;

#[test]
fn shape_library_resolves_as_expected() {
    let analysis = analyze(SHAPES);
    let by_desc = |d: &str| {
        analysis
            .queries
            .iter()
            .find(|q| q.description == d)
            .unwrap_or_else(|| panic!("no query {d}"))
    };

    // Inside Button::press.
    for good in ["click", "describe", "refcount"] {
        assert!(
            matches!(by_desc(good).result, QueryResult::Resolved { .. }),
            "{good}: {:?}",
            by_desc(good).result
        );
    }
    // describe() resolves to Clickable by dominance, not Object.
    let describe = by_desc("describe");
    if let QueryResult::Resolved {
        declaring_class, ..
    } = describe.result
    {
        assert_eq!(analysis.chg.class_name(declaring_class), "Clickable");
    }

    // In main.
    assert!(matches!(
        by_desc("button.describe").result,
        QueryResult::Resolved { .. }
    ));
    assert!(matches!(
        by_desc("Object::instances").result,
        QueryResult::Resolved { .. }
    ));
    assert!(matches!(
        by_desc("button.refcount").result,
        QueryResult::AccessDenied { .. }
    ));
    assert!(matches!(
        by_desc("button.secret").result,
        QueryResult::AccessDenied { .. }
    ));
    assert_eq!(
        by_desc("button.frobnicate").result,
        QueryResult::NoSuchMember
    );

    // Exactly the three bad accesses produce error diagnostics.
    let errors = analysis
        .diagnostics
        .iter()
        .filter(|d| d.severity == Severity::Error)
        .count();
    assert_eq!(errors, 3, "{:?}", analysis.diagnostics);
}

#[test]
fn ambiguity_diagnostics_render_with_locations() {
    let src = "struct A { int m; };\n\
               struct B : A {};\n\
               struct C : A {};\n\
               struct D : B, C {};\n\
               D d;\n\
               int main() { d.m; }\n";
    let analysis = analyze(src);
    assert_eq!(analysis.queries[0].result, QueryResult::AmbiguousMember);
    let rendered = render_all(&analysis.diagnostics, "test.cpp", src);
    assert!(rendered.contains("test.cpp:6:16"), "{rendered}");
    assert!(rendered.contains("ambiguous"));
}

#[test]
fn enumerators_static_like_through_replication() {
    // Replicated bases, but the conflicting members are the *same*
    // enumerators and typedefs of one class: Definition 17 makes these
    // unambiguous; the plain data member stays ambiguous.
    let src = "struct Base { enum { LIMIT }; typedef int size_type; int payload; };\n\
               struct L : Base {};\n\
               struct R : Base {};\n\
               struct Join : L, R {};\n\
               int main() {\n\
                 Join j;\n\
                 j.LIMIT;\n\
                 j.size_type;\n\
                 j.payload;\n\
               }\n";
    let analysis = analyze(src);
    let result = |d: &str| {
        &analysis
            .queries
            .iter()
            .find(|q| q.description == d)
            .unwrap()
            .result
    };
    assert!(matches!(result("j.LIMIT"), QueryResult::Resolved { .. }));
    assert!(matches!(
        result("j.size_type"),
        QueryResult::Resolved { .. }
    ));
    assert_eq!(*result("j.payload"), QueryResult::AmbiguousMember);
}

#[test]
fn virtualness_flips_the_verdict() {
    let make = |virt: &str| {
        format!(
            "struct Base {{ int v; }};\n\
             struct L : {virt} Base {{}};\n\
             struct R : {virt} Base {{}};\n\
             struct Join : L, R {{}};\n\
             int main() {{ Join j; j.v; }}\n"
        )
    };
    let nonvirtual = analyze(&make("public"));
    assert_eq!(nonvirtual.queries[0].result, QueryResult::AmbiguousMember);
    let virtual_ = analyze(&make("virtual public"));
    assert!(matches!(
        virtual_.queries[0].result,
        QueryResult::Resolved { .. }
    ));
}

#[test]
fn parse_errors_do_not_prevent_analysis() {
    let src = "struct Good { int ok; };\n\
               struct ??? Bad;\n\
               int main() { Good g; g.ok; }\n";
    let analysis = analyze(src);
    assert!(!analysis.diagnostics.is_empty());
    // The well-formed part still resolves.
    let ok = analysis.queries.iter().find(|q| q.description == "g.ok");
    assert!(matches!(
        ok.map(|q| &q.result),
        Some(QueryResult::Resolved { .. })
    ));
}

#[test]
fn deep_program_roundtrip() {
    // Generate a deep single-inheritance tower in source form and check
    // the access at the bottom resolves to the root.
    let mut src = String::from("struct C0 { int m; };\n");
    for i in 1..200 {
        src.push_str(&format!("struct C{i} : C{} {{}};\n", i - 1));
    }
    src.push_str("int main() { C199 obj; obj.m; }\n");
    let analysis = analyze(&src);
    assert!(analysis.diagnostics.is_empty());
    match &analysis.queries[0].result {
        QueryResult::Resolved {
            declaring_class, ..
        } => {
            assert_eq!(analysis.chg.class_name(*declaring_class), "C0");
        }
        other => panic!("{other:?}"),
    }
}
