//! Leader/follower replication over the wire, end to end: a leader
//! server with a durable edit log, a read-only follower subscribed to
//! it, and the convergence guarantee — after the follower acknowledges
//! the leader's last sequence number, the two serve byte-identical
//! outcomes at identical epochs. Plus the two recovery stories: the
//! leader restarting over its own log, and a file-tailing follower
//! with no wire at all.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use cpplookup::chg::fixtures;
use cpplookup::prelude::*;
use cpplookup::server::{
    Client, ErrorCode, Farm, FollowSource, Follower, FollowerConfig, Server, ServerConfig,
    WireOutcome,
};

static NEXT_DIR: AtomicU64 = AtomicU64::new(0);

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "cpplookup-repl-{name}-{}-{}",
        std::process::id(),
        NEXT_DIR.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn snapshot_in(dir: &std::path::Path) -> PathBuf {
    let snap = dir.join("t.snap");
    Snapshot::compile(&fixtures::fig2())
        .write_to(&snap)
        .unwrap();
    snap
}

fn leader_config(dir: &std::path::Path, snap: &std::path::Path) -> ServerConfig {
    ServerConfig {
        wal_path: Some(dir.join("edits.wal")),
        fsync_every: 1,
        retain_epochs: 8,
        preload: vec![("t".to_owned(), snap.to_owned())],
        ..ServerConfig::default()
    }
}

fn follower_config() -> ServerConfig {
    ServerConfig {
        read_only: true,
        retain_epochs: 8,
        ..ServerConfig::default()
    }
}

fn connect(server: &Server) -> Client {
    Client::connect(server.addr(), Some(Duration::from_secs(10))).unwrap()
}

/// Every probe outcome as the wire reports it — two servers with equal
/// fingerprints are byte-identical to clients.
fn fingerprint(client: &mut Client) -> Vec<Result<WireOutcome, String>> {
    let classes = ["A", "B", "C", "D", "E", "R", "S"];
    let members = ["m", "fresh", "extra"];
    let mut out = Vec::new();
    for c in classes {
        for m in members {
            out.push(client.query("t", c, m).map_err(|e| e.to_string()));
        }
    }
    out
}

/// The scripted history: accepted edits, an engine-rejected cycle
/// (logged, skipped identically by every replayer), and a parse
/// failure (never logged at all).
fn drive_edits(client: &mut Client) {
    for d in [
        "member E fresh",
        "class R",
        "class S",
        "edge R S",
        "member R extra",
    ] {
        client.edit("t", d).unwrap();
    }
    assert!(
        client.edit("t", "edge S R").is_err(),
        "cycle must be rejected"
    );
    assert!(
        client.edit("t", "drop table").is_err(),
        "gibberish must be rejected"
    );
}

#[test]
fn wire_follower_converges_to_the_leader() {
    let dir = scratch("wire");
    let snap = snapshot_in(&dir);
    let leader = Server::start(leader_config(&dir, &snap)).unwrap();
    let follower_srv = Server::start(follower_config()).unwrap();
    let follower = Follower::start(
        Arc::clone(follower_srv.farm()),
        FollowerConfig {
            source: FollowSource::Wire(leader.addr().to_string()),
            follower_id: "replica-1".to_owned(),
            ack_every: 2,
            ..FollowerConfig::default()
        },
    );

    let mut client = connect(&leader);
    drive_edits(&mut client);

    let leader_seq = leader.farm().wal().unwrap().last_seq();
    assert!(
        follower.wait_for_seq(leader_seq, Duration::from_secs(10)),
        "follower stalled at seq {} of {leader_seq}",
        follower.applied_seq()
    );

    // Byte-identical outcomes over the wire...
    let mut follower_client = connect(&follower_srv);
    assert_eq!(fingerprint(&mut client), fingerprint(&mut follower_client));
    // ...at identical epochs (full-history followers track the leader
    // exactly, skipped rejections included).
    assert_eq!(
        leader.farm().retained_epochs("t").unwrap(),
        follower_srv.farm().retained_epochs("t").unwrap()
    );

    // The follower refuses direct writes — its only writer is the log.
    let err = follower_client.edit("t", "class Nope").unwrap_err();
    assert!(err.to_string().contains("read-only"), "{err}");

    // The leader has seen the follower's ACKs (sent every 2 records).
    let metrics = client.metrics().unwrap();
    assert!(
        metrics.contains("server_follower_acked_seq"),
        "no follower ack gauge in:\n{metrics}"
    );

    follower.stop();
    drop(dir); // keep the scratch dir alive through the run
}

#[test]
fn a_file_tailing_follower_needs_no_wire() {
    let dir = scratch("file");
    let snap = snapshot_in(&dir);
    let wal_path = dir.join("edits.wal");
    let leader = Server::start(leader_config(&dir, &snap)).unwrap();
    let mut client = connect(&leader);
    drive_edits(&mut client);
    let leader_seq = leader.farm().wal().unwrap().last_seq();

    let replica = Arc::new(Farm::with_options(cpplookup::server::FarmOptions {
        read_only: true,
        retain_epochs: 8,
        ..Default::default()
    }));
    let follower = Follower::start(
        Arc::clone(&replica),
        FollowerConfig {
            source: FollowSource::File(wal_path),
            follower_id: "tailer".to_owned(),
            poll_interval: Duration::from_millis(5),
            ..FollowerConfig::default()
        },
    );
    assert!(
        follower.wait_for_seq(leader_seq, Duration::from_secs(10)),
        "file tailer stalled at seq {}",
        follower.applied_seq()
    );

    // Late edits flow through the same tail.
    client.edit("t", "member S late").unwrap();
    let leader_seq = leader.farm().wal().unwrap().last_seq();
    assert!(follower.wait_for_seq(leader_seq, Duration::from_secs(10)));
    assert_eq!(
        replica.query("t", "S", "late").map_err(|(c, _)| c),
        leader.farm().query("t", "S", "late").map_err(|(c, _)| c)
    );
    assert_eq!(
        leader.farm().retained_epochs("t").unwrap(),
        replica.retained_epochs("t").unwrap()
    );
    follower.stop();
}

#[test]
fn a_restarted_leader_recovers_its_log() {
    let dir = scratch("restart");
    let snap = snapshot_in(&dir);
    let config = leader_config(&dir, &snap);

    let before = {
        let leader = Server::start(config.clone()).unwrap();
        let mut client = connect(&leader);
        drive_edits(&mut client);
        fingerprint(&mut client)
    }; // leader drops: sockets close, the log stays

    let revived = Server::start(config).unwrap();
    let mut client = connect(&revived);
    assert_eq!(fingerprint(&mut client), before, "restart lost edits");

    // The revived leader keeps appending where it left off.
    client.edit("t", "member S late").unwrap();
    assert!(matches!(
        client.query("t", "S", "late").unwrap(),
        WireOutcome::Resolved { class, .. } if class == "S"
    ));
}

#[test]
fn as_of_queries_work_over_the_wire_and_retire_cleanly() {
    let dir = scratch("asof");
    let snap = snapshot_in(&dir);
    let leader = Server::start(leader_config(&dir, &snap)).unwrap();
    let mut client = connect(&leader);

    let e1 = client.edit("t", "member E fresh").unwrap();
    let e2 = client.edit("t", "member D fresh").unwrap();
    assert!(e2 > e1);

    // At e1, D had no `fresh`; at e2 it does. The present equals e2.
    assert_eq!(
        client.query_at("t", "D", "fresh", Some(e1)).unwrap(),
        WireOutcome::NotFound
    );
    assert!(matches!(
        client.query_at("t", "D", "fresh", Some(e2)).unwrap(),
        WireOutcome::Resolved { .. }
    ));
    assert_eq!(
        client.query_at("t", "D", "fresh", None).unwrap(),
        client.query_at("t", "D", "fresh", Some(e2)).unwrap()
    );

    // A never-published epoch is a structured retirement, not a hang.
    let err = client.query_at("t", "D", "fresh", Some(999)).unwrap_err();
    assert!(err.to_string().contains("retired"), "{err}");
    let _ = ErrorCode::EpochRetired; // the code the message carries
}
