//! The seed-fixed golden snapshot corpus.
//!
//! `tests/corpus/` holds ~a dozen generator-produced hierarchies
//! serialized as snapshots (`*.snap`) next to a textual rendering of
//! every query verdict (`*.golden`). The regression test re-verifies
//! three independent properties on every run:
//!
//! 1. **Byte determinism / format stability** — recompiling today's
//!    generator output is byte-identical to the checked-in snapshot, so
//!    any change to the binary format, the entry encodings, or the
//!    generators shows up as a diff here *before* it can silently
//!    invalidate deployed snapshots.
//! 2. **Golden verdicts** — the loaded snapshot answers every
//!    `(class, member)` query exactly as recorded.
//! 3. **Oracle agreement** — every verdict is re-derived from the
//!    Rossie–Friedman subobject oracle (`lookup_in_class`, Definition
//!    17), so the goldens cannot drift away from the semantics either.
//!
//! Intentional format or generator changes are blessed with:
//!
//! ```text
//! cargo test --test corpus bless_corpus -- --ignored
//! ```
//!
//! then reviewing the resulting `tests/corpus/` diff like any other
//! code change.

use std::fmt::Write as _;
use std::path::PathBuf;

use cpplookup::hiergen::families;
use cpplookup::hiergen::{random_hierarchy, RandomConfig};
use cpplookup::prelude::*;
use cpplookup::subobject::{lookup_in_class, Resolution};

/// Subobject-graph budget for the oracle pass; corpus hierarchies are
/// chosen to stay well under it.
const LIMIT: usize = 200_000;

struct Case {
    name: &'static str,
    build: fn() -> Chg,
}

/// The corpus: one representative of each generator family, all fully
/// deterministic (fixed sizes, fixed seeds).
const CASES: &[Case] = &[
    Case {
        name: "chain_12",
        build: || families::chain(12, None),
    },
    Case {
        name: "chain_12_virtual_3",
        build: || families::chain(12, Some(3)),
    },
    Case {
        name: "stacked_diamonds_3_nonvirtual",
        build: || families::stacked_diamonds(3, Inheritance::NonVirtual),
    },
    Case {
        name: "stacked_diamonds_3_virtual",
        build: || families::stacked_diamonds(3, Inheritance::Virtual),
    },
    Case {
        name: "stacked_diamonds_overridden_3",
        build: || families::stacked_diamonds_overridden(3, Inheritance::Virtual),
    },
    Case {
        name: "wide_diamond_6",
        build: || families::wide_diamond(6, Inheritance::Virtual),
    },
    Case {
        name: "pyramid_4",
        build: || families::pyramid(4, Inheritance::NonVirtual),
    },
    Case {
        name: "interface_heavy_6x3",
        build: || families::interface_heavy(6, 3),
    },
    Case {
        name: "grid_3x3",
        build: || families::grid(3, 3),
    },
    Case {
        name: "gxx_trap_3",
        build: || families::gxx_trap(3),
    },
    Case {
        name: "random_stress_42",
        build: || random_hierarchy(&RandomConfig::stress(42)),
    },
    Case {
        name: "random_realistic_20_7",
        build: || random_hierarchy(&RandomConfig::realistic(20, 7)),
    },
];

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("corpus")
}

/// Renders every `(class, member)` verdict of a loaded snapshot as
/// stable text: one `class<TAB>member<TAB>verdict` line per pair, in
/// id order.
fn render_goldens(snap: &SnapshotTable) -> String {
    let mut out = String::new();
    for c in 0..snap.class_count() {
        let c = cpplookup::ClassId::from_index(c);
        for m in 0..snap.member_name_count() {
            let m = cpplookup::MemberId::from_index(m);
            let verdict = match snap.lookup(c, m) {
                LookupOutcome::NotFound => continue, // keep goldens dense
                LookupOutcome::Resolved { class, .. } => {
                    snap.class_name(class).expect("valid id").to_owned()
                }
                LookupOutcome::Ambiguous { .. } => "!ambiguous".to_owned(),
            };
            writeln!(
                out,
                "{}\t{}\t{}",
                snap.class_name(c).expect("valid id"),
                snap.member_name(m).expect("valid id"),
                verdict
            )
            .expect("writing to String");
        }
    }
    out
}

const BLESS_HINT: &str =
    "regenerate with: cargo test --test corpus bless_corpus -- --ignored (then review the diff)";

/// Regenerates every `.snap` and `.golden` in `tests/corpus/`. Run
/// explicitly (see module docs); never runs in a normal test pass.
#[test]
#[ignore = "regenerates the checked-in corpus; run with -- --ignored"]
fn bless_corpus() {
    let dir = corpus_dir();
    std::fs::create_dir_all(&dir).expect("create tests/corpus");
    for case in CASES {
        let g = (case.build)();
        let snap = Snapshot::compile(&g);
        snap.write_to(dir.join(format!("{}.snap", case.name)))
            .expect("write snapshot");
        let loaded = SnapshotTable::from_bytes(snap.into_bytes()).expect("fresh snapshot loads");
        std::fs::write(
            dir.join(format!("{}.golden", case.name)),
            render_goldens(&loaded),
        )
        .expect("write golden");
        println!("blessed {}", case.name);
    }
}

#[test]
fn snapshots_are_byte_stable() {
    let dir = corpus_dir();
    for case in CASES {
        let path = dir.join(format!("{}.snap", case.name));
        let checked_in = std::fs::read(&path)
            .unwrap_or_else(|e| panic!("{}: {e}; {BLESS_HINT}", path.display()));
        let recompiled = Snapshot::compile(&(case.build)());
        assert!(
            recompiled.as_bytes() == checked_in.as_slice(),
            "{}: recompiling produced different bytes ({} vs {}) — the snapshot format or \
             the generator changed; {BLESS_HINT}",
            case.name,
            recompiled.len(),
            checked_in.len()
        );
    }
}

#[test]
fn snapshots_match_goldens() {
    let dir = corpus_dir();
    for case in CASES {
        let snap = SnapshotTable::load(dir.join(format!("{}.snap", case.name)))
            .unwrap_or_else(|e| panic!("{}: {e}; {BLESS_HINT}", case.name));
        let golden_path = dir.join(format!("{}.golden", case.name));
        let golden = std::fs::read_to_string(&golden_path)
            .unwrap_or_else(|e| panic!("{}: {e}; {BLESS_HINT}", golden_path.display()));
        let rendered = render_goldens(&snap);
        assert!(
            rendered == golden,
            "{}: verdicts drifted from the golden file; {BLESS_HINT}\n--- golden\n{golden}\
             --- now\n{rendered}",
            case.name
        );
    }
}

/// Backward compatibility: `tests/fixtures/chain_12_v1.snap` is the
/// `chain_12` corpus snapshot as written by the version-1 writer
/// (preserved verbatim before the corpus was re-blessed to version 2,
/// which added the MPH section). It must keep loading — through the
/// open-addressed directory fallback — and answer every query exactly
/// as today's recompile does.
#[test]
fn v1_snapshot_fixture_loads_through_the_open_fallback() {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("fixtures")
        .join("chain_12_v1.snap");
    let old = SnapshotTable::load(&path)
        .unwrap_or_else(|e| panic!("{}: v1 snapshots must stay loadable: {e}", path.display()));
    let old_index = old.dispatch_index();
    assert_eq!(
        old_index.directory_kind(),
        DirectoryKind::Open,
        "pre-MPH snapshots serve through the open directory"
    );
    let fresh =
        SnapshotTable::from_bytes(Snapshot::compile(&families::chain(12, None)).into_bytes())
            .expect("recompile loads");
    let fresh_index = fresh.dispatch_index();
    assert_eq!(fresh_index.directory_kind(), DirectoryKind::Mph);
    assert_eq!(old.class_count(), fresh.class_count());
    assert_eq!(old.entry_count(), fresh.entry_count());
    for c in 0..old.class_count() {
        let c = cpplookup::ClassId::from_index(c);
        for m in 0..old.member_name_count() + 2 {
            let m = cpplookup::MemberId::from_index(m);
            assert_eq!(old.lookup(c, m), fresh.lookup(c, m));
            assert_eq!(
                old_index.lookup_ref(c, m).to_outcome(),
                fresh_index.lookup_ref(c, m).to_outcome()
            );
        }
    }
}

/// Every corpus verdict re-derived from the Definition 17 subobject
/// oracle: the checked-in snapshots cannot drift from the semantics.
#[test]
fn snapshots_agree_with_subobject_oracle() {
    let dir = corpus_dir();
    for case in CASES {
        let snap = SnapshotTable::load(dir.join(format!("{}.snap", case.name)))
            .unwrap_or_else(|e| panic!("{}: {e}; {BLESS_HINT}", case.name));
        let g = snap.to_chg().expect("corpus snapshots rebuild");
        for c in g.classes() {
            for m in g.member_ids() {
                let oracle = lookup_in_class(&g, c, m, LIMIT)
                    .expect("corpus hierarchies stay under the subobject budget");
                let got = snap.lookup(c, m);
                let agree = match (&oracle, &got) {
                    (Resolution::NotFound, LookupOutcome::NotFound) => true,
                    (Resolution::Ambiguous(_), LookupOutcome::Ambiguous { .. }) => true,
                    (
                        Resolution::Subobject(_) | Resolution::SharedStatic(_),
                        LookupOutcome::Resolved { class, .. },
                    ) => {
                        let sg = cpplookup::SubobjectGraph::build(&g, c, LIMIT).expect("in budget");
                        oracle.resolved_class(&sg) == Some(*class)
                    }
                    _ => false,
                };
                assert!(
                    agree,
                    "{} lookup({}, {}): snapshot says {:?}, oracle says {:?}",
                    case.name,
                    g.class_name(c),
                    g.member_name(m),
                    got,
                    oracle
                );
            }
        }
    }
}
