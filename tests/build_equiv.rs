//! Differential equivalence of the table builders.
//!
//! The batched single-sweep compiler (`LookupTable::build_with`), the
//! work-stealing parallel sweep (`build_parallel`), the old per-member
//! build it replaced (`build_per_member`), and the class-major eager
//! reference (`build_reference`) must produce *identical* tables —
//! same entries, same stats — on every generator family. On the
//! smaller hierarchies the verdicts are additionally re-derived from
//! the Rossie–Friedman subobject oracle (Definition 17), so all four
//! builders are pinned to the semantics, not merely to each other.
//!
//! The checked-in corpus snapshots guard the serialization side: the
//! batched compiler must reproduce every `tests/corpus/*.snap`
//! byte-for-byte without re-blessing.

use cpplookup::hiergen::families;
use cpplookup::hiergen::{random_hierarchy, RandomConfig};
use cpplookup::prelude::*;
use cpplookup::subobject::{lookup_in_class, Resolution, SubobjectGraph};

/// Subobject-graph budget for the oracle pass.
const LIMIT: usize = 200_000;

/// One representative per generator family, sized for a fast test run.
fn family_zoo() -> Vec<(&'static str, Chg)> {
    vec![
        ("chain_60", families::chain(60, None)),
        ("chain_60_virtual_5", families::chain(60, Some(5))),
        (
            "stacked_diamonds_4_nonvirtual",
            families::stacked_diamonds(4, Inheritance::NonVirtual),
        ),
        (
            "stacked_diamonds_4_virtual",
            families::stacked_diamonds(4, Inheritance::Virtual),
        ),
        (
            "stacked_diamonds_overridden_4",
            families::stacked_diamonds_overridden(4, Inheritance::Virtual),
        ),
        (
            "wide_diamond_8",
            families::wide_diamond(8, Inheritance::Virtual),
        ),
        ("pyramid_5", families::pyramid(5, Inheritance::NonVirtual)),
        ("interface_heavy_20x3", families::interface_heavy(20, 3)),
        ("grid_6x5", families::grid(6, 5)),
        ("gxx_trap_4", families::gxx_trap(4)),
        (
            "random_stress_7",
            random_hierarchy(&RandomConfig::stress(7)),
        ),
        (
            "random_realistic_150_11",
            random_hierarchy(&RandomConfig::realistic(150, 11)),
        ),
    ]
}

/// Asserts two tables agree entry-for-entry (and on their stats).
fn assert_tables_equal(name: &str, label: &str, g: &Chg, a: &LookupTable, b: &LookupTable) {
    assert_eq!(a.stats(), b.stats(), "{name}: {label} stats diverge");
    for c in g.classes() {
        for m in g.member_ids() {
            assert_eq!(
                a.entry(c, m),
                b.entry(c, m),
                "{name}: {label} at ({}, {})",
                g.class_name(c),
                g.member_name(m)
            );
        }
    }
}

/// Batched == old per-member build == reference == parallel, for both
/// static-member rules.
#[test]
fn batched_equals_reference_on_every_family() {
    for (name, g) in family_zoo() {
        for rule in [StaticRule::Cpp, StaticRule::Ignore] {
            let options = LookupOptions { statics: rule };
            let reference = LookupTable::build_reference(&g, options);
            let batched = LookupTable::build_with(&g, options);
            assert_tables_equal(name, "batched vs reference", &g, &batched, &reference);
            let per_member = LookupTable::build_per_member(&g, options);
            assert_tables_equal(
                name,
                "old per-member vs reference",
                &g,
                &per_member,
                &reference,
            );
            for threads in [2, 5] {
                let parallel = LookupTable::build_parallel(&g, options, threads);
                assert_tables_equal(
                    name,
                    &format!("parallel({threads}) vs reference"),
                    &g,
                    &parallel,
                    &reference,
                );
            }
        }
    }
}

/// On the small families, the batched verdicts are re-derived from the
/// subobject oracle — equivalence to the reference build alone could
/// hide a shared bug; equivalence to Definition 17 cannot.
#[test]
fn batched_agrees_with_subobject_oracle_on_small_families() {
    for (name, g) in family_zoo() {
        if g.class_count() > 40 {
            continue;
        }
        let table = LookupTable::build(&g);
        for c in g.classes() {
            let sg = SubobjectGraph::build(&g, c, LIMIT).expect("small families stay in budget");
            for m in g.member_ids() {
                let oracle = lookup_in_class(&g, c, m, LIMIT).expect("in budget");
                let got = table.lookup(c, m);
                let agree = match (&oracle, &got) {
                    (Resolution::NotFound, LookupOutcome::NotFound) => true,
                    (Resolution::Ambiguous(_), LookupOutcome::Ambiguous { .. }) => true,
                    (
                        Resolution::Subobject(_) | Resolution::SharedStatic(_),
                        LookupOutcome::Resolved { class, .. },
                    ) => oracle.resolved_class(&sg) == Some(*class),
                    _ => false,
                };
                assert!(
                    agree,
                    "{name} lookup({}, {}): batched says {:?}, oracle says {:?}",
                    g.class_name(c),
                    g.member_name(m),
                    got,
                    oracle
                );
            }
        }
    }
}

/// The batched compiler reproduces every checked-in corpus snapshot
/// byte-for-byte: loading a `.snap`, rebuilding its hierarchy, and
/// recompiling must round-trip to the original bytes with no
/// re-blessing.
#[test]
fn batched_reproduces_corpus_snapshots_byte_for_byte() {
    let dir = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("corpus");
    let mut snaps = 0;
    for entry in std::fs::read_dir(&dir).expect("tests/corpus exists") {
        let path = entry.expect("readable dir entry").path();
        if path.extension().and_then(|e| e.to_str()) != Some("snap") {
            continue;
        }
        snaps += 1;
        let checked_in = std::fs::read(&path).expect("read corpus snapshot");
        let loaded = SnapshotTable::load(&path).expect("corpus snapshot loads");
        let g = loaded.to_chg().expect("corpus hierarchy rebuilds");
        let recompiled = Snapshot::compile_with(&g, loaded.options());
        assert!(
            recompiled.as_bytes() == checked_in.as_slice(),
            "{}: batched compile produced different bytes ({} vs {})",
            path.display(),
            recompiled.len(),
            checked_in.len()
        );
    }
    assert!(snaps >= 12, "corpus unexpectedly small: {snaps} snapshots");
}
