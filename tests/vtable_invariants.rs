//! Cross-crate vtable invariants on random hierarchies: every bound slot
//! points at a real subobject of the object, adjustments are consistent
//! with the layout, and slot bindings agree with the lookup table.

use cpplookup::hiergen::{random_hierarchy, RandomConfig};
use cpplookup::layout::{NvLayouts, ObjectLayout, VtableSlot, Vtables};
use cpplookup::{LookupOutcome, LookupTable};

#[test]
fn vtable_slots_are_consistent_with_table_and_layout() {
    // Function-rich stress configs so vtables actually have slots.
    for seed in 0..40 {
        let chg = random_hierarchy(&RandomConfig {
            classes: 14,
            extra_base_prob: 0.5,
            max_bases: 3,
            virtual_prob: 0.35,
            member_pool: 3,
            member_prob: 0.5,
            static_prob: 0.0,
            seed,
        });
        // Re-tag all members as functions by rebuilding through the spec.
        let mut spec = cpplookup::chg::spec::ChgSpec::from_chg(&chg);
        for class in &mut spec.classes {
            for m in &mut class.members {
                m.kind = cpplookup::MemberKind::Function;
            }
        }
        let chg = spec.build().expect("respec preserves validity");

        let table = LookupTable::build(&chg);
        let nv = NvLayouts::compute(&chg);
        for c in chg.classes() {
            let Ok(layout) = ObjectLayout::compute(&chg, &nv, c, 50_000) else {
                continue;
            };
            let vt = Vtables::compute(&chg, &nv, &layout, &table);
            for t in vt.tables() {
                assert!(!t.covers.is_empty(), "every vptr covers a subobject");
                for slot in &t.slots {
                    match slot {
                        VtableSlot::Bound {
                            member,
                            declaring_class,
                            this_adjustment,
                        } => {
                            // Agreement with the table.
                            match table.lookup(c, *member) {
                                LookupOutcome::Resolved { class, .. } => {
                                    assert_eq!(class, *declaring_class)
                                }
                                other => panic!("bound slot but table says {other:?}"),
                            }
                            // The adjusted target is a real subobject
                            // offset of the declaring class.
                            let target = (t.vptr_offset as i64 + this_adjustment) as u64;
                            let hit = layout.graph().iter().any(|id| {
                                layout.offset(id) == target
                                    && layout.graph().subobject(id).class() == *declaring_class
                            });
                            assert!(hit, "adjustment lands on the overrider (seed {seed})");
                        }
                        VtableSlot::Ambiguous { member } => {
                            assert!(matches!(
                                table.lookup(c, *member),
                                LookupOutcome::Ambiguous { .. }
                            ));
                        }
                    }
                }
            }
        }
    }
}
