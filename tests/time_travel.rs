//! Time-travel differential test: `as-of` reads against retained
//! epochs must be indistinguishable from a from-scratch build stopped
//! at that epoch.
//!
//! For every generator family in the golden corpus, a farm with a deep
//! retention window ingests a family-derived edit script. Each edit
//! publishes a new epoch; afterwards, every retained epoch is replayed
//! two ways — `query_at(.., Some(epoch))` on the long-lived farm versus
//! a fresh farm that applied only the edits up to that epoch — and the
//! two must agree on **every** `(class, member)` probe.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use cpplookup::hiergen::{families, random_hierarchy, RandomConfig};
use cpplookup::prelude::*;
use cpplookup::server::{ErrorCode, Farm, FarmOptions, WireOutcome};

static NEXT_DIR: AtomicU64 = AtomicU64::new(0);

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "cpplookup-timetravel-{name}-{}-{}",
        std::process::id(),
        NEXT_DIR.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// The corpus families (same representatives as `tests/corpus.rs`).
fn corpus() -> Vec<(&'static str, Chg)> {
    vec![
        ("chain_12", families::chain(12, None)),
        ("chain_12_virtual_3", families::chain(12, Some(3))),
        (
            "stacked_diamonds_3_nonvirtual",
            families::stacked_diamonds(3, Inheritance::NonVirtual),
        ),
        (
            "stacked_diamonds_3_virtual",
            families::stacked_diamonds(3, Inheritance::Virtual),
        ),
        (
            "stacked_diamonds_overridden_3",
            families::stacked_diamonds_overridden(3, Inheritance::Virtual),
        ),
        (
            "wide_diamond_6",
            families::wide_diamond(6, Inheritance::Virtual),
        ),
        ("pyramid_4", families::pyramid(4, Inheritance::NonVirtual)),
        ("interface_heavy_6x3", families::interface_heavy(6, 3)),
        ("grid_3x3", families::grid(3, 3)),
        ("gxx_trap_3", families::gxx_trap(3)),
        (
            "random_stress_42",
            random_hierarchy(&RandomConfig::stress(42)),
        ),
        (
            "random_realistic_20_7",
            random_hierarchy(&RandomConfig::realistic(20, 7)),
        ),
    ]
}

/// A family-derived edit script: every directive parses and is accepted
/// by the engine, so each step publishes a fresh epoch.
fn edit_script(chg: &Chg) -> Vec<String> {
    let classes: Vec<String> = chg
        .classes()
        .map(|c| chg.class_name(c).to_owned())
        .collect();
    let first = &classes[0];
    let mid = &classes[classes.len() / 2];
    let last = &classes[classes.len() - 1];
    vec![
        format!("member {first} tt_m0"),
        "class TTA".to_owned(),
        format!("edge TTA {last}"),
        "member TTA tt_m1".to_owned(),
        "class TTB".to_owned(),
        "edge TTB TTA virtual".to_owned(),
        format!("edge TTB {mid}"),
        format!("member {mid} tt_m0"),
    ]
}

/// The full probe vocabulary: every base class and member name plus
/// everything the script introduces.
fn probes(chg: &Chg) -> (Vec<String>, Vec<String>) {
    let mut classes: Vec<String> = chg
        .classes()
        .map(|c| chg.class_name(c).to_owned())
        .collect();
    classes.push("TTA".to_owned());
    classes.push("TTB".to_owned());
    let mut members: Vec<String> = chg
        .member_ids()
        .map(|m| chg.member_name(m).to_owned())
        .collect();
    members.push("tt_m0".to_owned());
    members.push("tt_m1".to_owned());
    (classes, members)
}

/// One normalized probe verdict. Name interning is append-only and
/// shared across epochs, so a probe naming something added *after* the
/// queried epoch reads `NotFound` through the time-travel path but
/// `UnknownName` on a farm that never saw the edit — both mean "not
/// visible here" and fold into [`Probe::Absent`]. Resolutions and
/// ambiguities must still match exactly.
#[derive(Debug, PartialEq)]
enum Probe {
    Absent,
    Outcome(WireOutcome),
    Error(ErrorCode),
}

impl Probe {
    fn of(result: Result<WireOutcome, (ErrorCode, String)>) -> Probe {
        match result {
            Ok(WireOutcome::NotFound) | Err((ErrorCode::UnknownName, _)) => Probe::Absent,
            Ok(outcome) => Probe::Outcome(outcome),
            Err((code, _)) => Probe::Error(code),
        }
    }
}

/// Every probe outcome of `tenant` at `as_of` (None = current).
fn fingerprint_at(farm: &Farm, chg: &Chg, as_of: Option<u64>) -> Vec<Probe> {
    let (classes, members) = probes(chg);
    let mut out = Vec::new();
    for c in &classes {
        for m in &members {
            out.push(Probe::of(farm.query_at("t", c, m, as_of)));
        }
    }
    out
}

#[test]
fn as_of_reads_equal_from_scratch_builds_at_every_retained_epoch() {
    for (name, chg) in corpus() {
        let dir = scratch(name);
        let snap = dir.join("t.snap");
        Snapshot::compile(&chg).write_to(&snap).unwrap();

        // The long-lived farm: deep retention, full edit history.
        let farm = Farm::with_options(FarmOptions {
            retain_epochs: 64,
            ..FarmOptions::default()
        });
        farm.load("t", &snap).unwrap();
        let script = edit_script(&chg);
        let mut epoch_after: Vec<u64> = Vec::new();
        for d in &script {
            let epoch = farm
                .edit("t", d)
                .unwrap_or_else(|e| panic!("{name}: edit `{d}` rejected: {e:?}"));
            epoch_after.push(epoch);
        }
        let retained = farm.retained_epochs("t").unwrap();
        for e in &epoch_after {
            assert!(
                retained.contains(e),
                "{name}: epoch {e} fell out of retention"
            );
        }

        // Epochs published before the first edit (promotion, engine
        // attach) must all read as the pristine snapshot.
        let pristine = Farm::new();
        pristine.load("t", &snap).unwrap();
        let base = fingerprint_at(&pristine, &chg, None);
        for &e in retained.iter().filter(|&&e| e < epoch_after[0]) {
            assert_eq!(
                fingerprint_at(&farm, &chg, Some(e)),
                base,
                "{name}: epoch {e} (pre-edit) != pristine snapshot"
            );
        }

        // Each edit's epoch must equal a fresh farm stopped right there.
        for (k, &epoch) in epoch_after.iter().enumerate() {
            let fresh = Farm::new();
            fresh.load("t", &snap).unwrap();
            for d in &script[..=k] {
                fresh.edit("t", d).unwrap();
            }
            assert_eq!(
                fingerprint_at(&farm, &chg, Some(epoch)),
                fingerprint_at(&fresh, &chg, None),
                "{name}: as-of epoch {epoch} != from-scratch build after {} edits",
                k + 1
            );
        }

        // And the current view is the last epoch's view.
        assert_eq!(
            fingerprint_at(&farm, &chg, None),
            fingerprint_at(&farm, &chg, Some(*epoch_after.last().unwrap())),
            "{name}: current view != last epoch"
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}

#[test]
fn a_shallow_retention_window_retires_old_epochs_in_order() {
    let chg = families::chain(6, None);
    let dir = scratch("retire");
    let snap = dir.join("t.snap");
    Snapshot::compile(&chg).write_to(&snap).unwrap();

    let farm = Farm::with_options(FarmOptions {
        retain_epochs: 3,
        ..FarmOptions::default()
    });
    farm.load("t", &snap).unwrap();
    let script = edit_script(&chg);
    let mut epochs = Vec::new();
    for d in &script {
        epochs.push(farm.edit("t", d).unwrap());
    }

    let retained = farm.retained_epochs("t").unwrap();
    assert_eq!(retained.len(), 3, "window holds exactly K epochs");
    assert!(
        retained.windows(2).all(|w| w[0] < w[1]),
        "oldest-first order"
    );
    assert_eq!(*retained.last().unwrap(), *epochs.last().unwrap());

    // Everything older than the window answers EpochRetired; everything
    // inside it still answers.
    for &e in &epochs {
        let outcome = farm.query_at("t", "TTA", "tt_m1", Some(e));
        if retained.contains(&e) {
            assert!(outcome.is_ok(), "retained epoch {e} must serve");
        } else {
            assert_eq!(
                outcome.map_err(|(code, _)| code),
                Err(ErrorCode::EpochRetired),
                "retired epoch {e} must say so"
            );
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}
