//! Differential testing: every lookup implementation in the workspace
//! must agree with the executable Rossie–Friedman specification
//! (`cpplookup-subobject`) on randomly generated hierarchies.
//!
//! This is the load-bearing correctness evidence for the paper's
//! algorithm: hundreds of ambiguity-rich hierarchies, every class, every
//! member name, five implementations.

use cpplookup::baselines::adapters::{GxxAdapter, NaiveLookup, TopoShortcut};
use cpplookup::baselines::gxx::{gxx_lookup_corrected, GxxResult};
use cpplookup::baselines::naive::{propagate, PropagationConfig};
use cpplookup::baselines::toposort::toposort_lookup;
use cpplookup::hiergen::{edit_script, random_hierarchy, EditScriptConfig, RandomConfig};
use cpplookup::lookup::LazyLookup;
use cpplookup::subobject::{lookup, lookup_cpp, Resolution, Subobject};
use cpplookup::{
    apply_edits, Chg, EngineOptions, LeastVirtual, LookupEngine, LookupOptions, LookupOutcome,
    LookupTable, MemberLookup, StaticRule, SubobjectGraph,
};

const LIMIT: usize = 200_000;

/// Canonical comparable verdict.
#[derive(Debug, PartialEq, Eq)]
enum Verdict {
    NotFound,
    Resolved { class_name: String },
    Ambiguous,
}

fn verdict_of_outcome(chg: &Chg, o: &LookupOutcome) -> Verdict {
    match o {
        LookupOutcome::NotFound => Verdict::NotFound,
        LookupOutcome::Resolved { class, .. } => Verdict::Resolved {
            class_name: chg.class_name(*class).to_owned(),
        },
        LookupOutcome::Ambiguous { .. } => Verdict::Ambiguous,
    }
}

fn verdict_of_resolution(chg: &Chg, sg: &SubobjectGraph, r: &Resolution) -> Verdict {
    match r {
        Resolution::NotFound => Verdict::NotFound,
        Resolution::Subobject(_) | Resolution::SharedStatic(_) => Verdict::Resolved {
            class_name: chg
                .class_name(r.resolved_class(sg).expect("resolved"))
                .to_owned(),
        },
        Resolution::Ambiguous(_) => Verdict::Ambiguous,
    }
}

#[test]
fn algorithm_matches_oracle_on_stress_hierarchies() {
    for seed in 0..400 {
        let chg = random_hierarchy(&RandomConfig::stress(seed));
        let table_cpp = LookupTable::build(&chg);
        let table_def9 = LookupTable::build_with(
            &chg,
            LookupOptions {
                statics: StaticRule::Ignore,
            },
        );
        for c in chg.classes() {
            let sg = SubobjectGraph::build(&chg, c, LIMIT).expect("stress graphs are small");
            for m in chg.member_ids() {
                // Full C++ semantics (Definition 17).
                let ours = verdict_of_outcome(&chg, &table_cpp.lookup(c, m));
                let oracle = verdict_of_resolution(&chg, &sg, &lookup_cpp(&chg, &sg, m));
                assert_eq!(
                    ours,
                    oracle,
                    "Def17 mismatch seed={seed} class={} member={}",
                    chg.class_name(c),
                    chg.member_name(m)
                );
                // Pure Definition 9 semantics.
                let ours9 = verdict_of_outcome(&chg, &table_def9.lookup(c, m));
                let oracle9 = verdict_of_resolution(&chg, &sg, &lookup(&chg, &sg, m));
                assert_eq!(
                    ours9,
                    oracle9,
                    "Def9 mismatch seed={seed} class={} member={}",
                    chg.class_name(c),
                    chg.member_name(m)
                );
            }
        }
    }
}

#[test]
fn algorithm_matches_oracle_on_realistic_hierarchies() {
    for seed in 0..10 {
        let chg = random_hierarchy(&RandomConfig::realistic(80, seed));
        let table = LookupTable::build(&chg);
        for c in chg.classes() {
            let sg = match SubobjectGraph::build(&chg, c, LIMIT) {
                Ok(sg) => sg,
                Err(_) => continue, // oracle too expensive; skip this class
            };
            for m in chg.member_ids() {
                let ours = verdict_of_outcome(&chg, &table.lookup(c, m));
                let oracle = verdict_of_resolution(&chg, &sg, &lookup_cpp(&chg, &sg, m));
                assert_eq!(ours, oracle, "seed={seed} class={}", chg.class_name(c));
            }
        }
    }
}

#[test]
fn lazy_and_parallel_match_eager() {
    for seed in 0..100 {
        let chg = random_hierarchy(&RandomConfig::stress(seed));
        let eager = LookupTable::build(&chg);
        let parallel = LookupTable::build_parallel(&chg, LookupOptions::default(), 4);
        let mut lazy = LazyLookup::new(&chg);
        for c in chg.classes() {
            for m in chg.member_ids() {
                assert_eq!(
                    parallel.entry(c, m),
                    eager.entry(c, m),
                    "parallel mismatch seed={seed}"
                );
                assert_eq!(
                    lazy.entry(c, m),
                    eager.entry(c, m),
                    "lazy mismatch seed={seed}"
                );
            }
        }
        assert_eq!(parallel.stats(), eager.stats());
    }
}

#[test]
fn corrected_gxx_matches_def9_table() {
    for seed in 0..100 {
        let chg = random_hierarchy(&RandomConfig::stress(seed));
        let table = LookupTable::build_with(
            &chg,
            LookupOptions {
                statics: StaticRule::Ignore,
            },
        );
        for c in chg.classes() {
            let sg = SubobjectGraph::build(&chg, c, LIMIT).expect("small");
            for m in chg.member_ids() {
                let ours = verdict_of_outcome(&chg, &table.lookup(c, m));
                let gxx = match gxx_lookup_corrected(&chg, &sg, m) {
                    GxxResult::NotFound => Verdict::NotFound,
                    GxxResult::Resolved(id) => Verdict::Resolved {
                        class_name: chg.class_name(sg.subobject(id).class()).to_owned(),
                    },
                    GxxResult::Ambiguous => Verdict::Ambiguous,
                };
                assert_eq!(ours, gxx, "gxx mismatch seed={seed}");
            }
        }
    }
}

#[test]
fn naive_propagation_matches_def9_table() {
    for seed in 0..60 {
        let chg = random_hierarchy(&RandomConfig::stress(seed));
        let table = LookupTable::build_with(
            &chg,
            LookupOptions {
                statics: StaticRule::Ignore,
            },
        );
        for m in chg.member_ids() {
            for kill in [true, false] {
                let prop = propagate(
                    &chg,
                    m,
                    PropagationConfig {
                        kill,
                        budget: 1_000_000,
                    },
                )
                .expect("small graphs");
                for c in chg.classes() {
                    let ours = table.lookup(c, m);
                    match prop.node(c) {
                        None => {
                            assert_eq!(ours, LookupOutcome::NotFound, "seed={seed} kill={kill}")
                        }
                        Some(node) => match (&node.most_dominant, &ours) {
                            (
                                Some(p),
                                LookupOutcome::Resolved {
                                    class,
                                    least_virtual,
                                },
                            ) => {
                                assert_eq!(p.ldc(), *class, "seed={seed} kill={kill}");
                                assert_eq!(
                                    LeastVirtual::of_path(&chg, p),
                                    *least_virtual,
                                    "lv mismatch seed={seed}"
                                );
                            }
                            (None, LookupOutcome::Ambiguous { .. }) => {}
                            (p, o) => panic!(
                                "naive/table mismatch seed={seed} kill={kill} \
                                 class={} member={}: {p:?} vs {o:?}",
                                chg.class_name(c),
                                chg.member_name(m)
                            ),
                        },
                    }
                }
            }
        }
    }
}

#[test]
fn toposort_shortcut_correct_on_unambiguous_lookups() {
    let mut checked = 0usize;
    for seed in 0..100 {
        let chg = random_hierarchy(&RandomConfig::stress(seed));
        let table = LookupTable::build_with(
            &chg,
            LookupOptions {
                statics: StaticRule::Ignore,
            },
        );
        for c in chg.classes() {
            for m in chg.member_ids() {
                if let LookupOutcome::Resolved { class, .. } = table.lookup(c, m) {
                    assert_eq!(toposort_lookup(&chg, c, m), Some(class));
                    checked += 1;
                }
            }
        }
    }
    assert!(checked > 1000, "need real coverage, got {checked}");
}

#[test]
fn path_recovery_returns_winning_equivalence_class() {
    for seed in 0..100 {
        let chg = random_hierarchy(&RandomConfig::stress(seed));
        let table = LookupTable::build(&chg);
        for c in chg.classes() {
            let sg = SubobjectGraph::build(&chg, c, LIMIT).expect("small");
            for m in chg.member_ids() {
                if let LookupOutcome::Resolved {
                    class,
                    least_virtual,
                } = table.lookup(c, m)
                {
                    let path = table
                        .resolve_path(&chg, c, m)
                        .expect("resolved lookups recover a path");
                    assert_eq!(path.ldc(), class);
                    assert_eq!(path.mdc(), c);
                    assert_eq!(LeastVirtual::of_path(&chg, &path), least_virtual);
                    // The path's subobject must be a maximal definition in
                    // the oracle (the winner, or one of the shared-static
                    // winners).
                    let so = Subobject::from_path(&chg, &path);
                    let id = sg.id_of(&so).expect("path identifies a subobject of c");
                    match lookup_cpp(&chg, &sg, m) {
                        Resolution::Subobject(w) => assert_eq!(id, w, "seed={seed}"),
                        Resolution::SharedStatic(ws) => {
                            assert!(ws.contains(&id), "seed={seed}")
                        }
                        other => panic!("oracle disagrees: {other:?} (seed={seed})"),
                    }
                }
            }
        }
    }
}

/// The shared-static abstraction sets carried by red entries must match
/// the oracle's maximal definition sets exactly (not just the class).
#[test]
fn shared_static_sets_match_oracle_maximal_sets() {
    use cpplookup::lookup::Entry;
    use cpplookup::subobject::maximal;
    use std::collections::BTreeSet;

    let mut exercised = 0usize;
    for seed in 0..200 {
        let chg = random_hierarchy(&RandomConfig::stress(seed));
        let table = LookupTable::build(&chg);
        for c in chg.classes() {
            let sg = SubobjectGraph::build(&chg, c, LIMIT).expect("small");
            for m in chg.member_ids() {
                let Some(Entry::Red { abs, shared, .. }) = table.entry(c, m) else {
                    continue;
                };
                if shared.is_empty() {
                    continue;
                }
                exercised += 1;
                // Oracle maximal set, abstracted the same way: Ω for
                // non-virtually anchored subobjects, the anchor class
                // otherwise.
                let defs = cpplookup::subobject::defns(&chg, &sg, m);
                let max = maximal(&sg, &defs);
                let oracle_lvs: BTreeSet<LeastVirtual> = max
                    .iter()
                    .map(|&id| {
                        let so = sg.subobject(id);
                        if so.is_virtually_anchored() {
                            LeastVirtual::Class(so.anchor())
                        } else {
                            LeastVirtual::Omega
                        }
                    })
                    .collect();
                let our_lvs: BTreeSet<LeastVirtual> = std::iter::once(abs.lv)
                    .chain(shared.iter().copied())
                    .collect();
                assert_eq!(
                    our_lvs,
                    oracle_lvs,
                    "shared-static abstraction mismatch seed={seed} class={} member={}",
                    chg.class_name(c),
                    chg.member_name(m)
                );
                // All maximal definitions share the declaring class.
                for &id in &max {
                    assert_eq!(sg.subobject(id).class(), abs.ldc);
                }
            }
        }
    }
    assert!(
        exercised > 20,
        "need real shared-static coverage, got {exercised}"
    );
}

/// Dispatch maps, CHA, and slicing agree with the table they are built
/// from, across random hierarchies.
#[test]
fn applications_consistent_with_table() {
    use cpplookup::lookup::cha::call_targets;
    use cpplookup::lookup::dispatch::{build_dispatch_map, DispatchTarget};
    use cpplookup::lookup::slice::slice_hierarchy;

    for seed in 0..60 {
        let chg = random_hierarchy(&RandomConfig::stress(seed));
        let table = LookupTable::build(&chg);
        let dispatch = build_dispatch_map(&chg, &table);
        for c in chg.classes() {
            for m in chg.member_ids() {
                // Dispatch rows match the table verdicts for callable
                // winners.
                if let Some(DispatchTarget::Bound {
                    declaring_class, ..
                }) = dispatch.target(c, m)
                {
                    assert_eq!(table.lookup(c, m).resolved_class(), Some(*declaring_class));
                }
                // CHA target sets contain the static type's own winner.
                if let LookupOutcome::Resolved { class, .. } = table.lookup(c, m) {
                    let targets = call_targets(&chg, &table, c, m);
                    assert!(targets.targets.contains(&class), "seed={seed}");
                }
            }
            // Slicing every class against the full member set preserves
            // its whole row.
            let members: Vec<_> = chg.member_ids().collect();
            let slice = slice_hierarchy(&chg, &[c], &members).expect("slicing succeeds");
            let sliced_table = LookupTable::build(&slice.chg);
            for &m in &members {
                let before = table.lookup(c, m);
                let after = sliced_table.lookup(
                    slice.class(c).expect("root retained"),
                    slice.member(m).expect("queried member mapped"),
                );
                match (&before, &after) {
                    (LookupOutcome::NotFound, LookupOutcome::NotFound) => {}
                    (LookupOutcome::Ambiguous { .. }, LookupOutcome::Ambiguous { .. }) => {}
                    (
                        LookupOutcome::Resolved { class: a, .. },
                        LookupOutcome::Resolved { class: b, .. },
                    ) => assert_eq!(chg.class_name(*a), slice.chg.class_name(*b)),
                    other => panic!("slice verdict changed: {other:?} (seed={seed})"),
                }
            }
        }
    }
}

/// Every `MemberLookup` implementation in the workspace — tables, lazy
/// cache, all three engine backings, and the baseline adapters — driven
/// through the one trait, against the eager table. The toposort
/// shortcut is checked only where it is sound (resolved lookups).
#[test]
fn member_lookup_trait_unifies_all_strategies() {
    for seed in 0..40 {
        let chg = random_hierarchy(&RandomConfig::stress(seed));
        let reference = LookupTable::build_with(
            &chg,
            LookupOptions {
                statics: StaticRule::Ignore,
            },
        );
        let options = LookupOptions {
            statics: StaticRule::Ignore,
        };
        let engine_opts = |backing| EngineOptions {
            lookup: options,
            ..backing
        };
        let mut full_fidelity: Vec<(&str, Box<dyn MemberLookup>)> = vec![
            ("table", Box::new(LookupTable::build_with(&chg, options))),
            (
                "parallel-table",
                Box::new(LookupTable::build_parallel(&chg, options, 4)),
            ),
            (
                "engine-eager",
                Box::new(LookupEngine::with_options(
                    chg.clone(),
                    engine_opts(EngineOptions::default()),
                )),
            ),
            (
                "engine-lazy",
                Box::new(LookupEngine::with_options(
                    chg.clone(),
                    engine_opts(EngineOptions::lazy()),
                )),
            ),
            (
                "engine-parallel",
                Box::new(LookupEngine::with_options(
                    chg.clone(),
                    engine_opts(EngineOptions::parallel(4)),
                )),
            ),
        ];
        let mut lazy = LazyLookup::with_options(&chg, options);
        let mut naive = NaiveLookup::new(&chg);
        let mut gxx = GxxAdapter::corrected(&chg);
        let mut shortcut = TopoShortcut::new(&chg);
        for c in chg.classes() {
            for m in chg.member_ids() {
                let expected = reference.lookup(c, m);
                let want = verdict_of_outcome(&chg, &expected);
                for (name, strategy) in full_fidelity.iter_mut() {
                    assert_eq!(
                        verdict_of_outcome(&chg, &strategy.lookup(c, m)),
                        want,
                        "{name} seed={seed} ({}, {})",
                        chg.class_name(c),
                        chg.member_name(m)
                    );
                }
                assert_eq!(
                    verdict_of_outcome(&chg, &MemberLookup::lookup(&mut lazy, c, m)),
                    want,
                    "lazy seed={seed}"
                );
                // Baselines: verdict kind must match (they do not model
                // shared statics, which StaticRule::Ignore turns off).
                assert_eq!(
                    verdict_of_outcome(&chg, &naive.lookup(c, m)),
                    want,
                    "naive adapter seed={seed}"
                );
                assert_eq!(
                    verdict_of_outcome(&chg, &gxx.lookup(c, m)),
                    want,
                    "gxx adapter seed={seed}"
                );
                if let LookupOutcome::Resolved { class, .. } = &expected {
                    assert_eq!(
                        shortcut.lookup(c, m).resolved_class(),
                        Some(*class),
                        "toposort adapter seed={seed}"
                    );
                }
            }
        }
    }
}

/// Replaying a random edit script, the incremental engine must stay
/// equivalent to a from-scratch table AND to the subobject oracle at
/// every step — the three-way equivalence of the engine's contract.
#[test]
fn engine_edit_sequences_match_rebuild_and_oracle() {
    for seed in 0..12 {
        let (base, edits) = edit_script(&EditScriptConfig::stress(25, seed));
        for options in [
            EngineOptions::default(),
            EngineOptions::lazy(),
            EngineOptions::parallel(3),
        ] {
            let mut engine = LookupEngine::with_options(base.clone(), options);
            let mut current = base.clone();
            for (step, edit) in edits.iter().enumerate() {
                current = apply_edits(&current, std::slice::from_ref(edit))
                    .expect("generated edits apply");
                engine
                    .apply(std::slice::from_ref(edit))
                    .expect("generated edits apply");
                let rebuilt = LookupTable::build(&current);
                for c in current.classes() {
                    let sg = SubobjectGraph::build(&current, c, LIMIT).expect("small");
                    for m in current.member_ids() {
                        let incremental = engine.entry(c, m);
                        assert_eq!(
                            incremental.as_ref(),
                            rebuilt.entry(c, m),
                            "engine≠rebuild seed={seed} step={step} {:?} ({}, {})",
                            options.backing,
                            current.class_name(c),
                            current.member_name(m)
                        );
                        let ours = verdict_of_outcome(
                            &current,
                            &LookupOutcome::from_entry(incremental.as_ref()),
                        );
                        let oracle =
                            verdict_of_resolution(&current, &sg, &lookup_cpp(&current, &sg, m));
                        assert_eq!(
                            ours,
                            oracle,
                            "engine≠oracle seed={seed} step={step} ({}, {})",
                            current.class_name(c),
                            current.member_name(m)
                        );
                    }
                }
            }
            assert_eq!(engine.generation(), edits.len() as u64);
        }
    }
}

/// Structured families (not just random soups) against the oracle.
#[test]
fn structured_families_match_oracle() {
    use cpplookup::hiergen::families;
    use cpplookup::Inheritance;

    let cases: Vec<Chg> = vec![
        families::chain(40, Some(5)),
        families::stacked_diamonds(6, Inheritance::NonVirtual),
        families::stacked_diamonds(6, Inheritance::Virtual),
        families::stacked_diamonds_overridden(6, Inheritance::NonVirtual),
        families::wide_diamond(7, Inheritance::NonVirtual),
        families::wide_diamond(7, Inheritance::Virtual),
        families::grid(4, 4),
        families::pyramid(6, Inheritance::NonVirtual),
        families::pyramid(6, Inheritance::Virtual),
        families::interface_heavy(10, 3),
        families::gxx_trap(4),
    ];
    for chg in cases {
        let table = LookupTable::build(&chg);
        for c in chg.classes() {
            let sg = SubobjectGraph::build(&chg, c, LIMIT).expect("bounded families");
            for m in chg.member_ids() {
                let ours = verdict_of_outcome(&chg, &table.lookup(c, m));
                let oracle = verdict_of_resolution(&chg, &sg, &lookup_cpp(&chg, &sg, m));
                assert_eq!(
                    ours,
                    oracle,
                    "family mismatch at ({}, {})",
                    chg.class_name(c),
                    chg.member_name(m)
                );
            }
        }
    }
}
