//! Serving-path conformance: the flat [`DispatchIndex`] must agree with
//! every other backend, and its epoch-published versions must never be
//! observed torn.
//!
//! 1. **Differential** — on all 12 corpus families × both static rules,
//!    `DispatchIndex` (built from the table, from a snapshot, and from
//!    the engine's memo) answers every `(class, member)` query exactly
//!    like `LookupTable` and `SnapshotTable`, entry for entry.
//! 2. **Concurrent publish/read** — reader threads serving from
//!    [`ServeHandle`] clones while the writer applies edit batches only
//!    ever observe an index that is internally consistent with *some*
//!    published epoch, and epochs only move forward.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use cpplookup::apply_edits;
use cpplookup::hiergen::families;
use cpplookup::hiergen::{random_hierarchy, RandomConfig};
use cpplookup::prelude::*;

struct Case {
    name: &'static str,
    build: fn() -> Chg,
}

/// The same 12 families as `tests/corpus.rs` — one per generator, fully
/// deterministic.
const CASES: &[Case] = &[
    Case {
        name: "chain_12",
        build: || families::chain(12, None),
    },
    Case {
        name: "chain_12_virtual_3",
        build: || families::chain(12, Some(3)),
    },
    Case {
        name: "stacked_diamonds_3_nonvirtual",
        build: || families::stacked_diamonds(3, Inheritance::NonVirtual),
    },
    Case {
        name: "stacked_diamonds_3_virtual",
        build: || families::stacked_diamonds(3, Inheritance::Virtual),
    },
    Case {
        name: "stacked_diamonds_overridden_3",
        build: || families::stacked_diamonds_overridden(3, Inheritance::Virtual),
    },
    Case {
        name: "wide_diamond_6",
        build: || families::wide_diamond(6, Inheritance::Virtual),
    },
    Case {
        name: "pyramid_4",
        build: || families::pyramid(4, Inheritance::NonVirtual),
    },
    Case {
        name: "interface_heavy_6x3",
        build: || families::interface_heavy(6, 3),
    },
    Case {
        name: "grid_3x3",
        build: || families::grid(3, 3),
    },
    Case {
        name: "gxx_trap_3",
        build: || families::gxx_trap(3),
    },
    Case {
        name: "random_stress_42",
        build: || random_hierarchy(&RandomConfig::stress(42)),
    },
    Case {
        name: "random_realistic_20_7",
        build: || random_hierarchy(&RandomConfig::realistic(20, 7)),
    },
];

/// DispatchIndex == LookupTable == SnapshotTable on every corpus family
/// and under both static rules, through all three construction paths.
#[test]
fn dispatch_index_matches_table_and_snapshot_on_corpus() {
    for case in CASES {
        let g = (case.build)();
        for statics in [StaticRule::Cpp, StaticRule::Ignore] {
            let options = LookupOptions { statics };
            let table = LookupTable::build_with(&g, options);
            let snap = SnapshotTable::from_bytes(Snapshot::compile_with(&g, options).into_bytes())
                .expect("fresh snapshot loads");
            let from_table = DispatchIndex::from_table(LookupTable::build_with(&g, options));
            let from_snapshot = snap.dispatch_index();
            let engine = LookupEngine::with_options(
                g.clone(),
                cpplookup::EngineOptions {
                    lookup: options,
                    ..Default::default()
                },
            );
            let from_engine = DispatchIndex::from_engine(&engine);
            assert_eq!(
                from_table.entry_count(),
                snap.entry_count(),
                "{}",
                case.name
            );
            assert_eq!(
                from_snapshot.entry_count(),
                snap.entry_count(),
                "{}",
                case.name
            );
            assert_eq!(
                from_engine.entry_count(),
                snap.entry_count(),
                "{}",
                case.name
            );
            for c in g.classes() {
                for m in g.member_ids() {
                    let expected = table.lookup(c, m);
                    let context = || {
                        format!(
                            "{} [{:?}] lookup({}, {})",
                            case.name,
                            statics,
                            g.class_name(c),
                            g.member_name(m)
                        )
                    };
                    assert_eq!(snap.lookup(c, m), expected, "{}", context());
                    for index in [&from_table, &from_snapshot, &from_engine] {
                        assert_eq!(
                            index.lookup_ref(c, m).to_outcome(),
                            expected,
                            "{}",
                            context()
                        );
                        assert_eq!(
                            index.entry(c, m),
                            table.entry(c, m).cloned(),
                            "{}",
                            context()
                        );
                    }
                }
            }
        }
    }
}

/// The index batch path answers exactly like singles on a mixed,
/// duplicate-heavy probe list.
#[test]
fn index_batch_matches_singles_on_corpus() {
    for case in CASES {
        let g = (case.build)();
        let index = DispatchIndex::from_table(LookupTable::build(&g));
        let mut probes: Vec<_> = g
            .classes()
            .flat_map(|c| g.member_ids().map(move |m| (c, m)))
            .collect();
        // Duplicate and interleave to exercise the dedupe/fan-out.
        let doubled: Vec<_> = probes.iter().rev().copied().collect();
        probes.extend(doubled);
        let batched = index.lookup_batch(&probes);
        for (i, &(c, m)) in probes.iter().enumerate() {
            assert_eq!(
                batched[i],
                index.lookup_ref(c, m).to_outcome(),
                "{} probe {}",
                case.name,
                i
            );
        }
    }
}

/// Builds the edit batch applied at each epoch: a fresh class wired
/// under an existing one, plus a member override that shifts dominance.
fn edit_batch(generation: usize, victim: cpplookup::ClassId) -> Vec<Edit> {
    vec![
        Edit::AddClass {
            name: format!("Fresh{generation}"),
        },
        Edit::AddMember {
            class: victim,
            name: "served".into(),
            decl: MemberDecl::public(MemberKind::Function),
        },
    ]
}

/// Readers serving from `ServeHandle` clones during republishes never
/// observe a torn index: every loaded version answers a full sweep
/// exactly like a from-scratch table for that version's generation, and
/// epochs are monotone per reader.
#[test]
fn concurrent_readers_never_observe_torn_or_regressing_indexes() {
    const EPOCHS: usize = 12;
    const READERS: usize = 4;

    let base = families::grid(3, 3);
    let victims: Vec<_> = base.classes().collect();

    // Precompute the expected outcome sweep for every epoch by
    // replaying the same edit script through `apply_edits`.
    let mut expected: Vec<Vec<LookupOutcome>> = Vec::with_capacity(EPOCHS + 1);
    let mut g = base.clone();
    let sweep = |g: &Chg| -> Vec<LookupOutcome> {
        let t = LookupTable::build(g);
        g.classes()
            .flat_map(|c| g.member_ids().map(move |m| (c, m)))
            .map(|(c, m)| t.lookup(c, m))
            .collect::<Vec<_>>()
    };
    expected.push(sweep(&g));
    for e in 0..EPOCHS {
        g = apply_edits(&g, &edit_batch(e, victims[e % victims.len()])).expect("edit applies");
        expected.push(sweep(&g));
    }
    let expected = Arc::new(expected);

    let mut serving = cpplookup::IndexedEngine::new(LookupEngine::new(base));
    let handle = serving.handle();
    let stop = Arc::new(AtomicBool::new(false));
    let observed_epochs = Arc::new(AtomicU64::new(0));

    std::thread::scope(|scope| {
        for _ in 0..READERS {
            let handle = handle.clone();
            let stop = Arc::clone(&stop);
            let expected = Arc::clone(&expected);
            let observed = Arc::clone(&observed_epochs);
            scope.spawn(move || {
                let mut last_epoch = 0u64;
                while !stop.load(Ordering::Acquire) {
                    let version = handle.load();
                    let epoch = version.epoch();
                    assert!(
                        epoch >= last_epoch,
                        "epoch regressed: {epoch} after {last_epoch}"
                    );
                    last_epoch = epoch;
                    observed.fetch_max(epoch, Ordering::AcqRel);
                    let index = version.index();
                    let want = &expected[epoch as usize];
                    let mut i = 0;
                    for ci in 0..index.class_count() {
                        let c = cpplookup::ClassId::from_index(ci);
                        for mi in 0..index.member_name_count() {
                            let m = cpplookup::MemberId::from_index(mi);
                            // The sweep below indexes `expected` by the
                            // (class, member) grid of *this* epoch, which
                            // matches the index dimensions exactly.
                            assert_eq!(
                                index.lookup_ref(c, m).to_outcome(),
                                want[i],
                                "epoch {epoch} disagreed at ({ci}, {mi}) — torn index?"
                            );
                            i += 1;
                        }
                    }
                    assert_eq!(i, want.len(), "epoch {epoch} sweep dimensions drifted");
                }
            });
        }

        for e in 0..EPOCHS {
            let epoch = serving
                .apply(&edit_batch(e, victims[e % victims.len()]))
                .expect("edit applies");
            assert_eq!(epoch, e as u64 + 1);
        }
        // Let readers catch the final epoch before stopping.
        while observed_epochs.load(Ordering::Acquire) < EPOCHS as u64 {
            let _ = handle.load();
            std::thread::yield_now();
        }
        stop.store(true, Ordering::Release);
    });

    assert_eq!(handle.epoch(), EPOCHS as u64);
    // And the final published index matches the final expected sweep.
    let last = handle.load();
    let final_sweep = &expected[EPOCHS];
    let mut i = 0;
    for ci in 0..last.index().class_count() {
        for mi in 0..last.index().member_name_count() {
            let got = last
                .index()
                .lookup_ref(
                    cpplookup::ClassId::from_index(ci),
                    cpplookup::MemberId::from_index(mi),
                )
                .to_outcome();
            assert_eq!(got, final_sweep[i]);
            i += 1;
        }
    }
}

/// `OutcomeRef` round-trips through `to_outcome` for all three verdict
/// shapes on a family with known ambiguity.
#[test]
fn outcome_ref_shapes_round_trip() {
    let g = families::wide_diamond(6, Inheritance::NonVirtual);
    let table = LookupTable::build(&g);
    let index = DispatchIndex::from_table(LookupTable::build(&g));
    let (mut resolved, mut ambiguous, mut missing) = (0usize, 0usize, 0usize);
    for c in g.classes() {
        for m in g.member_ids() {
            match index.lookup_ref(c, m) {
                OutcomeRef::Resolved { .. } => resolved += 1,
                OutcomeRef::Ambiguous { witnesses } => {
                    assert!(!witnesses.is_empty());
                    ambiguous += 1;
                }
                OutcomeRef::NotFound => missing += 1,
            }
            assert_eq!(index.lookup_ref(c, m).to_outcome(), table.lookup(c, m));
        }
    }
    assert!(
        resolved > 0 && ambiguous > 0,
        "family should exercise resolution and ambiguity ({resolved}/{ambiguous}/{missing})"
    );
    // NotFound shape: a member id beyond the index grid.
    let c = g.classes().next().unwrap();
    let beyond = cpplookup::MemberId::from_index(index.member_name_count() + 1);
    assert_eq!(index.lookup_ref(c, beyond), OutcomeRef::NotFound);
}
