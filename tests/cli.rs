//! End-to-end tests of the `cpplookup-cli` binary.

use std::io::Write as _;
use std::process::Command;

const FIG9: &str = "struct S { int m; };\n\
                    struct A : virtual S { int m; };\n\
                    struct B : virtual S { int m; };\n\
                    struct C : virtual A, virtual B { int m; };\n\
                    struct D : C {};\n\
                    struct E : virtual A, virtual B, D {};\n\
                    int main() { E e; e.m = 10; }\n";

fn write_temp(contents: &str) -> std::path::PathBuf {
    // A per-call counter keeps paths unique even when two parallel
    // tests write the same fixture — keying on the content length alone
    // lets one test's cleanup delete a file another is still compiling.
    static NEXT: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let mut path = std::env::temp_dir();
    path.push(format!(
        "cpplookup-cli-test-{}-{}.cpp",
        std::process::id(),
        NEXT.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
    ));
    let mut f = std::fs::File::create(&path).expect("create temp file");
    f.write_all(contents.as_bytes()).expect("write temp file");
    path
}

fn run(args: &[&str]) -> (String, String, Option<i32>) {
    let out = Command::new(env!("CARGO_BIN_EXE_cpplookup-cli"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.code(),
    )
}

#[test]
fn check_reports_clean_fig9() {
    let path = write_temp(FIG9);
    let (stdout, _, code) = run(&["check", path.to_str().unwrap()]);
    assert_eq!(code, Some(0));
    assert!(stdout.contains("ok: C::m"), "{stdout}");
    assert!(stdout.contains("no diagnostics"));
    let _ = std::fs::remove_file(path);
}

#[test]
fn check_flags_ambiguity_with_exit_code_1() {
    let src = "struct A { int m; };\n\
               struct B : A {}; struct C : A {};\n\
               struct D : B, C {};\n\
               int main() { D d; d.m; }\n";
    let path = write_temp(src);
    let (stdout, _, code) = run(&["check", path.to_str().unwrap()]);
    assert_eq!(code, Some(1));
    assert!(stdout.contains("ambiguous"), "{stdout}");
    let _ = std::fs::remove_file(path);
}

#[test]
fn table_trace_layout_audit_dot_all_work() {
    let path = write_temp(FIG9);
    let p = path.to_str().unwrap();

    let (stdout, _, code) = run(&["table", p]);
    assert_eq!(code, Some(0));
    assert!(stdout.contains("E:"), "{stdout}");
    assert!(stdout.contains("C::m"));

    let (stdout, _, code) = run(&["trace", p, "m"]);
    assert_eq!(code, Some(0));
    assert!(stdout.contains("=> red (C, Ω)"), "{stdout}");

    let (stdout, _, code) = run(&["trace", p, "m", "--dot"]);
    assert_eq!(code, Some(0));
    assert!(stdout.contains("digraph trace"));

    let (stdout, _, code) = run(&["layout", p, "E"]);
    assert_eq!(code, Some(0));
    assert!(stdout.contains("layout of E"), "{stdout}");
    assert!(stdout.contains("S in E"));

    let (stdout, _, code) = run(&["audit", p]);
    assert_eq!(code, Some(0));
    assert!(stdout.contains("largest objects"), "{stdout}");

    let (stdout, _, code) = run(&["dot", p]);
    assert_eq!(code, Some(0));
    assert!(stdout.contains("digraph chg"));

    let _ = std::fs::remove_file(path);
}

fn run_with_stdin(args: &[&str], input: &str) -> (String, String, Option<i32>) {
    use std::process::Stdio;
    let mut child = Command::new(env!("CARGO_BIN_EXE_cpplookup-cli"))
        .args(args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("binary runs");
    // A child that refuses its input (e.g. a corrupt snapshot) may exit
    // before reading stdin; the resulting EPIPE is not a test failure —
    // the exit code and stderr below are what's under test.
    match child
        .stdin
        .take()
        .expect("piped stdin")
        .write_all(input.as_bytes())
    {
        Ok(()) => {}
        Err(e) if e.kind() == std::io::ErrorKind::BrokenPipe => {}
        Err(e) => panic!("write stdin: {e}"),
    }
    let out = child.wait_with_output().expect("binary exits");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.code(),
    )
}

#[test]
fn batch_answers_queries_and_prints_engine_stats() {
    let path = write_temp(FIG9);
    let queries = "# fig9 queries\n\
                   E m\n\
                   C m\n\
                   S m\n\n";
    let (stdout, stderr, code) = run_with_stdin(&["batch", path.to_str().unwrap()], queries);
    assert_eq!(code, Some(0), "stderr: {stderr}");
    assert!(
        stdout.contains("E::m") && stdout.contains("C::m"),
        "{stdout}"
    );
    assert!(stdout.contains("S::m"), "{stdout}");
    // Engine statistics land on stderr.
    assert!(stderr.contains("lookups: 3"), "{stderr}");
    assert!(stderr.contains("edits: 0"), "{stderr}");
    let _ = std::fs::remove_file(path);
}

#[test]
fn batch_flags_unknown_names_with_exit_code_1() {
    let path = write_temp(FIG9);
    let queries = "E m\nNoSuchClass m\nE nosuchmember\nmalformed\n";
    let (stdout, stderr, code) = run_with_stdin(&["batch", path.to_str().unwrap()], queries);
    assert_eq!(code, Some(1), "stderr: {stderr}");
    assert!(stdout.contains("no class named `NoSuchClass`"), "{stdout}");
    assert!(
        stdout.contains("no member named `nosuchmember`"),
        "{stdout}"
    );
    assert!(stdout.contains("expected `class member`"), "{stdout}");
    let _ = std::fs::remove_file(path);
}

#[test]
fn usage_errors_exit_2() {
    let (_, stderr, code) = run(&[]);
    assert_eq!(code, Some(2));
    assert!(stderr.contains("usage"));

    let path = write_temp(FIG9);
    let (_, stderr, code) = run(&["frobnicate", path.to_str().unwrap()]);
    assert_eq!(code, Some(2));
    assert!(stderr.contains("unknown command"));

    let (_, stderr, code) = run(&["check", "/nonexistent/nope.cpp"]);
    assert_eq!(code, Some(2));
    assert!(stderr.contains("cannot read"));

    let (_, stderr, code) = run(&["trace", path.to_str().unwrap()]);
    assert_eq!(code, Some(2));
    assert!(stderr.contains("usage"));
    let _ = std::fs::remove_file(path);
}

#[test]
fn trace_json_is_machine_readable() {
    let path = write_temp(FIG9);
    let (stdout, _, code) = run(&["trace", path.to_str().unwrap(), "m", "--json"]);
    assert_eq!(code, Some(0));
    assert!(stdout.starts_with("{\"member\":\"m\""), "{stdout}");
    assert!(stdout.contains("\"class\":\"E\""), "{stdout}");
    assert!(
        stdout.contains("\"kind\":\"red\",\"ldc\":\"C\""),
        "{stdout}"
    );
    assert_eq!(
        stdout.matches('{').count(),
        stdout.matches('}').count(),
        "{stdout}"
    );
    let _ = std::fs::remove_file(path);
}

#[test]
fn stats_dumps_the_metrics_registry_in_every_format() {
    let path = write_temp(FIG9);
    let p = path.to_str().unwrap();

    let (stdout, _, code) = run(&["stats", p]);
    assert_eq!(code, Some(0));
    assert!(stdout.contains("engine_lookups_total"), "{stdout}");
    assert!(stdout.contains("engine_cache_misses_total"), "{stdout}");

    let (stdout, _, code) = run(&["stats", p, "--json"]);
    assert_eq!(code, Some(0));
    assert!(stdout.trim_end().starts_with("{\"metrics\":["), "{stdout}");
    assert!(
        stdout.contains("\"name\":\"engine_cached_entries\""),
        "{stdout}"
    );

    let (stdout, _, code) = run(&["stats", p, "--prometheus"]);
    assert_eq!(code, Some(0));
    assert!(
        stdout.contains("# TYPE engine_lookups_total counter"),
        "{stdout}"
    );

    let _ = std::fs::remove_file(path);
}

#[test]
fn batch_metrics_emits_json_snapshot_and_applies_edit_directives() {
    let path = write_temp(FIG9);
    let script = "E m\n\
                  E m\n\
                  !member E fresh\n\
                  E fresh\n\
                  # comment survives\n\
                  C m\n";
    let (stdout, stderr, code) =
        run_with_stdin(&["batch", path.to_str().unwrap(), "--metrics"], script);
    assert_eq!(code, Some(0), "stderr: {stderr}");
    // Queries before the edit see the old hierarchy, after it the new one.
    assert!(stdout.contains("E::fresh"), "{stdout}");
    assert!(stderr.contains("applied: !member E fresh"), "{stderr}");
    // The final stdout line is the JSON snapshot: lazy + timed engine,
    // so hit/miss counters and (with the obs feature) the latency
    // histogram are nonzero.
    let json = stdout.lines().last().expect("snapshot line");
    assert!(json.starts_with("{\"metrics\":["), "{json}");
    // 4 queries: `E m` misses cold (computing cached entries for its
    // ancestors on the way), the repeat hits, `E fresh` misses, and
    // `C m` hits the entry cached while computing `E m`.
    assert!(
        json.contains("{\"name\":\"engine_cache_hits_total\",\"type\":\"counter\",\"value\":2"),
        "{json}"
    );
    assert!(
        json.contains("{\"name\":\"engine_cache_misses_total\",\"type\":\"counter\",\"value\":2"),
        "{json}"
    );
    assert!(json.contains("\"edits\":["), "{json}");
    if cfg!(feature = "obs") {
        assert!(
            json.contains("\"name\":\"engine_lookup_latency_ns\",\"type\":\"histogram\""),
            "{json}"
        );
        // Per-edit sizes from the EditApplied trace events: the fresh
        // member dirties E's derived closure but invalidates nothing.
        assert!(json.contains("\"dirty\":1,\"invalidated\":0"), "{json}");
    }
    let _ = std::fs::remove_file(path);
}

fn temp_snap_path(tag: &str) -> std::path::PathBuf {
    let mut path = std::env::temp_dir();
    path.push(format!(
        "cpplookup-cli-test-{}-{tag}.snap",
        std::process::id()
    ));
    path
}

#[test]
fn compile_then_query_snapshot_answers_without_source() {
    let src = write_temp(FIG9);
    let snap = temp_snap_path("roundtrip");
    let (_, stderr, code) = run(&[
        "compile",
        src.to_str().unwrap(),
        "-o",
        snap.to_str().unwrap(),
    ]);
    assert_eq!(code, Some(0), "stderr: {stderr}");
    assert!(
        stderr.contains("wrote") && stderr.contains("classes"),
        "{stderr}"
    );

    // The serve-many side needs only the snapshot: Fig. 9's famous
    // verdict (E::m resolves to C) comes straight off the bytes.
    let (stdout, stderr, code) = run(&["query", "--snapshot", snap.to_str().unwrap(), "E", "m"]);
    assert_eq!(code, Some(0), "stderr: {stderr}");
    assert!(
        stdout.contains("E::m") && stdout.contains("C::m"),
        "{stdout}"
    );

    // And it agrees verbatim with compiling the source on the spot.
    let (from_source, _, code) = run(&["query", src.to_str().unwrap(), "E", "m"]);
    assert_eq!(code, Some(0));
    assert_eq!(stdout, from_source);

    let (_, stderr, code) = run(&["query", "--snapshot", snap.to_str().unwrap(), "E", "nope"]);
    assert_eq!(code, Some(1));
    assert!(stderr.contains("unknown class or member"), "{stderr}");

    let _ = std::fs::remove_file(src);
    let _ = std::fs::remove_file(snap);
}

#[test]
fn compile_jobs_is_byte_identical_and_validated() {
    let src = write_temp(FIG9);
    let seq = temp_snap_path("jobs-seq");
    let par = temp_snap_path("jobs-par");
    let (_, stderr, code) = run(&[
        "compile",
        src.to_str().unwrap(),
        "-o",
        seq.to_str().unwrap(),
        "--jobs",
        "1",
    ]);
    assert_eq!(code, Some(0), "stderr: {stderr}");
    assert!(stderr.contains("1 jobs"), "{stderr}");

    // The parallel sweep must produce the exact same snapshot bytes.
    let (_, stderr, code) = run(&[
        "compile",
        src.to_str().unwrap(),
        "--jobs",
        "3",
        "-o",
        par.to_str().unwrap(),
    ]);
    assert_eq!(code, Some(0), "stderr: {stderr}");
    assert!(stderr.contains("3 jobs"), "{stderr}");
    let a = std::fs::read(&seq).expect("read sequential snapshot");
    let b = std::fs::read(&par).expect("read parallel snapshot");
    assert_eq!(a, b, "parallel compile changed the snapshot bytes");

    // And the parallel-compiled snapshot serves queries.
    let (stdout, _, code) = run(&["query", "--snapshot", par.to_str().unwrap(), "E", "m"]);
    assert_eq!(code, Some(0));
    assert!(stdout.contains("C::m"), "{stdout}");

    // A bogus thread count is a usage error.
    for bad in [&["--jobs", "0"][..], &["--jobs"][..]] {
        let mut args = vec!["compile", src.to_str().unwrap(), "-o", "ignored.snap"];
        args.extend_from_slice(bad);
        let (_, stderr, code) = run(&args);
        assert_eq!(code, Some(2), "stderr: {stderr}");
        assert!(stderr.contains("--jobs"), "{stderr}");
    }

    let _ = std::fs::remove_file(src);
    let _ = std::fs::remove_file(seq);
    let _ = std::fs::remove_file(par);
}

#[test]
fn stats_reports_build_strategy_and_build_time() {
    let path = write_temp(FIG9);
    let p = path.to_str().unwrap();

    let (stdout, _, code) = run(&["stats", p]);
    assert_eq!(code, Some(0));
    // The stats engine is lazy; its build strategy and build wall time
    // are part of the registry dump.
    assert!(
        stdout.contains("engine_build_info{build_strategy=\"lazy\"}"),
        "{stdout}"
    );
    assert!(stdout.contains("engine_build_seconds"), "{stdout}");

    let (stdout, _, code) = run(&["stats", p, "--json"]);
    assert_eq!(code, Some(0));
    assert!(
        stdout.contains("\"name\":\"engine_build_info\",\"type\":\"counter\",\"label\":\"build_strategy\",\"series\":[{\"value\":\"lazy\",\"count\":1}]"),
        "{stdout}"
    );
    assert!(
        stdout.contains("\"name\":\"engine_build_seconds\",\"type\":\"histogram\""),
        "{stdout}"
    );
    let _ = std::fs::remove_file(path);
}

#[test]
fn batch_from_snapshot_warm_starts_the_engine() {
    let src = write_temp(FIG9);
    let snap = temp_snap_path("warm");
    let (_, _, code) = run(&[
        "compile",
        src.to_str().unwrap(),
        "-o",
        snap.to_str().unwrap(),
    ]);
    assert_eq!(code, Some(0));

    let (stdout, stderr, code) = run_with_stdin(
        &["batch", "--snapshot", snap.to_str().unwrap(), "--metrics"],
        "E m\nC m\n",
    );
    assert_eq!(code, Some(0), "stderr: {stderr}");
    assert!(
        stdout.contains("E::m") && stdout.contains("C::m"),
        "{stdout}"
    );
    assert!(stderr.contains("warm start:"), "{stderr}");
    assert!(stderr.contains("entries seeded"), "{stderr}");
    // Every answer comes from the seeded cache: hits, no misses.
    let json = stdout.lines().last().expect("metrics snapshot line");
    assert!(
        json.contains("{\"name\":\"engine_cache_hits_total\",\"type\":\"counter\",\"value\":2"),
        "{json}"
    );
    assert!(
        json.contains("{\"name\":\"engine_cache_misses_total\",\"type\":\"counter\",\"value\":0"),
        "{json}"
    );

    let _ = std::fs::remove_file(src);
    let _ = std::fs::remove_file(snap);
}

#[test]
fn corrupt_snapshots_are_refused_with_exit_code_2() {
    let src = write_temp(FIG9);
    let snap = temp_snap_path("corrupt");
    let (_, _, code) = run(&[
        "compile",
        src.to_str().unwrap(),
        "-o",
        snap.to_str().unwrap(),
    ]);
    assert_eq!(code, Some(0));

    // Flip one byte in the middle of the file.
    let mut bytes = std::fs::read(&snap).expect("read snapshot");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x41;
    std::fs::write(&snap, &bytes).expect("write damaged snapshot");

    let (stdout, stderr, code) = run(&["query", "--snapshot", snap.to_str().unwrap(), "E", "m"]);
    assert_eq!(code, Some(2), "stdout: {stdout} stderr: {stderr}");
    assert!(stderr.contains("checksum"), "{stderr}");

    let (_, stderr, code) =
        run_with_stdin(&["batch", "--snapshot", snap.to_str().unwrap()], "E m\n");
    assert_eq!(code, Some(2));
    assert!(stderr.contains("checksum"), "{stderr}");

    let _ = std::fs::remove_file(src);
    let _ = std::fs::remove_file(snap);
}

#[test]
fn snapshot_flag_usage_errors_exit_2() {
    let src = write_temp(FIG9);
    // --snapshot only applies to query and batch.
    let (_, stderr, code) = run(&["check", "--snapshot", "whatever.snap"]);
    assert_eq!(code, Some(2));
    assert!(stderr.contains("does not take --snapshot"), "{stderr}");

    // compile requires an output path.
    let (_, stderr, code) = run(&["compile", src.to_str().unwrap()]);
    assert_eq!(code, Some(2));
    assert!(stderr.contains("usage"), "{stderr}");

    // A snapshot that is not there is an I/O error, not a crash.
    let (_, stderr, code) = run(&["query", "--snapshot", "/nonexistent/nope.snap", "E", "m"]);
    assert_eq!(code, Some(2));
    assert!(stderr.contains("nope.snap"), "{stderr}");
    let _ = std::fs::remove_file(src);
}

#[test]
fn backend_flag_answers_identically_across_backends() {
    let src = write_temp(FIG9);
    let p = src.to_str().unwrap();
    let (reference, _, code) = run(&["query", p, "E", "m"]);
    assert_eq!(code, Some(0));
    assert!(reference.contains("C::m"), "{reference}");
    for backend in ["table", "engine", "index"] {
        let (stdout, stderr, code) = run(&["query", p, "E", "m", "--backend", backend]);
        assert_eq!(code, Some(0), "backend {backend}: {stderr}");
        assert_eq!(stdout, reference, "backend {backend} disagrees");
    }

    // The snapshot backend answers the same through its own spelling.
    let snap = temp_snap_path("backend-equiv");
    let (_, _, code) = run(&["compile", p, "-o", snap.to_str().unwrap()]);
    assert_eq!(code, Some(0));
    let (stdout, _, code) = run(&[
        "query",
        "--snapshot",
        snap.to_str().unwrap(),
        "E",
        "m",
        "--backend",
        "snapshot",
    ]);
    assert_eq!(code, Some(0));
    assert_eq!(stdout, reference);

    let _ = std::fs::remove_file(src);
    let _ = std::fs::remove_file(snap);
}

#[test]
fn backend_arg_conflicts_exit_2() {
    let src = write_temp(FIG9);
    let p = src.to_str().unwrap();

    // `--snapshot <path>` is `--backend snapshot`; naming another
    // backend alongside it is a contradiction.
    let (_, stderr, code) = run(&[
        "query",
        "--snapshot",
        "whatever.snap",
        "E",
        "m",
        "--backend",
        "table",
    ]);
    assert_eq!(code, Some(2));
    assert!(
        stderr.contains("--snapshot conflicts with --backend table"),
        "{stderr}"
    );

    // Likewise `--serve` is `--backend index` in batch mode.
    let (_, stderr, code) = run_with_stdin(&["batch", p, "--serve", "--backend", "engine"], "");
    assert_eq!(code, Some(2));
    assert!(
        stderr.contains("--serve conflicts with --backend engine"),
        "{stderr}"
    );
    // The consistent spellings are fine.
    let (_, _, code) = run_with_stdin(&["batch", p, "--serve", "--backend", "index"], "");
    assert_eq!(code, Some(0));

    // The snapshot backend needs the artifact path.
    let (_, stderr, code) = run(&["query", p, "E", "m", "--backend", "snapshot"]);
    assert_eq!(code, Some(2));
    assert!(stderr.contains("--snapshot <file.snap>"), "{stderr}");
    let (_, stderr, code) = run(&["stats", p, "--backend", "snapshot"]);
    assert_eq!(code, Some(2));
    assert!(stderr.contains("--snapshot <file.snap>"), "{stderr}");

    // The immutable table backend cannot be timed.
    let (_, stderr, code) = run_with_stdin(&["batch", p, "--backend", "table", "--metrics"], "");
    assert_eq!(code, Some(2));
    assert!(stderr.contains("--metrics requires the engine"), "{stderr}");

    // Malformed flags are usage errors, not silent defaults.
    let (_, stderr, code) = run(&["query", p, "E", "m", "--backend", "bogus"]);
    assert_eq!(code, Some(2));
    assert!(stderr.contains("unknown backend `bogus`"), "{stderr}");
    let (_, stderr, code) = run(&["query", p, "E", "m", "--backend"]);
    assert_eq!(code, Some(2));
    assert!(stderr.contains("--backend expects"), "{stderr}");
    let (_, stderr, code) = run(&[
        "query",
        p,
        "E",
        "m",
        "--backend",
        "table",
        "--backend",
        "index",
    ]);
    assert_eq!(code, Some(2));
    assert!(stderr.contains("more than once"), "{stderr}");

    let _ = std::fs::remove_file(src);
}

#[test]
fn batch_backend_table_answers_but_rejects_edits() {
    let path = write_temp(FIG9);
    let (stdout, stderr, code) = run_with_stdin(
        &["batch", path.to_str().unwrap(), "--backend", "table"],
        "E m\n!class X\nC m\n",
    );
    assert_eq!(code, Some(1), "stderr: {stderr}");
    assert!(
        stdout.contains("E::m") && stdout.contains("C::m"),
        "{stdout}"
    );
    assert!(
        stdout.contains("edit directives require the engine or index backend"),
        "{stdout}"
    );
    assert!(stderr.contains("table backend:"), "{stderr}");
    let _ = std::fs::remove_file(path);
}

#[test]
fn stats_over_snapshot_packs_the_index_from_the_bytes() {
    let src = write_temp(FIG9);
    let snap = temp_snap_path("stats");
    let (_, _, code) = run(&[
        "compile",
        src.to_str().unwrap(),
        "-o",
        snap.to_str().unwrap(),
    ]);
    assert_eq!(code, Some(0));

    let (stdout, stderr, code) = run(&[
        "stats",
        "--snapshot",
        snap.to_str().unwrap(),
        "--prometheus",
    ]);
    assert_eq!(code, Some(0), "stderr: {stderr}");
    assert!(stderr.contains("dispatch index:"), "{stderr}");
    if cfg!(feature = "obs") {
        assert!(stdout.contains("snapshot_loads_total"), "{stdout}");
        assert!(stdout.contains("serve_index_builds_total"), "{stdout}");
    }

    // Source-backed stats accepts the backend flag too and reports the
    // same index shape regardless of which impl packed it.
    let (_, from_engine, code) = run(&["stats", src.to_str().unwrap(), "--backend", "engine"]);
    assert_eq!(code, Some(0));
    let (_, from_table, code) = run(&["stats", src.to_str().unwrap(), "--backend", "table"]);
    assert_eq!(code, Some(0));
    let index_line = |s: &str| {
        s.lines()
            .find(|l| l.starts_with("dispatch index:"))
            .expect("index line")
            .to_owned()
    };
    assert_eq!(index_line(&from_engine), index_line(&from_table));

    let _ = std::fs::remove_file(src);
    let _ = std::fs::remove_file(snap);
}

#[test]
fn serve_and_loadgen_subcommands_front_the_server_crate() {
    use std::io::BufRead as _;
    use std::process::Stdio;

    let src = write_temp(FIG9);
    let snap = temp_snap_path("serve-sub");
    let (_, _, code) = run(&[
        "compile",
        src.to_str().unwrap(),
        "-o",
        snap.to_str().unwrap(),
    ]);
    assert_eq!(code, Some(0));

    let mut server = Command::new(env!("CARGO_BIN_EXE_cpplookup-cli"))
        .args([
            "serve",
            "--addr",
            "127.0.0.1:0",
            "--tenant",
            &format!("t0={}", snap.display()),
        ])
        .stderr(Stdio::piped())
        .spawn()
        .expect("server starts");
    let mut line = String::new();
    std::io::BufReader::new(server.stderr.take().expect("piped stderr"))
        .read_line(&mut line)
        .expect("read announcement");
    let addr = line
        .trim()
        .strip_prefix("listening on ")
        .unwrap_or_else(|| panic!("unexpected announcement: {line}"))
        .to_owned();

    let (stdout, stderr, code) = run(&[
        "loadgen",
        "--addr",
        &addr,
        "--snapshot",
        snap.to_str().unwrap(),
        "--connections",
        "2",
        "--duration-secs",
        "0.3",
    ]);
    assert_eq!(code, Some(0), "stderr: {stderr}");
    assert!(
        stdout.contains("req/s") && stdout.contains("0 errors"),
        "{stdout}"
    );

    server.kill().expect("kill server");
    let _ = server.wait();

    // Bad flags are usage errors on both subcommands.
    let (_, stderr, code) = run(&["serve", "--wat"]);
    assert_eq!(code, Some(2));
    assert!(stderr.contains("usage: cpplookup-cli serve"), "{stderr}");
    let (_, stderr, code) = run(&["loadgen", "--addr", "h:1"]);
    assert_eq!(code, Some(2));
    assert!(stderr.contains("--snapshot is required"), "{stderr}");

    let _ = std::fs::remove_file(src);
    let _ = std::fs::remove_file(snap);
}

#[test]
fn batch_rejects_directives_without_metrics_flag() {
    let path = write_temp(FIG9);
    let (stdout, _, code) = run_with_stdin(&["batch", path.to_str().unwrap()], "!class X\nE m\n");
    assert_eq!(code, Some(1));
    assert!(
        stdout.contains("edit directives require --metrics"),
        "{stdout}"
    );
    assert!(stdout.contains("E::m"), "{stdout}");
    let _ = std::fs::remove_file(path);
}
