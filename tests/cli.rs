//! End-to-end tests of the `cpplookup-cli` binary.

use std::io::Write as _;
use std::process::Command;

const FIG9: &str = "struct S { int m; };\n\
                    struct A : virtual S { int m; };\n\
                    struct B : virtual S { int m; };\n\
                    struct C : virtual A, virtual B { int m; };\n\
                    struct D : C {};\n\
                    struct E : virtual A, virtual B, D {};\n\
                    int main() { E e; e.m = 10; }\n";

fn write_temp(contents: &str) -> std::path::PathBuf {
    let mut path = std::env::temp_dir();
    path.push(format!(
        "cpplookup-cli-test-{}-{}.cpp",
        std::process::id(),
        contents.len()
    ));
    let mut f = std::fs::File::create(&path).expect("create temp file");
    f.write_all(contents.as_bytes()).expect("write temp file");
    path
}

fn run(args: &[&str]) -> (String, String, Option<i32>) {
    let out = Command::new(env!("CARGO_BIN_EXE_cpplookup-cli"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.code(),
    )
}

#[test]
fn check_reports_clean_fig9() {
    let path = write_temp(FIG9);
    let (stdout, _, code) = run(&["check", path.to_str().unwrap()]);
    assert_eq!(code, Some(0));
    assert!(stdout.contains("ok: C::m"), "{stdout}");
    assert!(stdout.contains("no diagnostics"));
    let _ = std::fs::remove_file(path);
}

#[test]
fn check_flags_ambiguity_with_exit_code_1() {
    let src = "struct A { int m; };\n\
               struct B : A {}; struct C : A {};\n\
               struct D : B, C {};\n\
               int main() { D d; d.m; }\n";
    let path = write_temp(src);
    let (stdout, _, code) = run(&["check", path.to_str().unwrap()]);
    assert_eq!(code, Some(1));
    assert!(stdout.contains("ambiguous"), "{stdout}");
    let _ = std::fs::remove_file(path);
}

#[test]
fn table_trace_layout_audit_dot_all_work() {
    let path = write_temp(FIG9);
    let p = path.to_str().unwrap();

    let (stdout, _, code) = run(&["table", p]);
    assert_eq!(code, Some(0));
    assert!(stdout.contains("E:"), "{stdout}");
    assert!(stdout.contains("C::m"));

    let (stdout, _, code) = run(&["trace", p, "m"]);
    assert_eq!(code, Some(0));
    assert!(stdout.contains("=> red (C, Ω)"), "{stdout}");

    let (stdout, _, code) = run(&["trace", p, "m", "--dot"]);
    assert_eq!(code, Some(0));
    assert!(stdout.contains("digraph trace"));

    let (stdout, _, code) = run(&["layout", p, "E"]);
    assert_eq!(code, Some(0));
    assert!(stdout.contains("layout of E"), "{stdout}");
    assert!(stdout.contains("S in E"));

    let (stdout, _, code) = run(&["audit", p]);
    assert_eq!(code, Some(0));
    assert!(stdout.contains("largest objects"), "{stdout}");

    let (stdout, _, code) = run(&["dot", p]);
    assert_eq!(code, Some(0));
    assert!(stdout.contains("digraph chg"));

    let _ = std::fs::remove_file(path);
}

fn run_with_stdin(args: &[&str], input: &str) -> (String, String, Option<i32>) {
    use std::process::Stdio;
    let mut child = Command::new(env!("CARGO_BIN_EXE_cpplookup-cli"))
        .args(args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("binary runs");
    child
        .stdin
        .take()
        .expect("piped stdin")
        .write_all(input.as_bytes())
        .expect("write stdin");
    let out = child.wait_with_output().expect("binary exits");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.code(),
    )
}

#[test]
fn batch_answers_queries_and_prints_engine_stats() {
    let path = write_temp(FIG9);
    let queries = "# fig9 queries\n\
                   E m\n\
                   C m\n\
                   S m\n\n";
    let (stdout, stderr, code) = run_with_stdin(&["batch", path.to_str().unwrap()], queries);
    assert_eq!(code, Some(0), "stderr: {stderr}");
    assert!(
        stdout.contains("E::m") && stdout.contains("C::m"),
        "{stdout}"
    );
    assert!(stdout.contains("S::m"), "{stdout}");
    // Engine statistics land on stderr.
    assert!(stderr.contains("lookups: 3"), "{stderr}");
    assert!(stderr.contains("edits: 0"), "{stderr}");
    let _ = std::fs::remove_file(path);
}

#[test]
fn batch_flags_unknown_names_with_exit_code_1() {
    let path = write_temp(FIG9);
    let queries = "E m\nNoSuchClass m\nE nosuchmember\nmalformed\n";
    let (stdout, stderr, code) = run_with_stdin(&["batch", path.to_str().unwrap()], queries);
    assert_eq!(code, Some(1), "stderr: {stderr}");
    assert!(stdout.contains("no class named `NoSuchClass`"), "{stdout}");
    assert!(
        stdout.contains("no member named `nosuchmember`"),
        "{stdout}"
    );
    assert!(stdout.contains("expected `class member`"), "{stdout}");
    let _ = std::fs::remove_file(path);
}

#[test]
fn usage_errors_exit_2() {
    let (_, stderr, code) = run(&[]);
    assert_eq!(code, Some(2));
    assert!(stderr.contains("usage"));

    let path = write_temp(FIG9);
    let (_, stderr, code) = run(&["frobnicate", path.to_str().unwrap()]);
    assert_eq!(code, Some(2));
    assert!(stderr.contains("unknown command"));

    let (_, stderr, code) = run(&["check", "/nonexistent/nope.cpp"]);
    assert_eq!(code, Some(2));
    assert!(stderr.contains("cannot read"));

    let (_, stderr, code) = run(&["trace", path.to_str().unwrap()]);
    assert_eq!(code, Some(2));
    assert!(stderr.contains("usage"));
    let _ = std::fs::remove_file(path);
}
