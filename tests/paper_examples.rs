//! Every concrete claim the paper makes about its running examples,
//! checked end to end. Each test cites the paper section it reproduces.

use cpplookup::baselines::gxx::{gxx_lookup, gxx_lookup_corrected, GxxResult};
use cpplookup::chg::fixtures;
use cpplookup::subobject::isomorphism::{check_theorem1_all, enumerate_paths_to};
use cpplookup::subobject::rf::{dyn_lookup, stat_lookup, RfResolution};
use cpplookup::subobject::{defns, lookup, Resolution};
use cpplookup::{LookupOutcome, LookupTable, Path, Subobject, SubobjectGraph};

/// Section 1: "the lookup p->m is ambiguous in Figure 1(a) but not in
/// Figure 2(a) ... an E object has two subobjects of class A in the first
/// case, but only one subobject of class A in the second case."
#[test]
fn section1_figures_1_and_2() {
    let g1 = fixtures::fig1();
    let e1 = g1.class_by_name("E").unwrap();
    let a1 = g1.class_by_name("A").unwrap();
    let m1 = g1.member_by_name("m").unwrap();
    let sg1 = SubobjectGraph::build(&g1, e1, 1000).unwrap();
    assert_eq!(sg1.subobjects_of_class(a1).count(), 2);
    assert!(matches!(
        LookupTable::build(&g1).lookup(e1, m1),
        LookupOutcome::Ambiguous { .. }
    ));

    let g2 = fixtures::fig2();
    let e2 = g2.class_by_name("E").unwrap();
    let a2 = g2.class_by_name("A").unwrap();
    let m2 = g2.member_by_name("m").unwrap();
    let sg2 = SubobjectGraph::build(&g2, e2, 1000).unwrap();
    assert_eq!(sg2.subobjects_of_class(a2).count(), 1);
    assert!(LookupTable::build(&g2).lookup(e2, m2).is_resolved());
}

/// Section 3, "Example": the fixed parts and equivalences of the four
/// A-to-H paths in Figure 3.
#[test]
fn section3_fixed_parts_and_equivalence() {
    let g = fixtures::fig3();
    let fixed = |p: &str| {
        Path::parse(&g, p)
            .unwrap()
            .fixed(&g)
            .display(&g)
            .to_string()
    };
    assert_eq!(fixed("ABDFH"), "ABD");
    assert_eq!(fixed("ABDGH"), "ABD");
    assert_eq!(fixed("ACDFH"), "ACD");
    assert_eq!(fixed("ACDGH"), "ACD");
    let eq = |p: &str, q: &str| {
        Path::parse(&g, p)
            .unwrap()
            .equivalent(&Path::parse(&g, q).unwrap(), &g)
    };
    assert!(eq("ABDFH", "ABDGH"));
    assert!(eq("ACDFH", "ACDGH"));
    assert!(!eq("ABDFH", "ACDFH"));
}

/// Section 3, "The Dominance Rule" example: GH hides ABDGH but not
/// ABDFH; GH dominates ABDFH; FH dominates ABDGH.
#[test]
fn section3_dominance_examples() {
    let g = fixtures::fig3();
    let h = g.class_by_name("H").unwrap();
    let sg = SubobjectGraph::build(&g, h, 1000).unwrap();
    let path = |p: &str| Path::parse(&g, p).unwrap();
    assert!(path("GH").hides(&path("ABDGH")));
    assert!(!path("GH").hides(&path("ABDFH")));
    let id = |p: &str| sg.id_of(&Subobject::from_path(&g, &path(p))).unwrap();
    assert!(sg.dominates(id("GH"), id("ABDFH")));
    assert!(sg.dominates(id("FH"), id("ABDGH")));
}

/// Section 3, "Formalizing Member Lookup" example: the Defns sets of H
/// and the lookup results.
#[test]
fn section3_defns_and_lookup() {
    let g = fixtures::fig3();
    let h = g.class_by_name("H").unwrap();
    let sg = SubobjectGraph::build(&g, h, 1000).unwrap();
    let foo = g.member_by_name("foo").unwrap();
    let bar = g.member_by_name("bar").unwrap();
    // Defns(H, foo) = {{ABDFH, ABDGH}, {ACDFH, ACDGH}, {GH}} — three
    // equivalence classes.
    assert_eq!(defns(&g, &sg, foo).len(), 3);
    // Defns(H, bar) = {{EFH}, {DFH, DGH}, {GH}}.
    assert_eq!(defns(&g, &sg, bar).len(), 3);
    match lookup(&g, &sg, foo) {
        Resolution::Subobject(u) => {
            assert_eq!(sg.subobject(u).display(&g).to_string(), "GH")
        }
        other => panic!("lookup(H, foo) = {other:?}"),
    }
    assert!(matches!(lookup(&g, &sg, bar), Resolution::Ambiguous(_)));
}

/// Section 4's justification for propagating blue definitions: the
/// lookup at F is ambiguous for both members, and at H the blue EF
/// definition is what keeps bar ambiguous while foo resolves.
#[test]
fn section4_blue_propagation_motivation() {
    let g = fixtures::fig3();
    let t = LookupTable::build(&g);
    let f = g.class_by_name("F").unwrap();
    let h = g.class_by_name("H").unwrap();
    let foo = g.member_by_name("foo").unwrap();
    let bar = g.member_by_name("bar").unwrap();
    assert!(matches!(t.lookup(f, foo), LookupOutcome::Ambiguous { .. }));
    assert!(matches!(t.lookup(f, bar), LookupOutcome::Ambiguous { .. }));
    assert!(t.lookup(h, foo).is_resolved(), "foo recovers at H");
    assert!(matches!(t.lookup(h, bar), LookupOutcome::Ambiguous { .. }));
}

/// Theorem 1 (Section 7.1): the ≈-class poset is isomorphic to the
/// Rossie–Friedman subobject poset, on every fixture.
#[test]
fn theorem1_on_fixtures() {
    for g in [
        fixtures::fig1(),
        fixtures::fig2(),
        fixtures::fig3(),
        fixtures::fig9(),
        fixtures::static_diamond(),
        fixtures::dominance_diamond(),
    ] {
        check_theorem1_all(&g, 1_000_000).unwrap();
    }
}

/// Section 7.1: the Rossie–Friedman dyn/stat lookups decompose into our
/// lookup plus composition.
#[test]
fn section7_rf_decomposition() {
    let g = fixtures::fig3();
    let h = g.class_by_name("H").unwrap();
    let sg = SubobjectGraph::build(&g, h, 1000).unwrap();
    let foo = g.member_by_name("foo").unwrap();
    // dyn on any receiver = lookup(H, foo) = GH.
    let fh = sg
        .id_of(&Subobject::from_path(&g, &Path::parse(&g, "FH").unwrap()))
        .unwrap();
    match dyn_lookup(&g, &sg, foo, fh).unwrap() {
        RfResolution::Subobject(so) => assert_eq!(so.display(&g).to_string(), "GH"),
        other => panic!("{other:?}"),
    }
    // stat through the F subobject: F's static lookup of foo is
    // ambiguous.
    assert_eq!(
        stat_lookup(&g, &sg, foo, fh).unwrap(),
        RfResolution::Ambiguous
    );
    // stat through the G subobject: G::foo, composed into H.
    let gh = sg
        .id_of(&Subobject::from_path(&g, &Path::parse(&g, "GH").unwrap()))
        .unwrap();
    match stat_lookup(&g, &sg, foo, gh).unwrap() {
        RfResolution::Subobject(so) => assert_eq!(so.display(&g).to_string(), "GH"),
        other => panic!("{other:?}"),
    }
}

/// Section 7.1 + Figure 9: the g++ counterexample, end to end.
#[test]
fn figure9_counterexample() {
    let g = fixtures::fig9();
    let e = g.class_by_name("E").unwrap();
    let m = g.member_by_name("m").unwrap();
    let sg = SubobjectGraph::build(&g, e, 1000).unwrap();

    // Truth (three ways): C::m.
    match LookupTable::build(&g).lookup(e, m) {
        LookupOutcome::Resolved { class, .. } => assert_eq!(g.class_name(class), "C"),
        other => panic!("{other:?}"),
    }
    match lookup(&g, &sg, m) {
        Resolution::Subobject(u) => assert_eq!(g.class_name(sg.subobject(u).class()), "C"),
        other => panic!("{other:?}"),
    }
    match gxx_lookup_corrected(&g, &sg, m) {
        GxxResult::Resolved(u) => assert_eq!(g.class_name(sg.subobject(u).class()), "C"),
        other => panic!("{other:?}"),
    }
    // The faithful g++ 2.7.2.1 strategy gets it wrong.
    assert_eq!(gxx_lookup(&g, &sg, m), GxxResult::Ambiguous);
}

/// Section 2's path notation: concatenation example "(ABC)∘(CED) =
/// ABCED" (on fig3's edges) and the path census of the H object.
#[test]
fn section2_paths() {
    let g = fixtures::fig3();
    let h = g.class_by_name("H").unwrap();
    let paths = enumerate_paths_to(&g, h, 10_000).unwrap();
    // Count paths with ldc A: exactly four (the paper's example).
    let a = g.class_by_name("A").unwrap();
    assert_eq!(paths.iter().filter(|p| p.ldc() == a).count(), 4);
    let abd = Path::parse(&g, "ABD").unwrap();
    let dgh = Path::parse(&g, "DGH").unwrap();
    assert_eq!(
        abd.concat(&dgh).display(&g).to_string(),
        "ABDGH",
        "concatenation per Section 2"
    );
}

/// The ARM quotation (Section 1): "the dominant name is used when there
/// is a choice" — the textbook dominance diamond resolves to the
/// override.
#[test]
fn arm_dominance_rule() {
    let g = fixtures::dominance_diamond();
    let bottom = g.class_by_name("Bottom").unwrap();
    let f = g.member_by_name("f").unwrap();
    match LookupTable::build(&g).lookup(bottom, f) {
        LookupOutcome::Resolved { class, .. } => assert_eq!(g.class_name(class), "Left"),
        other => panic!("{other:?}"),
    }
}
