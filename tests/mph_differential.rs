//! Differential tests of the two probe directories: the minimal
//! perfect hash directory (the serving default since the MPH tentpole)
//! must be observationally identical to the open-addressed directory it
//! replaced — same `OutcomeRef` for every live `(class, member)` pair,
//! same `NotFound` for every dead key — across the full generator
//! corpus, both statics rules, and proptest-fuzzed probe streams that
//! deliberately stray outside the live id ranges.

use cpplookup::hiergen::{families, random_hierarchy, RandomConfig};
use cpplookup::prelude::*;
use proptest::prelude::*;

/// The same twelve deterministic families as the golden snapshot
/// corpus (`tests/corpus.rs`), spanning chains, diamonds, grids,
/// interface forests, the g++ trap, and seeded random hierarchies.
fn corpus() -> Vec<(&'static str, Chg)> {
    vec![
        ("chain_12", families::chain(12, None)),
        ("chain_12_virtual_3", families::chain(12, Some(3))),
        (
            "stacked_diamonds_3_nonvirtual",
            families::stacked_diamonds(3, Inheritance::NonVirtual),
        ),
        (
            "stacked_diamonds_3_virtual",
            families::stacked_diamonds(3, Inheritance::Virtual),
        ),
        (
            "stacked_diamonds_overridden_3",
            families::stacked_diamonds_overridden(3, Inheritance::Virtual),
        ),
        (
            "wide_diamond_6",
            families::wide_diamond(6, Inheritance::Virtual),
        ),
        ("pyramid_4", families::pyramid(4, Inheritance::NonVirtual)),
        ("interface_heavy_6x3", families::interface_heavy(6, 3)),
        ("grid_3x3", families::grid(3, 3)),
        ("gxx_trap_3", families::gxx_trap(3)),
        (
            "random_stress_42",
            random_hierarchy(&RandomConfig::stress(42)),
        ),
        (
            "random_realistic_20_7",
            random_hierarchy(&RandomConfig::realistic(20, 7)),
        ),
    ]
}

/// Exhaustive sweep: every pair in (and a margin beyond) the live id
/// ranges, under both statics rules, through both directories — the
/// outcomes must match pairwise, and both batch paths must match the
/// single-probe path.
#[test]
fn mph_and_open_directories_agree_on_the_full_corpus() {
    for (name, g) in corpus() {
        for statics in [StaticRule::Cpp, StaticRule::Ignore] {
            let table = LookupTable::build_with(&g, LookupOptions { statics });
            let mph = DispatchIndex::from_table(table);
            assert_eq!(mph.directory_kind(), DirectoryKind::Mph, "{name}");
            let open = mph.with_directory_kind(DirectoryKind::Open);
            assert_eq!(open.directory_kind(), DirectoryKind::Open, "{name}");
            let probes: Vec<_> = (0..g.class_count() + 3)
                .flat_map(|c| {
                    (0..g.member_name_count() + 3)
                        .map(move |m| (ClassId::from_index(c), MemberId::from_index(m)))
                })
                .collect();
            for &(c, m) in &probes {
                assert_eq!(
                    mph.lookup_ref(c, m),
                    open.lookup_ref(c, m),
                    "{name} statics={statics:?} probe ({}, {})",
                    c.index(),
                    m.index()
                );
            }
            let mut mph_batch = Vec::new();
            let mut open_batch = Vec::new();
            mph.lookup_batch_into(&probes, &mut mph_batch);
            open.lookup_batch_into(&probes, &mut open_batch);
            assert_eq!(mph_batch.len(), probes.len(), "{name}");
            assert_eq!(mph_batch, open_batch, "{name} statics={statics:?}");
            for (r, &(c, m)) in mph_batch.iter().zip(&probes) {
                assert_eq!(r, &mph.lookup_ref(c, m), "{name} batch vs single");
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Fuzzed dead keys: probes drawn far outside the live ranges (and
    /// landing on dead pairs inside them) must come back `NotFound`
    /// from the MPH directory — an alien key hashes *somewhere* in
    /// range, so this is exactly the key-compare rejection working —
    /// and both directories must agree probe for probe.
    #[test]
    fn fuzzed_probes_never_diverge(
        family in 0usize..12,
        raw in proptest::collection::vec((any::<u16>(), any::<u16>()), 1..128),
    ) {
        let (name, g) = corpus().swap_remove(family);
        let mph = DispatchIndex::from_table(LookupTable::build(&g));
        let open = mph.with_directory_kind(DirectoryKind::Open);
        let probes: Vec<_> = raw
            .iter()
            .map(|&(c, m)| {
                (
                    ClassId::from_index(c as usize),
                    MemberId::from_index(m as usize),
                )
            })
            .collect();
        let mut batch = Vec::new();
        mph.lookup_batch_into(&probes, &mut batch);
        for (i, &(c, m)) in probes.iter().enumerate() {
            let got = mph.lookup_ref(c, m);
            prop_assert_eq!(&got, &open.lookup_ref(c, m), "{} probe {}", name, i);
            prop_assert_eq!(&got, &batch[i], "{} batch probe {}", name, i);
            if mph.entry(c, m).is_none() {
                prop_assert_eq!(&got, &OutcomeRef::NotFound, "{} dead key {}", name, i);
            }
        }
    }
}
