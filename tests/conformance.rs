//! Cross-backend conformance: every lookup implementation in the
//! workspace is run over the shared corpus of paper-figure hierarchies
//! (`cpplookup::conformance`), at the conformance level each backend
//! claims.
//!
//! The same corpus that proves the paper's algorithm correct also pins
//! the historical g++ bug: the faithful BFS baseline is *required* to
//! diverge on the Figure 9 counterexample.

use cpplookup::baselines::adapters::{GxxAdapter, NaiveLookup, TopoShortcut};
use cpplookup::conformance::{check_backend, Conformance};
use cpplookup::prelude::*;
use cpplookup::LazyLookup;

fn assert_conforms<F>(name: &str, level: Conformance, make: F)
where
    F: for<'a> FnMut(&'a cpplookup::Chg) -> Box<dyn MemberLookup + 'a>,
{
    if let Err(failures) = check_backend(level, make) {
        panic!(
            "{name} failed {} queries:\n  {}",
            failures.len(),
            failures.join("\n  ")
        );
    }
}

#[test]
fn eager_table_conforms() {
    assert_conforms("LookupTable::build", Conformance::Full, |g| {
        Box::new(LookupTable::build(g))
    });
}

#[test]
fn parallel_table_conforms() {
    assert_conforms("LookupTable::build_parallel", Conformance::Full, |g| {
        Box::new(LookupTable::build_parallel(g, LookupOptions::default(), 4))
    });
}

#[test]
fn lazy_lookup_conforms() {
    assert_conforms("LazyLookup", Conformance::Full, |g| {
        Box::new(LazyLookup::new(g))
    });
}

#[test]
fn engine_conforms_in_every_backing() {
    for (name, options) in [
        ("eager", EngineOptions::default()),
        ("lazy", EngineOptions::lazy()),
        ("parallel", EngineOptions::parallel(4)),
    ] {
        assert_conforms(&format!("LookupEngine[{name}]"), Conformance::Full, |g| {
            Box::new(LookupEngine::with_options(g.clone(), options))
        });
    }
}

#[test]
fn snapshot_roundtrip_conforms() {
    assert_conforms("SnapshotTable", Conformance::Full, |g| {
        Box::new(
            SnapshotTable::from_bytes(Snapshot::compile(g).into_bytes())
                .expect("corpus snapshots validate"),
        )
    });
}

#[test]
fn warmed_engine_conforms() {
    // The full serve-many pipeline: compile → bytes → load → rebuild
    // hierarchy → seed the engine cache → answer.
    assert_conforms("SnapshotTable::warm_engine", Conformance::Full, |g| {
        let snap = SnapshotTable::from_bytes(Snapshot::compile(g).into_bytes())
            .expect("corpus snapshots validate");
        Box::new(snap.warm_engine().expect("corpus hierarchies rebuild"))
    });
}

#[test]
fn naive_propagation_conforms_to_definition_9() {
    assert_conforms("NaiveLookup", Conformance::Definition9, |g| {
        Box::new(NaiveLookup::new(g))
    });
}

#[test]
fn corrected_gxx_conforms_to_definition_9() {
    assert_conforms("GxxAdapter::corrected", Conformance::Definition9, |g| {
        Box::new(GxxAdapter::corrected(g))
    });
}

#[test]
fn faithful_gxx_diverges_exactly_where_flagged() {
    assert_conforms("GxxAdapter::faithful", Conformance::GxxFaithful, |g| {
        Box::new(GxxAdapter::faithful(g))
    });
}

#[test]
fn topo_shortcut_conforms_on_unambiguous_queries() {
    assert_conforms("TopoShortcut", Conformance::NonAmbiguousOnly, |g| {
        Box::new(TopoShortcut::new(g))
    });
}
