//! Property-based tests of the snapshot backend over random
//! hierarchies: the compile → serialize → load → query pipeline must be
//! indistinguishable from the in-memory table, and *any* corruption of
//! the byte stream must surface as a structured error — never a panic,
//! never a silently wrong answer.

use cpplookup::hiergen::{random_hierarchy, RandomConfig};
use cpplookup::prelude::*;
use proptest::prelude::*;

/// A strategy producing small, ambiguity-rich hierarchies (same shape
/// as the main proptest suite's generator).
fn small_chg() -> impl Strategy<Value = Chg> {
    (
        3usize..12,   // classes
        0.0f64..0.7,  // extra_base_prob
        0.0f64..0.6,  // virtual_prob
        1usize..4,    // member pool
        0.2f64..0.6,  // member_prob
        0.0f64..0.5,  // static_prob
        any::<u64>(), // seed
    )
        .prop_map(
            |(
                classes,
                extra_base_prob,
                virtual_prob,
                member_pool,
                member_prob,
                static_prob,
                seed,
            )| {
                random_hierarchy(&RandomConfig {
                    classes,
                    extra_base_prob,
                    max_bases: 3,
                    virtual_prob,
                    member_pool,
                    member_prob,
                    static_prob,
                    seed,
                })
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Roundtrip fidelity: for every (class, member) pair of every
    /// generated hierarchy, under both statics rules, the loaded
    /// snapshot's entries equal the in-memory table's entries exactly —
    /// abstractions, `via` parents, and witness sets included.
    #[test]
    fn roundtrip_equals_in_memory_table(chg in small_chg()) {
        for statics in [StaticRule::Cpp, StaticRule::Ignore] {
            let options = LookupOptions { statics };
            let table = LookupTable::build_with(&chg, options);
            let snap = SnapshotTable::from_bytes(
                Snapshot::compile_with(&chg, options).into_bytes(),
            )
            .expect("writer output always validates");
            prop_assert_eq!(snap.options(), options);
            for c in chg.classes() {
                prop_assert_eq!(
                    snap.class_name(c),
                    Some(chg.class_name(c)),
                    "class name {}", c.index()
                );
                for m in chg.member_ids() {
                    prop_assert_eq!(
                        snap.entry(c, m),
                        table.entry(c, m).cloned(),
                        "entry ({}, {})", chg.class_name(c), chg.member_name(m)
                    );
                    prop_assert_eq!(snap.lookup(c, m), table.lookup(c, m));
                }
            }
        }
    }

    /// Rebuild fidelity: `to_chg` reconstructs a hierarchy whose
    /// recompiled snapshot is byte-identical — the topology section
    /// loses nothing.
    #[test]
    fn to_chg_recompiles_byte_identically(chg in small_chg()) {
        let snap = Snapshot::compile(&chg);
        let loaded = SnapshotTable::from_bytes(snap.as_bytes().to_vec())
            .expect("writer output always validates");
        let rebuilt = loaded.to_chg().expect("writer topology always rebuilds");
        let again = Snapshot::compile(&rebuilt);
        prop_assert_eq!(snap.as_bytes(), again.as_bytes());
    }

    /// Corruption safety, bit-flip edition: XOR-damaging any byte of a
    /// valid snapshot makes loading fail with a structured error. The
    /// call must not panic, and it must never hand back a table (which
    /// could then answer queries from damaged bytes).
    #[test]
    fn any_byte_flip_is_rejected(
        chg in small_chg(),
        position in any::<u64>(),
        mask in 0u8..255,
    ) {
        let mask = mask + 1; // 1..=255: never the identity flip
        let bytes = Snapshot::compile(&chg).into_bytes();
        let at = (position % bytes.len() as u64) as usize;
        let mut damaged = bytes;
        damaged[at] ^= mask;
        let result = std::panic::catch_unwind(|| SnapshotTable::from_bytes(damaged));
        match result {
            Ok(loaded) => prop_assert!(
                loaded.is_err(),
                "accepted a snapshot with byte {at} xor {mask:#04x}"
            ),
            Err(_) => prop_assert!(false, "panicked on byte {} xor {:#04x}", at, mask),
        }
    }

    /// Corruption safety, truncation edition: every proper prefix of a
    /// valid snapshot is rejected with an error, without panicking.
    #[test]
    fn any_truncation_is_rejected(
        chg in small_chg(),
        cut in any::<u64>(),
    ) {
        let bytes = Snapshot::compile(&chg).into_bytes();
        let len = (cut % bytes.len() as u64) as usize; // always a proper prefix
        let prefix = bytes[..len].to_vec();
        let result = std::panic::catch_unwind(|| SnapshotTable::from_bytes(prefix));
        match result {
            Ok(loaded) => prop_assert!(
                loaded.is_err(),
                "accepted a {len}-byte prefix of a {}-byte snapshot",
                bytes.len()
            ),
            Err(_) => prop_assert!(false, "panicked on a {}-byte prefix", len),
        }
    }

    /// Corruption safety, garbage edition: arbitrary byte soup never
    /// panics the loader (and, magic aside, never loads).
    #[test]
    fn arbitrary_bytes_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let result = std::panic::catch_unwind(|| SnapshotTable::from_bytes(bytes));
        match result {
            Ok(loaded) => prop_assert!(
                loaded.is_err(),
                "random bytes happened to validate (checksum collision?)"
            ),
            Err(_) => prop_assert!(false, "loader panicked on arbitrary bytes"),
        }
    }
}
