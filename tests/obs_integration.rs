//! Cross-layer observability test: the engine's cache metrics must
//! agree, to the entry, with what the incremental-invalidation theory
//! predicts for a scripted edit-then-lookup sequence.
//!
//! A lazy engine that has swept every `(class, member)` pair holds a
//! complete cache (Present *and* Absent entries). An edit then drops
//! exactly its dirty closure — `{b} ∪ derived_of(b)` crossed with the
//! affected members — so three independently obtained numbers must
//! coincide:
//!
//! 1. `entries_invalidated` as counted by the engine's metrics,
//! 2. the dirty-set size reported by the `EditApplied` trace event
//!    (with the `obs` feature), and
//! 3. the closure size recomputed here from the public `Chg` API,
//!    which is also the number of cache misses the next full sweep
//!    takes.

use std::sync::Arc;

use cpplookup::hiergen::{random_hierarchy, RandomConfig};
use cpplookup::obs;
use cpplookup::prelude::*;

/// Sweeps every `(class, member)` pair and returns the sweep's
/// `(hits, misses)` deltas.
fn sweep(engine: &LookupEngine) -> (u64, u64) {
    let before = engine.stats();
    let queries: Vec<(ClassId, MemberId)> = engine
        .chg()
        .classes()
        .flat_map(|c| engine.chg().member_ids().map(move |m| (c, m)))
        .collect();
    engine.lookup_batch(&queries);
    let after = engine.stats();
    (
        after.cache_hits - before.cache_hits,
        after.cache_misses - before.cache_misses,
    )
}

/// The dirty closure of adding an edge below `derived`, computed from
/// the *post-edit* hierarchy with the public `Chg` API only: every
/// member visible at `derived` or at any class transitively derived
/// from it.
fn edge_closure_size(engine: &LookupEngine, derived: ClassId) -> u64 {
    let chg = engine.chg();
    std::iter::once(derived)
        .chain(chg.derived_of(derived))
        .map(|d| {
            chg.member_ids()
                .filter(|&m| chg.is_member_visible(d, m))
                .count() as u64
        })
        .sum()
}

#[test]
fn cache_metrics_match_dirty_closure_across_edits() {
    let chg = random_hierarchy(&RandomConfig::realistic(120, 42));
    let pairs = (chg.class_count() * chg.member_name_count()) as u64;
    let mut engine = LookupEngine::with_options(chg, EngineOptions::lazy());
    // Full sweeps emit several events per query; size the buffer so the
    // EditApplied events at the end of the script are never dropped.
    let sink = Arc::new(obs::MemorySink::with_capacity(1 << 20));
    engine.set_event_sink(Some(sink.clone()));

    // Cold sweep: every pair misses, none hit; the cache is now total.
    let (hits, misses) = sweep(&engine);
    assert_eq!((hits, misses), (0, pairs));
    assert_eq!(engine.stats().cached_entries, pairs);

    // Warm sweep: pure hits.
    let (hits, misses) = sweep(&engine);
    assert_eq!((hits, misses), (pairs, 0));

    // Script: declare a fresh member, then splice a new inheritance
    // edge between two previously unrelated classes.
    let k3 = engine.chg().class_by_name("K3").unwrap();
    let invalidated_before = engine.stats().entries_invalidated;
    engine.add_member(k3, "obs_probe").unwrap();
    let member_invalidated = engine.stats().entries_invalidated - invalidated_before;
    // The cache held no entries for a brand-new member name, so the
    // edit invalidates nothing even though its dirty set is the whole
    // derived closure of K3.
    assert_eq!(member_invalidated, 0);
    let member_closure = 1 + engine.chg().derived_of(k3).count() as u64;

    // Sweep again: misses are exactly the new member's dirty closure
    // (the probe is Absent everywhere else, and Absent is cached too —
    // so only genuinely dirty keys recompute)... plus the new member
    // column for the previously swept classes, which was never cached.
    let fresh_column = engine.chg().class_count() as u64;
    let (_, misses) = sweep(&engine);
    assert_eq!(misses, fresh_column);
    assert!(member_closure <= fresh_column);

    // Now the edge edit, against a total cache again. Pick the first
    // pair of classes with no inheritance relation in either direction
    // (so the edit is legal) where the derived side already sees some
    // member (so the closure is nonempty).
    let (derived, base) = {
        let chg = engine.chg();
        chg.classes()
            .flat_map(|d| chg.classes().map(move |b| (d, b)))
            .find(|&(d, b)| {
                d != b
                    && !chg.is_base_of(b, d)
                    && !chg.is_base_of(d, b)
                    && chg.member_ids().any(|m| chg.is_member_visible(d, m))
            })
            .expect("a realistic hierarchy has unrelated classes")
    };
    let invalidated_before = engine.stats().entries_invalidated;
    engine
        .add_edge(derived, base, Inheritance::NonVirtual)
        .unwrap();
    let edge_invalidated = engine.stats().entries_invalidated - invalidated_before;

    // (1) metrics == (3) closure recomputed from the Chg API.
    let closure = edge_closure_size(&engine, derived);
    assert!(closure > 0, "workload edit must dirty something");
    assert_eq!(edge_invalidated, closure);

    // (3) is also the next sweep's miss count: only dirty keys recompute.
    let (hits, misses) = sweep(&engine);
    let pairs_now = (engine.chg().class_count() * engine.chg().member_name_count()) as u64;
    assert_eq!(misses, closure);
    assert_eq!(hits, pairs_now - closure);

    // (2) the EditApplied trace events carry the same numbers (events
    // only flow with the `obs` feature compiled in).
    if cfg!(feature = "obs") {
        let edits: Vec<(usize, usize)> = sink
            .events()
            .iter()
            .filter_map(|e| match *e {
                obs::Event::EditApplied {
                    dirty, invalidated, ..
                } => Some((dirty, invalidated)),
                _ => None,
            })
            .collect();
        assert_eq!(edits.len(), 2, "one event per scripted edit");
        assert_eq!(edits[0], (member_closure as usize, 0));
        assert_eq!(edits[1], (closure as usize, closure as usize));
    }
}

/// The batched compiler's build metrics: on an interface-heavy family
/// (many members, each visible in a small slice of the hierarchy) the
/// member-frontier pruning must skip a nonzero — in fact dominant —
/// share of the `|N|·|M|` pair grid, and each build must land in the
/// `build_nodes_visited_total{strategy}` family and the `build_seconds`
/// histogram. Counters are process-global, so the test works in deltas.
/// Serializes the tests that build whole tables: the build counters are
/// process-global, and delta-based assertions must not see each other's
/// builds.
static BUILD_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

#[test]
fn build_metrics_report_frontier_pruning() {
    if !cfg!(feature = "obs") {
        return; // the global build counters compile away without obs
    }
    let _serial = BUILD_LOCK.lock().unwrap();
    let registry = obs::global();
    let visited = |label: &str| {
        registry
            .counter_family("build_nodes_visited_total", "", "strategy")
            .with_label(label)
            .get()
    };
    let pruned = || registry.counter("build_members_pruned_total", "").get();
    let builds = || {
        registry
            .histogram("build_seconds", "", cpplookup::obs::Histogram::latency_ns())
            .snapshot()
            .count
    };

    let g = cpplookup::hiergen::families::interface_heavy(40, 3);
    let pairs = (g.class_count() * g.member_name_count()) as u64;
    let (visited0, pruned0, builds0) = (visited("batched"), pruned(), builds());
    let table = cpplookup::LookupTable::build(&g);
    let (dv, dp) = (visited("batched") - visited0, pruned() - pruned0);
    assert!(dp > 0, "interface-heavy families must prune");
    assert_eq!(
        dv + dp,
        pairs,
        "live pairs + pruned pairs must tile the |N|·|M| grid"
    );
    assert_eq!(dv, table.stats().entries as u64, "live pairs == entries");
    assert!(dp > dv, "interfaces are invisible to most classes");
    assert_eq!(builds() - builds0, 1, "one build_seconds observation");

    // The parallel strategy reports under its own label, same totals.
    let (par0, pruned1) = (visited("batched-parallel"), pruned());
    cpplookup::LookupTable::build_parallel(&g, Default::default(), 4);
    assert_eq!(visited("batched-parallel") - par0, dv);
    assert_eq!(pruned() - pruned1, dp);
}

#[test]
fn eager_engines_never_miss_after_edits() {
    let _serial = BUILD_LOCK.lock().unwrap();
    let chg = random_hierarchy(&RandomConfig::realistic(60, 7));
    let mut engine = LookupEngine::with_options(chg, EngineOptions::default());
    let (_, misses) = sweep(&engine);
    assert_eq!(misses, 0, "eager cache is complete from construction");

    let k2 = engine.chg().class_by_name("K2").unwrap();
    engine.add_member(k2, "probe").unwrap();
    let stats = engine.stats();
    // Eager backing recomputes the dirty set inside apply(): the member
    // edit's closure reappears as recomputed entries...
    assert_eq!(
        stats.entries_recomputed,
        1 + engine.chg().derived_of(k2).count() as u64
    );
    // ...so the very next sweep still never misses.
    let (_, misses) = sweep(&engine);
    assert_eq!(misses, 0);
}
