//! Asserts the acceptance criterion that the `DispatchIndex::lookup_ref`
//! hot path is allocation-free: a counting global allocator observes
//! zero allocations across a full warmed-up probe sweep, including
//! ambiguous hits (whose witnesses are served as pool borrows instead
//! of cloned `Vec`s).
//!
//! Lives in its own integration-test binary because installing a
//! `#[global_allocator]` is process-global and the counting wrapper
//! needs `unsafe` (the library crates `forbid(unsafe_code)`; test
//! binaries are separate crates).

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

use cpplookup::chg::fixtures;
use cpplookup::hiergen::families;
use cpplookup::prelude::*;

thread_local! {
    /// Allocations observed on this thread while [`COUNTING`] is set.
    /// Thread-local so allocator traffic from other test threads run by
    /// the harness cannot pollute the measurement.
    static ALLOCS: Cell<u64> = const { Cell::new(0) };
    static COUNTING: Cell<bool> = const { Cell::new(false) };
}

struct CountingAlloc;

// SAFETY: delegates every operation to `System`; the bookkeeping only
// touches plain thread-local `Cell`s (`try_with`: allocation during TLS
// teardown is simply not counted rather than panicking).
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let _ = COUNTING.try_with(|counting| {
            if counting.get() {
                let _ = ALLOCS.try_with(|a| a.set(a.get() + 1));
            }
        });
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let _ = COUNTING.try_with(|counting| {
            if counting.get() {
                let _ = ALLOCS.try_with(|a| a.set(a.get() + 1));
            }
        });
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

/// Runs `f` with allocation counting on and returns how many
/// allocations it performed on this thread.
fn count_allocs(f: impl FnOnce()) -> u64 {
    ALLOCS.set(0);
    COUNTING.set(true);
    f();
    COUNTING.set(false);
    ALLOCS.get()
}

#[test]
fn lookup_ref_hot_path_is_allocation_free() {
    // fig1's E::m is the paper's ambiguity; the wide diamond adds bulk
    // and more ambiguous rows. Both indexes together cover resolved,
    // ambiguous, and not-found verdicts.
    let ambiguous_g = fixtures::fig1();
    let bulk_g = families::wide_diamond(8, Inheritance::NonVirtual);
    let indexes = [
        (
            DispatchIndex::from_table(LookupTable::build(&ambiguous_g)),
            &ambiguous_g,
        ),
        (
            DispatchIndex::from_table(LookupTable::build(&bulk_g)),
            &bulk_g,
        ),
    ];
    let mut shape_counts = [0u64; 3];
    for (index, g) in &indexes {
        let mut probes: Vec<_> = g
            .classes()
            .flat_map(|c| g.member_ids().map(move |m| (c, m)))
            .collect();
        // Both fixtures declare one member visible everywhere, so add a
        // miss explicitly to cover the not-found shape.
        probes.push((
            g.classes().next().unwrap(),
            cpplookup::MemberId::from_index(g.member_name_count() + 1),
        ));
        // Warm up: fault in pages, lazily initialized TLS, anything
        // one-time — the acceptance criterion is about the steady state.
        for &(c, m) in &probes {
            std::hint::black_box(index.lookup_ref(c, m));
        }
        let allocs = count_allocs(|| {
            for _ in 0..16 {
                for &(c, m) in &probes {
                    match std::hint::black_box(index.lookup_ref(c, m)) {
                        OutcomeRef::Resolved {
                            class,
                            least_virtual,
                        } => {
                            std::hint::black_box((class, least_virtual));
                            shape_counts[0] += 1;
                        }
                        OutcomeRef::Ambiguous { witnesses } => {
                            // Walk the borrowed witness set too: this is
                            // exactly the path that used to clone a Vec.
                            for lv in witnesses.iter() {
                                std::hint::black_box(lv);
                            }
                            shape_counts[1] += 1;
                        }
                        OutcomeRef::NotFound => shape_counts[2] += 1,
                    }
                }
            }
        });
        assert_eq!(
            allocs,
            0,
            "lookup_ref allocated {allocs} times over {} probes",
            probes.len() * 16
        );
    }
    assert!(
        shape_counts.iter().all(|&n| n > 0),
        "sweep must exercise resolved/ambiguous/not-found ({shape_counts:?})"
    );
}

/// The SWAR batch path inherits the criterion: once the caller's output
/// buffer has been warmed to capacity, `lookup_batch_into` performs
/// zero allocations per stripe — the whole point of taking `&mut Vec`
/// instead of returning a fresh one.
#[test]
fn lookup_batch_into_hot_path_is_allocation_free() {
    let ambiguous_g = fixtures::fig1();
    let bulk_g = families::wide_diamond(8, Inheritance::NonVirtual);
    for g in [&ambiguous_g, &bulk_g] {
        let index = DispatchIndex::from_table(LookupTable::build(g));
        let mut probes: Vec<_> = g
            .classes()
            .flat_map(|c| g.member_ids().map(move |m| (c, m)))
            .collect();
        // A guaranteed miss, so the batch covers the not-found shape.
        probes.push((
            g.classes().next().unwrap(),
            cpplookup::MemberId::from_index(g.member_name_count() + 1),
        ));
        let mut out = Vec::new();
        // Warm up: grows `out` to its steady-state capacity and faults
        // in anything one-time, exactly like the single-probe test.
        index.lookup_batch_into(&probes, &mut out);
        let expected: Vec<_> = probes
            .iter()
            .map(|&(c, m)| index.lookup_ref(c, m).to_outcome())
            .collect();
        let allocs = count_allocs(|| {
            for _ in 0..16 {
                index.lookup_batch_into(&probes, &mut out);
                for r in &out {
                    if let OutcomeRef::Ambiguous { witnesses } = r {
                        for lv in witnesses.iter() {
                            std::hint::black_box(lv);
                        }
                    }
                }
                std::hint::black_box(out.len());
            }
        });
        assert_eq!(
            allocs,
            0,
            "lookup_batch_into allocated {allocs} times over {} probes × 16",
            probes.len()
        );
        // And the reused buffer still holds the right answers.
        let got: Vec<_> = out.iter().map(|r| r.to_outcome()).collect();
        assert_eq!(got, expected);
    }
}

/// Contrast case documenting *why* `lookup_ref` exists: the owned
/// `lookup` necessarily allocates on ambiguous hits (it materializes
/// the witness `Vec`), which is exactly what the ref path avoids.
#[test]
fn owned_lookup_allocates_on_ambiguous_hits() {
    let g = fixtures::fig1();
    let index = DispatchIndex::from_table(LookupTable::build(&g));
    let e = g.class_by_name("E").unwrap();
    let m = g.member_by_name("m").unwrap();
    assert!(matches!(
        index.lookup_ref(e, m),
        OutcomeRef::Ambiguous { .. }
    ));
    let allocs = count_allocs(|| {
        std::hint::black_box(index.lookup(e, m));
    });
    assert!(allocs > 0, "owned ambiguous lookup should allocate");
}
