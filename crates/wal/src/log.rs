//! The log file: header, crash recovery, and the appending writer.
//!
//! A log file is a 16-byte header followed by record frames:
//!
//! ```text
//! ┌──────────────────────────┐ 0
//! │ magic      "CPLKWAL1"    │
//! │ version    u16 LE        │
//! │ endian tag u16 LE 0x1F2E │
//! │ header crc u32 LE        │  low half of checksum64(bytes 0..12)
//! ├──────────────────────────┤ 16
//! │ record frames …          │  see [`crate::record`]
//! └──────────────────────────┘
//! ```
//!
//! Recovery is deliberately two-faced:
//!
//! * [`recover`] is *lenient*: it returns the longest valid record
//!   prefix plus a classification of whatever follows. A torn tail is
//!   the normal aftermath of a crash mid-append, so it is data to act
//!   on (truncate and continue), not an error.
//! * [`read_all`] is *strict*: any damage anywhere — torn tail
//!   included — is a structured [`WalError`] localizing the damage.
//!   Verification paths (compaction's read-back, the corruption
//!   proptests) use this face.

use std::fs::{File, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{SystemTime, UNIX_EPOCH};

use cpplookup_chg::checksum::checksum64;
use cpplookup_obs::Counter;

use crate::record::{encode_frame, parse_frames, Stamped, WalRecord};
use crate::WalError;

/// The first eight bytes of every log file.
pub const MAGIC: [u8; 8] = *b"CPLKWAL1";

/// The log format version this build reads and writes.
pub const VERSION: u16 = 1;

/// Endianness canary (the snapshot container's value, for the same
/// reason: a byte-swapped reader must bail, not misread every field).
pub const ENDIAN_TAG: u16 = 0x1F2E;

/// Fixed header size in bytes.
pub const HEADER_LEN: usize = 16;

/// Builds the 16-byte header.
fn header_bytes() -> [u8; HEADER_LEN] {
    let mut h = [0u8; HEADER_LEN];
    h[0..8].copy_from_slice(&MAGIC);
    h[8..10].copy_from_slice(&VERSION.to_le_bytes());
    h[10..12].copy_from_slice(&ENDIAN_TAG.to_le_bytes());
    let crc = checksum64(&h[0..12]) as u32;
    h[12..16].copy_from_slice(&crc.to_le_bytes());
    h
}

/// Checks a complete header, classifying every mismatch.
fn check_header(h: &[u8]) -> Result<(), WalError> {
    let bad = |reason: String| WalError::BadHeader { reason };
    if h[0..8] != MAGIC {
        return Err(bad(format!("bad magic {:02x?}", &h[0..8])));
    }
    let version = u16::from_le_bytes(h[8..10].try_into().unwrap());
    if version != VERSION {
        return Err(bad(format!(
            "log version {version}, this build reads {VERSION}"
        )));
    }
    let endian = u16::from_le_bytes(h[10..12].try_into().unwrap());
    if endian != ENDIAN_TAG {
        return Err(bad(format!(
            "endian tag 0x{endian:04x}, expected 0x{ENDIAN_TAG:04x}"
        )));
    }
    let crc = u32::from_le_bytes(h[12..16].try_into().unwrap());
    if crc != checksum64(&h[0..12]) as u32 {
        return Err(bad("header checksum mismatch".to_owned()));
    }
    Ok(())
}

/// What lenient recovery found in a log image.
#[derive(Debug)]
pub struct Recovery {
    /// The longest valid record prefix, in sequence order.
    pub records: Vec<Stamped>,
    /// Bytes of the file covered by the header plus that prefix; a
    /// repairing writer truncates the file here before appending.
    pub valid_len: u64,
    /// What stopped the walk: `None` for a clean end at a record
    /// boundary, [`WalError::TornTail`] for a crash-shaped incomplete
    /// trailing frame, [`WalError::Corrupt`] /
    /// [`WalError::BadHeader`] for damage that is *not* explainable by
    /// a crashed append and deserves an operator's attention.
    pub damage: Option<WalError>,
}

/// Lenient recovery over an in-memory log image.
pub fn recover_bytes(data: &[u8]) -> Recovery {
    if data.is_empty() {
        // A freshly created (or never created) log: clean and empty.
        return Recovery {
            records: Vec::new(),
            valid_len: 0,
            damage: None,
        };
    }
    if data.len() < HEADER_LEN {
        // Killed while writing the very header: nothing was logged.
        return Recovery {
            records: Vec::new(),
            valid_len: 0,
            damage: Some(WalError::TornTail { offset: 0 }),
        };
    }
    if let Err(e) = check_header(&data[..HEADER_LEN]) {
        return Recovery {
            records: Vec::new(),
            valid_len: 0,
            damage: Some(e),
        };
    }
    let (records, consumed, damage) = parse_frames(&data[HEADER_LEN..], HEADER_LEN as u64, 0);
    Recovery {
        records,
        valid_len: HEADER_LEN as u64 + consumed,
        damage,
    }
}

/// Lenient recovery of a log file; a missing file recovers as clean
/// and empty.
///
/// # Errors
///
/// Only real I/O failures (permissions, hardware); damage is reported
/// in [`Recovery::damage`], never as an `Err`.
pub fn recover(path: &Path) -> io::Result<Recovery> {
    match std::fs::read(path) {
        Ok(data) => Ok(recover_bytes(&data)),
        Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(recover_bytes(&[])),
        Err(e) => Err(e),
    }
}

/// Strict read of a log file: every record or a structured error.
///
/// # Errors
///
/// [`WalError::BadHeader`] / [`WalError::Corrupt`] /
/// [`WalError::TornTail`] exactly as recovery classifies them, plus
/// [`WalError::Io`] for real I/O failures. A missing file reads as
/// empty.
pub fn read_all(path: &Path) -> Result<Vec<Stamped>, WalError> {
    let recovery = recover(path).map_err(WalError::Io)?;
    match recovery.damage {
        None => Ok(recovery.records),
        Some(damage) => Err(damage),
    }
}

/// Append counters, resolved once per writer so the append path never
/// touches the registry lock.
pub(crate) struct WalCounters {
    records: Arc<Counter>,
    bytes: Arc<Counter>,
    fsyncs: Arc<Counter>,
}

impl WalCounters {
    pub(crate) fn new() -> WalCounters {
        let obs = cpplookup_obs::global();
        WalCounters {
            records: obs.counter("wal_records_total", "records appended to the edit log"),
            bytes: obs.counter("wal_bytes_written_total", "bytes appended to the edit log"),
            fsyncs: obs.counter("wal_fsyncs_total", "edit-log fsync calls"),
        }
    }
}

/// The appending writer: assigns sequence numbers and timestamps,
/// writes whole frames, and fsyncs in batches.
///
/// Durability policy: with `fsync_every = n`, at most `n - 1` acked
/// appends can be lost to a power failure (a kill of the process alone
/// loses nothing — the page cache survives). `n = 1` fsyncs every
/// append; `n = 0` never fsyncs implicitly (callers use
/// [`sync`](WalWriter::sync)).
pub struct WalWriter {
    file: File,
    path: PathBuf,
    len: u64,
    next_seq: u64,
    fsync_every: usize,
    unsynced: usize,
    counters: WalCounters,
}

impl WalWriter {
    /// Opens (creating if missing) the log at `path`, recovering its
    /// contents: a torn tail left by a crash is truncated away and the
    /// writer positions itself after the last valid record. Returns
    /// the writer plus the recovered record prefix for the caller to
    /// replay.
    ///
    /// # Errors
    ///
    /// [`WalError::BadHeader`] / [`WalError::Corrupt`] are refused
    /// rather than repaired — unlike a torn tail they are not
    /// explainable by a crash, and silently truncating would destroy
    /// data an operator might recover. [`WalError::Io`] for I/O
    /// failures.
    pub fn open(path: &Path, fsync_every: usize) -> Result<(WalWriter, Vec<Stamped>), WalError> {
        let recovery = recover(path).map_err(WalError::Io)?;
        match recovery.damage {
            None | Some(WalError::TornTail { .. }) => {}
            Some(damage) => return Err(damage),
        }
        let file = OpenOptions::new()
            .create(true)
            .truncate(false)
            .read(true)
            .write(true)
            .open(path)
            .map_err(WalError::Io)?;
        // Repair: drop the torn tail (or the whole pre-header fragment)
        // and make sure the header exists.
        file.set_len(recovery.valid_len).map_err(WalError::Io)?;
        let mut len = recovery.valid_len;
        if len < HEADER_LEN as u64 {
            let mut f = &file;
            f.write_all(&header_bytes()).map_err(WalError::Io)?;
            f.sync_all().map_err(WalError::Io)?;
            len = HEADER_LEN as u64;
        }
        use std::io::Seek;
        let mut file = file;
        file.seek(io::SeekFrom::Start(len)).map_err(WalError::Io)?;
        let next_seq = recovery.records.last().map_or(0, |r| r.seq) + 1;
        Ok((
            WalWriter {
                file,
                path: path.to_owned(),
                len,
                next_seq,
                fsync_every,
                unsynced: 0,
                counters: WalCounters::new(),
            },
            recovery.records,
        ))
    }

    /// The log file's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Bytes in the log (header included).
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Whether the log holds no records.
    pub fn is_empty(&self) -> bool {
        self.len <= HEADER_LEN as u64
    }

    /// The sequence number the last append used (0 = none yet).
    pub fn last_seq(&self) -> u64 {
        self.next_seq - 1
    }

    /// Burns and returns the next sequence number without writing a
    /// record — compaction uses this to give a captured checkpoint an
    /// identity that orders *before* any append that races it.
    pub fn reserve_seq(&mut self) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        seq
    }

    /// Appends one record: stamps it, writes the frame, and fsyncs if
    /// the batch policy says so. Returns the stamped record.
    ///
    /// # Errors
    ///
    /// Write/fsync failures; on error the in-memory length is not
    /// advanced, and the next open's recovery discards any partially
    /// written frame.
    pub fn append(&mut self, record: WalRecord) -> io::Result<Stamped> {
        let stamped = Stamped {
            seq: self.reserve_seq(),
            unix_nanos: unix_nanos_now(),
            record,
        };
        let frame = encode_frame(&stamped);
        self.file.write_all(&frame)?;
        self.len += frame.len() as u64;
        self.counters.records.inc();
        self.counters.bytes.add(frame.len() as u64);
        self.unsynced += 1;
        if self.fsync_every > 0 && self.unsynced >= self.fsync_every {
            self.sync()?;
        }
        Ok(stamped)
    }

    /// Flushes appended records to stable storage.
    ///
    /// # Errors
    ///
    /// fsync failures.
    pub fn sync(&mut self) -> io::Result<()> {
        if self.unsynced == 0 {
            return Ok(());
        }
        self.file.sync_data()?;
        self.counters.fsyncs.inc();
        self.unsynced = 0;
        Ok(())
    }

    /// Replaces the log's contents with `records` (already stamped, in
    /// sequence order), atomically: the new image is written beside the
    /// log, fsynced, and renamed over it. The writer continues at the
    /// end of the new image; sequence allocation never moves backwards.
    ///
    /// # Errors
    ///
    /// I/O failures; on error the original log is untouched.
    pub(crate) fn rewrite(&mut self, records: &[Stamped]) -> io::Result<()> {
        let tmp = self.path.with_extension("rewrite");
        let mut image = header_bytes().to_vec();
        for r in records {
            image.extend_from_slice(&encode_frame(r));
        }
        {
            let mut f = File::create(&tmp)?;
            f.write_all(&image)?;
            f.sync_all()?;
        }
        std::fs::rename(&tmp, &self.path)?;
        let file = OpenOptions::new().read(true).write(true).open(&self.path)?;
        use std::io::Seek;
        let mut file = file;
        file.seek(io::SeekFrom::Start(image.len() as u64))?;
        self.file = file;
        self.len = image.len() as u64;
        self.next_seq = self.next_seq.max(records.last().map_or(0, |r| r.seq) + 1);
        self.unsynced = 0;
        Ok(())
    }
}

/// Wall-clock nanoseconds since the Unix epoch.
pub(crate) fn unix_nanos_now() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "cpplookup-wal-test-{name}-{}-{:x}",
            std::process::id(),
            unix_nanos_now()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("wal.log")
    }

    fn edit(t: &str, d: &str) -> WalRecord {
        WalRecord::Edit {
            tenant: t.into(),
            directive: d.into(),
        }
    }

    #[test]
    fn open_append_reopen_preserves_records() {
        let path = tmp("reopen");
        let (mut w, recovered) = WalWriter::open(&path, 1).unwrap();
        assert!(recovered.is_empty());
        let a = w.append(edit("t", "class A")).unwrap();
        let b = w.append(edit("t", "class B")).unwrap();
        assert_eq!((a.seq, b.seq), (1, 2));
        drop(w);
        let (w2, recovered) = WalWriter::open(&path, 1).unwrap();
        assert_eq!(recovered, vec![a, b]);
        assert_eq!(w2.last_seq(), 2);
        std::fs::remove_dir_all(path.parent().unwrap()).ok();
    }

    #[test]
    fn torn_tail_is_truncated_on_open() {
        let path = tmp("torn");
        let (mut w, _) = WalWriter::open(&path, 1).unwrap();
        let a = w.append(edit("t", "class A")).unwrap();
        w.append(edit("t", "class B")).unwrap();
        let full = std::fs::read(&path).unwrap();
        drop(w);
        // Chop mid-way through the second record.
        std::fs::write(&path, &full[..full.len() - 3]).unwrap();
        let (w2, recovered) = WalWriter::open(&path, 1).unwrap();
        assert_eq!(recovered, vec![a]);
        // The torn bytes are gone; appending continues cleanly.
        drop(w2);
        let strict = read_all(&path).unwrap();
        assert_eq!(strict.len(), 1);
        std::fs::remove_dir_all(path.parent().unwrap()).ok();
    }

    #[test]
    fn corrupt_body_is_refused_on_open_but_recovers_a_prefix() {
        let path = tmp("corrupt");
        let (mut w, _) = WalWriter::open(&path, 1).unwrap();
        w.append(edit("t", "class A")).unwrap();
        w.append(edit("t", "class B")).unwrap();
        drop(w);
        let mut data = std::fs::read(&path).unwrap();
        let mid = HEADER_LEN + 10;
        data[mid] ^= 0x40;
        std::fs::write(&path, &data).unwrap();
        assert!(matches!(
            WalWriter::open(&path, 1),
            Err(WalError::Corrupt { .. })
        ));
        let recovery = recover(&path).unwrap();
        assert!(recovery.records.len() <= 1);
        assert!(matches!(recovery.damage, Some(WalError::Corrupt { .. })));
        assert!(matches!(read_all(&path), Err(WalError::Corrupt { .. })));
        std::fs::remove_dir_all(path.parent().unwrap()).ok();
    }

    #[test]
    fn bad_header_is_structured() {
        let path = tmp("header");
        std::fs::write(&path, b"NOTAWAL!0123456789").unwrap();
        assert!(matches!(read_all(&path), Err(WalError::BadHeader { .. })));
        assert!(matches!(
            WalWriter::open(&path, 1),
            Err(WalError::BadHeader { .. })
        ));
        std::fs::remove_dir_all(path.parent().unwrap()).ok();
    }

    #[test]
    fn missing_file_reads_as_empty() {
        let path = tmp("missing");
        assert!(read_all(&path).unwrap().is_empty());
        std::fs::remove_dir_all(path.parent().unwrap()).ok();
    }

    #[test]
    fn batched_fsync_counts() {
        let path = tmp("fsync");
        let (mut w, _) = WalWriter::open(&path, 4).unwrap();
        for i in 0..10 {
            w.append(edit("t", &format!("class C{i}"))).unwrap();
        }
        w.sync().unwrap();
        assert_eq!(w.last_seq(), 10);
        std::fs::remove_dir_all(path.parent().unwrap()).ok();
    }
}
