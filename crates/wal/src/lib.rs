//! Durable write-ahead edit log for the member-lookup serving stack.
//!
//! The serving farm (`cpplookup-server`) applies tenant edits to an
//! in-memory [`Chg`](cpplookup_chg) behind a published index; without a
//! log, a restart forgets every edit since the tenant's snapshot was
//! compiled. This crate supplies the missing durability layer and the
//! shipping lane that replication rides on:
//!
//! * [`record`] — the record types ([`WalRecord`], [`Stamped`]) and the
//!   checksummed, length-prefixed frame codec. Framing mirrors the wire
//!   protocol so one set of corruption arguments covers both.
//! * [`log`] — the file format (header + frames), lenient crash
//!   [`recovery`](log::recover) vs strict [`read_all`](log::read_all),
//!   and the batch-fsync [`WalWriter`].
//! * [`store`] — [`WalStore`], the shared handle a server hangs onto:
//!   thread-safe append, in-process tailing with blocking
//!   [`wait`](WalStore::wait), and the atomic compaction
//!   [`rewrite`](WalStore::rewrite).
//! * [`tail`] — [`FileTailer`], the cross-process follower's view: poll
//!   a log file another process is appending to, tolerate its torn
//!   in-flight tail, and surface only never-seen records.
//!
//! Design rules the rest of the stack leans on:
//!
//! * **Append before apply.** The server appends the edit record and
//!   then applies the directive, so a record can describe an edit the
//!   engine rejects — but rejection is deterministic, so every
//!   replayer skips exactly the same records and converges.
//! * **Sequence numbers are identity.** They live in the record body,
//!   are strictly increasing for the log's lifetime, and survive
//!   compaction rewrites; a tailer dedupes by `seq` alone.
//! * **Damage is data.** A torn tail is the expected shape of a crash
//!   and is repaired by truncation; anything else (bad header, bit
//!   rot, non-monotonic sequence) is a structured [`WalError`] that
//!   localizes the damage and is never repaired silently.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod log;
pub mod record;
pub mod store;
pub mod tail;

pub use log::{read_all, recover, recover_bytes, Recovery, WalWriter};
pub use record::{Stamped, WalRecord, MAX_RECORD};
pub use store::{TailCursor, WalStore};
pub use tail::FileTailer;

/// Everything that can go wrong opening or reading a log.
#[derive(Debug)]
pub enum WalError {
    /// A real I/O failure (permissions, disk, …) — not a format issue.
    Io(std::io::Error),
    /// The 16-byte header is present but wrong: bad magic, unsupported
    /// version, foreign endianness, or a failed header checksum. Never
    /// repaired automatically.
    BadHeader {
        /// What exactly was wrong with the header.
        reason: String,
    },
    /// A record's bytes are all present but wrong — impossible length,
    /// checksum mismatch, undecodable body, or a sequence number that
    /// does not advance. Damage is localized to the record starting at
    /// `offset`; everything before it was recovered intact.
    Corrupt {
        /// Absolute file offset of the damaged record's frame.
        offset: u64,
        /// What exactly was wrong with it.
        reason: String,
    },
    /// The file ends partway through a frame — the signature of a
    /// crash mid-append. [`WalWriter::open`] repairs this by
    /// truncating to `offset`.
    TornTail {
        /// Absolute file offset of the incomplete trailing frame.
        offset: u64,
    },
}

impl std::fmt::Display for WalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WalError::Io(e) => write!(f, "edit log I/O error: {e}"),
            WalError::BadHeader { reason } => write!(f, "edit log header invalid: {reason}"),
            WalError::Corrupt { offset, reason } => {
                write!(f, "edit log corrupt at offset {offset}: {reason}")
            }
            WalError::TornTail { offset } => {
                write!(
                    f,
                    "edit log torn at offset {offset} (incomplete trailing record)"
                )
            }
        }
    }
}

impl std::error::Error for WalError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WalError::Io(e) => Some(e),
            _ => None,
        }
    }
}
