//! [`FileTailer`]: a cross-process follower's view of a log file.
//!
//! A follower process cannot share a [`WalStore`](crate::WalStore)
//! with the leader, so it re-reads the log file on every poll and
//! filters by sequence number. Two kinds of "damage" are *normal* from
//! this vantage point and are tolerated silently:
//!
//! * a torn tail — the leader is mid-append; the complete prefix is
//!   delivered and the tail is retried next poll;
//! * a missing file — the leader has not created the log yet (or a
//!   compaction rename is in flight); the poll is simply empty.
//!
//! Real damage — bad header, bit rot, non-monotonic sequences — is an
//! error: a follower must stop and report rather than guess.

use std::path::{Path, PathBuf};

use crate::log::recover_bytes;
use crate::record::Stamped;
use crate::WalError;

/// Polls a log file some other process appends to, delivering each
/// record exactly once (by sequence number).
pub struct FileTailer {
    path: PathBuf,
    last_seq: u64,
}

impl FileTailer {
    /// A tailer over `path` delivering records with sequence numbers
    /// after `from_seq` (0 = everything).
    pub fn new(path: &Path, from_seq: u64) -> FileTailer {
        FileTailer {
            path: path.to_owned(),
            last_seq: from_seq,
        }
    }

    /// Sequence number of the last delivered record.
    pub fn last_seq(&self) -> u64 {
        self.last_seq
    }

    /// Reads the file and returns records not yet delivered. Empty if
    /// the file is missing or nothing new has been appended.
    ///
    /// # Errors
    ///
    /// [`WalError::Io`] for real I/O failures, [`WalError::BadHeader`]
    /// / [`WalError::Corrupt`] for non-crash-shaped damage. A torn
    /// tail is *not* an error here.
    pub fn poll(&mut self) -> Result<Vec<Stamped>, WalError> {
        let data = match std::fs::read(&self.path) {
            Ok(d) => d,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
            Err(e) => return Err(WalError::Io(e)),
        };
        let recovery = recover_bytes(&data);
        match recovery.damage {
            None | Some(WalError::TornTail { .. }) => {}
            Some(damage) => return Err(damage),
        }
        let fresh: Vec<Stamped> = recovery
            .records
            .into_iter()
            .filter(|r| r.seq > self.last_seq)
            .collect();
        if let Some(last) = fresh.last() {
            self.last_seq = last.seq;
        }
        Ok(fresh)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::WalRecord;
    use crate::WalWriter;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "cpplookup-waltail-test-{name}-{}-{:x}",
            std::process::id(),
            crate::log::unix_nanos_now()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("wal.log")
    }

    fn edit(d: &str) -> WalRecord {
        WalRecord::Edit {
            tenant: "t".into(),
            directive: d.into(),
        }
    }

    #[test]
    fn tails_appends_exactly_once_and_tolerates_torn_tails() {
        let path = tmp("tail");
        let mut tailer = FileTailer::new(&path, 0);
        assert!(tailer.poll().unwrap().is_empty(), "missing file is empty");
        let (mut w, _) = WalWriter::open(&path, 1).unwrap();
        w.append(edit("class A")).unwrap();
        assert_eq!(tailer.poll().unwrap().len(), 1);
        assert!(tailer.poll().unwrap().is_empty());
        w.append(edit("class B")).unwrap();
        w.append(edit("class C")).unwrap();
        drop(w);
        // Simulate the leader mid-append: chop bytes off the tail.
        let full = std::fs::read(&path).unwrap();
        std::fs::write(&path, &full[..full.len() - 5]).unwrap();
        let fresh = tailer.poll().unwrap();
        assert_eq!(fresh.len(), 1, "only the complete record is delivered");
        assert_eq!(fresh[0].seq, 2);
        // The append "completes": the whole record arrives.
        std::fs::write(&path, &full).unwrap();
        let fresh = tailer.poll().unwrap();
        assert_eq!(fresh.len(), 1);
        assert_eq!(fresh[0].seq, 3);
        std::fs::remove_dir_all(path.parent().unwrap()).ok();
    }

    #[test]
    fn corruption_stops_the_tailer_with_a_structured_error() {
        let path = tmp("corrupt");
        let (mut w, _) = WalWriter::open(&path, 1).unwrap();
        w.append(edit("class A")).unwrap();
        drop(w);
        let mut data = std::fs::read(&path).unwrap();
        let n = data.len();
        data[n - 9] ^= 0x01; // inside the record body
        std::fs::write(&path, &data).unwrap();
        let mut tailer = FileTailer::new(&path, 0);
        assert!(matches!(tailer.poll(), Err(WalError::Corrupt { .. })));
        std::fs::remove_dir_all(path.parent().unwrap()).ok();
    }
}
