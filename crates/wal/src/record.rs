//! Record types and the on-disk frame codec.
//!
//! Every record travels as one frame, mirroring the wire protocol's
//! framing so the same corruption arguments apply:
//!
//! ```text
//! offset  size  field
//! 0       4     len       u32 LE, length of body (1 ..= MAX_RECORD)
//! 4       len   body      seq, timestamp, kind byte, fields
//! 4+len   8     checksum  u64 LE, checksum64(body)
//! ```
//!
//! The body is `seq: u64 | unix_nanos: u64 | kind: u8 | fields`, with
//! strings as a `u16` length followed by UTF-8 bytes. The sequence
//! number is part of the *body*, not implied by file position, so a
//! compaction rewrite preserves identity and a tailer that re-reads a
//! rewritten log can dedupe by `seq` alone.

use cpplookup_chg::checksum::checksum64;

use crate::WalError;

/// Hard cap on a record body; anything larger is rejected before
/// allocation (a corrupt length prefix must not become an OOM).
pub const MAX_RECORD: u32 = 1 << 20;

/// Record kind byte: [`WalRecord::Open`].
const KIND_OPEN: u8 = 1;
/// Record kind byte: [`WalRecord::Edit`].
const KIND_EDIT: u8 = 2;
/// Record kind byte: [`WalRecord::Checkpoint`].
const KIND_CHECKPOINT: u8 = 3;

/// One logical entry of the edit log.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WalRecord {
    /// A tenant was loaded (or replaced) from a snapshot file. Replay
    /// reloads the same path, so the snapshot must outlive the log —
    /// the farm treats snapshot paths as content-stable artifacts.
    Open {
        /// Tenant name.
        tenant: String,
        /// Path of the snapshot the tenant was loaded from.
        path: String,
    },
    /// One edit directive was applied (or at least attempted — see
    /// the replay rules in `cpplookup-server`'s replication module:
    /// a directive the engine deterministically rejects is skipped
    /// identically by every replayer).
    Edit {
        /// Tenant name.
        tenant: String,
        /// The directive text, in the farm's `class NAME` /
        /// `member CLASS NAME` / `edge DERIVED BASE [virtual]` grammar.
        directive: String,
    },
    /// A compaction checkpoint: the tenant's full state at this
    /// sequence number, compiled into a snapshot container. Records
    /// for the same tenant with lower sequence numbers are subsumed.
    Checkpoint {
        /// Tenant name.
        tenant: String,
        /// Path of the compiled checkpoint snapshot.
        path: String,
        /// The tenant's published index epoch at capture, for
        /// diagnostics (replay derives its own epochs).
        epoch: u64,
    },
}

impl WalRecord {
    /// The tenant this record belongs to.
    pub fn tenant(&self) -> &str {
        match self {
            WalRecord::Open { tenant, .. }
            | WalRecord::Edit { tenant, .. }
            | WalRecord::Checkpoint { tenant, .. } => tenant,
        }
    }
}

/// A record with its durable identity: the log-assigned sequence
/// number and append timestamp.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Stamped {
    /// Strictly increasing across the log's lifetime; preserved by
    /// compaction rewrites.
    pub seq: u64,
    /// Append wall-clock time, nanoseconds since the Unix epoch —
    /// the replication-lag clock.
    pub unix_nanos: u64,
    /// The record itself.
    pub record: WalRecord,
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    let bytes = s.as_bytes();
    let len = bytes.len().min(u16::MAX as usize);
    out.extend_from_slice(&(len as u16).to_le_bytes());
    out.extend_from_slice(&bytes[..len]);
}

/// Encodes the frame body (everything between the length prefix and
/// the trailing checksum).
pub(crate) fn encode_body(s: &Stamped) -> Vec<u8> {
    let mut b = Vec::with_capacity(32);
    b.extend_from_slice(&s.seq.to_le_bytes());
    b.extend_from_slice(&s.unix_nanos.to_le_bytes());
    match &s.record {
        WalRecord::Open { tenant, path } => {
            b.push(KIND_OPEN);
            put_str(&mut b, tenant);
            put_str(&mut b, path);
        }
        WalRecord::Edit { tenant, directive } => {
            b.push(KIND_EDIT);
            put_str(&mut b, tenant);
            put_str(&mut b, directive);
        }
        WalRecord::Checkpoint {
            tenant,
            path,
            epoch,
        } => {
            b.push(KIND_CHECKPOINT);
            put_str(&mut b, tenant);
            put_str(&mut b, path);
            b.extend_from_slice(&epoch.to_le_bytes());
        }
    }
    b
}

/// Encodes one full frame: length prefix, body, trailing checksum.
pub(crate) fn encode_frame(s: &Stamped) -> Vec<u8> {
    let body = encode_body(s);
    debug_assert!(body.len() <= MAX_RECORD as usize);
    let mut frame = Vec::with_capacity(body.len() + 12);
    frame.extend_from_slice(&(body.len() as u32).to_le_bytes());
    frame.extend_from_slice(&body);
    frame.extend_from_slice(&checksum64(&body).to_le_bytes());
    frame
}

/// A minimal strict cursor over a record body.
struct Cur<'a> {
    b: &'a [u8],
    at: usize,
}

impl<'a> Cur<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        match self.b.get(self.at..self.at + n) {
            Some(s) => {
                self.at += n;
                Ok(s)
            }
            None => Err(format!(
                "truncated record body at offset {} (want {n} bytes)",
                self.at
            )),
        }
    }

    fn u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, String> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, String> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn str(&mut self) -> Result<String, String> {
        let len = self.u16()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| "record string is not UTF-8".to_owned())
    }

    fn done(self) -> Result<(), String> {
        if self.at == self.b.len() {
            Ok(())
        } else {
            Err(format!(
                "{} trailing bytes after record payload",
                self.b.len() - self.at
            ))
        }
    }
}

/// Decodes a frame body (checksum already verified by the caller).
pub(crate) fn decode_body(body: &[u8]) -> Result<Stamped, String> {
    let mut c = Cur { b: body, at: 0 };
    let seq = c.u64()?;
    let unix_nanos = c.u64()?;
    let record = match c.u8()? {
        KIND_OPEN => WalRecord::Open {
            tenant: c.str()?,
            path: c.str()?,
        },
        KIND_EDIT => WalRecord::Edit {
            tenant: c.str()?,
            directive: c.str()?,
        },
        KIND_CHECKPOINT => WalRecord::Checkpoint {
            tenant: c.str()?,
            path: c.str()?,
            epoch: c.u64()?,
        },
        k => return Err(format!("unknown record kind {k}")),
    };
    c.done()?;
    Ok(Stamped {
        seq,
        unix_nanos,
        record,
    })
}

/// Walks complete frames from `data`, which starts at absolute file
/// offset `base` (records must have strictly increasing sequence
/// numbers continuing after `prev_seq`).
///
/// Returns the decoded records, the number of bytes consumed by them
/// (frames after that point are damaged or incomplete), and the damage
/// classification: `None` for a clean end at a frame boundary,
/// [`WalError::TornTail`] for an incomplete trailing frame (the
/// expected shape after a crash mid-append), or [`WalError::Corrupt`]
/// for a frame whose bytes are all present but wrong (bit rot — the
/// damage is localized to the record starting at the reported offset).
pub(crate) fn parse_frames(
    data: &[u8],
    base: u64,
    mut prev_seq: u64,
) -> (Vec<Stamped>, u64, Option<WalError>) {
    let mut out = Vec::new();
    let mut at = 0usize;
    loop {
        let offset = base + at as u64;
        let rest = &data[at..];
        if rest.is_empty() {
            return (out, at as u64, None);
        }
        if rest.len() < 4 {
            return (out, at as u64, Some(WalError::TornTail { offset }));
        }
        let len = u32::from_le_bytes(rest[..4].try_into().unwrap());
        if len == 0 || len > MAX_RECORD {
            return (
                out,
                at as u64,
                Some(WalError::Corrupt {
                    offset,
                    reason: format!("record length {len} outside 1..={MAX_RECORD}"),
                }),
            );
        }
        let need = 4 + len as usize + 8;
        if rest.len() < need {
            return (out, at as u64, Some(WalError::TornTail { offset }));
        }
        let body = &rest[4..4 + len as usize];
        let sum = u64::from_le_bytes(rest[4 + len as usize..need].try_into().unwrap());
        if sum != checksum64(body) {
            return (
                out,
                at as u64,
                Some(WalError::Corrupt {
                    offset,
                    reason: "record checksum mismatch".to_owned(),
                }),
            );
        }
        let stamped = match decode_body(body) {
            Ok(s) => s,
            Err(reason) => {
                return (out, at as u64, Some(WalError::Corrupt { offset, reason }));
            }
        };
        if stamped.seq <= prev_seq {
            return (
                out,
                at as u64,
                Some(WalError::Corrupt {
                    offset,
                    reason: format!(
                        "sequence number {} not after predecessor {prev_seq}",
                        stamped.seq
                    ),
                }),
            );
        }
        prev_seq = stamped.seq;
        out.push(stamped);
        at += need;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<Stamped> {
        vec![
            Stamped {
                seq: 1,
                unix_nanos: 11,
                record: WalRecord::Open {
                    tenant: "t".into(),
                    path: "/tmp/t.snap".into(),
                },
            },
            Stamped {
                seq: 2,
                unix_nanos: 22,
                record: WalRecord::Edit {
                    tenant: "t".into(),
                    directive: "member E fresh".into(),
                },
            },
            Stamped {
                seq: 7,
                unix_nanos: 33,
                record: WalRecord::Checkpoint {
                    tenant: "t".into(),
                    path: "/tmp/ckpt.snap".into(),
                    epoch: 4,
                },
            },
        ]
    }

    #[test]
    fn frames_roundtrip() {
        let mut data = Vec::new();
        for s in sample() {
            data.extend_from_slice(&encode_frame(&s));
        }
        let (records, consumed, damage) = parse_frames(&data, 0, 0);
        assert_eq!(records, sample());
        assert_eq!(consumed, data.len() as u64);
        assert!(damage.is_none(), "{damage:?}");
    }

    #[test]
    fn non_monotonic_seq_is_corrupt() {
        let mut data = Vec::new();
        for s in sample() {
            data.extend_from_slice(&encode_frame(&s));
        }
        let (records, _, damage) = parse_frames(&data, 0, 1);
        assert!(records.is_empty());
        assert!(matches!(damage, Some(WalError::Corrupt { offset: 0, .. })));
    }

    #[test]
    fn truncation_is_a_torn_tail_with_a_record_prefix() {
        let mut data = Vec::new();
        for s in sample() {
            data.extend_from_slice(&encode_frame(&s));
        }
        for cut in 0..data.len() {
            let (records, consumed, damage) = parse_frames(&data[..cut], 0, 0);
            assert_eq!(records, sample()[..records.len()], "cut at {cut}");
            assert!(consumed <= cut as u64);
            if consumed < cut as u64 {
                assert!(
                    matches!(damage, Some(WalError::TornTail { .. })),
                    "cut at {cut}: {damage:?}"
                );
            }
        }
    }
}
