//! [`WalStore`]: the shared, thread-safe handle a server keeps for the
//! lifetime of its log.
//!
//! The store wraps a [`WalWriter`] in a mutex and adds the two things
//! the single-threaded writer cannot give: in-process tailing (a
//! [`TailCursor`] plus a condvar so a replication fan-out thread can
//! block until there is something new to ship) and the compaction
//! [`rewrite`](WalStore::rewrite), which swaps the file atomically and
//! bumps a generation counter so every open cursor knows its byte
//! offsets went stale.

use std::path::{Path, PathBuf};
use std::sync::{Condvar, Mutex};
use std::time::Duration;

use crate::log::WalWriter;
use crate::record::{parse_frames, Stamped, WalRecord};
use crate::WalError;

/// A tail position over a store. Byte offsets are only meaningful for
/// one generation of the file; after a compaction rewrite the cursor
/// re-reads from the top and the `last_seq` filter screens out records
/// it already delivered.
#[derive(Clone, Copy, Debug)]
pub struct TailCursor {
    offset: u64,
    last_seq: u64,
    generation: u64,
}

impl TailCursor {
    /// A cursor that starts at the beginning of the log and delivers
    /// only records with sequence numbers after `from_seq` (0 = all).
    pub fn from_seq(from_seq: u64) -> TailCursor {
        TailCursor {
            offset: 0,
            last_seq: from_seq,
            // Sentinel: no real generation matches, forcing the first
            // poll to reset against the store's current file.
            generation: u64::MAX,
        }
    }

    /// Sequence number of the last record this cursor delivered (or
    /// the `from_seq` it was created with).
    pub fn last_seq(&self) -> u64 {
        self.last_seq
    }
}

struct State {
    writer: WalWriter,
    generation: u64,
}

/// Shared handle over one log file: thread-safe append, blocking tail,
/// atomic compaction rewrite.
pub struct WalStore {
    state: Mutex<State>,
    cond: Condvar,
    path: PathBuf,
}

impl WalStore {
    /// Opens (creating if missing) the log at `path` — see
    /// [`WalWriter::open`] for the recovery rules — and returns the
    /// store plus the recovered records for the caller to replay.
    ///
    /// # Errors
    ///
    /// Exactly [`WalWriter::open`]'s: I/O failures, and refused
    /// non-crash damage ([`WalError::BadHeader`] /
    /// [`WalError::Corrupt`]).
    pub fn open(path: &Path, fsync_every: usize) -> Result<(WalStore, Vec<Stamped>), WalError> {
        let (writer, recovered) = WalWriter::open(path, fsync_every)?;
        Ok((
            WalStore {
                state: Mutex::new(State {
                    writer,
                    generation: 0,
                }),
                cond: Condvar::new(),
                path: path.to_owned(),
            },
            recovered,
        ))
    }

    /// The log file's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends one record (stamping it) and wakes tailers. Honors the
    /// writer's batch-fsync policy.
    ///
    /// # Errors
    ///
    /// Write/fsync failures.
    pub fn append(&self, record: WalRecord) -> std::io::Result<Stamped> {
        let mut st = self.state.lock().unwrap();
        let stamped = st.writer.append(record)?;
        drop(st);
        self.cond.notify_all();
        Ok(stamped)
    }

    /// Forces buffered appends to stable storage.
    ///
    /// # Errors
    ///
    /// fsync failures.
    pub fn sync(&self) -> std::io::Result<()> {
        self.state.lock().unwrap().writer.sync()
    }

    /// Sequence number of the last appended record (0 = none).
    pub fn last_seq(&self) -> u64 {
        self.state.lock().unwrap().writer.last_seq()
    }

    /// Bytes currently in the log file (header included).
    pub fn len(&self) -> u64 {
        self.state.lock().unwrap().writer.len()
    }

    /// Whether the log holds no records.
    pub fn is_empty(&self) -> bool {
        self.state.lock().unwrap().writer.is_empty()
    }

    /// Burns and returns the next sequence number without writing —
    /// compaction stamps its captured checkpoints with this so they
    /// order before any append that races the capture.
    pub fn reserve_seq(&self) -> u64 {
        self.state.lock().unwrap().writer.reserve_seq()
    }

    /// The rewrite generation: bumped every [`rewrite`](Self::rewrite)
    /// so out-of-process observers can detect compactions.
    pub fn generation(&self) -> u64 {
        self.state.lock().unwrap().generation
    }

    /// Delivers records the cursor has not seen yet, without blocking.
    /// Advances the cursor past whatever is returned.
    ///
    /// # Errors
    ///
    /// I/O failures reading the file, or structured damage — possible
    /// only if the file rotted under us, since the writer validated it
    /// at open.
    pub fn poll(&self, cursor: &mut TailCursor) -> Result<Vec<Stamped>, WalError> {
        let st = self.state.lock().unwrap();
        self.poll_locked(&st, cursor)
    }

    fn poll_locked(&self, st: &State, cursor: &mut TailCursor) -> Result<Vec<Stamped>, WalError> {
        if cursor.generation != st.generation {
            // File was rewritten (or the cursor is fresh): byte offsets
            // are stale, restart from the top and dedupe by seq.
            cursor.offset = 0;
            cursor.generation = st.generation;
        }
        let end = st.writer.len();
        let start = cursor.offset.max(crate::log::HEADER_LEN as u64);
        if start >= end {
            cursor.offset = end.max(crate::log::HEADER_LEN as u64);
            return Ok(Vec::new());
        }
        let data = std::fs::read(st.writer.path()).map_err(WalError::Io)?;
        let upto = (end as usize).min(data.len());
        if (start as usize) >= upto {
            return Ok(Vec::new());
        }
        // prev_seq = 0: the slice may begin mid-history, so monotonicity
        // is anchored by the records themselves; the cursor's last_seq
        // filter handles delivery dedupe below.
        let (records, consumed, damage) = parse_frames(&data[start as usize..upto], start, 0);
        if let Some(damage) = damage {
            // The writer validated this file; mid-file damage now means
            // rot under a live process.
            return Err(damage);
        }
        cursor.offset = start + consumed;
        let fresh: Vec<Stamped> = records
            .into_iter()
            .filter(|r| r.seq > cursor.last_seq)
            .collect();
        if let Some(last) = fresh.last() {
            cursor.last_seq = last.seq;
        }
        Ok(fresh)
    }

    /// Like [`poll`](Self::poll), but blocks up to `timeout` for new
    /// records when the cursor is already caught up. Returns an empty
    /// vector on timeout.
    ///
    /// # Errors
    ///
    /// As [`poll`](Self::poll).
    pub fn wait(
        &self,
        cursor: &mut TailCursor,
        timeout: Duration,
    ) -> Result<Vec<Stamped>, WalError> {
        let mut st = self.state.lock().unwrap();
        loop {
            let fresh = self.poll_locked(&st, cursor)?;
            if !fresh.is_empty() {
                return Ok(fresh);
            }
            let (next, result) = self.cond.wait_timeout(st, timeout).unwrap();
            st = next;
            if result.timed_out() {
                return self.poll_locked(&st, cursor);
            }
        }
    }

    /// Compaction: reads the whole log strictly, hands the records to
    /// `f`, and atomically replaces the file with whatever `f` returns
    /// (which must stay in sequence order — stamps are preserved
    /// verbatim). Bumps the generation and wakes tailers so their
    /// cursors reset.
    ///
    /// # Errors
    ///
    /// Strict-read damage or I/O failures; on error the original log
    /// is untouched.
    pub fn rewrite(&self, f: impl FnOnce(Vec<Stamped>) -> Vec<Stamped>) -> Result<(), WalError> {
        let mut st = self.state.lock().unwrap();
        st.writer.sync().map_err(WalError::Io)?;
        let all = crate::log::read_all(st.writer.path())?;
        let kept = f(all);
        debug_assert!(kept.windows(2).all(|w| w[0].seq < w[1].seq));
        st.writer.rewrite(&kept).map_err(WalError::Io)?;
        st.generation += 1;
        drop(st);
        self.cond.notify_all();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "cpplookup-walstore-test-{name}-{}-{:x}",
            std::process::id(),
            crate::log::unix_nanos_now()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("wal.log")
    }

    fn edit(d: &str) -> WalRecord {
        WalRecord::Edit {
            tenant: "t".into(),
            directive: d.into(),
        }
    }

    #[test]
    fn poll_delivers_each_record_once() {
        let path = tmp("poll");
        let (store, _) = WalStore::open(&path, 1).unwrap();
        store.append(edit("class A")).unwrap();
        store.append(edit("class B")).unwrap();
        let mut cur = TailCursor::from_seq(0);
        let first = store.poll(&mut cur).unwrap();
        assert_eq!(first.len(), 2);
        assert!(store.poll(&mut cur).unwrap().is_empty());
        store.append(edit("class C")).unwrap();
        let next = store.poll(&mut cur).unwrap();
        assert_eq!(next.len(), 1);
        assert_eq!(next[0].seq, 3);
        std::fs::remove_dir_all(path.parent().unwrap()).ok();
    }

    #[test]
    fn from_seq_skips_already_seen_records() {
        let path = tmp("fromseq");
        let (store, _) = WalStore::open(&path, 1).unwrap();
        for d in ["class A", "class B", "class C"] {
            store.append(edit(d)).unwrap();
        }
        let mut cur = TailCursor::from_seq(2);
        let fresh = store.poll(&mut cur).unwrap();
        assert_eq!(fresh.len(), 1);
        assert_eq!(fresh[0].seq, 3);
        std::fs::remove_dir_all(path.parent().unwrap()).ok();
    }

    #[test]
    fn wait_times_out_empty_and_wakes_on_append() {
        let path = tmp("wait");
        let (store, _) = WalStore::open(&path, 1).unwrap();
        let mut cur = TailCursor::from_seq(0);
        assert!(store
            .wait(&mut cur, Duration::from_millis(10))
            .unwrap()
            .is_empty());
        let store = std::sync::Arc::new(store);
        let bg = {
            let store = std::sync::Arc::clone(&store);
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(30));
                store.append(edit("class W")).unwrap();
            })
        };
        let got = store.wait(&mut cur, Duration::from_secs(5)).unwrap();
        assert_eq!(got.len(), 1);
        bg.join().unwrap();
        std::fs::remove_dir_all(path.parent().unwrap()).ok();
    }

    #[test]
    fn rewrite_resets_cursors_without_redelivery() {
        let path = tmp("rewrite");
        let (store, _) = WalStore::open(&path, 1).unwrap();
        for d in ["class A", "class B", "class C", "class D"] {
            store.append(edit(d)).unwrap();
        }
        let mut cur = TailCursor::from_seq(0);
        assert_eq!(store.poll(&mut cur).unwrap().len(), 4);
        // Compact away the first two records.
        store
            .rewrite(|records| records.into_iter().filter(|r| r.seq > 2).collect())
            .unwrap();
        assert_eq!(store.generation(), 1);
        // Cursor saw everything already: rewrite must not re-deliver.
        assert!(store.poll(&mut cur).unwrap().is_empty());
        // New appends keep flowing, with seqs still increasing.
        let s = store.append(edit("class E")).unwrap();
        assert_eq!(s.seq, 5);
        let got = store.poll(&mut cur).unwrap();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].seq, 5);
        // A fresh cursor sees the compacted history plus the new tail.
        let mut fresh = TailCursor::from_seq(0);
        let all = store.poll(&mut fresh).unwrap();
        assert_eq!(all.iter().map(|r| r.seq).collect::<Vec<_>>(), vec![3, 4, 5]);
        std::fs::remove_dir_all(path.parent().unwrap()).ok();
    }

    #[test]
    fn reopen_after_rewrite_is_clean() {
        let path = tmp("reopen");
        {
            let (store, _) = WalStore::open(&path, 1).unwrap();
            for d in ["class A", "class B", "class C"] {
                store.append(edit(d)).unwrap();
            }
            store
                .rewrite(|records| records.into_iter().filter(|r| r.seq >= 3).collect())
                .unwrap();
        }
        let (store, recovered) = WalStore::open(&path, 1).unwrap();
        assert_eq!(recovered.iter().map(|r| r.seq).collect::<Vec<_>>(), vec![3]);
        assert_eq!(store.append(edit("class Z")).unwrap().seq, 4);
        std::fs::remove_dir_all(path.parent().unwrap()).ok();
    }
}
