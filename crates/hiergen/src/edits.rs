//! Seeded edit-sequence workloads for the incremental lookup engine.
//!
//! C++ hierarchies grow as a program is parsed: a new class here, a new
//! member there, an inheritance edge when a definition completes. This
//! module generates such growth histories — a base hierarchy plus a
//! sequence of [`Edit`]s that is guaranteed to apply cleanly when
//! replayed in order — for experiment E18 (incremental invalidation vs
//! full rebuild) and for the edit-sequence differential tests.
//!
//! The generator mirrors the evolving graph's state (declared member
//! names, direct-base pairs, class creation order), so no generated
//! edit is ever rejected: added edges always point from a
//! later-created class to an earlier one (creation order is
//! topological, hence acyclic), duplicate bases and conflicting member
//! declarations are resampled away.

use cpplookup_chg::{Access, Chg, ClassId, Edit, Inheritance, MemberDecl, MemberKind};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;

use crate::random::{random_hierarchy, RandomConfig};

/// Parameters for [`edit_script`].
#[derive(Clone, Debug, PartialEq)]
pub struct EditScriptConfig {
    /// The base hierarchy the edits grow from.
    pub base: RandomConfig,
    /// Number of edits to generate.
    pub edits: usize,
    /// Probability that an edit adds a new class.
    pub add_class_prob: f64,
    /// Probability that an edit declares a member (the remainder adds
    /// inheritance edges).
    pub add_member_prob: f64,
    /// Probability that an added edge is virtual.
    pub virtual_prob: f64,
    /// Probability that an added member is drawn from the base
    /// config's clash-prone `m0..` pool rather than being fresh —
    /// clashes are what make an edit's dirty set interesting.
    pub pool_member_prob: f64,
    /// RNG seed for the edit sequence (independent of the base seed).
    pub seed: u64,
}

impl Default for EditScriptConfig {
    fn default() -> Self {
        EditScriptConfig {
            base: RandomConfig::default(),
            edits: 32,
            add_class_prob: 0.25,
            add_member_prob: 0.4,
            virtual_prob: 0.2,
            pool_member_prob: 0.7,
            seed: 0,
        }
    }
}

impl EditScriptConfig {
    /// An edit history over a realistic (mostly-unambiguous) codebase:
    /// the E18 workload shape.
    pub fn realistic(classes: usize, edits: usize, seed: u64) -> Self {
        EditScriptConfig {
            base: RandomConfig::realistic(classes, seed),
            edits,
            seed: seed.wrapping_add(0x9E37_79B9),
            ..Self::default()
        }
    }

    /// An edit history over a small clash-heavy hierarchy, for
    /// differential testing of the incremental engine.
    pub fn stress(edits: usize, seed: u64) -> Self {
        EditScriptConfig {
            base: RandomConfig::stress(seed),
            edits,
            add_class_prob: 0.2,
            add_member_prob: 0.45,
            virtual_prob: 0.35,
            pool_member_prob: 0.85,
            seed: seed.wrapping_add(0x1234_5678),
        }
    }
}

/// Generates a base hierarchy and an edit sequence valid against it.
///
/// Replaying the returned edits in order (individually or as one
/// batch) against the returned [`Chg`] never fails: the generator
/// tracks the evolving graph's classes, members, and edges. Class ids
/// referenced by later edits rely on the builder's deterministic
/// id assignment — the `j`-th class created after the base gets index
/// `base_classes + j`.
pub fn edit_script(cfg: &EditScriptConfig) -> (Chg, Vec<Edit>) {
    let base = random_hierarchy(&cfg.base);
    let mut rng = SmallRng::seed_from_u64(cfg.seed);

    // Mirrored state of the evolving graph.
    let mut class_count = base.class_count();
    let mut declared: HashSet<(usize, String)> = HashSet::new();
    let mut edges: HashSet<(usize, usize)> = HashSet::new();
    for c in base.classes() {
        for &(m, _) in base.declared_members(c) {
            declared.insert((c.index(), base.member_name(m).to_string()));
        }
        for spec in base.direct_bases(c) {
            edges.insert((c.index(), spec.base.index()));
        }
    }

    let mut edits = Vec::with_capacity(cfg.edits);
    let mut fresh_classes = 0usize;
    let mut fresh_members = 0usize;
    while edits.len() < cfg.edits {
        let roll: f64 = rng.gen_range(0.0..1.0);
        if roll < cfg.add_class_prob || class_count < 2 {
            edits.push(Edit::AddClass {
                name: format!("X{fresh_classes}"),
            });
            fresh_classes += 1;
            class_count += 1;
        } else if roll < cfg.add_class_prob + cfg.add_member_prob {
            // Recent-biased target class; resample name clashes away.
            let mut placed = false;
            for _ in 0..8 {
                let a = rng.gen_range(0..class_count);
                let b = rng.gen_range(0..class_count);
                let target = a.max(b);
                let name = if rng.gen_bool(cfg.pool_member_prob) {
                    format!("m{}", rng.gen_range(0..cfg.base.member_pool.max(1)))
                } else {
                    fresh_members += 1;
                    format!("x{}", fresh_members - 1)
                };
                if declared.insert((target, name.clone())) {
                    edits.push(Edit::AddMember {
                        class: ClassId::from_index(target),
                        name,
                        decl: MemberDecl::public(MemberKind::Data),
                    });
                    placed = true;
                    break;
                }
            }
            if !placed {
                // Pool saturated around the sampled classes; grow
                // instead so the script keeps its length.
                edits.push(Edit::AddClass {
                    name: format!("X{fresh_classes}"),
                });
                fresh_classes += 1;
                class_count += 1;
            }
        } else {
            // New edge: derived strictly after base in creation order,
            // which keeps the graph acyclic by construction.
            let mut placed = false;
            for _ in 0..8 {
                let a = rng.gen_range(1..class_count);
                let b = rng.gen_range(1..class_count);
                let derived = a.max(b);
                let base_idx = rng.gen_range(0..derived);
                if edges.insert((derived, base_idx)) {
                    let inheritance = if rng.gen_bool(cfg.virtual_prob) {
                        Inheritance::Virtual
                    } else {
                        Inheritance::NonVirtual
                    };
                    edits.push(Edit::AddEdge {
                        derived: ClassId::from_index(derived),
                        base: ClassId::from_index(base_idx),
                        inheritance,
                        access: Access::Public,
                    });
                    placed = true;
                    break;
                }
            }
            if !placed {
                edits.push(Edit::AddClass {
                    name: format!("X{fresh_classes}"),
                });
                fresh_classes += 1;
                class_count += 1;
            }
        }
    }
    (base, edits)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpplookup_chg::apply_edits;

    #[test]
    fn scripts_replay_cleanly_one_edit_at_a_time() {
        for seed in 0..6 {
            let (base, edits) = edit_script(&EditScriptConfig::stress(40, seed));
            let mut g = base;
            for (i, edit) in edits.iter().enumerate() {
                g = apply_edits(&g, std::slice::from_ref(edit))
                    .unwrap_or_else(|e| panic!("seed {seed}, edit {i} ({edit:?}): {e}"));
            }
            assert_eq!(g.generation(), edits.len() as u64);
        }
    }

    #[test]
    fn scripts_replay_cleanly_as_one_batch() {
        let (base, edits) = edit_script(&EditScriptConfig::realistic(80, 50, 3));
        assert_eq!(edits.len(), 50);
        let g = apply_edits(&base, &edits).unwrap();
        assert!(g.class_count() >= base.class_count());
        assert_eq!(g.generation(), 1);
    }

    #[test]
    fn deterministic_in_seed() {
        let cfg = EditScriptConfig::realistic(40, 30, 9);
        let (_, a) = edit_script(&cfg);
        let (_, b) = edit_script(&cfg);
        assert_eq!(a, b);
    }

    #[test]
    fn produces_all_three_edit_kinds() {
        let (_, edits) = edit_script(&EditScriptConfig {
            edits: 120,
            ..EditScriptConfig::default()
        });
        assert!(edits.iter().any(|e| matches!(e, Edit::AddClass { .. })));
        assert!(edits.iter().any(|e| matches!(e, Edit::AddMember { .. })));
        assert!(edits.iter().any(|e| matches!(e, Edit::AddEdge { .. })));
    }

    #[test]
    fn new_edges_respect_creation_order() {
        let (base, edits) = edit_script(&EditScriptConfig::realistic(60, 80, 11));
        let base_classes = base.class_count();
        let mut count = base_classes;
        for edit in &edits {
            match edit {
                Edit::AddClass { .. } => count += 1,
                Edit::AddEdge { derived, base, .. } => {
                    assert!(base.index() < derived.index());
                    assert!(derived.index() < count);
                }
                Edit::AddMember { class, .. } => assert!(class.index() < count),
            }
        }
    }
}
