//! Structured hierarchy families with known analytic behaviour.
//!
//! Each family targets a specific regime of the paper's complexity
//! analysis: chains exercise depth, stacked non-virtual diamonds blow the
//! subobject graph up exponentially (experiment E9), their virtual twins
//! stay linear, grids maximize path counts, and the fan families control
//! the ambiguity rate.

use cpplookup_chg::{Chg, ChgBuilder, Inheritance};

/// A single-inheritance chain `C0 <- C1 <- ... <- C{n-1}` with member `m`
/// declared at the root `C0` (and nowhere else), using virtual edges
/// every `virtual_every`-th step when given.
///
/// Lookup of `m` anywhere is unambiguous; per-lookup cost is `Θ(depth)`.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn chain(n: usize, virtual_every: Option<usize>) -> Chg {
    assert!(n > 0, "a chain needs at least one class");
    let mut b = ChgBuilder::new();
    let root = b.class("C0");
    b.member(root, "m");
    let mut prev = root;
    for i in 1..n {
        let c = b.class(&format!("C{i}"));
        let inh = match virtual_every {
            Some(k) if k > 0 && i % k == 0 => Inheritance::Virtual,
            _ => Inheritance::NonVirtual,
        };
        b.derive(c, prev, inh).expect("fresh edge");
        prev = c;
    }
    b.finish().expect("chains are acyclic")
}

/// `k` stacked diamonds:
///
/// ```text
/// D0 (declares m)
/// |    \
/// L1    R1
/// |    /
/// D1  ... repeated k times ... Dk
/// ```
///
/// With `joins = NonVirtual` the bottom class has `Θ(2^k)` subobjects —
/// the paper's exponential-blowup scenario — and the lookup of `m` at
/// `Dk` is ambiguous for `k >= 1`. With `joins = Virtual` (the upper
/// diamond edges virtual) the count is linear and the lookup unambiguous.
pub fn stacked_diamonds(k: usize, joins: Inheritance) -> Chg {
    let mut b = ChgBuilder::new();
    let mut top = b.class("D0");
    b.member(top, "m");
    for i in 1..=k {
        let left = b.class(&format!("L{i}"));
        let right = b.class(&format!("R{i}"));
        let next = b.class(&format!("D{i}"));
        b.derive(left, top, joins).expect("fresh edge");
        b.derive(right, top, joins).expect("fresh edge");
        b.derive(next, left, Inheritance::NonVirtual)
            .expect("fresh edge");
        b.derive(next, right, Inheritance::NonVirtual)
            .expect("fresh edge");
        top = next;
    }
    b.finish().expect("diamond stacks are acyclic")
}

/// Like [`stacked_diamonds`], but every join class `Di` *overrides* `m`.
///
/// Each override kills everything above it, so the paper's killing
/// optimization (Section 4) collapses the naive propagation from
/// `Θ(2^k)` live definitions to `Θ(k)` — the ablation workload of
/// experiment E12. All lookups are unambiguous (the nearest override
/// dominates).
pub fn stacked_diamonds_overridden(k: usize, joins: Inheritance) -> Chg {
    let mut b = ChgBuilder::new();
    let mut top = b.class("D0");
    b.member(top, "m");
    for i in 1..=k {
        let left = b.class(&format!("L{i}"));
        let right = b.class(&format!("R{i}"));
        let next = b.class(&format!("D{i}"));
        b.member(next, "m");
        b.derive(left, top, joins).expect("fresh edge");
        b.derive(right, top, joins).expect("fresh edge");
        b.derive(next, left, Inheritance::NonVirtual)
            .expect("fresh edge");
        b.derive(next, right, Inheritance::NonVirtual)
            .expect("fresh edge");
        top = next;
    }
    b.finish().expect("diamond stacks are acyclic")
}

/// One diamond of the given width: a root declaring `m`, `width`
/// intermediate classes inheriting it (virtually or not), and one bottom
/// class inheriting all intermediates.
///
/// Non-virtual: the bottom object holds `width` copies of the root, so
/// the lookup of `m` there is ambiguous. Virtual: one shared root,
/// unambiguous.
pub fn wide_diamond(width: usize, root_edges: Inheritance) -> Chg {
    let mut b = ChgBuilder::new();
    let root = b.class("Root");
    b.member(root, "m");
    let bottom = b.class("Bottom");
    for i in 0..width {
        let mid = b.class(&format!("Mid{i}"));
        b.derive(mid, root, root_edges).expect("fresh edge");
        b.derive(bottom, mid, Inheritance::NonVirtual)
            .expect("fresh edge");
    }
    b.finish().expect("diamonds are acyclic")
}

/// A `layers`-deep pyramid lattice: layer 0 has one root declaring `m`;
/// each class in layer `l+1` derives from two adjacent classes of layer
/// `l`. Path counts grow binomially while the CHG stays quadratic — a
/// denser cousin of [`grid`].
pub fn pyramid(layers: usize, joins: Inheritance) -> Chg {
    assert!(layers > 0, "a pyramid needs at least one layer");
    let mut b = ChgBuilder::new();
    let mut previous = vec![b.class("P0_0")];
    b.member(previous[0], "m");
    for l in 1..layers {
        let width = l + 1;
        let mut current = Vec::with_capacity(width);
        for i in 0..width {
            let c = b.class(&format!("P{l}_{i}"));
            if i > 0 {
                b.derive(c, previous[i - 1], joins).expect("fresh edge");
            }
            if i < previous.len() {
                b.derive(c, previous[i], joins).expect("fresh edge");
            }
            current.push(c);
        }
        previous = current;
    }
    b.finish().expect("pyramids are acyclic")
}

/// An interface-heavy hierarchy: `impls` concrete classes in a
/// single-inheritance chain, each additionally "implementing" `per_class`
/// fresh interface classes (wide multiple inheritance with **no** shared
/// ancestors, so every lookup stays unambiguous). Models the
/// Java-ish style that dominates real C++ frameworks.
pub fn interface_heavy(impls: usize, per_class: usize) -> Chg {
    assert!(impls > 0, "need at least one concrete class");
    let mut b = ChgBuilder::new();
    let mut prev = b.class("Impl0");
    b.member(prev, "run");
    for i in 1..impls {
        let c = b.class(&format!("Impl{i}"));
        b.derive(c, prev, Inheritance::NonVirtual)
            .expect("fresh edge");
        for j in 0..per_class {
            let iface = b.class(&format!("I{i}_{j}"));
            b.member_with(
                iface,
                &format!("on_{i}_{j}"),
                cpplookup_chg::MemberDecl::public(cpplookup_chg::MemberKind::Function),
            )
            .expect("fresh member");
            b.derive(c, iface, Inheritance::NonVirtual)
                .expect("fresh edge");
        }
        prev = c;
    }
    b.finish().expect("interface stacks are acyclic")
}

/// A `w × h` inheritance grid: class `(i, j)` derives from `(i-1, j)` and
/// `(i, j-1)` non-virtually. Member `m` lives at the origin `(0, 0)`.
///
/// The number of paths from the origin to `(w-1, h-1)` is
/// `binomial(w+h-2, w-1)` — combinatorially explosive — and so is the
/// subobject count, while the CHG itself has only `w*h` nodes.
pub fn grid(w: usize, h: usize) -> Chg {
    assert!(w > 0 && h > 0, "grid dimensions must be positive");
    let mut b = ChgBuilder::new();
    let mut ids = vec![vec![None; h]; w];
    for i in 0..w {
        for j in 0..h {
            let c = b.class(&format!("G{i}_{j}"));
            ids[i][j] = Some(c);
            if i > 0 {
                b.derive(
                    c,
                    ids[i - 1][j].expect("built row-major"),
                    Inheritance::NonVirtual,
                )
                .expect("fresh edge");
            }
            if j > 0 {
                b.derive(
                    c,
                    ids[i][j - 1].expect("built row-major"),
                    Inheritance::NonVirtual,
                )
                .expect("fresh edge");
            }
        }
    }
    let origin = ids[0][0].expect("built");
    b.member(origin, "m");
    b.finish().expect("grids are acyclic")
}

/// `k` copies of the Figure 9 pattern stacked on top of each other: the
/// bottom of each pattern becomes the `S` of the next. Every stage's
/// lookup is unambiguous but trips the faithful g++ algorithm — a stress
/// test for baseline incorrectness at scale.
pub fn gxx_trap(k: usize) -> Chg {
    let mut b = ChgBuilder::new();
    let mut s = b.class("S0");
    b.member(s, "m");
    for i in 1..=k {
        let a = b.class(&format!("A{i}"));
        let bb = b.class(&format!("B{i}"));
        let c = b.class(&format!("C{i}"));
        let d = b.class(&format!("D{i}"));
        let e = b.class(&format!("E{i}"));
        for cls in [a, bb, c] {
            b.member(cls, "m");
        }
        b.derive(a, s, Inheritance::Virtual).expect("fresh edge");
        b.derive(bb, s, Inheritance::Virtual).expect("fresh edge");
        b.derive(c, a, Inheritance::Virtual).expect("fresh edge");
        b.derive(c, bb, Inheritance::Virtual).expect("fresh edge");
        b.derive(d, c, Inheritance::NonVirtual).expect("fresh edge");
        b.derive(e, a, Inheritance::Virtual).expect("fresh edge");
        b.derive(e, bb, Inheritance::Virtual).expect("fresh edge");
        b.derive(e, d, Inheritance::NonVirtual).expect("fresh edge");
        s = e;
    }
    b.finish().expect("traps are acyclic")
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpplookup_core::{LookupOutcome, LookupTable};
    use cpplookup_subobject::stats::measure_blowup;

    #[test]
    fn chain_shape_and_lookup() {
        let g = chain(100, Some(10));
        assert_eq!(g.class_count(), 100);
        assert_eq!(g.edge_count(), 99);
        let t = LookupTable::build(&g);
        let last = g.class_by_name("C99").unwrap();
        let m = g.member_by_name("m").unwrap();
        match t.lookup(last, m) {
            LookupOutcome::Resolved { class, .. } => {
                assert_eq!(g.class_name(class), "C0")
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn nonvirtual_diamonds_ambiguous_and_exponential() {
        let g = stacked_diamonds(5, Inheritance::NonVirtual);
        let t = LookupTable::build(&g);
        let bottom = g.class_by_name("D5").unwrap();
        let m = g.member_by_name("m").unwrap();
        assert!(matches!(
            t.lookup(bottom, m),
            LookupOutcome::Ambiguous { .. }
        ));
        let blowup = measure_blowup(&g, 100_000);
        assert!(blowup.max_subobjects.unwrap() >= 32);
    }

    #[test]
    fn virtual_diamonds_unambiguous_and_linear() {
        let g = stacked_diamonds(5, Inheritance::Virtual);
        let t = LookupTable::build(&g);
        let bottom = g.class_by_name("D5").unwrap();
        let m = g.member_by_name("m").unwrap();
        assert!(t.lookup(bottom, m).is_resolved());
        let blowup = measure_blowup(&g, 100_000);
        assert!(blowup.max_subobjects.unwrap() <= 3 * 5 + 1);
    }

    #[test]
    fn overridden_diamonds_resolve_to_nearest_override() {
        let g = stacked_diamonds_overridden(4, Inheritance::NonVirtual);
        let t = LookupTable::build(&g);
        let m = g.member_by_name("m").unwrap();
        for i in 0..=4 {
            let d = g.class_by_name(&format!("D{i}")).unwrap();
            match t.lookup(d, m) {
                LookupOutcome::Resolved { class, .. } => assert_eq!(class, d),
                other => panic!("D{i}: {other:?}"),
            }
        }
        // The side classes see the diamond top below them.
        let l2 = g.class_by_name("L2").unwrap();
        let d1 = g.class_by_name("D1").unwrap();
        match t.lookup(l2, m) {
            LookupOutcome::Resolved { class, .. } => assert_eq!(class, d1),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn wide_diamond_ambiguity_depends_on_virtuality() {
        let m_of = |g: &Chg| g.member_by_name("m").unwrap();
        let nv = wide_diamond(8, Inheritance::NonVirtual);
        let t = LookupTable::build(&nv);
        let bottom = nv.class_by_name("Bottom").unwrap();
        assert!(matches!(
            t.lookup(bottom, m_of(&nv)),
            LookupOutcome::Ambiguous { .. }
        ));
        let v = wide_diamond(8, Inheritance::Virtual);
        let t = LookupTable::build(&v);
        let bottom = v.class_by_name("Bottom").unwrap();
        assert!(t.lookup(bottom, m_of(&v)).is_resolved());
    }

    #[test]
    fn grid_paths_explode_but_lookup_resolves() {
        let g = grid(5, 5);
        assert_eq!(g.class_count(), 25);
        let t = LookupTable::build(&g);
        let corner = g.class_by_name("G4_4").unwrap();
        let m = g.member_by_name("m").unwrap();
        // Only one declaration: many paths, one subobject per path... all
        // definitions share ldc and the fixed parts differ, so ambiguous.
        assert!(matches!(
            t.lookup(corner, m),
            LookupOutcome::Ambiguous { .. }
        ));
        let blowup = measure_blowup(&g, 1_000_000);
        assert!(blowup.max_subobjects.unwrap() >= 70, "binomial growth");
    }

    #[test]
    fn pyramid_is_ambiguous_at_depth() {
        let g = pyramid(5, Inheritance::NonVirtual);
        assert_eq!(g.class_count(), 1 + 2 + 3 + 4 + 5);
        let t = LookupTable::build(&g);
        let m = g.member_by_name("m").unwrap();
        // Interior bottom classes see the root along many paths.
        let mid = g.class_by_name("P4_2").unwrap();
        assert!(matches!(t.lookup(mid, m), LookupOutcome::Ambiguous { .. }));
        // Edge classes have a single path: unambiguous.
        let corner = g.class_by_name("P4_0").unwrap();
        assert!(t.lookup(corner, m).is_resolved());
        // Virtual joins collapse everything into one shared root.
        let gv = pyramid(5, Inheritance::Virtual);
        let tv = LookupTable::build(&gv);
        let mv = gv.member_by_name("m").unwrap();
        let midv = gv.class_by_name("P4_2").unwrap();
        assert!(tv.lookup(midv, mv).is_resolved());
    }

    #[test]
    fn interface_heavy_is_clean_and_wide() {
        let g = interface_heavy(10, 3);
        assert_eq!(g.class_count(), 10 + 9 * 3);
        let t = LookupTable::build(&g);
        assert_eq!(t.stats().blue, 0, "no shared ancestors, no ambiguity");
        let last = g.class_by_name("Impl9").unwrap();
        let run = g.member_by_name("run").unwrap();
        assert!(t.lookup(last, run).is_resolved());
        // Interface members accumulate along the chain.
        let on = g.member_by_name("on_1_0").unwrap();
        assert!(t.lookup(last, on).is_resolved());
    }

    #[test]
    fn gxx_trap_resolves_at_every_stage() {
        let g = gxx_trap(3);
        let t = LookupTable::build(&g);
        let m = g.member_by_name("m").unwrap();
        for i in 1..=3 {
            let e = g.class_by_name(&format!("E{i}")).unwrap();
            match t.lookup(e, m) {
                LookupOutcome::Resolved { class, .. } => {
                    assert_eq!(g.class_name(class), format!("C{i}"));
                }
                other => panic!("stage {i}: {other:?}"),
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one class")]
    fn empty_chain_panics() {
        let _ = chain(0, None);
    }
}
