//! Seeded random hierarchy generation.
//!
//! Substitutes for the proprietary C++ codebases the paper's authors had
//! access to: class count, edge density, virtual-edge fraction, and the
//! member-name pool are all tunable, so workloads can be dialed from
//! "clean mostly-single-inheritance library" to "ambiguity-rich
//! multiple-inheritance stress test". Generation is deterministic in the
//! seed.

use cpplookup_chg::{Chg, ChgBuilder, Inheritance, MemberDecl, MemberKind};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Parameters for [`random_hierarchy`].
#[derive(Clone, Debug, PartialEq)]
pub struct RandomConfig {
    /// Number of classes.
    pub classes: usize,
    /// Probability that a non-root class takes each additional base
    /// beyond its first (up to [`max_bases`](RandomConfig::max_bases)).
    pub extra_base_prob: f64,
    /// Maximum number of direct bases per class.
    pub max_bases: usize,
    /// Probability that an inheritance edge is virtual.
    pub virtual_prob: f64,
    /// Size of the member-name pool (`m0`, `m1`, ...). Small pools create
    /// name clashes and hence ambiguity.
    pub member_pool: usize,
    /// Probability that a class declares each pool member.
    pub member_prob: f64,
    /// Probability that a declared member is static (exercises the
    /// Definition 17 rule).
    pub static_prob: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for RandomConfig {
    fn default() -> Self {
        RandomConfig {
            classes: 50,
            extra_base_prob: 0.4,
            max_bases: 3,
            virtual_prob: 0.3,
            member_pool: 4,
            member_prob: 0.2,
            static_prob: 0.1,
            seed: 0,
        }
    }
}

impl RandomConfig {
    /// A small, dense, clash-heavy configuration for differential
    /// testing: lots of multiple inheritance, a tiny member pool, and a
    /// healthy virtual-edge share.
    pub fn stress(seed: u64) -> Self {
        RandomConfig {
            classes: 12,
            extra_base_prob: 0.6,
            max_bases: 3,
            virtual_prob: 0.4,
            member_pool: 3,
            member_prob: 0.45,
            static_prob: 0.2,
            seed,
        }
    }

    /// A "realistic codebase" configuration: mostly single inheritance,
    /// occasional MI with virtual bases, a large member pool so
    /// ambiguities are rare — the regime where the paper expects its
    /// `O(|N| + |E|)` per-lookup bound.
    pub fn realistic(classes: usize, seed: u64) -> Self {
        RandomConfig {
            classes,
            extra_base_prob: 0.12,
            max_bases: 2,
            virtual_prob: 0.15,
            member_pool: classes.max(8),
            member_prob: 3.0 / classes.max(8) as f64,
            static_prob: 0.1,
            seed,
        }
    }
}

/// Generates a random DAG hierarchy per `cfg`. Classes are created in
/// topological order (`K0` is always a root); bases are drawn from the
/// already-created prefix, biased towards recent classes to create deep
/// rather than flat hierarchies.
pub fn random_hierarchy(cfg: &RandomConfig) -> Chg {
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let mut b = ChgBuilder::new();
    let ids: Vec<_> = (0..cfg.classes)
        .map(|i| b.class(&format!("K{i}")))
        .collect();
    for (i, &c) in ids.iter().enumerate().skip(1) {
        let mut bases = 1;
        while bases < cfg.max_bases && rng.gen_bool(cfg.extra_base_prob) {
            bases += 1;
        }
        for _ in 0..bases {
            // Bias towards recent classes: sample two candidates, keep
            // the larger index.
            let x = rng.gen_range(0..i);
            let y = rng.gen_range(0..i);
            let base = ids[x.max(y)];
            let inh = if rng.gen_bool(cfg.virtual_prob) {
                Inheritance::Virtual
            } else {
                Inheritance::NonVirtual
            };
            // Duplicate direct bases are simply skipped.
            let _ = b.derive(c, base, inh);
        }
    }
    for &c in &ids {
        for m in 0..cfg.member_pool {
            if rng.gen_bool(cfg.member_prob) {
                let kind = if rng.gen_bool(cfg.static_prob) {
                    MemberKind::StaticData
                } else {
                    MemberKind::Data
                };
                let _ = b.member_with(c, &format!("m{m}"), MemberDecl::public(kind));
            }
        }
    }
    b.finish()
        .expect("generation preserves topological creation order")
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpplookup_core::LookupTable;

    #[test]
    fn deterministic_in_seed() {
        let cfg = RandomConfig::default();
        let a = random_hierarchy(&cfg);
        let b = random_hierarchy(&cfg);
        assert_eq!(a.class_count(), b.class_count());
        assert_eq!(a.edge_count(), b.edge_count());
        for c in a.classes() {
            let cb = b.class_by_name(a.class_name(c)).unwrap();
            assert_eq!(
                a.direct_bases(c).len(),
                b.direct_bases(cb).len(),
                "same structure for same seed"
            );
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = random_hierarchy(&RandomConfig {
            seed: 1,
            ..RandomConfig::default()
        });
        let b = random_hierarchy(&RandomConfig {
            seed: 2,
            ..RandomConfig::default()
        });
        // Extremely unlikely to coincide: compare edge multiset sizes per class.
        let same = a
            .classes()
            .all(|c| a.direct_bases(c).len() == b.direct_bases(c).len());
        assert!(!same, "different seeds should give different hierarchies");
    }

    #[test]
    fn stress_configs_produce_ambiguity() {
        // At least one of the first few stress seeds must produce an
        // ambiguous entry — otherwise the differential tests would be
        // toothless.
        let mut found_blue = false;
        for seed in 0..20 {
            let g = random_hierarchy(&RandomConfig::stress(seed));
            let t = LookupTable::build(&g);
            if t.stats().blue > 0 {
                found_blue = true;
                break;
            }
        }
        assert!(found_blue, "stress workloads must exercise ambiguity");
    }

    #[test]
    fn realistic_is_mostly_unambiguous() {
        let g = random_hierarchy(&RandomConfig::realistic(200, 7));
        let t = LookupTable::build(&g);
        let s = t.stats();
        assert!(s.entries > 0);
        assert!(
            (s.blue as f64) < 0.2 * s.entries as f64,
            "realistic config should be ambiguity-poor: {s:?}"
        );
    }

    #[test]
    fn respects_class_count_and_validity() {
        for seed in 0..5 {
            let cfg = RandomConfig {
                classes: 30,
                seed,
                ..RandomConfig::default()
            };
            let g = random_hierarchy(&cfg);
            assert_eq!(g.class_count(), 30);
            // Valid topological structure: bases precede derived classes.
            for c in g.classes() {
                for spec in g.direct_bases(c) {
                    assert!(g.topo_position(spec.base) < g.topo_position(c));
                }
            }
        }
    }

    #[test]
    fn statics_present_when_configured() {
        let cfg = RandomConfig {
            classes: 60,
            member_prob: 0.5,
            static_prob: 0.5,
            ..RandomConfig::default()
        };
        let g = random_hierarchy(&cfg);
        let statics = g
            .classes()
            .flat_map(|c| g.declared_members(c).iter())
            .filter(|(_, d)| d.kind.is_static_for_lookup())
            .count();
        assert!(statics > 0);
    }
}
