//! Class-hierarchy workload generators for benchmarking and
//! differential-testing C++ member lookup.
//!
//! The paper's evaluation claims are about graph *shape* — size, density,
//! virtual-edge fraction, ambiguity rate — so this crate substitutes for
//! the authors' proprietary codebases with two kinds of workloads:
//!
//! * [`families`] — structured families with known analytic behaviour
//!   (chains, stacked diamonds, grids, the repeated Figure 9 trap),
//! * [`random_hierarchy`] — seeded random DAGs with tunable parameters,
//!   including a [`RandomConfig::stress`] preset for differential testing
//!   and a [`RandomConfig::realistic`] preset for the mostly-unambiguous
//!   regime,
//! * [`edit_script`] — growth histories (base hierarchy + always-valid
//!   edit sequence) for the incremental engine's experiments and
//!   differential tests.
//!
//! # Examples
//!
//! ```
//! use cpplookup_hiergen::{random_hierarchy, RandomConfig};
//!
//! let g = random_hierarchy(&RandomConfig::realistic(100, 42));
//! assert_eq!(g.class_count(), 100);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod edits;
pub mod families;
mod random;

pub use edits::{edit_script, EditScriptConfig};
pub use random::{random_hierarchy, RandomConfig};
