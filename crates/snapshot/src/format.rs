//! The on-disk layout: constants, checksums, varints, and the
//! bounds-checked byte cursor shared by the writer and the loader.
//!
//! A snapshot file is laid out as
//!
//! ```text
//! ┌────────────────────────────┐ 0
//! │ header (32 bytes)          │   magic, version, endian tag, section
//! │                            │   count, total file length
//! ├────────────────────────────┤ 32
//! │ section directory          │   per section: id, offset, length,
//! │ (28 bytes × section count) │   word-FNV checksum of the section bytes
//! ├────────────────────────────┤
//! │ NAMES section              │   interned class + member name tables
//! │ CHG section                │   topo-ordered, varint-encoded graph
//! │ TABLE section              │   resolved red/blue lookup entries
//! │ MPH section (version ≥ 2)  │   minimal perfect hash over the
//! │ (each 8-byte aligned,      │   packed (class, member) probe keys
//! │  zero padding between)     │
//! ├────────────────────────────┤ len − 8
//! │ file checksum (8 bytes)    │   word-FNV of bytes [0, len − 8)
//! └────────────────────────────┘ len
//! ```
//!
//! All multi-byte integers are little-endian. Variable-length integers
//! use LEB128 (7 data bits per byte, high bit = continuation), capped at
//! 10 bytes. The 8-byte alignment of section starts keeps every
//! fixed-width `u32` table inside the TABLE and NAMES sections
//! naturally aligned when the file is mapped at a page boundary.

use crate::error::SnapshotError;

/// The first eight bytes of every snapshot.
pub const MAGIC: [u8; 8] = *b"CPLKSNAP";

/// The format version this build writes. Version 2 added the MPH
/// section (the serialized minimal perfect hash over the probe keys);
/// the loader still reads [`MIN_VERSION`]-and-up, with pre-MPH
/// snapshots served through the open-addressed directory fallback.
pub const VERSION: u16 = 2;

/// The oldest format version the loader accepts.
pub const MIN_VERSION: u16 = 1;

/// Endianness canary: written little-endian, so a byte-swapped reader
/// (or writer) sees `0x2E1F` and bails instead of misreading every
/// field.
pub const ENDIAN_TAG: u16 = 0x1F2E;

/// Fixed header size in bytes.
pub const HEADER_LEN: usize = 32;

/// One directory record: `id: u32, offset: u64, len: u64, checksum: u64`.
pub const DIR_ENTRY_LEN: usize = 28;

/// Trailing whole-file checksum size.
pub const TRAILER_LEN: usize = 8;

/// Required alignment of every section start.
pub const SECTION_ALIGN: usize = 8;

/// Section ids, in file order.
pub const SECTION_NAMES: u32 = 1;
/// The class-hierarchy topology section.
pub const SECTION_CHG: u32 = 2;
/// The resolved lookup-table section.
pub const SECTION_TABLE: u32 = 3;
/// The minimal-perfect-hash section (version ≥ 2): the probe
/// directory's hash, built once at compile time so loads skip the
/// displacement search. Layout: `seed: u64, n: u32, nbuckets: u32`,
/// then `nbuckets` little-endian `u32` displacements.
pub const SECTION_MPH: u32 = 4;

/// Human-readable section name for error messages.
pub fn section_name(id: u32) -> &'static str {
    match id {
        SECTION_NAMES => "names",
        SECTION_CHG => "chg",
        SECTION_TABLE => "table",
        SECTION_MPH => "mph",
        _ => "unknown",
    }
}

// The integrity checksum used throughout the file: the shared 4-lane
// word-FNV, re-exported here so existing `format::checksum64` callers
// (including the wire protocol) keep their import path. The pinned
// bit-pattern lives with the definition in `cpplookup_chg::checksum`.
pub use cpplookup_chg::checksum::checksum64;

/// Appends `value` as LEB128.
pub fn put_varint(out: &mut Vec<u8>, mut value: u64) {
    loop {
        let byte = (value & 0x7F) as u8;
        value >>= 7;
        if value == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// A bounds-checked forward cursor over a byte slice. Every read either
/// succeeds or returns a structured error; nothing in the crate indexes
/// raw snapshot bytes without going through here or an explicitly
/// range-checked slice.
#[derive(Clone, Copy, Debug)]
pub struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
    /// Context string used in truncation errors.
    context: &'static str,
}

impl<'a> Reader<'a> {
    /// A cursor over `bytes`, labelled `context` for error messages.
    pub fn new(bytes: &'a [u8], context: &'static str) -> Self {
        Reader {
            bytes,
            pos: 0,
            context,
        }
    }

    /// Current position from the start of the slice.
    pub fn pos(&self) -> usize {
        self.pos
    }

    /// Bytes left to read.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    /// Whether the cursor consumed the whole slice.
    pub fn is_at_end(&self) -> bool {
        self.pos == self.bytes.len()
    }

    #[inline]
    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        if self.remaining() < n {
            return Err(SnapshotError::Truncated {
                context: self.context,
                needed: n,
                available: self.remaining(),
            });
        }
        let slice = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Reads one byte.
    #[inline]
    pub fn u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u16`.
    pub fn u16(&mut self) -> Result<u16, SnapshotError> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, SnapshotError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, SnapshotError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Reads a LEB128 varint, rejecting encodings longer than 10 bytes
    /// or overflowing 64 bits.
    #[inline]
    pub fn varint(&mut self) -> Result<u64, SnapshotError> {
        let mut value: u64 = 0;
        for shift in 0..10 {
            let byte = self.u8()?;
            let data = u64::from(byte & 0x7F);
            if shift == 9 && data > 1 {
                return Err(SnapshotError::malformed("varint overflows u64"));
            }
            value |= data << (shift * 7);
            if byte & 0x80 == 0 {
                return Ok(value);
            }
        }
        Err(SnapshotError::malformed("varint longer than 10 bytes"))
    }

    /// Reads a varint and checks it fits `usize` and does not exceed
    /// `cap` (typically the enclosing section length), defeating
    /// attacker-controlled or corrupt counts before any allocation.
    pub fn varint_count(&mut self, what: &str, cap: usize) -> Result<usize, SnapshotError> {
        let raw = self.varint()?;
        let n = usize::try_from(raw)
            .map_err(|_| SnapshotError::malformed(format!("{what} count {raw} overflows usize")))?;
        if n > cap {
            return Err(SnapshotError::malformed(format!(
                "{what} count {n} exceeds plausible bound {cap}"
            )));
        }
        Ok(n)
    }

    /// Reads `n` raw bytes.
    pub fn bytes(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        self.take(n)
    }
}

/// Reads the little-endian `u32` at `offset` of an already
/// range-validated fixed-width table. The caller guarantees
/// `offset + 4 <= bytes.len()`; a violation still fails closed via the
/// checked slice rather than panicking in release builds' decode path.
#[inline]
pub fn u32_at(bytes: &[u8], offset: usize) -> Option<u32> {
    let b = bytes.get(offset..offset + 4)?;
    Some(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
}

/// Zero padding needed to bring `len` up to [`SECTION_ALIGN`].
pub fn padding_to_align(len: usize) -> usize {
    (SECTION_ALIGN - len % SECTION_ALIGN) % SECTION_ALIGN
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_roundtrip() {
        let values = [
            0u64,
            1,
            127,
            128,
            300,
            16_383,
            16_384,
            u32::MAX as u64,
            u64::MAX,
        ];
        let mut buf = Vec::new();
        for &v in &values {
            put_varint(&mut buf, v);
        }
        let mut r = Reader::new(&buf, "test");
        for &v in &values {
            assert_eq!(r.varint().unwrap(), v);
        }
        assert!(r.is_at_end());
    }

    #[test]
    fn varint_rejects_overlong_and_overflow() {
        // 11 continuation bytes: longer than any valid u64 encoding.
        let overlong = [0x80u8; 11];
        assert!(matches!(
            Reader::new(&overlong, "t").varint(),
            Err(SnapshotError::Malformed { .. })
        ));
        // 10th byte carries more than the single remaining bit.
        let overflow = [0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F];
        assert!(matches!(
            Reader::new(&overflow, "t").varint(),
            Err(SnapshotError::Malformed { .. })
        ));
    }

    #[test]
    fn reader_reports_truncation_with_context() {
        let mut r = Reader::new(&[1, 2], "directory");
        match r.u32() {
            Err(SnapshotError::Truncated {
                context,
                needed,
                available,
            }) => {
                assert_eq!(context, "directory");
                assert_eq!(needed, 4);
                assert_eq!(available, 2);
            }
            other => panic!("expected truncation, got {other:?}"),
        }
    }

    #[test]
    fn checksum_detects_any_single_byte_flip() {
        let data = b"the quick brown fox jumps over the lazy dog";
        let base = checksum64(data);
        for i in 0..data.len() {
            for bit in 0..8 {
                let mut copy = data.to_vec();
                copy[i] ^= 1 << bit;
                assert_ne!(checksum64(&copy), base, "flip at byte {i} bit {bit}");
            }
        }
    }

    #[test]
    fn padding_math() {
        assert_eq!(padding_to_align(0), 0);
        assert_eq!(padding_to_align(8), 0);
        assert_eq!(padding_to_align(1), 7);
        assert_eq!(padding_to_align(15), 1);
    }

    #[test]
    fn varint_count_caps() {
        let mut buf = Vec::new();
        put_varint(&mut buf, 1_000_000);
        let mut r = Reader::new(&buf, "t");
        assert!(r.varint_count("class", 100).is_err());
        let mut r = Reader::new(&buf, "t");
        assert_eq!(r.varint_count("class", 2_000_000).unwrap(), 1_000_000);
    }
}
