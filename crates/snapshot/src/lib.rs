//! Zero-copy snapshots of compiled member-lookup tables: compile once,
//! serve many.
//!
//! The Ramalingam–Srinivasan table construction (`LookupTable::build`)
//! is the expensive half of the pipeline: it walks the class-hierarchy
//! graph in topological order and propagates red/blue abstractions for
//! every inherited member. For a compile-server, IDE indexer, or any
//! "build once on the CI machine, query everywhere" deployment, paying
//! that cost on every process start is waste — the table is a pure
//! function of the hierarchy and the lookup options.
//!
//! This crate serializes the compiled artifact into a versioned,
//! checksummed, alignment-disciplined binary format:
//!
//! * [`Snapshot`] — the writer. [`Snapshot::compile`] builds the table
//!   and encodes the name tables, the topo-ordered hierarchy, and every
//!   resolved red/blue entry into one deterministic byte buffer
//!   (identical input ⇒ identical bytes, suitable for golden tests and
//!   content-addressed caches).
//! * [`SnapshotTable`] — the loader. One validation pass checks magic,
//!   version, endianness, per-section and whole-file checksums, and
//!   every structural invariant; afterwards queries are answered by
//!   binary-searching fixed-width index tables and decoding single
//!   varint payloads **directly from the byte buffer** — no owned
//!   hash maps, no graph reconstruction. It implements
//!   [`MemberLookup`](cpplookup_core::MemberLookup) like every other
//!   backend.
//! * [`SnapshotError`] — the integrity contract. Truncated, corrupt, or
//!   version-skewed input always yields a structured error, never a
//!   panic and never a wrong answer.
//!
//! The file layout is documented in [`format`].
//!
//! # Example
//!
//! ```
//! use cpplookup_chg::fixtures;
//! use cpplookup_snapshot::{Snapshot, SnapshotTable};
//!
//! // Compile once…
//! let snap = Snapshot::compile(&fixtures::fig9());
//!
//! // …serve many: loading validates integrity, then answers from bytes.
//! let table = SnapshotTable::from_bytes(snap.into_bytes())?;
//! let e = table.class_by_name("E").unwrap();
//! let m = table.member_by_name("m").unwrap();
//! assert_eq!(table.lookup(e, m).resolved_class(), table.class_by_name("C"));
//! # Ok::<(), cpplookup_snapshot::SnapshotError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
pub mod format;
mod loader;
mod writer;

pub use error::SnapshotError;
pub use loader::{SnapshotEntries, SnapshotTable};
pub use writer::Snapshot;
