//! Structured errors for snapshot encoding and decoding.
//!
//! The loader's contract is that a truncated, corrupted, or
//! version-skewed input **always** surfaces as a [`SnapshotError`] —
//! never a panic and never a silently wrong lookup answer. Every decode
//! in the crate is bounds-checked and funnels its failure through one of
//! these variants.

use std::fmt;

/// Why a snapshot could not be written, read, or validated.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum SnapshotError {
    /// The input is shorter than the fixed header + trailer, or a
    /// length field points past the end of the buffer.
    Truncated {
        /// What was being read when the bytes ran out.
        context: &'static str,
        /// Bytes needed to continue.
        needed: usize,
        /// Bytes actually available.
        available: usize,
    },
    /// The first eight bytes are not the snapshot magic.
    BadMagic,
    /// The format version is one this build does not understand.
    UnsupportedVersion {
        /// The version found in the header.
        found: u16,
        /// The version this build reads and writes.
        supported: u16,
    },
    /// The endianness tag does not match the little-endian on-disk
    /// convention (the file was produced by a byte-swapping writer or is
    /// corrupt).
    BadEndianness {
        /// The tag found in the header.
        found: u16,
    },
    /// A checksum mismatch: the bytes were damaged after writing.
    ChecksumMismatch {
        /// Which region failed (`"file"` or a section name).
        region: &'static str,
        /// The checksum recorded in the snapshot.
        expected: u64,
        /// The checksum recomputed over the bytes.
        actual: u64,
    },
    /// A section's recorded offset is not aligned as the format
    /// requires, so fixed-width tables could not be mapped in place.
    Misaligned {
        /// Which section is misaligned.
        section: &'static str,
        /// The offending byte offset.
        offset: usize,
        /// The required alignment in bytes.
        align: usize,
    },
    /// The byte stream decoded, but its contents violate a structural
    /// invariant (an out-of-range id, an unsorted index, an overlong
    /// varint, a count that contradicts a section length, …).
    Malformed {
        /// Human-readable description of the violated invariant.
        reason: String,
    },
    /// Reading or writing the snapshot file failed at the OS level.
    Io {
        /// The path involved.
        path: String,
        /// The rendered `std::io::Error`.
        message: String,
    },
}

impl SnapshotError {
    /// Shorthand for a [`SnapshotError::Malformed`] with a formatted
    /// reason.
    pub(crate) fn malformed(reason: impl Into<String>) -> Self {
        SnapshotError::Malformed {
            reason: reason.into(),
        }
    }
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Truncated {
                context,
                needed,
                available,
            } => write!(
                f,
                "snapshot truncated while reading {context}: need {needed} bytes, have {available}"
            ),
            SnapshotError::BadMagic => write!(f, "not a cpplookup snapshot (bad magic)"),
            SnapshotError::UnsupportedVersion { found, supported } => write!(
                f,
                "unsupported snapshot version {found} (this build reads version {supported})"
            ),
            SnapshotError::BadEndianness { found } => write!(
                f,
                "snapshot endianness tag {found:#06x} does not match the little-endian format"
            ),
            SnapshotError::ChecksumMismatch {
                region,
                expected,
                actual,
            } => write!(
                f,
                "snapshot {region} checksum mismatch: recorded {expected:#018x}, computed {actual:#018x}"
            ),
            SnapshotError::Misaligned {
                section,
                offset,
                align,
            } => write!(
                f,
                "snapshot section {section} at offset {offset} violates {align}-byte alignment"
            ),
            SnapshotError::Malformed { reason } => write!(f, "malformed snapshot: {reason}"),
            SnapshotError::Io { path, message } => write!(f, "snapshot io error on {path}: {message}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms_are_informative() {
        let cases: Vec<(SnapshotError, &str)> = vec![
            (
                SnapshotError::Truncated {
                    context: "header",
                    needed: 40,
                    available: 3,
                },
                "header",
            ),
            (SnapshotError::BadMagic, "magic"),
            (
                SnapshotError::UnsupportedVersion {
                    found: 9,
                    supported: 1,
                },
                "version 9",
            ),
            (SnapshotError::BadEndianness { found: 0xBEEF }, "0xbeef"),
            (
                SnapshotError::ChecksumMismatch {
                    region: "names",
                    expected: 1,
                    actual: 2,
                },
                "names",
            ),
            (
                SnapshotError::Misaligned {
                    section: "table",
                    offset: 3,
                    align: 8,
                },
                "alignment",
            ),
            (SnapshotError::malformed("id 7 out of range"), "id 7"),
            (
                SnapshotError::Io {
                    path: "/nope".into(),
                    message: "denied".into(),
                },
                "/nope",
            ),
        ];
        for (err, needle) in cases {
            let text = err.to_string();
            assert!(text.contains(needle), "{text:?} should mention {needle:?}");
        }
    }
}
