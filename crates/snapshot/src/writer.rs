//! The snapshot writer: serializes a hierarchy and its fully-resolved
//! lookup table into the versioned binary format of [`crate::format`].

use std::path::Path;

use cpplookup_chg::{Chg, Inheritance, MemberKind};
use cpplookup_core::mph::MphFunction;
use cpplookup_core::{Entry, LeastVirtual, LookupOptions, LookupTable, StaticRule};

use crate::error::SnapshotError;
use crate::format::{
    checksum64, padding_to_align, put_varint, DIR_ENTRY_LEN, ENDIAN_TAG, HEADER_LEN, MAGIC,
    SECTION_CHG, SECTION_MPH, SECTION_NAMES, SECTION_TABLE, VERSION,
};

/// A compiled hierarchy serialized into the snapshot format, ready to
/// be written to disk or loaded back through
/// [`SnapshotTable`](crate::SnapshotTable).
///
/// # Examples
///
/// ```
/// use cpplookup_chg::fixtures;
/// use cpplookup_snapshot::{Snapshot, SnapshotTable};
///
/// let g = fixtures::fig9();
/// let snap = Snapshot::compile(&g);
/// let table = SnapshotTable::from_bytes(snap.into_bytes())?;
/// let e = table.class_by_name("E").unwrap();
/// let m = table.member_by_name("m").unwrap();
/// assert_eq!(table.lookup(e, m).resolved_class(), table.class_by_name("C"));
/// # Ok::<(), cpplookup_snapshot::SnapshotError>(())
/// ```
pub struct Snapshot {
    bytes: Vec<u8>,
}

impl Snapshot {
    /// Builds the lookup table for `chg` (default options) and
    /// serializes hierarchy + table.
    pub fn compile(chg: &Chg) -> Snapshot {
        Self::compile_with(chg, LookupOptions::default())
    }

    /// Like [`compile`](Snapshot::compile) with explicit lookup options.
    pub fn compile_with(chg: &Chg, options: LookupOptions) -> Snapshot {
        let table = LookupTable::build_with(chg, options);
        Self::from_table(chg, &table)
    }

    /// Like [`compile_with`](Snapshot::compile_with), but builds the
    /// table with the work-stealing parallel sweep on `jobs` worker
    /// threads (clamped to at least 1). The resulting bytes are
    /// identical to the sequential compile: the parallel build produces
    /// the same entries and the encoder sorts everything it writes.
    pub fn compile_parallel(chg: &Chg, options: LookupOptions, jobs: usize) -> Snapshot {
        let table = LookupTable::build_parallel(chg, options, jobs);
        Self::from_table(chg, &table)
    }

    /// Serializes an already-built table (the table must have been built
    /// from `chg`).
    pub fn from_table(chg: &Chg, table: &LookupTable) -> Snapshot {
        let names = encode_names(chg);
        let chg_section = encode_chg(chg);
        let table_section = encode_table(chg, table);
        let mph_section = encode_mph(chg, table);

        let sections: [(u32, Vec<u8>); 4] = [
            (SECTION_NAMES, names),
            (SECTION_CHG, chg_section),
            (SECTION_TABLE, table_section),
            (SECTION_MPH, mph_section),
        ];

        let dir_len = DIR_ENTRY_LEN * sections.len();
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC);
        bytes.extend_from_slice(&VERSION.to_le_bytes());
        bytes.extend_from_slice(&ENDIAN_TAG.to_le_bytes());
        bytes.extend_from_slice(&0u32.to_le_bytes()); // reserved, must be zero
        bytes.extend_from_slice(&(sections.len() as u32).to_le_bytes());
        bytes.extend_from_slice(&0u32.to_le_bytes()); // reserved, must be zero
        bytes.extend_from_slice(&0u64.to_le_bytes()); // total length, patched below
        debug_assert_eq!(bytes.len(), HEADER_LEN);
        // Directory placeholder; patched once section offsets are known.
        bytes.resize(HEADER_LEN + dir_len, 0);

        let mut directory = Vec::with_capacity(sections.len());
        for (id, payload) in &sections {
            bytes.resize(bytes.len() + padding_to_align(bytes.len()), 0);
            let offset = bytes.len();
            bytes.extend_from_slice(payload);
            directory.push((
                *id,
                offset as u64,
                payload.len() as u64,
                checksum64(payload),
            ));
        }

        for (i, (id, offset, len, checksum)) in directory.iter().enumerate() {
            let at = HEADER_LEN + i * DIR_ENTRY_LEN;
            bytes[at..at + 4].copy_from_slice(&id.to_le_bytes());
            bytes[at + 4..at + 12].copy_from_slice(&offset.to_le_bytes());
            bytes[at + 12..at + 20].copy_from_slice(&len.to_le_bytes());
            bytes[at + 20..at + 28].copy_from_slice(&checksum.to_le_bytes());
        }

        let total = (bytes.len() + 8) as u64;
        bytes[24..32].copy_from_slice(&total.to_le_bytes());
        let file_sum = checksum64(&bytes);
        bytes.extend_from_slice(&file_sum.to_le_bytes());
        Snapshot { bytes }
    }

    /// The serialized bytes.
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Consumes the snapshot, yielding its bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.bytes
    }

    /// Serialized size in bytes.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// A snapshot is never empty (header + trailer at minimum).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Writes the snapshot to `path`.
    ///
    /// # Errors
    ///
    /// Returns [`SnapshotError::Io`] if the file cannot be written.
    pub fn write_to(&self, path: impl AsRef<Path>) -> Result<(), SnapshotError> {
        let path = path.as_ref();
        std::fs::write(path, &self.bytes).map_err(|e| SnapshotError::Io {
            path: path.display().to_string(),
            message: e.to_string(),
        })
    }
}

impl std::fmt::Debug for Snapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Snapshot {{ {} bytes }}", self.bytes.len())
    }
}

/// NAMES section: counts, cumulative end-offset tables (fixed-width
/// `u32`, so the loader slices names without decoding), then the two
/// UTF-8 blobs.
fn encode_names(chg: &Chg) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&(chg.class_count() as u32).to_le_bytes());
    out.extend_from_slice(&(chg.member_name_count() as u32).to_le_bytes());

    let mut class_blob = Vec::new();
    for c in chg.classes() {
        class_blob.extend_from_slice(chg.class_name(c).as_bytes());
        out.extend_from_slice(&(class_blob.len() as u32).to_le_bytes());
    }
    let mut member_blob = Vec::new();
    for m in chg.member_ids() {
        member_blob.extend_from_slice(chg.member_name(m).as_bytes());
        out.extend_from_slice(&(member_blob.len() as u32).to_le_bytes());
    }
    out.extend_from_slice(&class_blob);
    out.extend_from_slice(&member_blob);
    out
}

/// CHG section: varint-encoded per-class records in topological order
/// (bases precede derived classes), so a one-pass reader can rebuild
/// the hierarchy with every `derive` target already created.
fn encode_chg(chg: &Chg) -> Vec<u8> {
    let mut out = Vec::new();
    put_varint(&mut out, chg.class_count() as u64);
    put_varint(&mut out, chg.edge_count() as u64);
    for &c in chg.topo_order() {
        put_varint(&mut out, c.index() as u64);
        let bases = chg.direct_bases(c);
        put_varint(&mut out, bases.len() as u64);
        for spec in bases {
            put_varint(&mut out, spec.base.index() as u64);
            let mut flags = u8::from(spec.inheritance == Inheritance::Virtual);
            flags |= encode_access(spec.access) << 1;
            out.push(flags);
        }
        let members = chg.declared_members(c);
        put_varint(&mut out, members.len() as u64);
        for &(m, decl) in members {
            put_varint(&mut out, m.index() as u64);
            let mut flags = encode_kind(decl.kind);
            flags |= encode_access(decl.access) << 3;
            flags |= u8::from(decl.via_using.is_some()) << 5;
            out.push(flags);
            if let Some(origin) = decl.via_using {
                put_varint(&mut out, origin.index() as u64);
            }
        }
    }
    out
}

/// TABLE section: a fixed-width two-level index (per-class row bounds,
/// then `(member_id, payload_offset)` records sorted by member id) over
/// a varint-encoded entry payload blob. Lookups binary-search the index
/// straight from the mapped bytes.
fn encode_table(chg: &Chg, table: &LookupTable) -> Vec<u8> {
    let n = chg.class_count();
    let mut row_starts: Vec<u32> = Vec::with_capacity(n + 1);
    let mut index: Vec<(u32, u32)> = Vec::new();
    let mut payload = Vec::new();
    for c in chg.classes() {
        row_starts.push(index.len() as u32);
        let mut members: Vec<_> = table.members_of(c).collect();
        members.sort_unstable();
        for m in members {
            let entry = table
                .entry(c, m)
                .expect("members_of lists only present entries");
            let offset =
                u32::try_from(payload.len()).expect("snapshot payload exceeds u32 offsets");
            index.push((m.index() as u32, offset));
            encode_entry(&mut payload, entry);
        }
    }
    row_starts.push(index.len() as u32);

    let mut out = Vec::new();
    out.push(match table.options().statics {
        StaticRule::Cpp => 0u8,
        StaticRule::Ignore => 1u8,
    });
    out.extend_from_slice(&[0u8; 3]); // pad, must be zero
    out.extend_from_slice(&(n as u32).to_le_bytes());
    out.extend_from_slice(&(index.len() as u32).to_le_bytes());
    out.extend_from_slice(
        &u32::try_from(payload.len())
            .expect("snapshot payload exceeds u32 offsets")
            .to_le_bytes(),
    );
    for start in &row_starts {
        out.extend_from_slice(&start.to_le_bytes());
    }
    for (m, offset) in &index {
        out.extend_from_slice(&m.to_le_bytes());
        out.extend_from_slice(&offset.to_le_bytes());
    }
    out.extend_from_slice(&payload);
    out
}

/// MPH section (version ≥ 2): the minimal perfect hash over the packed
/// `(class, member)` probe keys, compiled once here so every load skips
/// the displacement search. The key stream mirrors the TABLE section's
/// entry order — class ascending, members ascending within each class —
/// which is also the order [`SnapshotTable::entries`]
/// (crate::SnapshotTable::entries) replays at load time. Layout:
/// `seed: u64, n: u32, nbuckets: u32`, then `nbuckets` little-endian
/// `u32` displacements. Deterministic, like every other section.
fn encode_mph(chg: &Chg, table: &LookupTable) -> Vec<u8> {
    let mut keys: Vec<u64> = Vec::new();
    for c in chg.classes() {
        let mut members: Vec<_> = table.members_of(c).collect();
        members.sort_unstable();
        for m in members {
            keys.push(c.index() as u64 | (m.index() as u64) << 32);
        }
    }
    let mph = MphFunction::build(&keys);
    let mut out = Vec::with_capacity(16 + 4 * mph.disp().len());
    out.extend_from_slice(&mph.seed().to_le_bytes());
    out.extend_from_slice(&mph.n().to_le_bytes());
    out.extend_from_slice(&(mph.disp().len() as u32).to_le_bytes());
    for &d in mph.disp() {
        out.extend_from_slice(&d.to_le_bytes());
    }
    out
}

fn encode_entry(out: &mut Vec<u8>, entry: &Entry) {
    match entry {
        Entry::Red { abs, via, shared } => {
            out.push(0);
            put_varint(out, abs.ldc.index() as u64);
            put_varint(out, encode_lv(abs.lv));
            put_varint(
                out,
                match via {
                    None => 0,
                    Some(c) => c.index() as u64 + 1,
                },
            );
            put_varint(out, shared.len() as u64);
            for &lv in shared {
                put_varint(out, encode_lv(lv));
            }
        }
        Entry::Blue(set) => {
            out.push(1);
            put_varint(out, set.len() as u64);
            for &lv in set {
                put_varint(out, encode_lv(lv));
            }
        }
    }
}

/// `Ω` ↦ 0, `Class(c)` ↦ `c + 1`.
fn encode_lv(lv: LeastVirtual) -> u64 {
    match lv {
        LeastVirtual::Omega => 0,
        LeastVirtual::Class(c) => c.index() as u64 + 1,
    }
}

fn encode_access(access: cpplookup_chg::Access) -> u8 {
    match access {
        cpplookup_chg::Access::Private => 0,
        cpplookup_chg::Access::Protected => 1,
        cpplookup_chg::Access::Public => 2,
    }
}

fn encode_kind(kind: MemberKind) -> u8 {
    match kind {
        MemberKind::Data => 0,
        MemberKind::Function => 1,
        MemberKind::StaticData => 2,
        MemberKind::StaticFunction => 3,
        MemberKind::TypeName => 4,
        MemberKind::Enumerator => 5,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpplookup_chg::fixtures;

    #[test]
    fn compile_is_deterministic() {
        let g = fixtures::fig3();
        let a = Snapshot::compile(&g);
        let b = Snapshot::compile(&g);
        assert_eq!(a.as_bytes(), b.as_bytes());
        assert!(!a.is_empty());
        assert!(a.len() > HEADER_LEN + 4 * DIR_ENTRY_LEN + 8);
        assert!(format!("{a:?}").contains("bytes"));
    }

    #[test]
    fn parallel_compile_is_byte_identical() {
        for g in [fixtures::fig1(), fixtures::fig3(), fixtures::fig9()] {
            let seq = Snapshot::compile(&g);
            for jobs in [1, 3, 8] {
                let par = Snapshot::compile_parallel(&g, LookupOptions::default(), jobs);
                assert_eq!(seq.as_bytes(), par.as_bytes(), "jobs={jobs}");
            }
        }
    }

    #[test]
    fn header_fields_are_in_place() {
        let g = fixtures::fig1();
        let snap = Snapshot::compile(&g);
        let b = snap.as_bytes();
        assert_eq!(&b[0..8], &MAGIC);
        assert_eq!(u16::from_le_bytes([b[8], b[9]]), VERSION);
        assert_eq!(u16::from_le_bytes([b[10], b[11]]), ENDIAN_TAG);
        let total = u64::from_le_bytes(b[24..32].try_into().unwrap());
        assert_eq!(total as usize, b.len());
        let sum = u64::from_le_bytes(b[b.len() - 8..].try_into().unwrap());
        assert_eq!(sum, checksum64(&b[..b.len() - 8]));
    }

    #[test]
    fn write_to_reports_io_errors() {
        let g = fixtures::fig1();
        let snap = Snapshot::compile(&g);
        let err = snap
            .write_to("/nonexistent-dir-cpplookup/x.snap")
            .unwrap_err();
        assert!(matches!(err, SnapshotError::Io { .. }), "{err}");
    }
}
