//! The snapshot loader: validates a serialized snapshot once, then
//! answers lookups by decoding records straight out of the byte buffer.
//!
//! [`SnapshotTable`] deliberately does **not** materialize the lookup
//! table it serves: after the one-pass structural validation of
//! [`from_bytes`](SnapshotTable::from_bytes), the only owned state is
//! the byte buffer itself plus a handful of section offsets. A query
//! binary-searches the fixed-width `(member, offset)` index of its
//! class row and decodes one varint entry payload on demand — the
//! "mmap-friendly" discipline: every fixed-width table in the format is
//! naturally aligned at its (8-byte aligned, alignment-*checked*)
//! section start, so the same decode logic works over a borrowed
//! memory-mapped region byte-for-byte.

use std::path::Path;
use std::sync::Mutex;
use std::time::Instant;

use cpplookup_chg::{
    Access, Chg, ChgBuilder, ClassId, Inheritance, MemberDecl, MemberId, MemberKind,
    Path as ChgPath,
};
use cpplookup_core::mph::MphFunction;
use cpplookup_core::{
    obs, EngineOptions, Entry, LeastVirtual, LookupEngine, LookupOptions, LookupOutcome,
    MemberLookup, RedAbs, StaticRule,
};

use crate::error::SnapshotError;
use crate::format::{
    checksum64, section_name, u32_at, Reader, DIR_ENTRY_LEN, ENDIAN_TAG, HEADER_LEN, MAGIC,
    MIN_VERSION, SECTION_ALIGN, SECTION_CHG, SECTION_MPH, SECTION_NAMES, SECTION_TABLE,
    TRAILER_LEN, VERSION,
};

/// Byte range of one section within the snapshot buffer.
#[derive(Clone, Copy, Debug)]
struct Section {
    offset: usize,
    len: usize,
}

impl Section {
    fn slice<'a>(&self, data: &'a [u8]) -> &'a [u8] {
        &data[self.offset..self.offset + self.len]
    }
}

/// A validated, loaded snapshot serving [`MemberLookup`] queries
/// directly from its byte buffer.
///
/// Construction runs the full integrity pipeline — header, endianness,
/// per-section and whole-file checksums, and a structural walk of every
/// record — so the query path afterwards cannot fail: corrupt input is
/// rejected up front with a [`SnapshotError`], never served.
///
/// # Examples
///
/// ```
/// use cpplookup_chg::fixtures;
/// use cpplookup_snapshot::{Snapshot, SnapshotTable};
///
/// let g = fixtures::fig2();
/// let table = SnapshotTable::from_bytes(Snapshot::compile(&g).into_bytes())?;
/// let e = table.class_by_name("E").unwrap();
/// let m = table.member_by_name("m").unwrap();
/// assert_eq!(table.lookup(e, m).resolved_class(), table.class_by_name("D"));
/// # Ok::<(), cpplookup_snapshot::SnapshotError>(())
/// ```
pub struct SnapshotTable {
    data: Vec<u8>,
    names: Section,
    chg: Section,
    table: Section,
    class_count: usize,
    member_count: usize,
    /// Absolute offset of the class-name end-offset table.
    class_ends_at: usize,
    /// Absolute offset of the member-name end-offset table.
    member_ends_at: usize,
    /// Absolute offset of the class-name blob.
    class_blob_at: usize,
    /// Absolute offset of the member-name blob.
    member_blob_at: usize,
    statics: StaticRule,
    /// Absolute offset of the `(class_count + 1)` row-start table.
    row_starts_at: usize,
    /// Absolute offset of the `(member, payload offset)` entry index.
    entry_index_at: usize,
    entry_count: usize,
    /// Absolute offset of the entry payload blob.
    payload_at: usize,
    payload_len: usize,
    /// Decoded-entry memo: the last `(payload offset, entry)` pair a
    /// query decoded, so repeated hits on the same record skip the
    /// `Reader` construction and varint walk entirely. Accessed with
    /// `try_lock` only — a contended memo falls back to a plain decode
    /// rather than ever blocking a reader.
    decoded: Mutex<Option<(u32, Entry)>>,
    /// The validated minimal perfect hash of the MPH section (version
    /// ≥ 2). `None` for version-1 snapshots, which serve through the
    /// open-addressed directory fallback.
    mph: Option<MphFunction>,
}

impl SnapshotTable {
    /// Reads and validates the snapshot at `path`.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Io`] if the file cannot be read, otherwise any
    /// validation error of [`from_bytes`](SnapshotTable::from_bytes).
    pub fn load(path: impl AsRef<Path>) -> Result<Self, SnapshotError> {
        let path = path.as_ref();
        let start = Instant::now();
        let data = std::fs::read(path).map_err(|e| SnapshotError::Io {
            path: path.display().to_string(),
            message: e.to_string(),
        })?;
        Self::from_bytes_timed(data, start)
    }

    /// Validates `data` as a snapshot and takes ownership of it.
    ///
    /// # Errors
    ///
    /// A structured [`SnapshotError`] for any truncated, corrupt, or
    /// version-skewed input. This function never panics on untrusted
    /// bytes.
    pub fn from_bytes(data: Vec<u8>) -> Result<Self, SnapshotError> {
        Self::from_bytes_timed(data, Instant::now())
    }

    fn from_bytes_timed(data: Vec<u8>, start: Instant) -> Result<Self, SnapshotError> {
        let loaded = Self::validate(data)?;
        obs::snapshot_loaded(loaded.data.len() as u64, start.elapsed().as_nanos() as u64);
        Ok(loaded)
    }

    fn validate(data: Vec<u8>) -> Result<Self, SnapshotError> {
        // Header.
        if data.len() < HEADER_LEN + TRAILER_LEN {
            return Err(SnapshotError::Truncated {
                context: "header",
                needed: HEADER_LEN + TRAILER_LEN,
                available: data.len(),
            });
        }
        let mut header = Reader::new(&data[..HEADER_LEN], "header");
        if header.bytes(8)? != MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        let version = header.u16()?;
        if !(MIN_VERSION..=VERSION).contains(&version) {
            return Err(SnapshotError::UnsupportedVersion {
                found: version,
                supported: VERSION,
            });
        }
        let endian = header.u16()?;
        if endian != ENDIAN_TAG {
            return Err(SnapshotError::BadEndianness { found: endian });
        }
        if header.u32()? != 0 {
            return Err(SnapshotError::malformed("reserved header field is nonzero"));
        }
        // Version 2 appended the MPH section; earlier files carry
        // exactly the original three.
        let expected_ids: &[u32] = if version >= 2 {
            &[SECTION_NAMES, SECTION_CHG, SECTION_TABLE, SECTION_MPH]
        } else {
            &[SECTION_NAMES, SECTION_CHG, SECTION_TABLE]
        };
        let section_count = header.u32()? as usize;
        if section_count != expected_ids.len() {
            return Err(SnapshotError::malformed(format!(
                "version-{version} snapshots have exactly {} sections, found {section_count}",
                expected_ids.len()
            )));
        }
        if header.u32()? != 0 {
            return Err(SnapshotError::malformed("reserved header field is nonzero"));
        }
        let total = header.u64()?;
        if total != data.len() as u64 {
            return Err(SnapshotError::Truncated {
                context: "file body",
                needed: usize::try_from(total).unwrap_or(usize::MAX),
                available: data.len(),
            });
        }

        // Whole-file checksum: catches damage anywhere, including inside
        // the directory and the per-section checksums themselves. This
        // is the only checksum pass on the happy path — the per-section
        // sums are covered by it byte-for-byte, so re-verifying them
        // here would double the cost of every load for no extra
        // detection power. They are recomputed only on mismatch, to
        // name the damaged region.
        let body = &data[..data.len() - TRAILER_LEN];
        let recorded = u64::from_le_bytes(
            data[data.len() - TRAILER_LEN..]
                .try_into()
                .expect("8 bytes"),
        );
        let actual = checksum64(body);
        if recorded != actual {
            return Err(Self::localize_damage(&data, recorded, actual));
        }

        // Section directory.
        let dir_end = HEADER_LEN + section_count * DIR_ENTRY_LEN;
        if data.len() < dir_end + TRAILER_LEN {
            return Err(SnapshotError::Truncated {
                context: "directory",
                needed: dir_end + TRAILER_LEN,
                available: data.len(),
            });
        }
        let mut sections = vec![Section { offset: 0, len: 0 }; section_count];
        let mut cursor = dir_end;
        for (i, &expected_id) in expected_ids.iter().enumerate() {
            let at = HEADER_LEN + i * DIR_ENTRY_LEN;
            let mut r = Reader::new(&data[at..at + DIR_ENTRY_LEN], "directory");
            let id = r.u32()?;
            if id != expected_id {
                return Err(SnapshotError::malformed(format!(
                    "directory slot {i} holds section id {id}, expected {expected_id}"
                )));
            }
            let offset = usize::try_from(r.u64()?)
                .map_err(|_| SnapshotError::malformed("section offset overflows usize"))?;
            let len = usize::try_from(r.u64()?)
                .map_err(|_| SnapshotError::malformed("section length overflows usize"))?;
            let checksum = r.u64()?;
            if offset % SECTION_ALIGN != 0 {
                return Err(SnapshotError::Misaligned {
                    section: section_name(id),
                    offset,
                    align: SECTION_ALIGN,
                });
            }
            if offset < cursor || offset - cursor >= SECTION_ALIGN {
                return Err(SnapshotError::malformed(format!(
                    "section {} at offset {offset} overlaps or strays from the previous section \
                     ending at {cursor}",
                    section_name(id)
                )));
            }
            if data[cursor..offset].iter().any(|&b| b != 0) {
                return Err(SnapshotError::malformed("nonzero inter-section padding"));
            }
            let end = offset
                .checked_add(len)
                .ok_or_else(|| SnapshotError::malformed("section end overflows usize"))?;
            if end > data.len() - TRAILER_LEN {
                return Err(SnapshotError::Truncated {
                    context: section_name(id),
                    needed: end + TRAILER_LEN,
                    available: data.len(),
                });
            }
            // The stored per-section checksum is itself covered by the
            // already-verified whole-file checksum, so it is exactly
            // what the writer wrote; no need to re-hash the section.
            let _stored_checksum = checksum;
            sections[i] = Section { offset, len };
            cursor = end;
        }
        if data[cursor..data.len() - TRAILER_LEN]
            .iter()
            .any(|&b| b != 0)
        {
            return Err(SnapshotError::malformed("nonzero trailing padding"));
        }

        let mut loaded = SnapshotTable {
            data,
            names: sections[0],
            chg: sections[1],
            table: sections[2],
            class_count: 0,
            member_count: 0,
            class_ends_at: 0,
            member_ends_at: 0,
            class_blob_at: 0,
            member_blob_at: 0,
            statics: StaticRule::Cpp,
            row_starts_at: 0,
            entry_index_at: 0,
            entry_count: 0,
            payload_at: 0,
            payload_len: 0,
            decoded: Mutex::new(None),
            mph: None,
        };
        loaded.validate_names()?;
        loaded.validate_chg()?;
        loaded.validate_table()?;
        // The MPH is checked against the table's live keys, so it must
        // come last, once `entry_count` and the row index are trusted.
        if let Some(&s) = sections.get(3) {
            loaded.validate_mph(s)?;
        }
        Ok(loaded)
    }

    /// Decodes and cross-checks the MPH section (version ≥ 2): the
    /// serialized function must cover exactly the table's entry count
    /// and map the live `(class, member)` keys — replayed from the
    /// already-validated entry index — onto `0..n` as a bijection.
    /// Anything less falls back to `Malformed`, never to a directory
    /// that could mis-serve probes.
    fn validate_mph(&mut self, s: Section) -> Result<(), SnapshotError> {
        let bytes = s.slice(&self.data);
        let mut r = Reader::new(bytes, "mph");
        let seed = r.u64()?;
        let n = r.u32()?;
        let nbuckets = r.u32()? as usize;
        if n as usize != self.entry_count {
            return Err(SnapshotError::malformed(format!(
                "mph section covers {n} keys, table section has {} entries",
                self.entry_count
            )));
        }
        let described = 4usize
            .checked_mul(nbuckets)
            .and_then(|d| d.checked_add(16))
            .ok_or_else(|| SnapshotError::malformed("mph displacement table overflows"))?;
        if described != s.len {
            return Err(SnapshotError::malformed(format!(
                "mph section is {} bytes but its header describes {described}",
                s.len
            )));
        }
        let mut disp = Vec::with_capacity(nbuckets);
        for _ in 0..nbuckets {
            disp.push(r.u32()?);
        }
        let mph = MphFunction::from_parts(seed, n, disp).ok_or_else(|| {
            SnapshotError::malformed(format!(
                "mph bucket count {nbuckets} is not a nonzero power of two"
            ))
        })?;
        let mut seen = vec![false; self.entry_count];
        for c in 0..self.class_count {
            for i in self.row_start(c)..self.row_start(c + 1) {
                let (m, _) = self.index_record(i);
                let key = c as u64 | u64::from(m) << 32;
                let p = mph.position(key);
                if p >= self.entry_count || seen[p] {
                    return Err(SnapshotError::malformed(format!(
                        "mph is not a bijection over the live keys: \
                         key (class {c}, member {m}) collides at slot {p}"
                    )));
                }
                seen[p] = true;
            }
        }
        self.mph = Some(mph);
        Ok(())
    }

    /// The whole-file checksum failed. Best effort, recompute the
    /// per-section checksums from a bounds-guarded read of the
    /// directory so the error names *which* region is damaged; fall
    /// back to a whole-file mismatch when the directory itself is
    /// unreadable or every section checks out (damage in the header,
    /// directory, or padding).
    fn localize_damage(data: &[u8], expected: u64, actual: u64) -> SnapshotError {
        fn damaged_section(data: &[u8]) -> Option<SnapshotError> {
            let limit = data.len().checked_sub(TRAILER_LEN)?;
            // The header's section count is unverified here (the file
            // checksum already failed); clamp it to the largest count
            // any readable version writes before trusting the walk.
            let count = (u32_at(data, 16)? as usize).min(4);
            for i in 0..count {
                let at = HEADER_LEN + i * DIR_ENTRY_LEN;
                let mut r = Reader::new(data.get(at..at + DIR_ENTRY_LEN)?, "directory");
                let id = r.u32().ok()?;
                let offset = usize::try_from(r.u64().ok()?).ok()?;
                let len = usize::try_from(r.u64().ok()?).ok()?;
                let stored = r.u64().ok()?;
                let end = offset.checked_add(len)?;
                if end > limit {
                    return None;
                }
                let got = checksum64(&data[offset..end]);
                if got != stored {
                    return Some(SnapshotError::ChecksumMismatch {
                        region: section_name(id),
                        expected: stored,
                        actual: got,
                    });
                }
            }
            None
        }
        damaged_section(data).unwrap_or(SnapshotError::ChecksumMismatch {
            region: "file",
            expected,
            actual,
        })
    }

    /// Decodes the NAMES section header and checks every name slice.
    fn validate_names(&mut self) -> Result<(), SnapshotError> {
        let s = self.names;
        let bytes = s.slice(&self.data);
        let mut r = Reader::new(bytes, "names");
        let class_count = r.u32()? as usize;
        let member_count = r.u32()? as usize;
        let tables_len = 8usize
            .checked_add(4 * class_count)
            .and_then(|n| n.checked_add(4 * member_count))
            .ok_or_else(|| SnapshotError::malformed("name offset tables overflow"))?;
        if s.len < tables_len {
            return Err(SnapshotError::Truncated {
                context: "names offset tables",
                needed: tables_len,
                available: s.len,
            });
        }
        self.class_count = class_count;
        self.member_count = member_count;
        self.class_ends_at = s.offset + 8;
        self.member_ends_at = self.class_ends_at + 4 * class_count;
        self.class_blob_at = self.member_ends_at + 4 * member_count;

        let class_blob_len = if class_count == 0 {
            0
        } else {
            u32_at(&self.data, self.class_ends_at + 4 * (class_count - 1))
                .expect("offset table range-checked") as usize
        };
        let member_blob_len = if member_count == 0 {
            0
        } else {
            u32_at(&self.data, self.member_ends_at + 4 * (member_count - 1))
                .expect("offset table range-checked") as usize
        };
        self.member_blob_at = self.class_blob_at + class_blob_len;
        if tables_len + class_blob_len + member_blob_len != s.len {
            return Err(SnapshotError::malformed(format!(
                "names section is {} bytes but its contents describe {}",
                s.len,
                tables_len + class_blob_len + member_blob_len
            )));
        }
        let check = |ends_at: usize, count: usize, blob_at: usize, blob_len: usize, what: &str| {
            let mut prev = 0usize;
            for i in 0..count {
                let end = u32_at(&self.data, ends_at + 4 * i).expect("range-checked") as usize;
                if end < prev || end > blob_len {
                    return Err(SnapshotError::malformed(format!(
                        "{what} name {i} has invalid bounds {prev}..{end} (blob is {blob_len})"
                    )));
                }
                let slice = &self.data[blob_at + prev..blob_at + end];
                if std::str::from_utf8(slice).is_err() {
                    return Err(SnapshotError::malformed(format!(
                        "{what} name {i} is not valid UTF-8"
                    )));
                }
                prev = end;
            }
            Ok(())
        };
        check(
            self.class_ends_at,
            class_count,
            self.class_blob_at,
            class_blob_len,
            "class",
        )?;
        check(
            self.member_ends_at,
            member_count,
            self.member_blob_at,
            member_blob_len,
            "member",
        )
    }

    /// Structurally walks the CHG section: every class appears exactly
    /// once, in an order where its bases precede it (which also proves
    /// acyclicity), and every id is in range. Does *not* build a
    /// [`Chg`] — that is [`to_chg`](SnapshotTable::to_chg)'s job, and
    /// keeping it out of the load path is what makes loads cheap.
    fn validate_chg(&self) -> Result<(), SnapshotError> {
        let bytes = self.chg.slice(&self.data);
        let mut r = Reader::new(bytes, "chg");
        let class_count = r.varint_count("chg class", self.class_count)?;
        if class_count != self.class_count {
            return Err(SnapshotError::malformed(format!(
                "chg section declares {class_count} classes, names section {}",
                self.class_count
            )));
        }
        let edge_count = r.varint_count("chg edge", bytes.len())?;
        let mut seen = vec![false; class_count];
        let mut edges = 0usize;
        for _ in 0..class_count {
            let c = r.varint_count("class id", usize::MAX)?;
            if c >= class_count {
                return Err(SnapshotError::malformed(format!(
                    "class id {c} out of range ({class_count} classes)"
                )));
            }
            if seen[c] {
                return Err(SnapshotError::malformed(format!(
                    "class id {c} appears twice in the chg section"
                )));
            }
            seen[c] = true;
            let bases = r.varint_count("base", r.remaining())?;
            for _ in 0..bases {
                let base = r.varint_count("base id", usize::MAX)?;
                if base >= class_count || !seen[base] {
                    return Err(SnapshotError::malformed(format!(
                        "base id {base} of class {c} is out of range or not topo-ordered"
                    )));
                }
                if base == c {
                    return Err(SnapshotError::malformed(format!(
                        "class {c} inherits itself"
                    )));
                }
                let flags = r.u8()?;
                if flags >> 3 != 0 || flags >> 1 & 0b11 > 2 {
                    return Err(SnapshotError::malformed(format!(
                        "base edge of class {c} has invalid flags {flags:#04x}"
                    )));
                }
                edges += 1;
            }
            let members = r.varint_count("declared member", r.remaining())?;
            for _ in 0..members {
                let m = r.varint_count("member id", usize::MAX)?;
                if m >= self.member_count {
                    return Err(SnapshotError::malformed(format!(
                        "member id {m} out of range ({} member names)",
                        self.member_count
                    )));
                }
                let flags = r.u8()?;
                if flags >> 6 != 0 || flags & 0b111 > 5 || flags >> 3 & 0b11 > 2 {
                    return Err(SnapshotError::malformed(format!(
                        "member declaration in class {c} has invalid flags {flags:#04x}"
                    )));
                }
                if flags >> 5 & 1 == 1 {
                    let origin = r.varint_count("using origin", usize::MAX)?;
                    if origin >= class_count {
                        return Err(SnapshotError::malformed(format!(
                            "using-declaration origin {origin} out of range"
                        )));
                    }
                }
            }
        }
        if edges != edge_count {
            return Err(SnapshotError::malformed(format!(
                "chg section declares {edge_count} edges but encodes {edges}"
            )));
        }
        if !r.is_at_end() {
            return Err(SnapshotError::malformed(format!(
                "{} trailing bytes after the last chg record",
                r.remaining()
            )));
        }
        Ok(())
    }

    /// Validates the TABLE section: index bounds, sortedness, and a full
    /// decode of every entry payload, so the query path cannot fail.
    fn validate_table(&mut self) -> Result<(), SnapshotError> {
        let s = self.table;
        let bytes = s.slice(&self.data);
        let mut r = Reader::new(bytes, "table");
        let statics = r.u8()?;
        self.statics = match statics {
            0 => StaticRule::Cpp,
            1 => StaticRule::Ignore,
            other => {
                return Err(SnapshotError::malformed(format!(
                    "unknown statics rule {other}"
                )))
            }
        };
        if r.bytes(3)? != [0, 0, 0] {
            return Err(SnapshotError::malformed("nonzero table header padding"));
        }
        let class_count = r.u32()? as usize;
        if class_count != self.class_count {
            return Err(SnapshotError::malformed(format!(
                "table section declares {class_count} classes, names section {}",
                self.class_count
            )));
        }
        let entry_count = r.u32()? as usize;
        let payload_len = r.u32()? as usize;
        let fixed = 16usize
            .checked_add(4 * (class_count + 1))
            .and_then(|n| n.checked_add(8usize.checked_mul(entry_count)?))
            .ok_or_else(|| SnapshotError::malformed("table index overflows"))?;
        if fixed.checked_add(payload_len) != Some(s.len) {
            return Err(SnapshotError::malformed(format!(
                "table section is {} bytes but its header describes {}",
                s.len,
                fixed + payload_len
            )));
        }
        self.entry_count = entry_count;
        self.row_starts_at = s.offset + 16;
        self.entry_index_at = self.row_starts_at + 4 * (class_count + 1);
        self.payload_at = self.entry_index_at + 8 * entry_count;
        self.payload_len = payload_len;

        // Row bounds: monotone, covering [0, entry_count].
        let mut prev_start = 0usize;
        if self.row_start(0) != 0 {
            return Err(SnapshotError::malformed(
                "first table row does not start at 0",
            ));
        }
        for c in 0..=class_count {
            let start = self.row_start(c);
            if start < prev_start || start > entry_count {
                return Err(SnapshotError::malformed(format!(
                    "row start {start} of class {c} is out of order"
                )));
            }
            prev_start = start;
        }
        if prev_start != entry_count {
            return Err(SnapshotError::malformed(format!(
                "row starts end at {prev_start}, expected {entry_count}"
            )));
        }

        // Entry index, one pass: member ids strictly increasing within
        // each row, payload offsets strictly increasing globally, and a
        // full decode of every payload. Entries are written
        // contiguously starting at payload offset 0, so each decode
        // must end exactly where the next entry begins — which means an
        // entry's extent is only known once the *next* index record is
        // read; `pending_start` carries the deferred decode.
        let index = &self.data[self.entry_index_at..self.entry_index_at + 8 * entry_count];
        let payload = &self.data[self.payload_at..self.payload_at + payload_len];
        let mut records = index.chunks_exact(8);
        let mut pending_start: Option<usize> = None;
        for c in 0..class_count {
            let (lo, hi) = (self.row_start(c), self.row_start(c + 1));
            let mut prev_member: Option<u32> = None;
            for i in lo..hi {
                // Rows partition [0, entry_count), already validated, so
                // the record iterator advances in lockstep with `i`.
                let rec = records.next().expect("row starts sum to entry_count");
                let m = u32::from_le_bytes(rec[..4].try_into().expect("8-byte chunk"));
                let offset = u32::from_le_bytes(rec[4..].try_into().expect("8-byte chunk"));
                if m as usize >= self.member_count {
                    return Err(SnapshotError::malformed(format!(
                        "table entry for class {c} names member {m}, out of range"
                    )));
                }
                if prev_member.is_some_and(|p| p >= m) {
                    return Err(SnapshotError::malformed(format!(
                        "table row of class {c} is not sorted by member id"
                    )));
                }
                prev_member = Some(m);
                let offset = offset as usize;
                match pending_start {
                    Some(start) => {
                        if offset <= start || offset > payload_len {
                            return Err(SnapshotError::malformed(format!(
                                "entry {} payload bounds {start}..{offset} are invalid",
                                i - 1
                            )));
                        }
                        self.check_payload(payload, start, offset, i - 1)?;
                    }
                    None if offset != 0 => {
                        return Err(SnapshotError::malformed(format!(
                            "first entry payload starts at {offset}, expected 0"
                        )));
                    }
                    None => {}
                }
                pending_start = Some(offset);
            }
        }
        match pending_start {
            Some(start) => {
                if start >= payload_len {
                    return Err(SnapshotError::malformed(format!(
                        "entry {} payload bounds {start}..{payload_len} are invalid",
                        entry_count - 1
                    )));
                }
                self.check_payload(payload, start, payload_len, entry_count - 1)?;
            }
            None if payload_len != 0 => {
                return Err(SnapshotError::malformed(format!(
                    "{payload_len} payload bytes but no table entries"
                )));
            }
            None => {}
        }
        Ok(())
    }

    /// Decodes one entry payload at `payload[start..end]` during
    /// validation, requiring the decode to consume it exactly. The
    /// happy path is a branch-lean slice walk ([`entry_bytes_ok`]
    /// (SnapshotTable::entry_bytes_ok)) — validation decodes every
    /// entry in the file, so this is the hottest loop of a cold load.
    /// Only when that walk rejects do we re-decode through the
    /// error-reporting [`Reader`] to say precisely what is wrong.
    fn check_payload(
        &self,
        payload: &[u8],
        start: usize,
        end: usize,
        i: usize,
    ) -> Result<(), SnapshotError> {
        let payload = &payload[start..end];
        if self.entry_bytes_ok(payload) {
            return Ok(());
        }
        let mut er = Reader::new(payload, "table entry");
        self.check_entry_from(&mut er)?;
        Err(SnapshotError::malformed(format!(
            "entry {i} leaves {} undecoded payload bytes",
            er.remaining()
        )))
    }

    /// Whether `p` is exactly one well-formed entry encoding, with every
    /// id in range. Must accept precisely the inputs
    /// [`check_entry_from`](SnapshotTable::check_entry_from) accepts
    /// (the slow path relies on this to reconstruct the error).
    #[inline]
    fn entry_bytes_ok(&self, p: &[u8]) -> bool {
        /// LEB128 with the same 10-byte/overflow rules as
        /// [`Reader::varint`], minus the error bookkeeping. Nearly every
        /// varint in a real snapshot is a single byte, so that case is
        /// kept branch-lean and the continuation loop out of line.
        #[inline]
        fn varint(p: &[u8], pos: &mut usize) -> Option<u64> {
            let b = *p.get(*pos)?;
            *pos += 1;
            if b & 0x80 == 0 {
                return Some(u64::from(b));
            }
            varint_tail(p, pos, u64::from(b & 0x7F))
        }
        fn varint_tail(p: &[u8], pos: &mut usize, mut value: u64) -> Option<u64> {
            for i in 1..10 {
                let b = *p.get(*pos)?;
                *pos += 1;
                let data = u64::from(b & 0x7F);
                if i == 9 && data > 1 {
                    return None;
                }
                value |= data << (i * 7);
                if b & 0x80 == 0 {
                    return Some(value);
                }
            }
            None
        }
        let cc = self.class_count as u64;
        let lv_ok = |raw: u64| raw == 0 || raw - 1 < cc;
        let mut pos = 1usize;
        let Some(&tag) = p.first() else { return false };
        let witnesses_from = match tag {
            0 => {
                let Some(ldc) = varint(p, &mut pos) else {
                    return false;
                };
                if ldc >= cc {
                    return false;
                }
                let Some(lv) = varint(p, &mut pos) else {
                    return false;
                };
                if !lv_ok(lv) {
                    return false;
                }
                let Some(via) = varint(p, &mut pos) else {
                    return false;
                };
                if via > cc {
                    return false;
                }
                pos
            }
            1 => pos,
            _ => return false,
        };
        let mut pos = witnesses_from;
        let Some(count) = varint(p, &mut pos) else {
            return false;
        };
        if count > (p.len() - pos) as u64 {
            return false;
        }
        for _ in 0..count {
            let Some(lv) = varint(p, &mut pos) else {
                return false;
            };
            if !lv_ok(lv) {
                return false;
            }
        }
        pos == p.len()
    }

    #[inline]
    fn row_start(&self, c: usize) -> usize {
        u32_at(&self.data, self.row_starts_at + 4 * c).expect("row table range-checked") as usize
    }

    #[inline]
    fn index_record(&self, i: usize) -> (u32, u32) {
        let at = self.entry_index_at + 8 * i;
        (
            u32_at(&self.data, at).expect("entry index range-checked"),
            u32_at(&self.data, at + 4).expect("entry index range-checked"),
        )
    }

    fn decode_lv(&self, raw: u64) -> Result<LeastVirtual, SnapshotError> {
        if raw == 0 {
            return Ok(LeastVirtual::Omega);
        }
        let c = raw - 1;
        if c >= self.class_count as u64 {
            return Err(SnapshotError::malformed(format!(
                "leastVirtual class id {c} out of range"
            )));
        }
        Ok(LeastVirtual::Class(ClassId::from_index(c as usize)))
    }

    /// Range-checks a leastVirtual encoding without building the value.
    fn check_lv(&self, raw: u64) -> Result<(), SnapshotError> {
        self.decode_lv(raw).map(|_| ())
    }

    /// Validation-only twin of [`decode_entry_from`]: performs exactly
    /// the checks the decoder performs, byte for byte, but never
    /// allocates the witness vectors. Whole-file validation decodes
    /// every entry once, so skipping a million tiny `Vec`s here is what
    /// keeps the cold-load path allocation-free and fast.
    fn check_entry_from(&self, r: &mut Reader<'_>) -> Result<(), SnapshotError> {
        match r.u8()? {
            0 => {
                let ldc = r.varint()?;
                if ldc >= self.class_count as u64 {
                    return Err(SnapshotError::malformed(format!(
                        "red ldc {ldc} out of range"
                    )));
                }
                self.check_lv(r.varint()?)?;
                match r.varint()? {
                    0 => {}
                    raw => {
                        let c = raw - 1;
                        if c >= self.class_count as u64 {
                            return Err(SnapshotError::malformed(format!(
                                "red via class {c} out of range"
                            )));
                        }
                    }
                }
                let count = r.varint_count("shared lv", r.remaining())?;
                for _ in 0..count {
                    self.check_lv(r.varint()?)?;
                }
                Ok(())
            }
            1 => {
                let count = r.varint_count("blue lv", r.remaining())?;
                for _ in 0..count {
                    self.check_lv(r.varint()?)?;
                }
                Ok(())
            }
            tag => Err(SnapshotError::malformed(format!("unknown entry tag {tag}"))),
        }
    }

    fn decode_entry_from(&self, r: &mut Reader<'_>) -> Result<Entry, SnapshotError> {
        match r.u8()? {
            0 => {
                let ldc = r.varint()?;
                if ldc >= self.class_count as u64 {
                    return Err(SnapshotError::malformed(format!(
                        "red ldc {ldc} out of range"
                    )));
                }
                let lv = self.decode_lv(r.varint()?)?;
                let via = match r.varint()? {
                    0 => None,
                    raw => {
                        let c = raw - 1;
                        if c >= self.class_count as u64 {
                            return Err(SnapshotError::malformed(format!(
                                "red via class {c} out of range"
                            )));
                        }
                        Some(ClassId::from_index(c as usize))
                    }
                };
                let count = r.varint_count("shared lv", r.remaining())?;
                let mut shared = Vec::with_capacity(count);
                for _ in 0..count {
                    shared.push(self.decode_lv(r.varint()?)?);
                }
                Ok(Entry::Red {
                    abs: RedAbs {
                        ldc: ClassId::from_index(ldc as usize),
                        lv,
                    },
                    via,
                    shared,
                })
            }
            1 => {
                let count = r.varint_count("blue lv", r.remaining())?;
                let mut set = Vec::with_capacity(count);
                for _ in 0..count {
                    set.push(self.decode_lv(r.varint()?)?);
                }
                Ok(Entry::Blue(set))
            }
            tag => Err(SnapshotError::malformed(format!("unknown entry tag {tag}"))),
        }
    }

    /// Number of classes in the snapshot.
    pub fn class_count(&self) -> usize {
        self.class_count
    }

    /// Number of interned member names.
    pub fn member_name_count(&self) -> usize {
        self.member_count
    }

    /// Number of resolved `(class, member)` entries.
    pub fn entry_count(&self) -> usize {
        self.entry_count
    }

    /// Total serialized size in bytes.
    pub fn size_bytes(&self) -> usize {
        self.data.len()
    }

    /// The raw, validated snapshot image the table serves from — the
    /// exact bytes of the file it was loaded from, so a server can
    /// re-materialize the snapshot (e.g. as a compaction checkpoint)
    /// even after the original file is gone.
    pub fn as_bytes(&self) -> &[u8] {
        &self.data
    }

    /// The lookup options the table was compiled with.
    pub fn options(&self) -> LookupOptions {
        LookupOptions {
            statics: self.statics,
        }
    }

    /// The name of class `c`, if `c` is in range — sliced straight from
    /// the buffer.
    pub fn class_name(&self, c: ClassId) -> Option<&str> {
        let i = c.index();
        if i >= self.class_count {
            return None;
        }
        let start = if i == 0 {
            0
        } else {
            u32_at(&self.data, self.class_ends_at + 4 * (i - 1))? as usize
        };
        let end = u32_at(&self.data, self.class_ends_at + 4 * i)? as usize;
        std::str::from_utf8(&self.data[self.class_blob_at + start..self.class_blob_at + end]).ok()
    }

    /// The name of member `m`, if in range.
    pub fn member_name(&self, m: MemberId) -> Option<&str> {
        let i = m.index();
        if i >= self.member_count {
            return None;
        }
        let start = if i == 0 {
            0
        } else {
            u32_at(&self.data, self.member_ends_at + 4 * (i - 1))? as usize
        };
        let end = u32_at(&self.data, self.member_ends_at + 4 * i)? as usize;
        std::str::from_utf8(&self.data[self.member_blob_at + start..self.member_blob_at + end]).ok()
    }

    /// Finds a class by name (linear scan of the name table).
    pub fn class_by_name(&self, name: &str) -> Option<ClassId> {
        (0..self.class_count)
            .map(ClassId::from_index)
            .find(|&c| self.class_name(c) == Some(name))
    }

    /// Finds a member name (linear scan of the name table).
    pub fn member_by_name(&self, name: &str) -> Option<MemberId> {
        (0..self.member_count)
            .map(MemberId::from_index)
            .find(|&m| self.member_name(m) == Some(name))
    }

    /// Decodes the payload record at `offset`, bypassing the memo.
    fn decode_at(&self, offset: u32) -> Option<Entry> {
        let payload =
            &self.data[self.payload_at + offset as usize..self.payload_at + self.payload_len];
        let mut r = Reader::new(payload, "table entry");
        // Validation decoded this exact record at load time, so failure
        // is unreachable; fail closed regardless.
        self.decode_entry_from(&mut r).ok()
    }

    /// The decoded table entry for `(c, m)`, or `None` when
    /// `m ∉ Members[c]`. Binary-searches the class row's fixed-width
    /// index; a repeated hit on the record the previous query decoded is
    /// answered from the decoded-entry memo without re-walking the
    /// varint payload.
    pub fn entry(&self, c: ClassId, m: MemberId) -> Option<Entry> {
        if c.index() >= self.class_count {
            return None;
        }
        let (lo, hi) = (self.row_start(c.index()), self.row_start(c.index() + 1));
        let target = m.index() as u32;
        let (mut lo, mut hi) = (lo, hi);
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            let (member, offset) = self.index_record(mid);
            match member.cmp(&target) {
                std::cmp::Ordering::Less => lo = mid + 1,
                std::cmp::Ordering::Greater => hi = mid,
                std::cmp::Ordering::Equal => {
                    // `try_lock`: a contended memo (another thread is
                    // mid-update) must never block the read path.
                    if let Ok(mut memo) = self.decoded.try_lock() {
                        if let Some((at, e)) = memo.as_ref() {
                            if *at == offset {
                                return Some(e.clone());
                            }
                        }
                        let e = self.decode_at(offset)?;
                        *memo = Some((offset, e.clone()));
                        return Some(e);
                    }
                    return self.decode_at(offset);
                }
            }
        }
        None
    }

    /// `lookup(c, m)` answered from the snapshot.
    pub fn lookup(&self, c: ClassId, m: MemberId) -> LookupOutcome {
        LookupOutcome::from_entry(self.entry(c, m).as_ref())
    }

    /// Iterates every `(class, member, entry)` triple, decoding lazily —
    /// the bulk-export path used to warm a [`LookupEngine`] cache.
    pub fn entries(&self) -> SnapshotEntries<'_> {
        SnapshotEntries {
            table: self,
            class: 0,
            record: 0,
        }
    }

    /// Rebuilds the full [`Chg`] from the topology section — for
    /// clients that need graph structure (path recovery, oracle
    /// differential checks, engine edits), not for serving lookups.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Malformed`] if the decoded topology violates a
    /// [`ChgBuilder`] invariant (cannot happen for writer-produced
    /// snapshots that passed validation).
    pub fn to_chg(&self) -> Result<Chg, SnapshotError> {
        let mut b = ChgBuilder::new();
        for i in 0..self.class_count {
            let name = self
                .class_name(ClassId::from_index(i))
                .ok_or_else(|| SnapshotError::malformed("class name table inconsistent"))?
                .to_owned();
            b.class(&name);
        }
        for i in 0..self.member_count {
            let name = self
                .member_name(MemberId::from_index(i))
                .ok_or_else(|| SnapshotError::malformed("member name table inconsistent"))?
                .to_owned();
            b.intern_member_name(&name);
        }
        let bytes = self.chg.slice(&self.data);
        let mut r = Reader::new(bytes, "chg");
        let class_count = r.varint_count("chg class", self.class_count)?;
        let _edges = r.varint()?;
        for _ in 0..class_count {
            let c = ClassId::from_index(r.varint_count("class id", self.class_count - 1)?);
            let bases = r.varint_count("base", r.remaining())?;
            for _ in 0..bases {
                let base = ClassId::from_index(r.varint_count("base id", self.class_count - 1)?);
                let flags = r.u8()?;
                let inheritance = if flags & 1 == 1 {
                    Inheritance::Virtual
                } else {
                    Inheritance::NonVirtual
                };
                let access = decode_access(flags >> 1 & 0b11)?;
                b.derive_with_access(c, base, inheritance, access)
                    .map_err(|e| SnapshotError::malformed(e.to_string()))?;
            }
            let members = r.varint_count("declared member", r.remaining())?;
            for _ in 0..members {
                let m = MemberId::from_index(r.varint_count("member id", self.member_count - 1)?);
                let flags = r.u8()?;
                let kind = decode_kind(flags & 0b111)?;
                let access = decode_access(flags >> 3 & 0b11)?;
                let via_using = if flags >> 5 & 1 == 1 {
                    Some(ClassId::from_index(
                        r.varint_count("using origin", self.class_count - 1)?,
                    ))
                } else {
                    None
                };
                let name = self
                    .member_name(m)
                    .ok_or_else(|| SnapshotError::malformed("member name table inconsistent"))?
                    .to_owned();
                let decl = MemberDecl {
                    kind,
                    access,
                    via_using,
                };
                let declared = b
                    .member_with(c, &name, decl)
                    .map_err(|e| SnapshotError::malformed(e.to_string()))?;
                if declared != m {
                    return Err(SnapshotError::malformed(format!(
                        "member {name} re-interned to a different id"
                    )));
                }
            }
        }
        b.finish()
            .map_err(|e| SnapshotError::malformed(e.to_string()))
    }

    /// Materializes a [`LookupEngine`] whose memo cache is warmed from
    /// the snapshot: the hierarchy is rebuilt with
    /// [`to_chg`](SnapshotTable::to_chg), the engine is created lazy
    /// (skipping the whole-table build), and every serialized entry is
    /// seeded into the cache. The engine then serves cache hits
    /// immediately and still supports edits with incremental
    /// invalidation.
    ///
    /// # Errors
    ///
    /// Any error of [`to_chg`](SnapshotTable::to_chg).
    pub fn warm_engine(&self) -> Result<LookupEngine, SnapshotError> {
        let chg = self.to_chg()?;
        let mut options = EngineOptions::lazy();
        options.lookup = self.options();
        let mut engine = LookupEngine::with_options(chg, options);
        engine.seed_entries(self.entries());
        Ok(engine)
    }

    /// Pre-decodes the whole table into a flat
    /// [`DispatchIndex`](cpplookup_core::DispatchIndex): every varint
    /// payload is decoded exactly once here, and queries afterwards
    /// touch only the index's fixed-width arrays — the serving
    /// configuration for snapshot-backed deployments
    /// (`batch --snapshot --serve` in the CLI).
    ///
    /// Prefer the backend-generic
    /// [`DispatchIndex::from_backend`](cpplookup_core::DispatchIndex::from_backend)
    /// in new code; this remains as the snapshot-specific delegate
    /// behind `&SnapshotTable`'s
    /// [`IntoDispatchIndex`](cpplookup_core::IntoDispatchIndex) impl.
    pub fn dispatch_index(&self) -> cpplookup_core::DispatchIndex {
        let start = Instant::now();
        // Version ≥ 2 snapshots ship their probe directory's hash
        // pre-compiled: reuse it instead of re-running the displacement
        // search. Version-1 files fall back to the open-addressed
        // directory, keeping old snapshots loadable forever.
        let index = match &self.mph {
            Some(mph) => cpplookup_core::DispatchIndex::from_entries_mph(
                self.class_count,
                self.entries(),
                mph.clone(),
            ),
            None => {
                cpplookup_core::DispatchIndex::from_entries_open(self.class_count, self.entries())
            }
        };
        obs::index_built(
            "snapshot",
            index.entry_count() as u64,
            index.size_bytes() as u64,
            start.elapsed().as_nanos() as u64,
        );
        index
    }

    /// Recovers the winning definition path like
    /// [`LookupTable::resolve_path`](cpplookup_core::LookupTable::resolve_path),
    /// walking red `via` parent pointers decoded from the buffer.
    pub fn resolve_path(&self, chg: &Chg, c: ClassId, m: MemberId) -> Option<ChgPath> {
        let mut rev = vec![c];
        let mut cur = c;
        loop {
            match self.entry(cur, m)? {
                Entry::Red { via: Some(x), .. } => {
                    rev.push(x);
                    cur = x;
                }
                Entry::Red { via: None, .. } => break,
                Entry::Blue(_) => return None,
            }
        }
        rev.reverse();
        ChgPath::new(chg, rev).ok()
    }
}

impl cpplookup_core::IntoDispatchIndex for &SnapshotTable {
    fn backend_label(&self) -> &'static str {
        "snapshot"
    }

    fn into_dispatch_index(self) -> cpplookup_core::DispatchIndex {
        self.dispatch_index()
    }
}

impl std::fmt::Debug for SnapshotTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "SnapshotTable {{ classes: {}, members: {}, entries: {}, {} bytes }}",
            self.class_count,
            self.member_count,
            self.entry_count,
            self.data.len()
        )
    }
}

impl MemberLookup for SnapshotTable {
    fn lookup(&mut self, c: ClassId, m: MemberId) -> LookupOutcome {
        SnapshotTable::lookup(self, c, m)
    }

    fn entry(&mut self, c: ClassId, m: MemberId) -> Option<Entry> {
        SnapshotTable::entry(self, c, m)
    }

    fn resolve_path(&mut self, chg: &Chg, c: ClassId, m: MemberId) -> Option<ChgPath> {
        SnapshotTable::resolve_path(self, chg, c, m)
    }
}

/// Iterator over every serialized `(class, member, entry)` triple. See
/// [`SnapshotTable::entries`].
pub struct SnapshotEntries<'a> {
    table: &'a SnapshotTable,
    class: usize,
    record: usize,
}

impl Iterator for SnapshotEntries<'_> {
    type Item = (ClassId, MemberId, Entry);

    fn next(&mut self) -> Option<Self::Item> {
        let t = self.table;
        while self.class < t.class_count {
            if self.record < t.row_start(self.class + 1) {
                let (m, offset) = t.index_record(self.record);
                self.record += 1;
                let c = ClassId::from_index(self.class);
                let m = MemberId::from_index(m as usize);
                // Validated at load time; the decode cannot miss here.
                // The record's payload offset is already in hand, so the
                // bulk walk skips both the row binary search and the
                // single-record memo.
                if let Some(entry) = t.decode_at(offset) {
                    return Some((c, m, entry));
                }
            } else {
                self.class += 1;
            }
        }
        None
    }
}

fn decode_access(raw: u8) -> Result<Access, SnapshotError> {
    match raw {
        0 => Ok(Access::Private),
        1 => Ok(Access::Protected),
        2 => Ok(Access::Public),
        other => Err(SnapshotError::malformed(format!(
            "invalid access encoding {other}"
        ))),
    }
}

fn decode_kind(raw: u8) -> Result<MemberKind, SnapshotError> {
    match raw {
        0 => Ok(MemberKind::Data),
        1 => Ok(MemberKind::Function),
        2 => Ok(MemberKind::StaticData),
        3 => Ok(MemberKind::StaticFunction),
        4 => Ok(MemberKind::TypeName),
        5 => Ok(MemberKind::Enumerator),
        other => Err(SnapshotError::malformed(format!(
            "invalid member kind encoding {other}"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Snapshot;
    use cpplookup_chg::fixtures;
    use cpplookup_core::{DirectoryKind, LookupTable};

    fn roundtrip(g: &Chg) -> SnapshotTable {
        SnapshotTable::from_bytes(Snapshot::compile(g).into_bytes()).expect("roundtrip")
    }

    /// Re-encodes a current (version-2) snapshot as the version-1
    /// layout the original writer produced: same first three sections,
    /// no MPH section, version field 1. Byte-exact per the v1 spec, so
    /// it exercises the loader's backward-compat path end to end.
    fn downgrade_to_v1(bytes: &[u8]) -> Vec<u8> {
        let mut payloads = Vec::new();
        for i in 0..3 {
            let at = HEADER_LEN + i * DIR_ENTRY_LEN;
            let id = u32::from_le_bytes(bytes[at..at + 4].try_into().unwrap());
            let offset = u64::from_le_bytes(bytes[at + 4..at + 12].try_into().unwrap()) as usize;
            let len = u64::from_le_bytes(bytes[at + 12..at + 20].try_into().unwrap()) as usize;
            payloads.push((id, bytes[offset..offset + len].to_vec()));
        }
        let mut out = Vec::new();
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&1u16.to_le_bytes());
        out.extend_from_slice(&ENDIAN_TAG.to_le_bytes());
        out.extend_from_slice(&0u32.to_le_bytes());
        out.extend_from_slice(&3u32.to_le_bytes());
        out.extend_from_slice(&0u32.to_le_bytes());
        out.extend_from_slice(&0u64.to_le_bytes());
        out.resize(HEADER_LEN + 3 * DIR_ENTRY_LEN, 0);
        let mut directory = Vec::new();
        for (id, payload) in &payloads {
            out.resize(out.len() + crate::format::padding_to_align(out.len()), 0);
            directory.push((
                *id,
                out.len() as u64,
                payload.len() as u64,
                checksum64(payload),
            ));
            out.extend_from_slice(payload);
        }
        for (i, (id, offset, len, sum)) in directory.iter().enumerate() {
            let at = HEADER_LEN + i * DIR_ENTRY_LEN;
            out[at..at + 4].copy_from_slice(&id.to_le_bytes());
            out[at + 4..at + 12].copy_from_slice(&offset.to_le_bytes());
            out[at + 12..at + 20].copy_from_slice(&len.to_le_bytes());
            out[at + 20..at + 28].copy_from_slice(&sum.to_le_bytes());
        }
        let total = (out.len() + 8) as u64;
        out[24..32].copy_from_slice(&total.to_le_bytes());
        let sum = checksum64(&out);
        out.extend_from_slice(&sum.to_le_bytes());
        out
    }

    /// Patches `bytes[at..at + patch.len()]`, then re-seals the MPH
    /// section checksum and the whole-file checksum so the targeted
    /// structural check — not the integrity sweep — is what fires.
    fn corrupt_mph_and_reseal(bytes: &mut [u8], at: usize, patch: &[u8]) {
        bytes[at..at + patch.len()].copy_from_slice(patch);
        let dir_at = HEADER_LEN + 3 * DIR_ENTRY_LEN;
        let offset =
            u64::from_le_bytes(bytes[dir_at + 4..dir_at + 12].try_into().unwrap()) as usize;
        let len = u64::from_le_bytes(bytes[dir_at + 12..dir_at + 20].try_into().unwrap()) as usize;
        let sum = checksum64(&bytes[offset..offset + len]);
        bytes[dir_at + 20..dir_at + 28].copy_from_slice(&sum.to_le_bytes());
        let n = bytes.len();
        let sum = checksum64(&bytes[..n - 8]);
        bytes[n - 8..].copy_from_slice(&sum.to_le_bytes());
    }

    /// Absolute offset of the MPH section of a version-2 image.
    fn mph_section_at(bytes: &[u8]) -> usize {
        let dir_at = HEADER_LEN + 3 * DIR_ENTRY_LEN;
        u64::from_le_bytes(bytes[dir_at + 4..dir_at + 12].try_into().unwrap()) as usize
    }

    #[test]
    fn v2_snapshots_serve_through_the_shipped_mph() {
        let g = fixtures::fig3();
        let snap = roundtrip(&g);
        assert!(snap.mph.is_some(), "v2 load must decode the MPH section");
        let index = snap.dispatch_index();
        assert_eq!(index.directory_kind(), DirectoryKind::Mph);
        let table = LookupTable::build(&g);
        for c in g.classes() {
            for m in g.member_ids() {
                assert_eq!(index.lookup_ref(c, m).to_outcome(), table.lookup(c, m));
            }
        }
    }

    #[test]
    fn v1_snapshots_fall_back_to_the_open_directory() {
        let g = fixtures::fig9();
        let v2 = Snapshot::compile(&g).into_bytes();
        let v1 = downgrade_to_v1(&v2);
        let snap = SnapshotTable::from_bytes(v1).expect("v1 snapshots must stay loadable");
        assert!(snap.mph.is_none());
        let index = snap.dispatch_index();
        assert_eq!(index.directory_kind(), DirectoryKind::Open);
        // Downgrading loses no data: every outcome matches the v2 load.
        let fresh = roundtrip(&g);
        for c in g.classes() {
            for m in g.member_ids() {
                assert_eq!(snap.entry(c, m), fresh.entry(c, m));
                assert_eq!(snap.lookup(c, m), fresh.lookup(c, m));
            }
        }
    }

    #[test]
    fn corrupted_mph_sections_are_rejected() {
        let g = fixtures::fig3();
        let good = Snapshot::compile(&g).into_bytes();
        let at = mph_section_at(&good);

        // Key count disagreeing with the table section.
        let mut skewed = good.clone();
        let n = u32::from_le_bytes(good[at + 8..at + 12].try_into().unwrap());
        corrupt_mph_and_reseal(&mut skewed, at + 8, &(n + 1).to_le_bytes());
        let err = SnapshotTable::from_bytes(skewed).unwrap_err();
        assert!(err.to_string().contains("mph"), "{err}");

        // Bucket count disagreeing with the section length.
        let mut resized = good.clone();
        let nb = u32::from_le_bytes(good[at + 12..at + 16].try_into().unwrap());
        corrupt_mph_and_reseal(&mut resized, at + 12, &(nb * 2).to_le_bytes());
        let err = SnapshotTable::from_bytes(resized).unwrap_err();
        assert!(err.to_string().contains("mph"), "{err}");

        // A displacement steering keys into a collision. A single
        // flipped displacement relocates that bucket's keys, which at
        // minimal load all but guarantees a collision; assert only that
        // the load never mis-serves (error, or a still-perfect hash).
        let mut bent = good.clone();
        let d = u32::from_le_bytes(good[at + 16..at + 20].try_into().unwrap());
        corrupt_mph_and_reseal(&mut bent, at + 16, &(d ^ 1).to_le_bytes());
        if let Ok(snap) = SnapshotTable::from_bytes(bent) {
            let index = snap.dispatch_index();
            let table = LookupTable::build(&g);
            for c in g.classes() {
                for m in g.member_ids() {
                    assert_eq!(index.lookup_ref(c, m).to_outcome(), table.lookup(c, m));
                }
            }
        }
    }

    #[test]
    fn roundtrip_preserves_every_entry_on_fixtures() {
        for g in [
            fixtures::fig1(),
            fixtures::fig2(),
            fixtures::fig3(),
            fixtures::fig9(),
            fixtures::static_diamond(),
            fixtures::static_override_mix(),
            fixtures::dominance_diamond(),
        ] {
            let table = LookupTable::build(&g);
            let snap = roundtrip(&g);
            assert_eq!(snap.class_count(), g.class_count());
            assert_eq!(snap.member_name_count(), g.member_name_count());
            for c in g.classes() {
                assert_eq!(snap.class_name(c), Some(g.class_name(c)));
                for m in g.member_ids() {
                    assert_eq!(
                        snap.entry(c, m),
                        table.entry(c, m).cloned(),
                        "({}, {})",
                        g.class_name(c),
                        g.member_name(m)
                    );
                    assert_eq!(snap.lookup(c, m), table.lookup(c, m));
                }
            }
        }
    }

    #[test]
    fn decoded_memo_survives_repeats_and_alternation() {
        let g = fixtures::fig3();
        let table = LookupTable::build(&g);
        let snap = roundtrip(&g);
        let h = g.class_by_name("H").unwrap();
        let foo = g.member_by_name("foo").unwrap();
        let bar = g.member_by_name("bar").unwrap();
        // Repeats hit the memo; alternation evicts and refills it; a
        // miss must not disturb it. All must keep matching the table.
        for _ in 0..3 {
            assert_eq!(snap.entry(h, foo), table.entry(h, foo).cloned());
            assert_eq!(snap.entry(h, foo), table.entry(h, foo).cloned());
            assert_eq!(snap.entry(h, bar), table.entry(h, bar).cloned());
            assert_eq!(
                snap.entry(ClassId::from_index(g.class_count() + 3), foo),
                None
            );
        }
    }

    #[test]
    fn dispatch_index_matches_snapshot_outcomes() {
        let g = fixtures::fig9();
        let snap = roundtrip(&g);
        let index = snap.dispatch_index();
        assert_eq!(index.entry_count(), snap.entry_count());
        for c in g.classes() {
            for m in g.member_ids() {
                assert_eq!(index.entry(c, m), snap.entry(c, m));
                assert_eq!(index.lookup_ref(c, m).to_outcome(), snap.lookup(c, m));
            }
        }
    }

    #[test]
    fn to_chg_rebuilds_an_equivalent_hierarchy() {
        let g = fixtures::fig3();
        let snap = roundtrip(&g);
        let back = snap.to_chg().unwrap();
        assert_eq!(back.class_count(), g.class_count());
        assert_eq!(back.edge_count(), g.edge_count());
        assert_eq!(back.member_name_count(), g.member_name_count());
        for c in g.classes() {
            assert_eq!(back.class_name(c), g.class_name(c));
            assert_eq!(back.direct_bases(c), g.direct_bases(c));
            assert_eq!(back.declared_members(c), g.declared_members(c));
        }
        assert_eq!(back.topo_order(), g.topo_order());
        // And recompiling the rebuilt hierarchy is byte-identical.
        let again = Snapshot::compile(&back);
        assert_eq!(again.as_bytes(), Snapshot::compile(&g).as_bytes());
    }

    #[test]
    fn resolve_path_matches_table() {
        let g = fixtures::fig3();
        let t = LookupTable::build(&g);
        let snap = roundtrip(&g);
        let h = g.class_by_name("H").unwrap();
        let foo = g.member_by_name("foo").unwrap();
        let bar = g.member_by_name("bar").unwrap();
        assert_eq!(
            snap.resolve_path(&g, h, foo)
                .unwrap()
                .display(&g)
                .to_string(),
            t.resolve_path(&g, h, foo).unwrap().display(&g).to_string()
        );
        assert_eq!(snap.resolve_path(&g, h, bar), None);
    }

    #[test]
    fn warm_engine_serves_cache_hits() {
        let g = fixtures::fig9();
        let snap = roundtrip(&g);
        let engine = snap.warm_engine().unwrap();
        let e = engine.chg().class_by_name("E").unwrap();
        let m = engine.chg().member_by_name("m").unwrap();
        match engine.lookup(e, m) {
            LookupOutcome::Resolved { class, .. } => {
                assert_eq!(engine.chg().class_name(class), "C")
            }
            other => panic!("expected C::m, got {other:?}"),
        }
        let stats = engine.stats();
        assert_eq!(stats.cache_misses, 0, "warm cache must not miss");
        assert_eq!(stats.entries_computed, 0);
    }

    #[test]
    fn entries_iterator_covers_the_whole_table() {
        let g = fixtures::fig3();
        let t = LookupTable::build(&g);
        let snap = roundtrip(&g);
        let mut count = 0usize;
        for (c, m, entry) in snap.entries() {
            assert_eq!(Some(&entry), t.entry(c, m));
            count += 1;
        }
        assert_eq!(count, t.stats().entries);
        assert_eq!(count, snap.entry_count());
    }

    #[test]
    fn by_name_queries() {
        let g = fixtures::fig2();
        let snap = roundtrip(&g);
        assert_eq!(snap.class_by_name("E"), g.class_by_name("E"));
        assert_eq!(snap.member_by_name("m"), g.member_by_name("m"));
        assert_eq!(snap.class_by_name("nope"), None);
        assert_eq!(snap.member_by_name("nope"), None);
        assert_eq!(snap.class_name(ClassId::from_index(999)), None);
        assert_eq!(snap.member_name(MemberId::from_index(999)), None);
    }

    #[test]
    fn empty_hierarchy_roundtrips() {
        let g = ChgBuilder::new().finish().unwrap();
        let snap = roundtrip(&g);
        assert_eq!(snap.class_count(), 0);
        assert_eq!(snap.entry_count(), 0);
        assert!(snap.to_chg().unwrap().class_count() == 0);
        assert_eq!(snap.entries().count(), 0);
    }

    #[test]
    fn truncation_always_errors() {
        let g = fixtures::fig3();
        let bytes = Snapshot::compile(&g).into_bytes();
        for len in 0..bytes.len() {
            let err = SnapshotTable::from_bytes(bytes[..len].to_vec());
            assert!(
                err.is_err(),
                "accepting a {len}-byte prefix of {}",
                bytes.len()
            );
        }
    }

    #[test]
    fn every_single_byte_flip_errors() {
        let g = fixtures::fig1();
        let bytes = Snapshot::compile(&g).into_bytes();
        for i in 0..bytes.len() {
            let mut copy = bytes.clone();
            copy[i] ^= 0x41;
            assert!(
                SnapshotTable::from_bytes(copy).is_err(),
                "accepted a flip at byte {i}"
            );
        }
    }

    #[test]
    fn version_skew_is_reported() {
        let g = fixtures::fig1();
        let mut bytes = Snapshot::compile(&g).into_bytes();
        bytes[8] = 9; // version field
                      // Re-seal the checksums so the version check is what fires.
        let n = bytes.len();
        let sum = checksum64(&bytes[..n - 8]);
        bytes[n - 8..].copy_from_slice(&sum.to_le_bytes());
        match SnapshotTable::from_bytes(bytes) {
            Err(SnapshotError::UnsupportedVersion {
                found: 9,
                supported,
            }) => {
                assert_eq!(supported, VERSION)
            }
            other => panic!("expected version skew, got {other:?}"),
        }
    }

    #[test]
    fn options_roundtrip() {
        let g = fixtures::static_diamond();
        let snap = SnapshotTable::from_bytes(
            Snapshot::compile_with(
                &g,
                LookupOptions {
                    statics: StaticRule::Ignore,
                },
            )
            .into_bytes(),
        )
        .unwrap();
        assert_eq!(snap.options().statics, StaticRule::Ignore);
        let d = snap.class_by_name("D").unwrap();
        let s = snap.member_by_name("s").unwrap();
        // Definition 9 semantics: the static diamond is ambiguous.
        assert!(matches!(snap.lookup(d, s), LookupOutcome::Ambiguous { .. }));
        assert!(format!("{snap:?}").contains("entries"));
    }
}
