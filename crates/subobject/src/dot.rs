//! Graphviz export of subobject graphs — the `(c)` panels of the paper's
//! Figures 1 and 2.
//!
//! Nodes are subobjects (labelled with their canonical fixed path, plus
//! the members their class declares); edges point from a subobject to its
//! direct base subobjects, dashed when the underlying inheritance edge is
//! virtual.

use std::fmt::Write as _;

use cpplookup_chg::Chg;

use crate::graph::SubobjectGraph;

/// Renders `sg` as a Graphviz `digraph`.
///
/// # Examples
///
/// ```
/// use cpplookup_chg::fixtures;
/// use cpplookup_subobject::{dot, SubobjectGraph};
///
/// let g = fixtures::fig2();
/// let e = g.class_by_name("E").unwrap();
/// let sg = SubobjectGraph::build(&g, e, 1_000)?;
/// let text = dot::to_dot(&g, &sg);
/// assert!(text.contains("digraph subobjects"));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn to_dot(chg: &Chg, sg: &SubobjectGraph) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph subobjects {{");
    let _ = writeln!(
        out,
        "  rankdir=TB;\n  node [shape=box, fontname=\"monospace\"];"
    );
    let _ = writeln!(
        out,
        "  label=\"subobjects of {}\";",
        chg.class_name(sg.complete())
    );
    for id in sg.iter() {
        let so = sg.subobject(id);
        let members: Vec<&str> = chg
            .declared_members(so.class())
            .iter()
            .map(|&(m, _)| chg.member_name(m))
            .collect();
        let label = if members.is_empty() {
            so.display(chg).to_string()
        } else {
            format!("{}\\n({})", so.display(chg), members.join(", "))
        };
        let _ = writeln!(out, "  s{} [label=\"{}\"];", id.index(), label);
    }
    for id in sg.iter() {
        let parent_class = sg.subobject(id).class();
        for &child in sg.direct_bases(id) {
            let child_class = sg.subobject(child).class();
            let style = match chg.edge(child_class, parent_class) {
                Some(inh) if inh.is_virtual() => " [style=dashed]",
                _ => "",
            };
            let _ = writeln!(out, "  s{} -> s{}{};", id.index(), child.index(), style);
        }
    }
    let _ = writeln!(out, "}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpplookup_chg::fixtures;

    #[test]
    fn fig1_dot_shows_replication() {
        let g = fixtures::fig1();
        let e = g.class_by_name("E").unwrap();
        let sg = SubobjectGraph::build(&g, e, 100).unwrap();
        let dot = to_dot(&g, &sg);
        // Seven subobject nodes, six containment edges, no dashed edges.
        assert_eq!(dot.matches("[label=").count(), 7);
        assert_eq!(dot.matches(" -> ").count(), 6);
        assert_eq!(dot.matches("dashed").count(), 0);
        // Two A boxes (the replication the figure illustrates).
        assert_eq!(dot.matches("ABCE").count() + dot.matches("ABDE").count(), 2);
    }

    #[test]
    fn fig2_dot_shows_sharing() {
        let g = fixtures::fig2();
        let e = g.class_by_name("E").unwrap();
        let sg = SubobjectGraph::build(&g, e, 100).unwrap();
        let dot = to_dot(&g, &sg);
        assert_eq!(dot.matches("[label=").count(), 5);
        // Two virtual (dashed) containment edges into the shared B.
        assert_eq!(dot.matches("dashed").count(), 2);
        assert!(dot.contains("subobjects of E"));
    }

    #[test]
    fn members_listed_on_nodes() {
        let g = fixtures::fig3();
        let h = g.class_by_name("H").unwrap();
        let sg = SubobjectGraph::build(&g, h, 100).unwrap();
        let dot = to_dot(&g, &sg);
        assert!(dot.contains("GH\\n(foo, bar)"));
    }
}
