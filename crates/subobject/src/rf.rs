//! The Rossie–Friedman lookup operations `dyn` and `stat` (Section 7.1 of
//! the paper), defined in terms of the class-level `lookup`.
//!
//! Rossie and Friedman define lookups as partial functions from subobjects
//! to subobjects, modelling a hypothetical run-time lookup. The paper shows
//! how they decompose into the compile-time `lookup(C, m)` of Definition 9
//! plus a subobject composition:
//!
//! ```text
//! dyn(m, u)  = lookup(mdc(u), m)
//! stat(m, u) = lookup(ldc(u), m) ∘ u
//! ```
//!
//! `dyn` models virtual dispatch (the lookup happens in the complete
//! object's class); `stat` models non-virtual access through a subobject
//! of static type `ldc(u)`.

use cpplookup_chg::{Chg, MemberId};

use crate::graph::{BlowupError, SubobjectGraph, SubobjectId};
use crate::lookup::{lookup, Resolution};
use crate::subobject::Subobject;

/// Result of a Rossie–Friedman lookup: the subobject the member access
/// binds to, or why it does not.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RfResolution {
    /// The lookup resolved to this subobject (of the receiver's complete
    /// class for both `dyn` and `stat`).
    Subobject(Subobject),
    /// No definition was visible.
    NotFound,
    /// The lookup was ambiguous.
    Ambiguous,
}

/// `dyn(m, u)`: virtual dispatch on a receiver subobject `u` — looks `m`
/// up in the *complete* class of `u`.
///
/// # Errors
///
/// Propagates [`BlowupError`] from subobject-graph construction.
pub fn dyn_lookup(
    chg: &Chg,
    sg: &SubobjectGraph,
    m: MemberId,
    _receiver: SubobjectId,
) -> Result<RfResolution, BlowupError> {
    // The receiver only matters through its mdc, which is the complete
    // class of the graph.
    Ok(match lookup(chg, sg, m) {
        Resolution::Subobject(id) => RfResolution::Subobject(sg.subobject(id).clone()),
        Resolution::SharedStatic(ids) => RfResolution::Subobject(sg.subobject(ids[0]).clone()),
        Resolution::NotFound => RfResolution::NotFound,
        Resolution::Ambiguous(_) => RfResolution::Ambiguous,
    })
}

/// `stat(m, u)`: non-virtual access through a subobject `u` of static type
/// `ldc(u)` — looks `m` up in `ldc(u)` viewed as a complete class, then
/// composes the result into `u`'s context via `[α]∘[σ] = [σ·α]`.
///
/// # Errors
///
/// Propagates [`BlowupError`] from building the subobject graph of
/// `ldc(u)`.
pub fn stat_lookup(
    chg: &Chg,
    sg: &SubobjectGraph,
    m: MemberId,
    receiver: SubobjectId,
) -> Result<RfResolution, BlowupError> {
    let recv = sg.subobject(receiver);
    let inner_graph = SubobjectGraph::build(chg, recv.class(), usize::MAX)?;
    Ok(match lookup(chg, &inner_graph, m) {
        Resolution::Subobject(id) => {
            RfResolution::Subobject(recv.compose(inner_graph.subobject(id)))
        }
        Resolution::SharedStatic(ids) => {
            RfResolution::Subobject(recv.compose(inner_graph.subobject(ids[0])))
        }
        Resolution::NotFound => RfResolution::NotFound,
        Resolution::Ambiguous(_) => RfResolution::Ambiguous,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpplookup_chg::{fixtures, Path};

    #[test]
    fn dyn_ignores_receiver_static_type() {
        let g = fixtures::fig2();
        let e = g.class_by_name("E").unwrap();
        let sg = SubobjectGraph::build(&g, e, 1000).unwrap();
        let m = g.member_by_name("m").unwrap();
        // Receiver: the shared A subobject. dyn still resolves in E.
        let a = sg
            .id_of(&Subobject::from_path(&g, &Path::parse(&g, "ABDE").unwrap()))
            .unwrap();
        match dyn_lookup(&g, &sg, m, a).unwrap() {
            RfResolution::Subobject(so) => {
                assert_eq!(so.display(&g).to_string(), "DE");
            }
            other => panic!("expected DE, got {other:?}"),
        }
    }

    #[test]
    fn stat_resolves_in_the_receivers_class() {
        let g = fixtures::fig2();
        let e = g.class_by_name("E").unwrap();
        let sg = SubobjectGraph::build(&g, e, 1000).unwrap();
        let m = g.member_by_name("m").unwrap();
        // Receiver: the C subobject of E; static type C sees only A::m
        // (through the virtual B), so stat binds to the shared A in E.
        let ce = sg
            .id_of(&Subobject::from_path(&g, &Path::parse(&g, "CE").unwrap()))
            .unwrap();
        match stat_lookup(&g, &sg, m, ce).unwrap() {
            RfResolution::Subobject(so) => {
                assert_eq!(so.display(&g).to_string(), "AB in E");
                assert_eq!(so.complete(), e);
            }
            other => panic!("expected the shared A, got {other:?}"),
        }
    }

    #[test]
    fn stat_on_root_equals_dyn() {
        // For the complete object as receiver, ldc = mdc, so stat and dyn
        // agree (modulo trivial composition).
        for g in [fixtures::fig2(), fixtures::fig9()] {
            let e = g.class_by_name("E").unwrap();
            let sg = SubobjectGraph::build(&g, e, 1000).unwrap();
            let m = g.member_by_name("m").unwrap();
            let d = dyn_lookup(&g, &sg, m, sg.root()).unwrap();
            let s = stat_lookup(&g, &sg, m, sg.root()).unwrap();
            assert_eq!(d, s);
        }
    }

    #[test]
    fn stat_reports_ambiguity_of_static_type() {
        let g = fixtures::fig1();
        let e = g.class_by_name("E").unwrap();
        let sg = SubobjectGraph::build(&g, e, 1000).unwrap();
        let m = g.member_by_name("m").unwrap();
        assert_eq!(
            stat_lookup(&g, &sg, m, sg.root()).unwrap(),
            RfResolution::Ambiguous
        );
        // But through the D subobject the lookup is fine: D::m hides A::m.
        let de = sg
            .id_of(&Subobject::from_path(&g, &Path::parse(&g, "DE").unwrap()))
            .unwrap();
        match stat_lookup(&g, &sg, m, de).unwrap() {
            RfResolution::Subobject(so) => {
                assert_eq!(so.display(&g).to_string(), "DE");
            }
            other => panic!("expected DE, got {other:?}"),
        }
    }

    #[test]
    fn not_found_propagates() {
        let mut b = cpplookup_chg::ChgBuilder::new();
        let a = b.class("A");
        let m = b.intern_member_name("nothing");
        let g = b.finish().unwrap();
        let sg = SubobjectGraph::build(&g, a, 10).unwrap();
        assert_eq!(
            dyn_lookup(&g, &sg, m, sg.root()).unwrap(),
            RfResolution::NotFound
        );
        assert_eq!(
            stat_lookup(&g, &sg, m, sg.root()).unwrap(),
            RfResolution::NotFound
        );
    }
}
