//! The Rossie–Friedman subobject model of C++ multiple inheritance, used
//! as the executable reference semantics for member lookup.
//!
//! The paper's formalism (Sections 3 and 7.1) identifies subobjects with
//! `≈`-equivalence classes of class-hierarchy-graph paths; Rossie and
//! Friedman build the subobject graph explicitly. This crate provides both
//! views and the bridge between them:
//!
//! * [`Subobject`] — canonical `(fixed path, complete class)` form of an
//!   equivalence class,
//! * [`SubobjectGraph`] — explicit subobject graph with containment
//!   (dominance) precomputed, guarded against exponential blowup,
//! * [`lookup`]/[`lookup_cpp`] — Definitions 7–9 and 16–17 evaluated
//!   directly: the oracle that `cpplookup-core`'s efficient algorithm is
//!   differentially tested against,
//! * [`rf`] — the Rossie–Friedman `dyn`/`stat` operations,
//! * [`isomorphism`] — Theorem 1 (poset isomorphism), executable,
//! * [`stats`] — subobject blowup measurements (experiment E9).
//!
//! # Examples
//!
//! The paper's two motivating programs (Figures 1 and 2) differ only in
//! `virtual`, and only the second lookup is unambiguous:
//!
//! ```
//! use cpplookup_chg::fixtures;
//! use cpplookup_subobject::{lookup, Resolution, SubobjectGraph};
//!
//! for (g, ambiguous) in [(fixtures::fig1(), true), (fixtures::fig2(), false)] {
//!     let e = g.class_by_name("E").unwrap();
//!     let m = g.member_by_name("m").unwrap();
//!     let sg = SubobjectGraph::build(&g, e, 1_000)?;
//!     assert_eq!(matches!(lookup(&g, &sg, m), Resolution::Ambiguous(_)), ambiguous);
//! }
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod dot;
mod graph;
pub mod isomorphism;
mod lookup;
pub mod rf;
pub mod stats;
mod subobject;

pub use graph::{BlowupError, SubobjectGraph, SubobjectId};
pub use lookup::{defns, lookup, lookup_cpp, lookup_in_class, maximal, most_dominant, Resolution};
pub use subobject::{DisplaySubobject, Subobject};
