//! Theorem 1 of the paper, executable: the poset of `≈`-equivalence
//! classes of paths under *dominates* is isomorphic to the Rossie–Friedman
//! subobject poset.
//!
//! This module enumerates actual CHG paths (exponentially many in the
//! worst case — callers provide a budget), groups them into `≈`-classes,
//! and checks both directions of the isomorphism against a
//! [`SubobjectGraph`]: the canonicalization is a bijection, and path-level
//! dominance (checked straight from Definitions 5–6, by enumerating
//! equivalence-class members and testing suffixes) coincides with
//! subobject containment.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use cpplookup_chg::{Chg, ClassId, Path};

use crate::graph::SubobjectGraph;
use crate::subobject::Subobject;

/// Why a Theorem 1 check failed or could not run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum IsoError {
    /// The path/subobject enumeration exceeded the supplied budget.
    Budget {
        /// The configured budget.
        limit: usize,
    },
    /// A `≈`-class has no corresponding subobject or vice versa.
    NotBijective {
        /// Human-readable description of the mismatch.
        detail: String,
    },
    /// Path dominance and subobject containment disagree on a pair.
    OrderMismatch {
        /// Human-readable description of the offending pair.
        detail: String,
    },
}

impl fmt::Display for IsoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IsoError::Budget { limit } => write!(f, "path enumeration exceeded {limit} paths"),
            IsoError::NotBijective { detail } => {
                write!(f, "canonicalization not bijective: {detail}")
            }
            IsoError::OrderMismatch { detail } => write!(f, "dominance order mismatch: {detail}"),
        }
    }
}

impl Error for IsoError {}

/// Enumerates **all** paths of the CHG ending at `mdc`, including the
/// trivial path, by walking direct-base edges backwards.
///
/// # Errors
///
/// Returns [`IsoError::Budget`] when more than `limit` paths exist.
pub fn enumerate_paths_to(chg: &Chg, mdc: ClassId, limit: usize) -> Result<Vec<Path>, IsoError> {
    let mut result = Vec::new();
    // DFS over reversed suffixes: stack holds node sequences ending at mdc.
    let mut stack: Vec<Vec<ClassId>> = vec![vec![mdc]];
    while let Some(suffix) = stack.pop() {
        if result.len() >= limit {
            return Err(IsoError::Budget { limit });
        }
        let first = suffix[0];
        result.push(Path::new(chg, suffix.clone()).expect("constructed along real edges"));
        for spec in chg.direct_bases(first) {
            let mut longer = Vec::with_capacity(suffix.len() + 1);
            longer.push(spec.base);
            longer.extend_from_slice(&suffix);
            stack.push(longer);
        }
    }
    Ok(result)
}

/// Path-level dominance straight from Definitions 5–6: `alpha` dominates
/// `beta` iff `alpha` is a suffix of some `beta* ≈ beta`.
///
/// `class_members` must contain every path of `beta`'s `≈`-class (e.g. as
/// produced by [`equivalence_classes`]).
pub fn path_dominates(alpha: &Path, beta_class_members: &[Path]) -> bool {
    beta_class_members
        .iter()
        .any(|beta| alpha.is_suffix_of(beta))
}

/// Groups paths ending at a common `mdc` into `≈`-equivalence classes,
/// keyed by their canonical [`Subobject`].
pub fn equivalence_classes(chg: &Chg, paths: &[Path]) -> HashMap<Subobject, Vec<Path>> {
    let mut classes: HashMap<Subobject, Vec<Path>> = HashMap::new();
    for p in paths {
        classes
            .entry(Subobject::from_path(chg, p))
            .or_default()
            .push(p.clone());
    }
    classes
}

/// Checks Theorem 1 for one complete class: the `≈`-class poset of paths
/// ending at `complete` is isomorphic (as a poset) to the subobject graph
/// of `complete` under containment.
///
/// # Errors
///
/// * [`IsoError::Budget`] if more than `limit` paths (or subobjects)
///   exist,
/// * [`IsoError::NotBijective`] / [`IsoError::OrderMismatch`] if the
///   theorem is violated — which would indicate a bug in one of the two
///   models, and is asserted never to happen by the test suite.
pub fn check_theorem1(chg: &Chg, complete: ClassId, limit: usize) -> Result<(), IsoError> {
    let paths = enumerate_paths_to(chg, complete, limit)?;
    let classes = equivalence_classes(chg, &paths);
    let sg = SubobjectGraph::build(chg, complete, limit)
        .map_err(|e| IsoError::Budget { limit: e.limit })?;

    // Bijection: every ≈-class maps to a subobject of the graph, and every
    // subobject is hit.
    if classes.len() != sg.len() {
        return Err(IsoError::NotBijective {
            detail: format!(
                "{} equivalence classes vs {} subobjects for {}",
                classes.len(),
                sg.len(),
                chg.class_name(complete)
            ),
        });
    }
    let mut ids = Vec::new();
    for so in classes.keys() {
        match sg.id_of(so) {
            Some(id) => ids.push((so.clone(), id)),
            None => {
                return Err(IsoError::NotBijective {
                    detail: format!("equivalence class {} has no subobject", so.display(chg)),
                })
            }
        }
    }

    // Order isomorphism: for every ordered pair, path dominance computed
    // from the raw definitions equals subobject containment.
    for (so_a, id_a) in &ids {
        let alpha = &classes[so_a][0]; // any representative (Lemma 1)
        for (so_b, id_b) in &ids {
            let beta_members = &classes[so_b];
            let by_paths = path_dominates(alpha, beta_members);
            let by_subobjects = sg.dominates(*id_a, *id_b);
            if by_paths != by_subobjects {
                return Err(IsoError::OrderMismatch {
                    detail: format!(
                        "[{}] vs [{}]: paths say {}, subobjects say {}",
                        so_a.display(chg),
                        so_b.display(chg),
                        by_paths,
                        by_subobjects
                    ),
                });
            }
        }
    }
    Ok(())
}

/// Checks Theorem 1 for **every** class of the hierarchy.
///
/// # Errors
///
/// As [`check_theorem1`].
pub fn check_theorem1_all(chg: &Chg, limit: usize) -> Result<(), IsoError> {
    for c in chg.classes() {
        check_theorem1(chg, c, limit)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpplookup_chg::fixtures;

    #[test]
    fn fig3_path_census() {
        let g = fixtures::fig3();
        let h = g.class_by_name("H").unwrap();
        let paths = enumerate_paths_to(&g, h, 1000).unwrap();
        // Count paths from A to H: exactly the four the paper lists.
        let a = g.class_by_name("A").unwrap();
        let from_a: Vec<String> = paths
            .iter()
            .filter(|p| p.ldc() == a)
            .map(|p| p.display(&g).to_string())
            .collect();
        let mut sorted = from_a.clone();
        sorted.sort();
        assert_eq!(sorted, vec!["ABDFH", "ABDGH", "ACDFH", "ACDGH"]);
    }

    #[test]
    fn budget_error_trips() {
        let g = fixtures::fig3();
        let h = g.class_by_name("H").unwrap();
        assert_eq!(
            enumerate_paths_to(&g, h, 3),
            Err(IsoError::Budget { limit: 3 })
        );
    }

    #[test]
    fn theorem1_holds_on_all_fixtures() {
        for g in [
            fixtures::fig1(),
            fixtures::fig2(),
            fixtures::fig3(),
            fixtures::fig9(),
            fixtures::static_diamond(),
            fixtures::dominance_diamond(),
        ] {
            check_theorem1_all(&g, 100_000).unwrap();
        }
    }

    #[test]
    fn equivalence_class_sizes_fig3() {
        let g = fixtures::fig3();
        let h = g.class_by_name("H").unwrap();
        let paths = enumerate_paths_to(&g, h, 1000).unwrap();
        let classes = equivalence_classes(&g, &paths);
        // 9 subobjects of H.
        assert_eq!(classes.len(), 9);
        // The shared-D class contains DFH and DGH.
        let d_class = classes
            .iter()
            .find(|(so, _)| g.class_name(so.class()) == "D")
            .map(|(_, v)| v.len())
            .unwrap();
        assert_eq!(d_class, 2);
        // The two A subobjects have two paths each.
        let a_sizes: Vec<usize> = classes
            .iter()
            .filter(|(so, _)| g.class_name(so.class()) == "A")
            .map(|(_, v)| v.len())
            .collect();
        assert_eq!(a_sizes, vec![2, 2]);
    }

    #[test]
    fn lemma1_representative_independence() {
        // Dominance between classes must not depend on the representative
        // chosen: check exhaustively on fig3/H.
        let g = fixtures::fig3();
        let h = g.class_by_name("H").unwrap();
        let paths = enumerate_paths_to(&g, h, 1000).unwrap();
        let classes = equivalence_classes(&g, &paths);
        for (_, members_a) in classes.iter() {
            for (_, members_b) in classes.iter() {
                let verdicts: Vec<bool> = members_a
                    .iter()
                    .map(|alpha| path_dominates(alpha, members_b))
                    .collect();
                assert!(
                    verdicts.windows(2).all(|w| w[0] == w[1]),
                    "dominance must be representative-independent (Lemma 1)"
                );
            }
        }
    }
}
