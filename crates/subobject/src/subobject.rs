//! Canonical subobject representation.
//!
//! Section 3 of the paper identifies subobjects with `≈`-equivalence
//! classes of paths: `α ≈ β` iff `fixed(α) = fixed(β)` and
//! `mdc(α) = mdc(β)`. An equivalence class is therefore fully described by
//! the pair *(fixed part, most-derived class)* — a purely non-virtual path
//! `σ` plus the complete-object class `C`. That pair is this module's
//! [`Subobject`].
//!
//! The anchor `mdc(σ)` is either `C` itself (the subobject sits on an
//! unbroken chain of non-virtual edges below the complete object) or a
//! *virtual base* of `C` (the chain hangs off a shared virtual base).

use std::fmt;

use cpplookup_chg::{Chg, ClassId, Path};

/// A subobject of a complete object, in canonical Rossie–Friedman form.
///
/// Corresponds one-to-one with a `≈`-equivalence class of CHG paths ending
/// at [`complete`](Subobject::complete) (Theorem 1 of the paper, verified
/// by [`crate::isomorphism`]).
///
/// # Examples
///
/// ```
/// use cpplookup_chg::{fixtures, Path};
/// use cpplookup_subobject::Subobject;
///
/// let g = fixtures::fig3();
/// let abdfh = Path::parse(&g, "ABDFH")?;
/// let abdgh = Path::parse(&g, "ABDGH")?;
/// // Equivalent paths canonicalize to the same subobject.
/// assert_eq!(Subobject::from_path(&g, &abdfh), Subobject::from_path(&g, &abdgh));
/// let so = Subobject::from_path(&g, &abdfh);
/// assert_eq!(g.class_name(so.class()), "A");
/// assert_eq!(g.class_name(so.anchor()), "D");
/// assert_eq!(g.class_name(so.complete()), "H");
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Subobject {
    /// The fixed (all-non-virtual) path, least-derived class first.
    /// Always nonempty.
    sigma: Vec<ClassId>,
    /// The complete-object class this subobject lives in.
    complete: ClassId,
}

impl Subobject {
    /// The subobject that *is* the complete object of class `c` (trivial
    /// path, anchor = complete).
    pub fn complete_object(c: ClassId) -> Self {
        Subobject {
            sigma: vec![c],
            complete: c,
        }
    }

    /// Builds a subobject directly from its canonical parts.
    ///
    /// `sigma` must be a nonempty, purely non-virtual path of `chg`, and
    /// its target must be `complete` or a virtual base of `complete`.
    ///
    /// # Panics
    ///
    /// Panics (in all builds) if the invariants above are violated.
    pub fn new(chg: &Chg, sigma: Vec<ClassId>, complete: ClassId) -> Self {
        assert!(!sigma.is_empty(), "sigma must be nonempty");
        for w in sigma.windows(2) {
            let inh = chg
                .edge(w[0], w[1])
                .expect("sigma must follow inheritance edges");
            assert!(!inh.is_virtual(), "sigma must be purely non-virtual");
        }
        let anchor = *sigma.last().expect("nonempty");
        assert!(
            anchor == complete || chg.is_virtual_base_of(anchor, complete),
            "anchor must be the complete class or one of its virtual bases"
        );
        Subobject { sigma, complete }
    }

    /// Canonicalizes a CHG path into the subobject it identifies:
    /// `(fixed(path), mdc(path))`.
    pub fn from_path(chg: &Chg, path: &Path) -> Self {
        let fixed = path.fixed(chg);
        Subobject {
            sigma: fixed.nodes().to_vec(),
            complete: path.mdc(),
        }
    }

    /// The class of this subobject — the paper's `ldc`. Its members are
    /// `M[class]`.
    pub fn class(&self) -> ClassId {
        self.sigma[0]
    }

    /// The target of the fixed path: either the complete class or a
    /// virtual base of it.
    pub fn anchor(&self) -> ClassId {
        *self.sigma.last().expect("sigma is nonempty")
    }

    /// The complete-object class — the paper's `mdc`.
    pub fn complete(&self) -> ClassId {
        self.complete
    }

    /// The canonical fixed path, least-derived class first.
    pub fn sigma(&self) -> &[ClassId] {
        &self.sigma
    }

    /// Whether the subobject hangs off a virtual base (anchor differs from
    /// the complete class).
    pub fn is_virtually_anchored(&self) -> bool {
        self.anchor() != self.complete
    }

    /// Composition `[α] ∘ [σ] = [σ·α]` from Section 7.1 of the paper:
    /// `inner` is a subobject of a complete object of *this* subobject's
    /// class; the result is `inner` seen as a subobject of `self`'s
    /// complete object. Used by the Rossie–Friedman `stat` operation.
    ///
    /// # Panics
    ///
    /// Panics if `inner.complete() != self.class()`.
    pub fn compose(&self, inner: &Subobject) -> Subobject {
        assert_eq!(
            inner.complete(),
            self.class(),
            "inner subobject must live in a complete object of self's class"
        );
        if inner.anchor() == inner.complete() {
            // inner's fixed chain reaches our class directly; splice the
            // chains: fixed(β·α) = fixed(β)·fixed(α).
            let mut sigma = inner.sigma.clone();
            sigma.extend_from_slice(&self.sigma[1..]);
            Subobject {
                sigma,
                complete: self.complete,
            }
        } else {
            // inner hangs off a virtual base of our class, which is also a
            // virtual base of our complete object; its identity carries
            // over unchanged.
            Subobject {
                sigma: inner.sigma.clone(),
                complete: self.complete,
            }
        }
    }

    /// Renders the subobject using class names: `σ in C` (or just `σ` when
    /// the anchor is the complete class).
    pub fn display<'a>(&'a self, chg: &'a Chg) -> DisplaySubobject<'a> {
        DisplaySubobject { so: self, chg }
    }
}

impl fmt::Debug for Subobject {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Subobject(")?;
        for (i, c) in self.sigma.iter().enumerate() {
            if i > 0 {
                write!(f, "→")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, " in {})", self.complete)
    }
}

/// Helper returned by [`Subobject::display`].
pub struct DisplaySubobject<'a> {
    so: &'a Subobject,
    chg: &'a Chg,
}

impl fmt::Display for DisplaySubobject<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let all_short = self
            .so
            .sigma
            .iter()
            .all(|&n| self.chg.class_name(n).chars().count() == 1);
        for (i, &n) in self.so.sigma.iter().enumerate() {
            if i > 0 && !all_short {
                write!(f, "·")?;
            }
            write!(f, "{}", self.chg.class_name(n))?;
        }
        if self.so.is_virtually_anchored() {
            write!(f, " in {}", self.chg.class_name(self.so.complete))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpplookup_chg::fixtures;

    #[test]
    fn canonicalization_collapses_equivalent_paths() {
        let g = fixtures::fig3();
        let pairs = [("ABDFH", "ABDGH"), ("ACDFH", "ACDGH"), ("DFH", "DGH")];
        for (p, q) in pairs {
            let sp = Subobject::from_path(&g, &Path::parse(&g, p).unwrap());
            let sq = Subobject::from_path(&g, &Path::parse(&g, q).unwrap());
            assert_eq!(sp, sq, "{p} and {q} identify the same subobject");
        }
        let s1 = Subobject::from_path(&g, &Path::parse(&g, "ABDFH").unwrap());
        let s2 = Subobject::from_path(&g, &Path::parse(&g, "ACDFH").unwrap());
        assert_ne!(s1, s2, "two distinct A subobjects in an H object");
    }

    #[test]
    fn anchor_and_virtual_anchoring() {
        let g = fixtures::fig3();
        let dfh = Subobject::from_path(&g, &Path::parse(&g, "DFH").unwrap());
        assert!(dfh.is_virtually_anchored());
        assert_eq!(g.class_name(dfh.anchor()), "D");
        let efh = Subobject::from_path(&g, &Path::parse(&g, "EFH").unwrap());
        assert!(!efh.is_virtually_anchored());
        assert_eq!(g.class_name(efh.anchor()), "H");
        assert_eq!(efh.sigma().len(), 3);
    }

    #[test]
    fn complete_object_is_trivial() {
        let g = fixtures::fig1();
        let e = g.class_by_name("E").unwrap();
        let so = Subobject::complete_object(e);
        assert_eq!(so.class(), e);
        assert_eq!(so.anchor(), e);
        assert!(!so.is_virtually_anchored());
    }

    #[test]
    #[should_panic(expected = "purely non-virtual")]
    fn new_rejects_virtual_sigma() {
        let g = fixtures::fig3();
        let d = g.class_by_name("D").unwrap();
        let f = g.class_by_name("F").unwrap();
        let h = g.class_by_name("H").unwrap();
        let _ = Subobject::new(&g, vec![d, f, h], h); // D->F is virtual
    }

    #[test]
    #[should_panic(expected = "anchor must be")]
    fn new_rejects_unanchored_sigma() {
        let g = fixtures::fig1();
        let a = g.class_by_name("A").unwrap();
        let b = g.class_by_name("B").unwrap();
        let e = g.class_by_name("E").unwrap();
        // A->B is nonvirtual but B is not E nor a virtual base of E.
        let _ = Subobject::new(&g, vec![a, b], e);
    }

    #[test]
    fn compose_nonvirtual_inner_splices_chains() {
        let g = fixtures::fig1();
        // outer: the D subobject of E ([D,E]); inner: the A subobject of a
        // complete D ([A,B,D]). Composition = [A,B,D,E].
        let e = g.class_by_name("E").unwrap();
        let outer = Subobject::from_path(&g, &Path::parse(&g, "DE").unwrap());
        let inner = Subobject::from_path(&g, &Path::parse(&g, "ABD").unwrap());
        let composed = outer.compose(&inner);
        assert_eq!(
            composed,
            Subobject::from_path(&g, &Path::parse(&g, "ABDE").unwrap())
        );
        assert_eq!(composed.complete(), e);
    }

    #[test]
    fn compose_virtual_inner_keeps_identity() {
        let g = fixtures::fig3();
        // outer: the F subobject of H; inner: the D subobject of a complete
        // F (virtually anchored). D stays the shared D in H.
        let outer = Subobject::from_path(&g, &Path::parse(&g, "FH").unwrap());
        let inner = Subobject::from_path(&g, &Path::parse(&g, "DF").unwrap());
        let composed = outer.compose(&inner);
        assert_eq!(
            composed,
            Subobject::from_path(&g, &Path::parse(&g, "DFH").unwrap())
        );
        assert!(composed.is_virtually_anchored());
    }

    #[test]
    #[should_panic(expected = "must live in")]
    fn compose_mismatched_panics() {
        let g = fixtures::fig1();
        let outer = Subobject::from_path(&g, &Path::parse(&g, "DE").unwrap());
        let inner = Subobject::from_path(&g, &Path::parse(&g, "AB").unwrap());
        let _ = outer.compose(&inner);
    }

    #[test]
    fn display_forms() {
        let g = fixtures::fig3();
        let dfh = Subobject::from_path(&g, &Path::parse(&g, "DFH").unwrap());
        assert_eq!(dfh.display(&g).to_string(), "D in H");
        let efh = Subobject::from_path(&g, &Path::parse(&g, "EFH").unwrap());
        assert_eq!(efh.display(&g).to_string(), "EFH");
    }
}

impl Subobject {
    /// Enumerates **all** CHG paths in this subobject's `≈`-equivalence
    /// class: the fixed part `σ` followed by every path from the anchor
    /// to the complete class whose first edge is virtual (just `σ` when
    /// the anchor *is* the complete class).
    ///
    /// The count can be exponential; at most `limit` paths are returned
    /// (`Err` carries the truncated list).
    ///
    /// # Errors
    ///
    /// `Err(paths)` when more than `limit` paths exist; the vector holds
    /// the first `limit` found.
    pub fn paths(&self, chg: &Chg, limit: usize) -> Result<Vec<Path>, Vec<Path>> {
        let mut result = Vec::new();
        if self.anchor() == self.complete {
            result.push(Path::new(chg, self.sigma.clone()).expect("sigma follows real edges"));
            return Ok(result);
        }
        // DFS over suffixes from the anchor to the complete class; the
        // first edge out of the anchor must be virtual.
        let mut stack: Vec<Vec<ClassId>> = vec![vec![self.anchor()]];
        while let Some(suffix) = stack.pop() {
            let last = *suffix.last().expect("nonempty");
            if last == self.complete && suffix.len() > 1 {
                let mut nodes = self.sigma.clone();
                nodes.extend_from_slice(&suffix[1..]);
                if result.len() >= limit {
                    return Err(result);
                }
                result.push(Path::new(chg, nodes).expect("edges verified below"));
                continue;
            }
            for &next in chg.direct_derived(last) {
                let inh = chg.edge(last, next).expect("derived adjacency");
                if suffix.len() == 1 && !inh.is_virtual() {
                    continue; // first edge must be virtual
                }
                // Only continue towards the complete class.
                if next != self.complete && !chg.is_base_of(next, self.complete) {
                    continue;
                }
                let mut longer = suffix.clone();
                longer.push(next);
                stack.push(longer);
            }
        }
        Ok(result)
    }
}

#[cfg(test)]
mod path_enum_tests {
    use super::*;
    use cpplookup_chg::fixtures;

    #[test]
    fn equivalence_class_paths_match_paper() {
        let g = fixtures::fig3();
        // The shared D subobject of H has exactly DFH and DGH.
        let d = Subobject::from_path(&g, &Path::parse(&g, "DFH").unwrap());
        let mut paths: Vec<String> = d
            .paths(&g, 100)
            .unwrap()
            .iter()
            .map(|p| p.display(&g).to_string())
            .collect();
        paths.sort();
        assert_eq!(paths, vec!["DFH", "DGH"]);
        // A non-virtually anchored subobject has exactly one path.
        let efh = Subobject::from_path(&g, &Path::parse(&g, "EFH").unwrap());
        assert_eq!(efh.paths(&g, 100).unwrap().len(), 1);
    }

    #[test]
    fn every_enumerated_path_canonicalizes_back() {
        for g in [fixtures::fig2(), fixtures::fig3(), fixtures::fig9()] {
            for c in g.classes() {
                let sg = crate::graph::SubobjectGraph::build(&g, c, 10_000).unwrap();
                for id in sg.iter() {
                    let so = sg.subobject(id);
                    let paths = so.paths(&g, 10_000).unwrap();
                    assert!(!paths.is_empty(), "every subobject is reachable");
                    for p in paths {
                        assert_eq!(&Subobject::from_path(&g, &p), so);
                    }
                }
            }
        }
    }

    #[test]
    fn limit_truncates() {
        let g = fixtures::fig3();
        let d = Subobject::from_path(&g, &Path::parse(&g, "DFH").unwrap());
        let err = d.paths(&g, 1).unwrap_err();
        assert_eq!(err.len(), 1);
    }
}
