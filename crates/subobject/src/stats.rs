//! Size statistics for subobject graphs — the data behind experiment E9
//! (the paper's claim that "the subobject graph's size can be exponential
//! in the size of the class hierarchy graph").

use std::collections::HashSet;

use cpplookup_chg::{Chg, ClassId};

use crate::graph::{BlowupError, SubobjectGraph};
use crate::subobject::Subobject;

/// Counts the distinct subobjects of a complete `class` object without
/// materializing the subobject graph or its dominance closure — usable
/// far beyond the sizes [`SubobjectGraph::build`] can afford (whose
/// closure needs `O(count²)` bits).
///
/// # Errors
///
/// Returns [`BlowupError`] when more than `limit` subobjects exist.
pub fn count_subobjects(chg: &Chg, class: ClassId, limit: usize) -> Result<usize, BlowupError> {
    let mut seen: HashSet<Vec<ClassId>> = HashSet::new();
    let mut worklist = vec![Subobject::complete_object(class)];
    seen.insert(worklist[0].sigma().to_vec());
    while let Some(so) = worklist.pop() {
        for spec in chg.direct_bases(so.class()) {
            let child = if spec.inheritance.is_virtual() {
                Subobject::new(chg, vec![spec.base], class)
            } else {
                let mut sigma = Vec::with_capacity(so.sigma().len() + 1);
                sigma.push(spec.base);
                sigma.extend_from_slice(so.sigma());
                Subobject::new(chg, sigma, class)
            };
            if seen.len() >= limit && !seen.contains(child.sigma()) {
                return Err(BlowupError {
                    complete: chg.class_name(class).to_owned(),
                    limit,
                });
            }
            if seen.insert(child.sigma().to_vec()) {
                worklist.push(child);
            }
        }
    }
    Ok(seen.len())
}

/// Subobject census of one class.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ClassBlowup {
    /// The complete class measured.
    pub class: ClassId,
    /// Number of distinct subobjects, or `None` if it exceeded the budget.
    pub subobjects: Option<usize>,
}

/// Whole-hierarchy census.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BlowupReport {
    /// Number of classes (`|N|`).
    pub classes: usize,
    /// Number of inheritance edges (`|E|`).
    pub edges: usize,
    /// Per-class subobject counts.
    pub per_class: Vec<ClassBlowup>,
    /// The largest measured per-class subobject count.
    pub max_subobjects: Option<usize>,
    /// Sum over all classes whose graphs fit the budget.
    pub total_subobjects: usize,
    /// How many classes exceeded the budget.
    pub over_budget: usize,
}

/// Measures the subobject graph size of every class, spending at most
/// `limit` subobjects per class.
///
/// # Examples
///
/// ```
/// use cpplookup_chg::fixtures;
/// use cpplookup_subobject::stats::measure_blowup;
///
/// let report = measure_blowup(&fixtures::fig1(), 1_000);
/// assert_eq!(report.classes, 5);
/// assert_eq!(report.max_subobjects, Some(7)); // the E object
/// ```
pub fn measure_blowup(chg: &Chg, limit: usize) -> BlowupReport {
    let mut per_class = Vec::with_capacity(chg.class_count());
    let mut max_subobjects: Option<usize> = None;
    let mut total = 0usize;
    let mut over = 0usize;
    for c in chg.classes() {
        let count = SubobjectGraph::build(chg, c, limit).ok().map(|sg| sg.len());
        match count {
            Some(n) => {
                total += n;
                max_subobjects = Some(max_subobjects.map_or(n, |m| m.max(n)));
            }
            None => over += 1,
        }
        per_class.push(ClassBlowup {
            class: c,
            subobjects: count,
        });
    }
    BlowupReport {
        classes: chg.class_count(),
        edges: chg.edge_count(),
        per_class,
        max_subobjects,
        total_subobjects: total,
        over_budget: over,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpplookup_chg::{fixtures, ChgBuilder, Inheritance};

    /// `k` stacked non-virtual diamonds: subobject count of the bottom
    /// class is `2^(k+1) - 1` interior nodes plus shared tops — grows as
    /// `2^k`.
    fn stacked_diamonds(k: usize, virtual_joins: bool) -> cpplookup_chg::Chg {
        let mut b = ChgBuilder::new();
        let inh = if virtual_joins {
            Inheritance::Virtual
        } else {
            Inheritance::NonVirtual
        };
        let mut bottom = b.class("D0");
        for i in 1..=k {
            let left = b.class(&format!("L{i}"));
            let right = b.class(&format!("R{i}"));
            let next = b.class(&format!("D{i}"));
            b.derive(left, bottom, inh).unwrap();
            b.derive(right, bottom, inh).unwrap();
            b.derive(next, left, Inheritance::NonVirtual).unwrap();
            b.derive(next, right, Inheritance::NonVirtual).unwrap();
            bottom = next;
        }
        b.finish().unwrap()
    }

    #[test]
    fn nonvirtual_diamonds_blow_up() {
        let g = stacked_diamonds(6, false);
        let report = measure_blowup(&g, 1_000_000);
        // CHG is linear in k but subobjects are exponential.
        assert_eq!(report.classes, 1 + 3 * 6);
        let max = report.max_subobjects.unwrap();
        assert!(max >= 1 << 6, "expected >= 64 subobjects, got {max}");
        assert_eq!(report.over_budget, 0);
    }

    #[test]
    fn virtual_diamonds_stay_linear() {
        let g = stacked_diamonds(6, true);
        let report = measure_blowup(&g, 1_000_000);
        let max = report.max_subobjects.unwrap();
        assert!(
            max <= 3 * 6 + 1,
            "virtual sharing keeps subobject count linear, got {max}"
        );
    }

    #[test]
    fn budget_overflow_counted() {
        let g = stacked_diamonds(10, false);
        let report = measure_blowup(&g, 64);
        assert!(report.over_budget > 0);
        assert!(report.per_class.iter().any(|c| c.subobjects.is_none()));
    }

    #[test]
    fn count_matches_graph_on_fixtures_and_diamonds() {
        for g in [
            fixtures::fig1(),
            fixtures::fig2(),
            fixtures::fig3(),
            fixtures::fig9(),
            stacked_diamonds(7, false),
            stacked_diamonds(7, true),
        ] {
            for c in g.classes() {
                let graph = SubobjectGraph::build(&g, c, 1_000_000).unwrap();
                assert_eq!(
                    count_subobjects(&g, c, 1_000_000).unwrap(),
                    graph.len(),
                    "count mismatch for {}",
                    g.class_name(c)
                );
            }
        }
    }

    #[test]
    fn count_scales_past_graph_limits() {
        // k = 16 would need a ~64 Gbit closure as a graph; counting is
        // cheap (the report binary goes further still).
        let g = stacked_diamonds(16, false);
        let bottom = g.class_by_name("D16").unwrap();
        let n = count_subobjects(&g, bottom, 100_000_000).unwrap();
        assert_eq!(n, (1 << 18) - 3); // 2^(k+2) - 3 for this family
    }

    #[test]
    fn count_respects_limit() {
        let g = stacked_diamonds(10, false);
        let bottom = g.class_by_name("D10").unwrap();
        assert!(count_subobjects(&g, bottom, 100).is_err());
    }

    #[test]
    fn fixture_counts() {
        let r = measure_blowup(&fixtures::fig3(), 1000);
        let g = fixtures::fig3();
        let h = g.class_by_name("H").unwrap();
        let h_entry = r.per_class.iter().find(|c| c.class == h).unwrap();
        assert_eq!(h_entry.subobjects, Some(9));
        assert_eq!(r.over_budget, 0);
        assert!(r.total_subobjects >= 9);
    }
}
