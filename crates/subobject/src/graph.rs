//! Construction of the subobject graph of a complete class.
//!
//! The subobject graph is the structure Rossie and Friedman base their
//! semantics on, and the structure the g++ 2.7.2.1 lookup traverses. Its
//! size can be **exponential** in the size of the class hierarchy graph
//! (see `crate::stats` and experiment E9), which is exactly why the paper
//! derives its algorithm from the CHG instead. Construction therefore
//! takes an explicit node budget and fails with [`BlowupError`] instead of
//! exhausting memory.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use cpplookup_chg::{BitSet, Chg, ClassId};

use crate::subobject::Subobject;

/// Index of a subobject within a [`SubobjectGraph`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SubobjectId(u32);

impl SubobjectId {
    /// The dense index backing this id.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for SubobjectId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SubobjectId({})", self.0)
    }
}

/// The subobject-count budget was exceeded while building a subobject
/// graph.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BlowupError {
    /// Name of the complete class whose graph was being built.
    pub complete: String,
    /// The configured budget.
    pub limit: usize,
}

impl fmt::Display for BlowupError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "subobject graph of `{}` exceeds {} subobjects",
            self.complete, self.limit
        )
    }
}

impl Error for BlowupError {}

/// The subobject graph of one complete class: all subobjects of a
/// `C`-object plus the direct-containment edges between them.
///
/// Edges go from a subobject to its *direct base subobjects* (one per
/// direct base of the subobject's class, in base declaration order). The
/// reflexive-transitive closure of containment is exactly the paper's
/// *dominates* relation on equivalence classes, precomputed here as bit
/// sets so dominance queries are `O(1)`.
///
/// # Examples
///
/// ```
/// use cpplookup_chg::fixtures;
/// use cpplookup_subobject::SubobjectGraph;
///
/// let g = fixtures::fig1();
/// let e = g.class_by_name("E").unwrap();
/// let sg = SubobjectGraph::build(&g, e, 1_000)?;
/// // E, C·E, D·E, B·C·E, B·D·E, A·B·C·E, A·B·D·E — seven subobjects, two As.
/// assert_eq!(sg.len(), 7);
/// let a = g.class_by_name("A").unwrap();
/// assert_eq!(sg.subobjects_of_class(a).count(), 2);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct SubobjectGraph {
    complete: ClassId,
    subobjects: Vec<Subobject>,
    children: Vec<Vec<SubobjectId>>,
    by_sigma: HashMap<Vec<ClassId>, SubobjectId>,
    root: SubobjectId,
    /// `reach[i]` = ids of subobjects contained in `i` (reflexive).
    reach: Vec<BitSet>,
}

impl SubobjectGraph {
    /// Builds the subobject graph of a complete object of class
    /// `complete`, spending at most `limit` subobjects.
    ///
    /// # Errors
    ///
    /// Returns [`BlowupError`] when more than `limit` distinct subobjects
    /// are discovered (the graph's size can be exponential in the CHG).
    pub fn build(chg: &Chg, complete: ClassId, limit: usize) -> Result<Self, BlowupError> {
        let mut subobjects: Vec<Subobject> = Vec::new();
        let mut by_sigma: HashMap<Vec<ClassId>, SubobjectId> = HashMap::new();
        let mut children: Vec<Vec<SubobjectId>> = Vec::new();
        let mut worklist: Vec<SubobjectId> = Vec::new();

        let mut intern = |so: Subobject,
                          subobjects: &mut Vec<Subobject>,
                          children: &mut Vec<Vec<SubobjectId>>,
                          worklist: &mut Vec<SubobjectId>|
         -> Result<SubobjectId, BlowupError> {
            if let Some(&id) = by_sigma.get(so.sigma()) {
                return Ok(id);
            }
            if subobjects.len() >= limit {
                return Err(BlowupError {
                    complete: chg.class_name(complete).to_owned(),
                    limit,
                });
            }
            let id = SubobjectId(subobjects.len() as u32);
            by_sigma.insert(so.sigma().to_vec(), id);
            subobjects.push(so);
            children.push(Vec::new());
            worklist.push(id);
            Ok(id)
        };

        let root = intern(
            Subobject::complete_object(complete),
            &mut subobjects,
            &mut children,
            &mut worklist,
        )
        .expect("limit >= 1 admits the root");

        while let Some(id) = worklist.pop() {
            let class = subobjects[id.index()].class();
            let parent_sigma = subobjects[id.index()].sigma().to_vec();
            for spec in chg.direct_bases(class) {
                let child = if spec.inheritance.is_virtual() {
                    // Shared: one subobject per (virtual base, complete).
                    Subobject::new(chg, vec![spec.base], complete)
                } else {
                    // Replicated: prepend the base to the fixed chain.
                    let mut sigma = Vec::with_capacity(parent_sigma.len() + 1);
                    sigma.push(spec.base);
                    sigma.extend_from_slice(&parent_sigma);
                    Subobject::new(chg, sigma, complete)
                };
                let child_id = intern(child, &mut subobjects, &mut children, &mut worklist)?;
                children[id.index()].push(child_id);
            }
        }

        // Containment closure, processing contained subobjects before
        // containers. The subobject graph is a DAG because a child's class
        // is always a proper base of its parent's class; ordering ids by
        // the class's topological position gives a valid schedule.
        let n = subobjects.len();
        let mut order: Vec<SubobjectId> = (0..n as u32).map(SubobjectId).collect();
        order.sort_by_key(|id| chg.topo_position(subobjects[id.index()].class()));
        let mut reach = vec![BitSet::new(n); n];
        for id in order {
            let i = id.index();
            reach[i].insert(i);
            let kids = children[i].clone();
            for kid in kids {
                if kid.index() != i {
                    let (a, b) = if kid.index() < i {
                        let (lo, hi) = reach.split_at_mut(i);
                        (&mut hi[0], &lo[kid.index()])
                    } else {
                        let (lo, hi) = reach.split_at_mut(kid.index());
                        (&mut lo[i], &hi[0])
                    };
                    a.union_with(b);
                }
            }
        }

        Ok(SubobjectGraph {
            complete,
            subobjects,
            children,
            by_sigma,
            root,
            reach,
        })
    }

    /// The complete class this graph describes.
    pub fn complete(&self) -> ClassId {
        self.complete
    }

    /// The id of the complete object itself.
    pub fn root(&self) -> SubobjectId {
        self.root
    }

    /// Number of distinct subobjects.
    pub fn len(&self) -> usize {
        self.subobjects.len()
    }

    /// Whether the graph is empty (never: it always has the root).
    pub fn is_empty(&self) -> bool {
        self.subobjects.is_empty()
    }

    /// The subobject behind an id.
    pub fn subobject(&self, id: SubobjectId) -> &Subobject {
        &self.subobjects[id.index()]
    }

    /// Looks up a subobject's id by value, if it belongs to this graph.
    pub fn id_of(&self, so: &Subobject) -> Option<SubobjectId> {
        if so.complete() != self.complete {
            return None;
        }
        self.by_sigma.get(so.sigma()).copied()
    }

    /// Iterates over all subobject ids.
    pub fn iter(&self) -> impl Iterator<Item = SubobjectId> + '_ {
        (0..self.subobjects.len() as u32).map(SubobjectId)
    }

    /// The direct base subobjects of `id`, in base declaration order
    /// (the order g++'s breadth-first traversal visits them).
    pub fn direct_bases(&self, id: SubobjectId) -> &[SubobjectId] {
        &self.children[id.index()]
    }

    /// Whether `container` contains `contained` (reflexively) — i.e.
    /// `contained` is a base-class subobject of `container`. By the
    /// correspondence of Section 3, this is exactly "`container`
    /// *dominates* `contained`".
    pub fn contains(&self, container: SubobjectId, contained: SubobjectId) -> bool {
        self.reach[container.index()].contains(contained.index())
    }

    /// Alias for [`contains`](Self::contains) under its semantic name.
    pub fn dominates(&self, a: SubobjectId, b: SubobjectId) -> bool {
        self.contains(a, b)
    }

    /// All subobjects whose class is `class`.
    pub fn subobjects_of_class(&self, class: ClassId) -> impl Iterator<Item = SubobjectId> + '_ {
        self.iter()
            .filter(move |&id| self.subobject(id).class() == class)
    }
}

impl fmt::Debug for SubobjectGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "SubobjectGraph {{ complete: {}, subobjects: {} }}",
            self.complete,
            self.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpplookup_chg::{fixtures, Path};

    fn ids_by_display(g: &Chg, sg: &SubobjectGraph) -> Vec<String> {
        let mut v: Vec<String> = sg
            .iter()
            .map(|id| sg.subobject(id).display(g).to_string())
            .collect();
        v.sort();
        v
    }

    #[test]
    fn fig1_has_two_a_subobjects() {
        let g = fixtures::fig1();
        let e = g.class_by_name("E").unwrap();
        let sg = SubobjectGraph::build(&g, e, 100).unwrap();
        assert_eq!(sg.len(), 7);
        let names = ids_by_display(&g, &sg);
        assert_eq!(names, vec!["ABCE", "ABDE", "BCE", "BDE", "CE", "DE", "E"]);
    }

    #[test]
    fn fig2_has_one_shared_a_subobject() {
        let g = fixtures::fig2();
        let e = g.class_by_name("E").unwrap();
        let sg = SubobjectGraph::build(&g, e, 100).unwrap();
        // E, CE, DE, shared B, A under the shared B.
        assert_eq!(sg.len(), 5);
        let a = g.class_by_name("A").unwrap();
        assert_eq!(sg.subobjects_of_class(a).count(), 1);
    }

    #[test]
    fn fig2_dominance_d_over_a() {
        let g = fixtures::fig2();
        let e = g.class_by_name("E").unwrap();
        let sg = SubobjectGraph::build(&g, e, 100).unwrap();
        let de = sg
            .id_of(&Subobject::from_path(&g, &Path::parse(&g, "DE").unwrap()))
            .unwrap();
        let ab = sg
            .id_of(&Subobject::from_path(&g, &Path::parse(&g, "ABDE").unwrap()))
            .unwrap();
        assert!(sg.dominates(de, ab), "D::m dominates A::m in fig2");
        assert!(!sg.dominates(ab, de));
        assert!(sg.dominates(de, de), "dominance is reflexive");
    }

    #[test]
    fn fig3_subobject_count_and_sharing() {
        let g = fixtures::fig3();
        let h = g.class_by_name("H").unwrap();
        let sg = SubobjectGraph::build(&g, h, 100).unwrap();
        // H, FH, GH, EFH, shared D, and under D: B, C, and two As.
        let names = ids_by_display(&g, &sg);
        assert_eq!(
            names,
            vec!["ABD in H", "ACD in H", "BD in H", "CD in H", "D in H", "EFH", "FH", "GH", "H"]
        );
        let d = g.class_by_name("D").unwrap();
        assert_eq!(sg.subobjects_of_class(d).count(), 1, "D is shared");
        let a = g.class_by_name("A").unwrap();
        assert_eq!(sg.subobjects_of_class(a).count(), 2, "two As below D");
    }

    #[test]
    fn fig3_gh_dominates_the_shared_d() {
        let g = fixtures::fig3();
        let h = g.class_by_name("H").unwrap();
        let sg = SubobjectGraph::build(&g, h, 100).unwrap();
        let gh = sg
            .id_of(&Subobject::from_path(&g, &Path::parse(&g, "GH").unwrap()))
            .unwrap();
        let d = sg
            .id_of(&Subobject::from_path(&g, &Path::parse(&g, "DGH").unwrap()))
            .unwrap();
        let abd = sg
            .id_of(&Subobject::from_path(
                &g,
                &Path::parse(&g, "ABDFH").unwrap(),
            ))
            .unwrap();
        let efh = sg
            .id_of(&Subobject::from_path(&g, &Path::parse(&g, "EFH").unwrap()))
            .unwrap();
        assert!(sg.dominates(gh, d));
        assert!(sg.dominates(gh, abd), "GH dominates ABDFH (paper example)");
        assert!(!sg.dominates(gh, efh), "GH does not dominate EFH");
    }

    #[test]
    fn blowup_guard_trips() {
        let g = fixtures::fig1();
        let e = g.class_by_name("E").unwrap();
        let err = SubobjectGraph::build(&g, e, 3).unwrap_err();
        assert_eq!(err.limit, 3);
        assert_eq!(err.complete, "E");
        assert!(err.to_string().contains("exceeds 3"));
    }

    #[test]
    fn root_is_the_complete_object() {
        let g = fixtures::fig9();
        let e = g.class_by_name("E").unwrap();
        let sg = SubobjectGraph::build(&g, e, 100).unwrap();
        let root = sg.subobject(sg.root());
        assert_eq!(root.class(), e);
        assert_eq!(root.complete(), e);
        // Every subobject is contained in the root.
        for id in sg.iter() {
            assert!(sg.contains(sg.root(), id));
        }
    }

    #[test]
    fn fig9_shape_matches_analysis() {
        // E, DE, CDE, shared A, B, S — six subobjects.
        let g = fixtures::fig9();
        let e = g.class_by_name("E").unwrap();
        let sg = SubobjectGraph::build(&g, e, 100).unwrap();
        assert_eq!(sg.len(), 6);
        let names = ids_by_display(&g, &sg);
        assert_eq!(names, vec!["A in E", "B in E", "CDE", "DE", "E", "S in E"]);
        // The C subobject dominates both the A and the B subobjects.
        let cde = sg
            .id_of(&Subobject::from_path(&g, &Path::parse(&g, "CDE").unwrap()))
            .unwrap();
        let a = sg
            .id_of(&Subobject::new(&g, vec![g.class_by_name("A").unwrap()], e))
            .unwrap();
        let b = sg
            .id_of(&Subobject::new(&g, vec![g.class_by_name("B").unwrap()], e))
            .unwrap();
        assert!(sg.dominates(cde, a));
        assert!(sg.dominates(cde, b));
        assert!(!sg.dominates(a, b));
        assert!(!sg.dominates(b, a));
    }

    #[test]
    fn direct_bases_in_declaration_order() {
        let g = fixtures::fig1();
        let e = g.class_by_name("E").unwrap();
        let sg = SubobjectGraph::build(&g, e, 100).unwrap();
        let kids = sg.direct_bases(sg.root());
        let names: Vec<String> = kids
            .iter()
            .map(|&k| sg.subobject(k).display(&g).to_string())
            .collect();
        assert_eq!(names, vec!["CE", "DE"], "E : C, D in that order");
    }

    #[test]
    fn id_of_rejects_foreign_subobjects() {
        let g = fixtures::fig1();
        let e = g.class_by_name("E").unwrap();
        let d = g.class_by_name("D").unwrap();
        let sg = SubobjectGraph::build(&g, e, 100).unwrap();
        let foreign = Subobject::complete_object(d);
        assert_eq!(sg.id_of(&foreign), None);
    }
}
