//! The executable reference semantics of member lookup (Definitions 7–9
//! and 16–17 of the paper), evaluated directly over the subobject graph.
//!
//! This is the *specification*: exponential in the worst case, but
//! unambiguously faithful to the definitions. `cpplookup-core`'s efficient
//! algorithm is differentially tested against it.

use cpplookup_chg::{Chg, ClassId, MemberId};

use crate::graph::{BlowupError, SubobjectGraph, SubobjectId};

/// The outcome of the reference lookup, static-member-aware
/// (paper, Definition 17).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Resolution {
    /// No subobject of the class declares the member.
    NotFound,
    /// A unique most-dominant definition exists; lookup resolves to this
    /// subobject (Definition 9).
    Subobject(SubobjectId),
    /// Several maximal definitions exist, but they all name the *same*
    /// static member `ldc::m` (Definition 17, condition 2). Lookup is
    /// well-defined; any element is a valid representative.
    SharedStatic(Vec<SubobjectId>),
    /// The lookup is ambiguous: the maximal definitions, in discovery
    /// order.
    Ambiguous(Vec<SubobjectId>),
}

impl Resolution {
    /// Whether the lookup succeeded (resolved to a member).
    pub fn is_resolved(&self) -> bool {
        matches!(self, Resolution::Subobject(_) | Resolution::SharedStatic(_))
    }

    /// The class whose member declaration the lookup resolved to, if it
    /// resolved.
    pub fn resolved_class(&self, sg: &SubobjectGraph) -> Option<ClassId> {
        match self {
            Resolution::Subobject(id) => Some(sg.subobject(*id).class()),
            Resolution::SharedStatic(ids) => ids.first().map(|&id| sg.subobject(id).class()),
            _ => None,
        }
    }
}

/// `Defns(C, m)` (Definition 7): every subobject of the graph's complete
/// class whose class directly declares `m`, in subobject-id order.
pub fn defns(chg: &Chg, sg: &SubobjectGraph, m: MemberId) -> Vec<SubobjectId> {
    sg.iter()
        .filter(|&id| chg.declares(sg.subobject(id).class(), m))
        .collect()
}

/// `maximal(A)` (Definition 16): the elements of `A` dominated by no
/// *other* element of `A`.
///
/// Note the subtlety the paper bakes into Definition 16: domination by a
/// *distinct but equal* element cannot occur here because subobject ids
/// are canonical, so "other" simply means a different id.
pub fn maximal(sg: &SubobjectGraph, defs: &[SubobjectId]) -> Vec<SubobjectId> {
    defs.iter()
        .copied()
        .filter(|&u| !defs.iter().any(|&v| v != u && sg.dominates(v, u)))
        .collect()
}

/// `most-dominant(A)` (Definition 8): the unique element dominating every
/// element of `A`, or `None` ("⊥") if there is none.
pub fn most_dominant(sg: &SubobjectGraph, defs: &[SubobjectId]) -> Option<SubobjectId> {
    defs.iter()
        .copied()
        .find(|&u| defs.iter().all(|&v| sg.dominates(u, v)))
}

/// `lookup(C, m)` per Definition 9, **ignoring** staticness: the
/// most-dominant definition or ambiguity.
///
/// # Examples
///
/// ```
/// use cpplookup_chg::fixtures;
/// use cpplookup_subobject::{lookup, Resolution, SubobjectGraph};
///
/// let g = fixtures::fig3();
/// let h = g.class_by_name("H").unwrap();
/// let sg = SubobjectGraph::build(&g, h, 1_000)?;
/// let foo = g.member_by_name("foo").unwrap();
/// let bar = g.member_by_name("bar").unwrap();
/// match lookup(&g, &sg, foo) {
///     Resolution::Subobject(id) => {
///         assert_eq!(sg.subobject(id).display(&g).to_string(), "GH");
///     }
///     other => panic!("expected GH, got {other:?}"),
/// }
/// assert!(matches!(lookup(&g, &sg, bar), Resolution::Ambiguous(_)));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn lookup(chg: &Chg, sg: &SubobjectGraph, m: MemberId) -> Resolution {
    let defs = defns(chg, sg, m);
    if defs.is_empty() {
        return Resolution::NotFound;
    }
    match most_dominant(sg, &defs) {
        Some(u) => Resolution::Subobject(u),
        None => Resolution::Ambiguous(maximal(sg, &defs)),
    }
}

/// `lookup(C, m)` per Definition 17, honouring the static-member rule:
/// if all maximal definitions name the same static member, the lookup is
/// well-defined and returns them as [`Resolution::SharedStatic`].
pub fn lookup_cpp(chg: &Chg, sg: &SubobjectGraph, m: MemberId) -> Resolution {
    let defs = defns(chg, sg, m);
    if defs.is_empty() {
        return Resolution::NotFound;
    }
    let max = maximal(sg, &defs);
    if max.len() == 1 {
        return Resolution::Subobject(max[0]);
    }
    let first_class = sg.subobject(max[0]).class();
    let shared = max.iter().all(|&u| sg.subobject(u).class() == first_class)
        && chg
            .member_decl(first_class, m)
            .map(|d| d.kind.is_static_for_lookup())
            .unwrap_or(false);
    if shared {
        Resolution::SharedStatic(max)
    } else {
        Resolution::Ambiguous(max)
    }
}

/// Convenience wrapper: builds the subobject graph of `complete` and runs
/// [`lookup_cpp`] on it.
///
/// # Errors
///
/// Returns [`BlowupError`] if the subobject graph exceeds `limit`.
pub fn lookup_in_class(
    chg: &Chg,
    complete: ClassId,
    m: MemberId,
    limit: usize,
) -> Result<Resolution, BlowupError> {
    let sg = SubobjectGraph::build(chg, complete, limit)?;
    Ok(lookup_cpp(chg, &sg, m))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::subobject::Subobject;
    use cpplookup_chg::{fixtures, Path};

    fn graph_of(g: &Chg, class: &str) -> SubobjectGraph {
        SubobjectGraph::build(g, g.class_by_name(class).unwrap(), 10_000).unwrap()
    }

    #[test]
    fn fig1_lookup_is_ambiguous() {
        let g = fixtures::fig1();
        let sg = graph_of(&g, "E");
        let m = g.member_by_name("m").unwrap();
        match lookup(&g, &sg, m) {
            Resolution::Ambiguous(max) => {
                let mut names: Vec<String> = max
                    .iter()
                    .map(|&u| sg.subobject(u).display(&g).to_string())
                    .collect();
                names.sort();
                // D::m dominates the A below it; the A below C survives.
                assert_eq!(names, vec!["ABCE", "DE"]);
            }
            other => panic!("expected ambiguity, got {other:?}"),
        }
    }

    #[test]
    fn fig2_lookup_resolves_to_d() {
        let g = fixtures::fig2();
        let sg = graph_of(&g, "E");
        let m = g.member_by_name("m").unwrap();
        match lookup(&g, &sg, m) {
            Resolution::Subobject(u) => {
                assert_eq!(sg.subobject(u).display(&g).to_string(), "DE");
                assert_eq!(
                    g.class_name(lookup(&g, &sg, m).resolved_class(&sg).unwrap()),
                    "D"
                );
            }
            other => panic!("expected D::m, got {other:?}"),
        }
    }

    #[test]
    fn fig3_defns_match_paper() {
        // Defns(H, foo) = {ABD-in-H, ACD-in-H, GH};
        // Defns(H, bar) = {EFH, D-in-H, GH}.
        let g = fixtures::fig3();
        let sg = graph_of(&g, "H");
        let foo = g.member_by_name("foo").unwrap();
        let bar = g.member_by_name("bar").unwrap();
        let show = |defs: Vec<SubobjectId>| -> Vec<String> {
            let mut v: Vec<String> = defs
                .iter()
                .map(|&u| sg.subobject(u).display(&g).to_string())
                .collect();
            v.sort();
            v
        };
        assert_eq!(
            show(defns(&g, &sg, foo)),
            vec!["ABD in H", "ACD in H", "GH"]
        );
        assert_eq!(show(defns(&g, &sg, bar)), vec!["D in H", "EFH", "GH"]);
    }

    #[test]
    fn fig3_lookups_match_paper() {
        let g = fixtures::fig3();
        let sg = graph_of(&g, "H");
        let foo = g.member_by_name("foo").unwrap();
        let bar = g.member_by_name("bar").unwrap();
        match lookup(&g, &sg, foo) {
            Resolution::Subobject(u) => {
                assert_eq!(sg.subobject(u).display(&g).to_string(), "GH")
            }
            other => panic!("lookup(H, foo) should be GH, got {other:?}"),
        }
        assert!(matches!(lookup(&g, &sg, bar), Resolution::Ambiguous(_)));
    }

    #[test]
    fn fig3_lookup_at_f_is_ambiguous_for_both() {
        let g = fixtures::fig3();
        let sg = graph_of(&g, "F");
        let foo = g.member_by_name("foo").unwrap();
        let bar = g.member_by_name("bar").unwrap();
        assert!(matches!(lookup(&g, &sg, foo), Resolution::Ambiguous(_)));
        assert!(matches!(lookup(&g, &sg, bar), Resolution::Ambiguous(_)));
    }

    #[test]
    fn fig9_resolves_to_c() {
        let g = fixtures::fig9();
        let sg = graph_of(&g, "E");
        let m = g.member_by_name("m").unwrap();
        match lookup(&g, &sg, m) {
            Resolution::Subobject(u) => {
                assert_eq!(sg.subobject(u).display(&g).to_string(), "CDE");
                assert_eq!(g.class_name(sg.subobject(u).class()), "C");
            }
            other => panic!("fig9 lookup must resolve to C::m, got {other:?}"),
        }
    }

    #[test]
    fn not_found_when_no_declarer() {
        let mut b = cpplookup_chg::ChgBuilder::new();
        let lonely = b.class("Lonely");
        let ghost = b.intern_member_name("ghost");
        let g = b.finish().unwrap();
        let sg = SubobjectGraph::build(&g, lonely, 10).unwrap();
        assert_eq!(lookup(&g, &sg, ghost), Resolution::NotFound);
        assert_eq!(lookup_cpp(&g, &sg, ghost), Resolution::NotFound);
    }

    #[test]
    fn static_diamond_shared_static_resolves() {
        let g = fixtures::static_diamond();
        let sg = graph_of(&g, "D");
        let s = g.member_by_name("s").unwrap();
        let d = g.member_by_name("d").unwrap();
        // Non-static data member: ambiguous (two A subobjects).
        assert!(matches!(lookup_cpp(&g, &sg, d), Resolution::Ambiguous(_)));
        // Static member: well-defined despite two subobjects.
        match lookup_cpp(&g, &sg, s) {
            Resolution::SharedStatic(ids) => {
                assert_eq!(ids.len(), 2);
                for id in ids {
                    assert_eq!(g.class_name(sg.subobject(id).class()), "A");
                }
            }
            other => panic!("expected SharedStatic, got {other:?}"),
        }
        // Definition 9 (static-unaware) still calls it ambiguous.
        assert!(matches!(lookup(&g, &sg, s), Resolution::Ambiguous(_)));
    }

    #[test]
    fn maximal_and_most_dominant_consistency() {
        let g = fixtures::fig3();
        let sg = graph_of(&g, "H");
        let foo = g.member_by_name("foo").unwrap();
        let defs = defns(&g, &sg, foo);
        let max = maximal(&sg, &defs);
        let md = most_dominant(&sg, &defs);
        assert_eq!(max.len(), 1);
        assert_eq!(md, Some(max[0]));
    }

    #[test]
    fn dominance_examples_from_paper_section3() {
        // "GH dominates ABDFH because GH hides ABDGH and ABDGH ≈ ABDFH.
        //  Similarly FH dominates ABDGH."
        let g = fixtures::fig3();
        let sg = graph_of(&g, "H");
        let id = |p: &str| {
            sg.id_of(&Subobject::from_path(&g, &Path::parse(&g, p).unwrap()))
                .unwrap()
        };
        assert!(sg.dominates(id("GH"), id("ABDFH")));
        assert!(sg.dominates(id("FH"), id("ABDGH")));
        assert!(!sg.dominates(id("ABDFH"), id("GH")));
    }

    #[test]
    fn lookup_in_class_wrapper() {
        let g = fixtures::fig2();
        let e = g.class_by_name("E").unwrap();
        let m = g.member_by_name("m").unwrap();
        let res = lookup_in_class(&g, e, m, 1000).unwrap();
        assert!(res.is_resolved());
        let tiny = lookup_in_class(&g, e, m, 2);
        assert!(tiny.is_err(), "limit of 2 must trip the blowup guard");
    }

    #[test]
    fn dominance_diamond_resolves_to_left() {
        let g = fixtures::dominance_diamond();
        let sg = graph_of(&g, "Bottom");
        let f = g.member_by_name("f").unwrap();
        match lookup(&g, &sg, f) {
            Resolution::Subobject(u) => {
                assert_eq!(g.class_name(sg.subobject(u).class()), "Left");
            }
            other => panic!("expected Left::f, got {other:?}"),
        }
    }
}
