//! Algebraic laws of the Rossie–Friedman subobject composition
//! (`[α]∘[σ] = [σ·α]`, Section 7.1).

use cpplookup_chg::fixtures;
use cpplookup_subobject::{Subobject, SubobjectGraph};

/// Enumerates, for every fixture and every complete class, all
/// (outer, inner) composition pairs and checks the laws.
#[test]
fn identity_and_closure_laws() {
    for g in [
        fixtures::fig1(),
        fixtures::fig2(),
        fixtures::fig3(),
        fixtures::fig9(),
        fixtures::static_override_mix(),
    ] {
        for c in g.classes() {
            let sg = SubobjectGraph::build(&g, c, 100_000).unwrap();
            let root = Subobject::complete_object(c);
            for id in sg.iter() {
                let s = sg.subobject(id);
                // Left identity: the complete object composed with any of
                // its subobjects is that subobject.
                assert_eq!(&root.compose(s), s);
                // Right identity: composing s with the complete object of
                // s's class gives s back.
                let inner_root = Subobject::complete_object(s.class());
                assert_eq!(&s.compose(&inner_root), s);

                // Closure: composing s with any subobject of a complete
                // object of s's class yields a subobject of c.
                let inner_graph = SubobjectGraph::build(&g, s.class(), 100_000).unwrap();
                for iid in inner_graph.iter() {
                    let composed = s.compose(inner_graph.subobject(iid));
                    assert_eq!(composed.complete(), c);
                    assert!(
                        sg.id_of(&composed).is_some(),
                        "composition escaped the subobject set: {} ∘ {} in {}",
                        s.display(&g),
                        inner_graph.subobject(iid).display(&g),
                        g.class_name(c)
                    );
                }
            }
        }
    }
}

/// Associativity: (s ∘ t) ∘ u == s ∘ (t ∘ u) wherever both sides are
/// defined.
#[test]
fn composition_is_associative() {
    for g in [fixtures::fig3(), fixtures::fig9()] {
        for c in g.classes() {
            let sg = SubobjectGraph::build(&g, c, 100_000).unwrap();
            for sid in sg.iter() {
                let s = sg.subobject(sid);
                let tg = SubobjectGraph::build(&g, s.class(), 100_000).unwrap();
                for tid in tg.iter() {
                    let t = tg.subobject(tid);
                    let ug = SubobjectGraph::build(&g, t.class(), 100_000).unwrap();
                    for uid in ug.iter() {
                        let u = ug.subobject(uid);
                        let left = s.compose(t).compose(u);
                        let right = s.compose(&t.compose(u));
                        assert_eq!(left, right);
                    }
                }
            }
        }
    }
}

/// Containment is compatible with composition: if the complete object of
/// X contains subobject t, then any X-classed subobject s of a larger
/// object contains s ∘ t there.
#[test]
fn composition_preserves_containment() {
    let g = fixtures::fig3();
    let h = g.class_by_name("H").unwrap();
    let sg = SubobjectGraph::build(&g, h, 100_000).unwrap();
    for sid in sg.iter() {
        let s = sg.subobject(sid);
        let inner = SubobjectGraph::build(&g, s.class(), 100_000).unwrap();
        for tid in inner.iter() {
            let composed = s.compose(inner.subobject(tid));
            let cid = sg.id_of(&composed).unwrap();
            assert!(
                sg.dominates(sid, cid),
                "{} should contain {}",
                s.display(&g),
                composed.display(&g)
            );
        }
    }
}
