//! The wire protocol: length-prefixed, checksummed binary frames.
//!
//! Every message — request or response — travels as one frame:
//!
//! ```text
//! offset  size  field
//! 0       4     len       u32 LE, length of body (1 ..= MAX_BODY)
//! 4       len   body      opcode byte + payload
//! 4+len   8     checksum  u64 LE, checksum64(body) — the snapshot
//!                         format's 4-lane word-FNV
//! ```
//!
//! Integers are little-endian; strings are a `u16` length followed by
//! that many UTF-8 bytes; lists are a `u32` count followed by the
//! items. The framing is self-delimiting, so a reader always knows
//! exactly how many bytes to consume, and the trailing checksum means a
//! flipped bit anywhere in the body is detected before the payload is
//! interpreted.
//!
//! The error contract mirrors the snapshot loader's: malformed input of
//! any shape — truncation, bit flips, oversized lengths, unknown
//! opcodes, garbage payloads — yields a structured [`FrameError`] /
//! [`ErrorCode`], never a panic and never an unbounded read
//! ([`MAX_BODY`] caps every allocation). Frame-level damage (a bad
//! length or checksum) poisons the stream position, so the peer
//! responds once and closes; payload-level damage leaves the framing
//! intact, so the peer responds with an error frame and keeps the
//! connection.

use std::io::{self, Read, Write};

pub use cpplookup_chg::checksum::checksum64;

/// Protocol version spoken by this build; [`Request::Hello`] carries
/// the client's, and mismatches are rejected with
/// [`ErrorCode::BadVersion`].
pub const PROTOCOL_VERSION: u32 = 1;

/// Hard cap on a frame body. Anything larger is rejected *before*
/// allocation — an oversized length prefix must not become an OOM.
pub const MAX_BODY: u32 = 16 << 20;

/// Request opcodes (high bit clear).
pub mod op {
    /// [`Request::Hello`](super::Request::Hello).
    pub const HELLO: u8 = 0x01;
    /// [`Request::Load`](super::Request::Load).
    pub const LOAD: u8 = 0x02;
    /// [`Request::Query`](super::Request::Query).
    pub const QUERY: u8 = 0x03;
    /// [`Request::Batch`](super::Request::Batch).
    pub const BATCH: u8 = 0x04;
    /// [`Request::Edit`](super::Request::Edit).
    pub const EDIT: u8 = 0x05;
    /// [`Request::Stats`](super::Request::Stats).
    pub const STATS: u8 = 0x06;
    /// [`Request::Metrics`](super::Request::Metrics).
    pub const METRICS: u8 = 0x07;
    /// [`Request::Subscribe`](super::Request::Subscribe).
    pub const SUBSCRIBE: u8 = 0x08;
    /// [`Request::Ack`](super::Request::Ack).
    pub const ACK: u8 = 0x09;

    /// [`Response::Hello`](super::Response::Hello).
    pub const R_HELLO: u8 = 0x81;
    /// [`Response::Loaded`](super::Response::Loaded).
    pub const R_LOADED: u8 = 0x82;
    /// [`Response::Outcome`](super::Response::Outcome).
    pub const R_OUTCOME: u8 = 0x83;
    /// [`Response::Outcomes`](super::Response::Outcomes).
    pub const R_OUTCOMES: u8 = 0x84;
    /// [`Response::Edited`](super::Response::Edited).
    pub const R_EDITED: u8 = 0x85;
    /// [`Response::Stats`](super::Response::Stats).
    pub const R_STATS: u8 = 0x86;
    /// [`Response::Metrics`](super::Response::Metrics).
    pub const R_METRICS: u8 = 0x87;
    /// [`Response::Traced`](super::Response::Traced).
    pub const R_TRACED: u8 = 0x88;
    /// [`Response::Replicated`](super::Response::Replicated).
    pub const R_REPLICATED: u8 = 0x89;
    /// [`Response::Acked`](super::Response::Acked).
    pub const R_ACKED: u8 = 0x8A;
    /// [`Response::Error`](super::Response::Error).
    pub const R_ERROR: u8 = 0xEE;
}

/// Request flag bits (the optional trailing flags byte on `QUERY` and
/// `BATCH`; a request without the byte has no flags set).
pub mod flags {
    /// Ask the server to time the request's phases and answer with
    /// [`Response::Traced`](super::Response::Traced).
    pub const TRACE: u8 = 0x01;
    /// Answer from a *retained* epoch instead of the live index: the
    /// flags byte is followed by the `u64` epoch to read at. An epoch
    /// outside the retention window is
    /// [`ErrorCode::EpochRetired`](super::ErrorCode::EpochRetired).
    pub const AS_OF: u8 = 0x02;

    /// Every bit this build understands; the decoder rejects the rest.
    pub const ALL: u8 = TRACE | AS_OF;
}

/// Structured protocol error codes carried by [`Response::Error`](super::Response::Error).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u16)]
pub enum ErrorCode {
    /// Frame checksum mismatch — the stream position can no longer be
    /// trusted, so the server closes after responding.
    BadFrame = 1,
    /// Length prefix of 0 or beyond [`MAX_BODY`].
    BadLength = 2,
    /// Opcode byte outside the request set.
    UnknownOpcode = 3,
    /// Body did not decode as the opcode's payload.
    BadPayload = 4,
    /// No tenant of that name is loaded.
    NoSuchTenant = 5,
    /// A class or member name did not resolve in the tenant.
    UnknownName = 6,
    /// The tenant's snapshot failed to load or validate.
    LoadFailed = 7,
    /// The edit directive was rejected by the engine.
    EditRejected = 8,
    /// The server is at its connection limit.
    Busy = 9,
    /// Client and server protocol versions differ.
    BadVersion = 10,
    /// An `as-of` query named an epoch outside the retention window.
    EpochRetired = 11,
    /// A replication request reached a server with no edit log.
    NotReplicating = 12,
}

impl ErrorCode {
    /// Decodes a wire `u16`; unknown values collapse to
    /// [`ErrorCode::BadPayload`] (forward compatibility: an old client
    /// still sees *an* error).
    pub fn from_u16(raw: u16) -> ErrorCode {
        match raw {
            1 => ErrorCode::BadFrame,
            2 => ErrorCode::BadLength,
            3 => ErrorCode::UnknownOpcode,
            5 => ErrorCode::NoSuchTenant,
            6 => ErrorCode::UnknownName,
            7 => ErrorCode::LoadFailed,
            8 => ErrorCode::EditRejected,
            9 => ErrorCode::Busy,
            10 => ErrorCode::BadVersion,
            11 => ErrorCode::EpochRetired,
            12 => ErrorCode::NotReplicating,
            _ => ErrorCode::BadPayload,
        }
    }

    /// Short stable label (used as the obs error-counter label).
    pub fn label(&self) -> &'static str {
        match self {
            ErrorCode::BadFrame => "bad_frame",
            ErrorCode::BadLength => "bad_length",
            ErrorCode::UnknownOpcode => "unknown_opcode",
            ErrorCode::BadPayload => "bad_payload",
            ErrorCode::NoSuchTenant => "no_such_tenant",
            ErrorCode::UnknownName => "unknown_name",
            ErrorCode::LoadFailed => "load_failed",
            ErrorCode::EditRejected => "edit_rejected",
            ErrorCode::Busy => "busy",
            ErrorCode::BadVersion => "bad_version",
            ErrorCode::EpochRetired => "epoch_retired",
            ErrorCode::NotReplicating => "not_replicating",
        }
    }
}

/// A `leastVirtual` value on the wire: the root Ω or a class by name.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireLv {
    /// The synthetic root Ω (a non-virtual path).
    Omega,
    /// `leastVirtual` is the named class.
    Class(String),
}

/// One lookup verdict on the wire — the name-level image of
/// [`LookupOutcome`](cpplookup_core::LookupOutcome), so a client needs
/// no id table to interpret it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireOutcome {
    /// The member is not visible in the class.
    NotFound,
    /// The lookup resolved.
    Resolved {
        /// Declaring class of the winning definition.
        class: String,
        /// `leastVirtual` of the winning definition.
        least_virtual: WireLv,
    },
    /// The lookup is ambiguous.
    Ambiguous {
        /// The `leastVirtual` witnesses, in index order.
        witnesses: Vec<WireLv>,
    },
}

/// One span of a server-side trace on the wire: the name-level image of
/// [`Span`](cpplookup_obs::Span). Offsets are relative to the request's
/// first byte; a span tree's *structure* (ids, parents, labels, order)
/// is deterministic for a given request, only the durations vary.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WireSpan {
    /// Monotonic id within the trace (the root is 0).
    pub id: u64,
    /// Parent span id; `u64::MAX` encodes "no parent" (the root).
    pub parent: u64,
    /// Phase label (`"directory_probe"`, `"encode"`, …).
    pub label: String,
    /// Start offset from the request's first byte, nanoseconds.
    pub start_ns: u64,
    /// Measured duration, nanoseconds.
    pub duration_ns: u64,
}

impl WireSpan {
    /// The parent id, decoded (`u64::MAX` means root).
    pub fn parent_id(&self) -> Option<u64> {
        (self.parent != u64::MAX).then_some(self.parent)
    }
}

/// One replicated edit-log record on the wire — the protocol-level
/// image of the WAL's record enum, defined here so the protocol stays
/// free of a `cpplookup-wal` dependency (and so the wire format is
/// pinned by this module's fuzz tests like every other payload).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireRecord {
    /// A tenant was loaded (or replaced) from a snapshot file.
    Open {
        /// Tenant name.
        tenant: String,
        /// Leader-side path of the snapshot.
        path: String,
    },
    /// One edit directive was appended.
    Edit {
        /// Tenant name.
        tenant: String,
        /// The directive text.
        directive: String,
    },
    /// A compaction checkpoint (followers that already track the
    /// tenant skip it; late joiners load it).
    Checkpoint {
        /// Tenant name.
        tenant: String,
        /// Leader-side path of the checkpoint snapshot.
        path: String,
        /// The tenant's published epoch at capture.
        epoch: u64,
    },
}

/// A client request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Request {
    /// Version handshake; optional but recommended as the first frame.
    Hello {
        /// The client's [`PROTOCOL_VERSION`].
        version: u32,
    },
    /// Load (or replace) a tenant from a snapshot file on the server's
    /// filesystem.
    Load {
        /// Tenant name.
        tenant: String,
        /// Server-side path to the `.snap` file.
        path: String,
    },
    /// One point lookup.
    Query {
        /// Tenant name.
        tenant: String,
        /// Class name.
        class: String,
        /// Member name.
        member: String,
        /// Request a phase trace ([`flags::TRACE`]); a traced query is
        /// answered with [`Response::Traced`] instead of
        /// [`Response::Outcome`].
        trace: bool,
        /// Answer from this retained epoch instead of the live index
        /// ([`flags::AS_OF`]).
        as_of: Option<u64>,
    },
    /// Many lookups against one tenant, answered in order.
    Batch {
        /// Tenant name.
        tenant: String,
        /// `(class, member)` name pairs.
        probes: Vec<(String, String)>,
        /// Request a phase trace ([`flags::TRACE`]); a traced batch is
        /// answered with [`Response::Traced`] instead of
        /// [`Response::Outcomes`].
        trace: bool,
        /// Answer from this retained epoch instead of the live index
        /// ([`flags::AS_OF`]).
        as_of: Option<u64>,
    },
    /// Apply one edit directive (`class NAME`, `member CLASS NAME`, or
    /// `edge DERIVED BASE [virtual]`) through the tenant's engine.
    Edit {
        /// Tenant name.
        tenant: String,
        /// The directive text.
        directive: String,
    },
    /// Tenant statistics as JSON; an empty tenant name means all.
    Stats {
        /// Tenant name, or `""` for the whole farm.
        tenant: String,
    },
    /// The Prometheus metrics text (also served over the HTTP admin
    /// endpoint).
    Metrics,
    /// Become a replication follower: the server diverts this
    /// connection into a one-way stream of [`Response::Replicated`]
    /// frames, starting after log sequence number `from_seq`.
    Subscribe {
        /// Deliver records with sequence numbers strictly greater
        /// than this (0 = the whole retained log).
        from_seq: u64,
    },
    /// A follower's applied-position report (sent on a *separate*
    /// connection from its subscription stream), answered with
    /// [`Response::Acked`].
    Ack {
        /// The follower's self-chosen identity (a metrics label).
        follower: String,
        /// Highest log sequence number the follower has applied.
        seq: u64,
    },
}

/// A server response.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Response {
    /// Handshake acknowledgement.
    Hello {
        /// The server's [`PROTOCOL_VERSION`].
        version: u32,
        /// Number of tenants currently loaded.
        tenants: u32,
    },
    /// [`Request::Load`] succeeded.
    Loaded {
        /// Entries in the tenant's table.
        entries: u64,
        /// Snapshot size in bytes.
        bytes: u64,
    },
    /// Answer to [`Request::Query`](super::Request::Query).
    Outcome(WireOutcome),
    /// Answers to [`Request::Batch`], in probe order.
    Outcomes(Vec<WireOutcome>),
    /// [`Request::Edit`] succeeded.
    Edited {
        /// The newly published index epoch.
        epoch: u64,
    },
    /// [`Request::Stats`] payload.
    Stats {
        /// JSON text.
        json: String,
    },
    /// [`Request::Metrics`] payload.
    Metrics {
        /// Prometheus exposition text.
        text: String,
    },
    /// Answer to a traced [`Request::Query`] or [`Request::Batch`]: the
    /// outcomes (one for a query, probe-ordered for a batch) plus the
    /// request's span tree.
    Traced {
        /// Lookup outcomes.
        outcomes: Vec<WireOutcome>,
        /// The span tree, recording order (root first).
        spans: Vec<WireSpan>,
    },
    /// One edit-log record streamed to a subscribed follower.
    Replicated {
        /// The record's log sequence number.
        seq: u64,
        /// Leader append time, nanoseconds since the Unix epoch (the
        /// follower's replication-lag clock).
        unix_nanos: u64,
        /// The record itself.
        record: WireRecord,
    },
    /// Answer to [`Request::Ack`].
    Acked {
        /// The leader's current last log sequence number, so the
        /// follower can measure how far behind it is.
        leader_seq: u64,
    },
    /// Any failure, with a structured code.
    Error {
        /// The error class.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
}

/// Frame-level failures on the read side.
#[derive(Debug)]
pub enum FrameError {
    /// The peer closed cleanly at a frame boundary.
    Eof,
    /// I/O failure mid-frame (includes truncation: `UnexpectedEof`).
    Io(io::Error),
    /// Length prefix of 0 or beyond [`MAX_BODY`].
    BadLength {
        /// The rejected length.
        len: u32,
    },
    /// Body checksum mismatch.
    Checksum,
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Eof => write!(f, "connection closed"),
            FrameError::Io(e) => write!(f, "i/o error: {e}"),
            FrameError::BadLength { len } => {
                write!(f, "frame length {len} outside 1..={MAX_BODY}")
            }
            FrameError::Checksum => write!(f, "frame checksum mismatch"),
        }
    }
}

impl std::error::Error for FrameError {}

/// Writes one frame: length prefix, body, trailing checksum.
///
/// # Errors
///
/// Propagates writer I/O errors.
pub fn write_frame(w: &mut impl Write, body: &[u8]) -> io::Result<()> {
    debug_assert!(!body.is_empty() && body.len() <= MAX_BODY as usize);
    let mut frame = Vec::with_capacity(body.len() + 12);
    frame.extend_from_slice(&(body.len() as u32).to_le_bytes());
    frame.extend_from_slice(body);
    frame.extend_from_slice(&checksum64(body).to_le_bytes());
    w.write_all(&frame)
}

/// Reads one frame body after its 4-byte length prefix has already been
/// consumed (the server peeks the prefix to sniff HTTP admin traffic).
///
/// # Errors
///
/// [`FrameError::BadLength`] before any allocation for a hostile
/// length, [`FrameError::Io`] on truncation, [`FrameError::Checksum`]
/// on body damage.
pub fn read_frame_body(r: &mut impl Read, len: u32) -> Result<Vec<u8>, FrameError> {
    if len == 0 || len > MAX_BODY {
        return Err(FrameError::BadLength { len });
    }
    let mut body = vec![0u8; len as usize];
    r.read_exact(&mut body).map_err(FrameError::Io)?;
    let mut sum = [0u8; 8];
    r.read_exact(&mut sum).map_err(FrameError::Io)?;
    if u64::from_le_bytes(sum) != checksum64(&body) {
        return Err(FrameError::Checksum);
    }
    Ok(body)
}

/// Reads one whole frame (length prefix + body + checksum).
///
/// # Errors
///
/// [`FrameError::Eof`] on a clean close at a frame boundary, otherwise
/// any error of [`read_frame_body`].
pub fn read_frame(r: &mut impl Read) -> Result<Vec<u8>, FrameError> {
    let mut prefix = [0u8; 4];
    let mut got = 0;
    while got < 4 {
        match r.read(&mut prefix[got..]) {
            Ok(0) if got == 0 => return Err(FrameError::Eof),
            Ok(0) => {
                return Err(FrameError::Io(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "truncated length prefix",
                )))
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    read_frame_body(r, u32::from_le_bytes(prefix))
}

/// Body encoder: the write-side cursor.
#[derive(Default)]
pub struct Enc(Vec<u8>);

impl Enc {
    /// Starts a body with its opcode byte.
    pub fn new(opcode: u8) -> Enc {
        Enc(vec![opcode])
    }

    /// Appends a `u8`.
    pub fn u8(&mut self, v: u8) -> &mut Self {
        self.0.push(v);
        self
    }

    /// Appends a `u16` LE.
    pub fn u16(&mut self, v: u16) -> &mut Self {
        self.0.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Appends a `u32` LE.
    pub fn u32(&mut self, v: u32) -> &mut Self {
        self.0.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Appends a `u64` LE.
    pub fn u64(&mut self, v: u64) -> &mut Self {
        self.0.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Appends a length-prefixed string (length saturates at `u16::MAX`
    /// bytes; names in this system are tiny).
    pub fn str(&mut self, s: &str) -> &mut Self {
        let bytes = s.as_bytes();
        let len = bytes.len().min(u16::MAX as usize);
        self.u16(len as u16);
        self.0.extend_from_slice(&bytes[..len]);
        self
    }

    /// The finished body.
    pub fn finish(self) -> Vec<u8> {
        self.0
    }
}

/// Body decoder: a strict bounds-checked cursor. Every `take_*` fails
/// with a description instead of panicking, and [`Dec::done`] rejects
/// trailing garbage.
pub struct Dec<'a> {
    body: &'a [u8],
    at: usize,
}

impl<'a> Dec<'a> {
    /// Wraps a body (after the opcode byte has been consumed).
    pub fn new(body: &'a [u8]) -> Dec<'a> {
        Dec { body, at: 0 }
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], String> {
        match self.body.get(self.at..self.at + n) {
            Some(slice) => {
                self.at += n;
                Ok(slice)
            }
            None => Err(format!(
                "truncated {what} at offset {} (want {n} bytes, have {})",
                self.at,
                self.body.len().saturating_sub(self.at)
            )),
        }
    }

    /// Reads a `u8`.
    pub fn u8(&mut self, what: &str) -> Result<u8, String> {
        Ok(self.take(1, what)?[0])
    }

    /// Reads a `u16` LE.
    pub fn u16(&mut self, what: &str) -> Result<u16, String> {
        Ok(u16::from_le_bytes(self.take(2, what)?.try_into().unwrap()))
    }

    /// Reads a `u32` LE.
    pub fn u32(&mut self, what: &str) -> Result<u32, String> {
        Ok(u32::from_le_bytes(self.take(4, what)?.try_into().unwrap()))
    }

    /// Reads a `u64` LE.
    pub fn u64(&mut self, what: &str) -> Result<u64, String> {
        Ok(u64::from_le_bytes(self.take(8, what)?.try_into().unwrap()))
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self, what: &str) -> Result<String, String> {
        let len = self.u16(what)? as usize;
        let bytes = self.take(len, what)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| format!("{what} is not UTF-8"))
    }

    /// Bytes not yet consumed (used for optional trailing fields like
    /// the `QUERY`/`BATCH` flags byte).
    pub fn remaining(&self) -> usize {
        self.body.len() - self.at
    }

    /// Asserts the body is fully consumed.
    pub fn done(self) -> Result<(), String> {
        if self.at == self.body.len() {
            Ok(())
        } else {
            Err(format!(
                "{} trailing bytes after payload",
                self.body.len() - self.at
            ))
        }
    }
}

fn enc_lv(e: &mut Enc, lv: &WireLv) {
    match lv {
        WireLv::Omega => {
            e.u8(0);
        }
        WireLv::Class(name) => {
            e.u8(1).str(name);
        }
    }
}

fn dec_lv(d: &mut Dec<'_>) -> Result<WireLv, String> {
    match d.u8("leastVirtual tag")? {
        0 => Ok(WireLv::Omega),
        1 => Ok(WireLv::Class(d.str("leastVirtual class")?)),
        t => Err(format!("unknown leastVirtual tag {t}")),
    }
}

/// Reads the optional trailing flags section of `QUERY`/`BATCH`:
/// absent means no flags; unknown bits are rejected (this protocol is
/// strict — a flag the server would silently ignore is a client bug).
/// When [`flags::AS_OF`] is set, the `u64` epoch that follows the
/// flags byte is read too.
fn dec_flags(d: &mut Dec<'_>) -> Result<(u8, Option<u64>), String> {
    if d.remaining() == 0 {
        return Ok((0, None));
    }
    let f = d.u8("flags")?;
    if f & !flags::ALL != 0 {
        return Err(format!("unknown flag bits 0x{:02x}", f & !flags::ALL));
    }
    let as_of = if f & flags::AS_OF != 0 {
        Some(d.u64("as-of epoch")?)
    } else {
        None
    };
    Ok((f, as_of))
}

/// Appends the optional trailing flags section: the flags byte only
/// when a flag is set (so a flagless request is byte-identical to the
/// pre-flags encoding), then the as-of epoch when present.
fn enc_flags(e: &mut Enc, trace: bool, as_of: Option<u64>) {
    let mut f = 0u8;
    if trace {
        f |= flags::TRACE;
    }
    if as_of.is_some() {
        f |= flags::AS_OF;
    }
    if f != 0 {
        e.u8(f);
    }
    if let Some(epoch) = as_of {
        e.u64(epoch);
    }
}

fn enc_record(e: &mut Enc, r: &WireRecord) {
    match r {
        WireRecord::Open { tenant, path } => {
            e.u8(1).str(tenant).str(path);
        }
        WireRecord::Edit { tenant, directive } => {
            e.u8(2).str(tenant).str(directive);
        }
        WireRecord::Checkpoint {
            tenant,
            path,
            epoch,
        } => {
            e.u8(3).str(tenant).str(path).u64(*epoch);
        }
    }
}

fn dec_record(d: &mut Dec<'_>) -> Result<WireRecord, String> {
    match d.u8("record kind")? {
        1 => Ok(WireRecord::Open {
            tenant: d.str("record tenant")?,
            path: d.str("record path")?,
        }),
        2 => Ok(WireRecord::Edit {
            tenant: d.str("record tenant")?,
            directive: d.str("record directive")?,
        }),
        3 => Ok(WireRecord::Checkpoint {
            tenant: d.str("record tenant")?,
            path: d.str("record path")?,
            epoch: d.u64("record epoch")?,
        }),
        k => Err(format!("unknown record kind {k}")),
    }
}

fn enc_span(e: &mut Enc, s: &WireSpan) {
    e.u64(s.id).u64(s.parent).str(&s.label);
    e.u64(s.start_ns).u64(s.duration_ns);
}

fn dec_span(d: &mut Dec<'_>) -> Result<WireSpan, String> {
    Ok(WireSpan {
        id: d.u64("span id")?,
        parent: d.u64("span parent")?,
        label: d.str("span label")?,
        start_ns: d.u64("span start")?,
        duration_ns: d.u64("span duration")?,
    })
}

fn enc_outcome(e: &mut Enc, o: &WireOutcome) {
    match o {
        WireOutcome::NotFound => {
            e.u8(0);
        }
        WireOutcome::Resolved {
            class,
            least_virtual,
        } => {
            e.u8(1).str(class);
            enc_lv(e, least_virtual);
        }
        WireOutcome::Ambiguous { witnesses } => {
            e.u8(2).u32(witnesses.len() as u32);
            for w in witnesses {
                enc_lv(e, w);
            }
        }
    }
}

fn dec_outcome(d: &mut Dec<'_>) -> Result<WireOutcome, String> {
    match d.u8("outcome tag")? {
        0 => Ok(WireOutcome::NotFound),
        1 => Ok(WireOutcome::Resolved {
            class: d.str("resolved class")?,
            least_virtual: dec_lv(d)?,
        }),
        2 => {
            let n = d.u32("witness count")?;
            if n > MAX_BODY {
                return Err(format!("witness count {n} exceeds frame capacity"));
            }
            let mut witnesses = Vec::with_capacity(n.min(1024) as usize);
            for _ in 0..n {
                witnesses.push(dec_lv(d)?);
            }
            Ok(WireOutcome::Ambiguous { witnesses })
        }
        t => Err(format!("unknown outcome tag {t}")),
    }
}

impl Request {
    /// Encodes this request as a frame body.
    pub fn encode(&self) -> Vec<u8> {
        match self {
            Request::Hello { version } => {
                let mut e = Enc::new(op::HELLO);
                e.u32(*version);
                e.finish()
            }
            Request::Load { tenant, path } => {
                let mut e = Enc::new(op::LOAD);
                e.str(tenant).str(path);
                e.finish()
            }
            Request::Query {
                tenant,
                class,
                member,
                trace,
                as_of,
            } => {
                let mut e = Enc::new(op::QUERY);
                e.str(tenant).str(class).str(member);
                enc_flags(&mut e, *trace, *as_of);
                e.finish()
            }
            Request::Batch {
                tenant,
                probes,
                trace,
                as_of,
            } => {
                let mut e = Enc::new(op::BATCH);
                e.str(tenant).u32(probes.len() as u32);
                for (class, member) in probes {
                    e.str(class).str(member);
                }
                enc_flags(&mut e, *trace, *as_of);
                e.finish()
            }
            Request::Edit { tenant, directive } => {
                let mut e = Enc::new(op::EDIT);
                e.str(tenant).str(directive);
                e.finish()
            }
            Request::Stats { tenant } => {
                let mut e = Enc::new(op::STATS);
                e.str(tenant);
                e.finish()
            }
            Request::Metrics => Enc::new(op::METRICS).finish(),
            Request::Subscribe { from_seq } => {
                let mut e = Enc::new(op::SUBSCRIBE);
                e.u64(*from_seq);
                e.finish()
            }
            Request::Ack { follower, seq } => {
                let mut e = Enc::new(op::ACK);
                e.str(follower).u64(*seq);
                e.finish()
            }
        }
    }

    /// Decodes a frame body as a request.
    ///
    /// # Errors
    ///
    /// `Err((code, message))` — [`ErrorCode::UnknownOpcode`] for a
    /// foreign opcode byte, [`ErrorCode::BadPayload`] for a body that
    /// does not parse as that opcode's payload.
    pub fn decode(body: &[u8]) -> Result<Request, (ErrorCode, String)> {
        let bad = |m: String| (ErrorCode::BadPayload, m);
        let (&opcode, payload) = body
            .split_first()
            .ok_or((ErrorCode::BadPayload, "empty body".to_owned()))?;
        let mut d = Dec::new(payload);
        let req = match opcode {
            op::HELLO => Request::Hello {
                version: d.u32("version").map_err(bad)?,
            },
            op::LOAD => Request::Load {
                tenant: d.str("tenant").map_err(bad)?,
                path: d.str("path").map_err(bad)?,
            },
            op::QUERY => {
                let tenant = d.str("tenant").map_err(bad)?;
                let class = d.str("class").map_err(bad)?;
                let member = d.str("member").map_err(bad)?;
                let (f, as_of) = dec_flags(&mut d).map_err(bad)?;
                Request::Query {
                    tenant,
                    class,
                    member,
                    trace: f & flags::TRACE != 0,
                    as_of,
                }
            }
            op::BATCH => {
                let tenant = d.str("tenant").map_err(bad)?;
                let n = d.u32("probe count").map_err(bad)?;
                if n > MAX_BODY / 4 {
                    return Err(bad(format!("probe count {n} exceeds frame capacity")));
                }
                let mut probes = Vec::with_capacity(n.min(4096) as usize);
                for _ in 0..n {
                    probes.push((
                        d.str("probe class").map_err(bad)?,
                        d.str("probe member").map_err(bad)?,
                    ));
                }
                let (f, as_of) = dec_flags(&mut d).map_err(bad)?;
                Request::Batch {
                    tenant,
                    probes,
                    trace: f & flags::TRACE != 0,
                    as_of,
                }
            }
            op::EDIT => Request::Edit {
                tenant: d.str("tenant").map_err(bad)?,
                directive: d.str("directive").map_err(bad)?,
            },
            op::STATS => Request::Stats {
                tenant: d.str("tenant").map_err(bad)?,
            },
            op::METRICS => Request::Metrics,
            op::SUBSCRIBE => Request::Subscribe {
                from_seq: d.u64("from_seq").map_err(bad)?,
            },
            op::ACK => Request::Ack {
                follower: d.str("follower").map_err(bad)?,
                seq: d.u64("seq").map_err(bad)?,
            },
            other => {
                return Err((
                    ErrorCode::UnknownOpcode,
                    format!("unknown request opcode 0x{other:02x}"),
                ))
            }
        };
        d.done().map_err(bad)?;
        Ok(req)
    }
}

/// Two-phase encoder for [`Response::Traced`]: the outcomes are encoded
/// first (so the server can clock the encode phase), then the span list
/// — which may include that very encode span — is appended. The result
/// is byte-identical to `Response::Traced { .. }.encode()`.
pub struct TracedEncoder {
    e: Enc,
}

impl TracedEncoder {
    /// Encodes the opcode and outcome section.
    pub fn new(outcomes: &[WireOutcome]) -> TracedEncoder {
        let mut e = Enc::new(op::R_TRACED);
        e.u32(outcomes.len() as u32);
        for o in outcomes {
            enc_outcome(&mut e, o);
        }
        TracedEncoder { e }
    }

    /// Appends the span section and returns the finished frame body.
    pub fn finish(mut self, spans: &[WireSpan]) -> Vec<u8> {
        self.e.u32(spans.len() as u32);
        for s in spans {
            enc_span(&mut self.e, s);
        }
        self.e.finish()
    }
}

impl Response {
    /// Encodes this response as a frame body.
    pub fn encode(&self) -> Vec<u8> {
        match self {
            Response::Hello { version, tenants } => {
                let mut e = Enc::new(op::R_HELLO);
                e.u32(*version).u32(*tenants);
                e.finish()
            }
            Response::Loaded { entries, bytes } => {
                let mut e = Enc::new(op::R_LOADED);
                e.u64(*entries).u64(*bytes);
                e.finish()
            }
            Response::Outcome(o) => {
                let mut e = Enc::new(op::R_OUTCOME);
                enc_outcome(&mut e, o);
                e.finish()
            }
            Response::Outcomes(outcomes) => {
                let mut e = Enc::new(op::R_OUTCOMES);
                e.u32(outcomes.len() as u32);
                for o in outcomes {
                    enc_outcome(&mut e, o);
                }
                e.finish()
            }
            Response::Edited { epoch } => {
                let mut e = Enc::new(op::R_EDITED);
                e.u64(*epoch);
                e.finish()
            }
            Response::Stats { json } => {
                let mut e = Enc::new(op::R_STATS);
                e.str(json);
                e.finish()
            }
            Response::Metrics { text } => {
                let mut e = Enc::new(op::R_METRICS);
                e.str(text);
                e.finish()
            }
            Response::Traced { outcomes, spans } => {
                let mut e = Enc::new(op::R_TRACED);
                e.u32(outcomes.len() as u32);
                for o in outcomes {
                    enc_outcome(&mut e, o);
                }
                e.u32(spans.len() as u32);
                for s in spans {
                    enc_span(&mut e, s);
                }
                e.finish()
            }
            Response::Replicated {
                seq,
                unix_nanos,
                record,
            } => {
                let mut e = Enc::new(op::R_REPLICATED);
                e.u64(*seq).u64(*unix_nanos);
                enc_record(&mut e, record);
                e.finish()
            }
            Response::Acked { leader_seq } => {
                let mut e = Enc::new(op::R_ACKED);
                e.u64(*leader_seq);
                e.finish()
            }
            Response::Error { code, message } => {
                let mut e = Enc::new(op::R_ERROR);
                e.u16(*code as u16).str(message);
                e.finish()
            }
        }
    }

    /// Decodes a frame body as a response.
    ///
    /// # Errors
    ///
    /// A description of the malformation.
    pub fn decode(body: &[u8]) -> Result<Response, String> {
        let (&opcode, payload) = body.split_first().ok_or("empty body")?;
        let mut d = Dec::new(payload);
        let resp = match opcode {
            op::R_HELLO => Response::Hello {
                version: d.u32("version")?,
                tenants: d.u32("tenant count")?,
            },
            op::R_LOADED => Response::Loaded {
                entries: d.u64("entries")?,
                bytes: d.u64("bytes")?,
            },
            op::R_OUTCOME => Response::Outcome(dec_outcome(&mut d)?),
            op::R_OUTCOMES => {
                let n = d.u32("outcome count")?;
                if n > MAX_BODY / 2 {
                    return Err(format!("outcome count {n} exceeds frame capacity"));
                }
                let mut outcomes = Vec::with_capacity(n.min(4096) as usize);
                for _ in 0..n {
                    outcomes.push(dec_outcome(&mut d)?);
                }
                Response::Outcomes(outcomes)
            }
            op::R_EDITED => Response::Edited {
                epoch: d.u64("epoch")?,
            },
            op::R_STATS => Response::Stats {
                json: d.str("stats json")?,
            },
            op::R_METRICS => Response::Metrics {
                text: d.str("metrics text")?,
            },
            op::R_TRACED => {
                let n = d.u32("outcome count")?;
                if n > MAX_BODY / 2 {
                    return Err(format!("outcome count {n} exceeds frame capacity"));
                }
                let mut outcomes = Vec::with_capacity(n.min(4096) as usize);
                for _ in 0..n {
                    outcomes.push(dec_outcome(&mut d)?);
                }
                let n = d.u32("span count")?;
                if n > MAX_BODY / 34 {
                    // 34 bytes = the smallest span encoding.
                    return Err(format!("span count {n} exceeds frame capacity"));
                }
                let mut spans = Vec::with_capacity(n.min(4096) as usize);
                for _ in 0..n {
                    spans.push(dec_span(&mut d)?);
                }
                Response::Traced { outcomes, spans }
            }
            op::R_REPLICATED => Response::Replicated {
                seq: d.u64("seq")?,
                unix_nanos: d.u64("unix_nanos")?,
                record: dec_record(&mut d)?,
            },
            op::R_ACKED => Response::Acked {
                leader_seq: d.u64("leader_seq")?,
            },
            op::R_ERROR => Response::Error {
                code: ErrorCode::from_u16(d.u16("error code")?),
                message: d.str("error message")?,
            },
            other => return Err(format!("unknown response opcode 0x{other:02x}")),
        };
        d.done()?;
        Ok(resp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_request(req: Request) {
        let body = req.encode();
        assert_eq!(Request::decode(&body).unwrap(), req);
        // And through full framing.
        let mut wire = Vec::new();
        write_frame(&mut wire, &body).unwrap();
        let back = read_frame(&mut wire.as_slice()).unwrap();
        assert_eq!(back, body);
    }

    fn roundtrip_response(resp: Response) {
        let body = resp.encode();
        assert_eq!(Response::decode(&body).unwrap(), resp);
    }

    #[test]
    fn requests_roundtrip() {
        roundtrip_request(Request::Hello {
            version: PROTOCOL_VERSION,
        });
        roundtrip_request(Request::Load {
            tenant: "t0".into(),
            path: "/tmp/x.snap".into(),
        });
        roundtrip_request(Request::Query {
            tenant: "t0".into(),
            class: "E".into(),
            member: "m".into(),
            trace: false,
            as_of: None,
        });
        roundtrip_request(Request::Query {
            tenant: "t0".into(),
            class: "E".into(),
            member: "m".into(),
            trace: true,
            as_of: None,
        });
        roundtrip_request(Request::Batch {
            tenant: "t0".into(),
            probes: vec![("E".into(), "m".into()), ("D".into(), "m".into())],
            trace: false,
            as_of: None,
        });
        roundtrip_request(Request::Batch {
            tenant: "t0".into(),
            probes: vec![("E".into(), "m".into())],
            trace: true,
            as_of: None,
        });
        roundtrip_request(Request::Edit {
            tenant: "t0".into(),
            directive: "member E fresh".into(),
        });
        roundtrip_request(Request::Stats { tenant: "".into() });
        roundtrip_request(Request::Metrics);
        roundtrip_request(Request::Query {
            tenant: "t0".into(),
            class: "E".into(),
            member: "m".into(),
            trace: false,
            as_of: Some(4),
        });
        roundtrip_request(Request::Query {
            tenant: "t0".into(),
            class: "E".into(),
            member: "m".into(),
            trace: true,
            as_of: Some(0),
        });
        roundtrip_request(Request::Batch {
            tenant: "t0".into(),
            probes: vec![("E".into(), "m".into())],
            trace: false,
            as_of: Some(u64::MAX),
        });
        roundtrip_request(Request::Subscribe { from_seq: 0 });
        roundtrip_request(Request::Subscribe { from_seq: 99 });
        roundtrip_request(Request::Ack {
            follower: "f1".into(),
            seq: 17,
        });
    }

    #[test]
    fn responses_roundtrip() {
        roundtrip_response(Response::Hello {
            version: 1,
            tenants: 3,
        });
        roundtrip_response(Response::Loaded {
            entries: 42,
            bytes: 1024,
        });
        roundtrip_response(Response::Outcome(WireOutcome::NotFound));
        roundtrip_response(Response::Outcome(WireOutcome::Resolved {
            class: "C".into(),
            least_virtual: WireLv::Class("A".into()),
        }));
        roundtrip_response(Response::Outcomes(vec![
            WireOutcome::Ambiguous {
                witnesses: vec![WireLv::Omega, WireLv::Class("S".into())],
            },
            WireOutcome::NotFound,
        ]));
        roundtrip_response(Response::Edited { epoch: 7 });
        roundtrip_response(Response::Stats {
            json: "{\"tenants\":[]}".into(),
        });
        roundtrip_response(Response::Metrics {
            text: "# HELP x\n".into(),
        });
        roundtrip_response(Response::Traced {
            outcomes: vec![WireOutcome::Resolved {
                class: "D".into(),
                least_virtual: WireLv::Omega,
            }],
            spans: vec![
                WireSpan {
                    id: 0,
                    parent: u64::MAX,
                    label: "request".into(),
                    start_ns: 0,
                    duration_ns: 4200,
                },
                WireSpan {
                    id: 1,
                    parent: 0,
                    label: "directory_probe".into(),
                    start_ns: 1000,
                    duration_ns: 3000,
                },
            ],
        });
        roundtrip_response(Response::Error {
            code: ErrorCode::NoSuchTenant,
            message: "no tenant `x`".into(),
        });
        roundtrip_response(Response::Replicated {
            seq: 12,
            unix_nanos: 1_700_000_000_000_000_000,
            record: WireRecord::Open {
                tenant: "t".into(),
                path: "/tmp/t.snap".into(),
            },
        });
        roundtrip_response(Response::Replicated {
            seq: 13,
            unix_nanos: 0,
            record: WireRecord::Edit {
                tenant: "t".into(),
                directive: "member E fresh".into(),
            },
        });
        roundtrip_response(Response::Replicated {
            seq: 14,
            unix_nanos: 7,
            record: WireRecord::Checkpoint {
                tenant: "t".into(),
                path: "/tmp/ckpt.snap".into(),
                epoch: 9,
            },
        });
        roundtrip_response(Response::Acked { leader_seq: 21 });
    }

    #[test]
    fn as_of_is_a_flagged_trailing_epoch() {
        let plain = Request::Query {
            tenant: "t".into(),
            class: "C".into(),
            member: "m".into(),
            trace: false,
            as_of: None,
        };
        let pinned = Request::Query {
            tenant: "t".into(),
            class: "C".into(),
            member: "m".into(),
            trace: false,
            as_of: Some(5),
        };
        // Flags byte + u64 epoch.
        assert_eq!(pinned.encode().len(), plain.encode().len() + 9);
        // The epoch must actually be present when the flag is set.
        let mut truncated = pinned.encode();
        truncated.truncate(truncated.len() - 8);
        assert_eq!(
            Request::decode(&truncated).unwrap_err().0,
            ErrorCode::BadPayload
        );
        // Both flags compose.
        let both = Request::Batch {
            tenant: "t".into(),
            probes: vec![("C".into(), "m".into())],
            trace: true,
            as_of: Some(2),
        };
        assert_eq!(Request::decode(&both.encode()).unwrap(), both);
        // An unknown error code from the future still decodes.
        assert_eq!(ErrorCode::from_u16(11), ErrorCode::EpochRetired);
        assert_eq!(ErrorCode::from_u16(12), ErrorCode::NotReplicating);
        assert_eq!(ErrorCode::from_u16(999), ErrorCode::BadPayload);
    }

    #[test]
    fn trace_flag_is_an_optional_trailing_byte() {
        // A flagless QUERY and a trace:false QUERY are byte-identical —
        // the flag byte only appears when set.
        let plain = Request::Query {
            tenant: "t".into(),
            class: "C".into(),
            member: "m".into(),
            trace: false,
            as_of: None,
        };
        let traced = Request::Query {
            tenant: "t".into(),
            class: "C".into(),
            member: "m".into(),
            trace: true,
            as_of: None,
        };
        assert_eq!(traced.encode().len(), plain.encode().len() + 1);
        // An explicit zero flags byte decodes as untraced.
        let mut with_zero = plain.encode();
        with_zero.push(0);
        assert_eq!(Request::decode(&with_zero).unwrap(), plain);
        // Unknown flag bits are a payload error, not silently ignored.
        let mut unknown = plain.encode();
        unknown.push(0x80);
        assert_eq!(
            Request::decode(&unknown).unwrap_err().0,
            ErrorCode::BadPayload
        );
        // The span parent sentinel survives the helper.
        let root = WireSpan {
            id: 0,
            parent: u64::MAX,
            label: "request".into(),
            start_ns: 0,
            duration_ns: 0,
        };
        assert_eq!(root.parent_id(), None);
    }

    #[test]
    fn every_single_byte_flip_is_detected_or_changes_meaning_safely() {
        let req = Request::Query {
            tenant: "tenant".into(),
            class: "Class".into(),
            member: "member".into(),
            trace: true,
            as_of: Some(3),
        };
        let mut wire = Vec::new();
        write_frame(&mut wire, &req.encode()).unwrap();
        for at in 0..wire.len() {
            for bit in 0..8 {
                let mut damaged = wire.clone();
                damaged[at] ^= 1 << bit;
                match read_frame(&mut damaged.as_slice()) {
                    // Damage to the length prefix shows up as a bad
                    // length, a truncation, or a checksum that no
                    // longer lines up; damage to body or checksum must
                    // be a checksum mismatch.
                    Err(
                        FrameError::BadLength { .. } | FrameError::Io(_) | FrameError::Checksum,
                    ) => {}
                    Err(FrameError::Eof) => panic!("flip at {at}.{bit} read as clean EOF"),
                    Ok(body) => panic!(
                        "flip at byte {at} bit {bit} went undetected: {:?}",
                        Request::decode(&body)
                    ),
                }
            }
        }
    }

    #[test]
    fn truncation_at_every_length_is_structured() {
        let req = Request::Batch {
            tenant: "t".into(),
            probes: vec![("A".into(), "m".into())],
            trace: false,
            as_of: None,
        };
        let mut wire = Vec::new();
        write_frame(&mut wire, &req.encode()).unwrap();
        for cut in 0..wire.len() {
            match read_frame(&mut wire[..cut].as_ref()) {
                Err(FrameError::Eof) => assert_eq!(cut, 0, "EOF only at the frame boundary"),
                Err(FrameError::Io(e)) => {
                    assert_eq!(e.kind(), io::ErrorKind::UnexpectedEof, "cut at {cut}")
                }
                other => panic!("cut at {cut}: unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn oversized_and_zero_lengths_are_rejected_before_allocation() {
        for len in [0u32, MAX_BODY + 1, u32::MAX] {
            let mut wire = len.to_le_bytes().to_vec();
            wire.extend_from_slice(&[0u8; 16]);
            match read_frame(&mut wire.as_slice()) {
                Err(FrameError::BadLength { len: got }) => assert_eq!(got, len),
                other => panic!("length {len}: unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn unknown_opcode_and_trailing_garbage_are_bad_payloads() {
        assert_eq!(
            Request::decode(&[0x7f]).unwrap_err().0,
            ErrorCode::UnknownOpcode
        );
        let mut body = Request::Metrics.encode();
        body.push(0xAB);
        assert_eq!(Request::decode(&body).unwrap_err().0, ErrorCode::BadPayload);
        assert!(Response::decode(&[]).is_err());
    }
}
