//! `cpplookup-server` — a multi-tenant member-lookup service over a
//! farm of snapshot-backed dispatch indexes.
//!
//! The workspace already has every piece of a serving stack except the
//! wire: [`SnapshotTable`](cpplookup_snapshot::SnapshotTable) gives a
//! compile-once/load-many artifact, `DispatchIndex` gives an
//! allocation-free read path, and `ServeHandle`/`IndexedEngine` give
//! epoch-published edits. This crate puts a socket in front of all of
//! it:
//!
//! * [`protocol`] — the length-prefixed, checksummed binary frame
//!   format and its request/response types. Dependency-free, strict,
//!   and fuzz-tested: malformed bytes produce structured errors, never
//!   panics or unbounded reads.
//! * [`farm`] — the tenant farm. Each tenant is a loaded snapshot
//!   lazily *promoted* to a [`DispatchIndex`](cpplookup_core::DispatchIndex)
//!   on first traffic (identical cold probes are coalesced into one
//!   build), and lazily *warmed* to an engine on first edit so
//!   subsequent queries read the epoch-published index.
//! * [`server`] — the TCP listener: bounded-accept admission control,
//!   request-scoped phase tracing (the protocol TRACE flag returns a
//!   span tree), per-tenant metric families, plus an HTTP admin
//!   endpoint (`GET /metrics`, `/healthz`, `/tenants`,
//!   `/flightrecorder`) sharing the same port by first-bytes sniffing.
//!   Two I/O models sit behind one wire contract, selected by
//!   `--io-model`: `threads` (one thread per connection — the default
//!   and the portability fallback) and `epoll` (per-core reactor
//!   threads multiplexing nonblocking connection state machines; see
//!   the `reactor` module, Linux only).
//! * [`shard`] — optional shard-affine read workers: with
//!   `--shards N` untraced reads are routed to a fixed worker thread
//!   by tenant hash, keeping each tenant's probe directory
//!   cache-resident on one core instead of bouncing between
//!   connection threads.
//! * [`recorder`] — the flight recorder: a bounded ring of recent
//!   completed requests plus a slow-query log with full span trees.
//! * [`replication`] — follower mode: a background loop that tails a
//!   leader's durable edit log (over the wire via `SUBSCRIBE`, or by
//!   file) and replays it through the farm's replica path, acking its
//!   position back to the leader.
//! * [`client`] — a small blocking client used by the CLI, the load
//!   generator, and the tests.
//! * [`loadgen`] — open- and closed-loop load generation with zipfian
//!   tenant and probe skew, reporting QPS and latency quantiles from
//!   the obs histogram machinery.
//!
//! The server binary is `cpplookup-serverd`; the load generator is
//! `cpplookup-loadgen`. Both are also reachable through the main CLI
//! (`cpplookup-cli serve` / `cpplookup-cli loadgen`).

#![warn(missing_docs)]
#![deny(unsafe_code)] // only `sys` opts out, for the epoll/eventfd syscalls

mod coalesce;
#[cfg(target_os = "linux")]
mod reactor;
#[cfg(target_os = "linux")]
mod sys;

pub mod cli;
pub mod client;
pub mod farm;
pub mod loadgen;
pub mod protocol;
pub mod recorder;
pub mod replication;
pub mod server;
pub mod shard;

pub use client::Client;
pub use farm::{Farm, FarmOptions};
pub use loadgen::{LoadConfig, LoadReport, Pacing};
pub use protocol::{ErrorCode, Request, Response, WireLv, WireOutcome, WireSpan, PROTOCOL_VERSION};
pub use recorder::{FlightEntry, FlightRecorder, SlowEntry};
pub use replication::{FollowSource, Follower, FollowerConfig};
pub use server::{IoModel, ObsConfig, Server, ServerConfig};
pub use shard::ShardPool;
