//! The epoll reactor I/O model: a few threads multiplexing many
//! nonblocking connection state machines.
//!
//! The threaded model parks one OS thread (and its stack) per
//! connection; at 1024+ mostly-idle connections that is the dominant
//! server cost, while the probes themselves are nearly free (the MPH
//! directory made them one cache line each). The reactor replaces the
//! parked threads with `N` per-core event loops — each owns an epoll
//! instance, an eventfd doorbell, and a slab of [`Conn`] state
//! machines; the acceptor round-robins accepted fds across them.
//!
//! Per connection the machine is small and explicit:
//!
//! ```text
//!            bytes            "GET "            frame damage
//!   Start ─────────▶ Binary   Start ──▶ Http    Binary ──▶ error frame,
//!     │                 │               (hand      drain + close
//!     ▼                 ▼                off)      after flush
//!   read ──▶ reassemble ──▶ decode ──▶ handle ──▶ buffer ──▶ writev
//! ```
//!
//! * **Incremental frame reassembly** — [`FrameBuffer`] carries a
//!   consumed-prefix offset and a resumable length-prefix parse, so a
//!   frame split across any number of partial reads is decoded exactly
//!   once, with no re-scanning of consumed bytes.
//! * **Pipelined decoding with a fairness cap** — one readiness event
//!   drains at most [`ServerConfig::max_frames_per_turn`] complete
//!   frames; a connection with more buffered work re-queues itself
//!   behind every other ready connection, so one pipelining client
//!   cannot starve the loop.
//! * **Backpressure by interest, not queues** — responses buffer in
//!   per-connection `Vec`s flushed with vectored `writev`; `EPOLLOUT`
//!   interest exists only while a backlog does, and read interest is
//!   parked while a backlog exists *or* the frame buffer holds a
//!   budget of unprocessed frames, so a peer that pipelines requests
//!   without reading responses stops being read from (TCP flow
//!   control takes over) instead of growing our buffers forever.
//! * **Idle timeouts off a timer wheel** — a coarse hashed wheel with
//!   lazy reinsertion; activity just stamps the connection's deadline,
//!   and the wheel checks it when the slot comes due.
//!
//! Requests execute through the exact code path the threaded model
//! uses ([`process_body`](crate::server)), so responses are
//! byte-identical between the models — pinned by the differential
//! tests and the e27 CI gate. The rare connection-takeover requests
//! (HTTP admin, `SUBSCRIBE`) hand their fd back to a plain blocking
//! thread, keeping the event loop free of long-lived work.

use std::collections::VecDeque;
use std::io::{self, IoSlice, Read, Write};
use std::net::TcpStream;
use std::os::unix::io::{AsRawFd, RawFd};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use cpplookup_obs::{Counter, Gauge};

use crate::protocol::{checksum64, write_frame, FrameError, MAX_BODY};
use crate::server::{
    frame_damage_response, process_body, serve_admin, serve_subscription, Action, ConnCount,
    ReqCounters, ServerConfig, Shared,
};
use crate::sys::{self, Epoll, EpollEvent, EventFd};

/// The epoll token reserved for each reactor's eventfd doorbell.
const WAKE_TOKEN: u64 = u64::MAX;

/// Per-readiness-event read budget: past this many bytes the loop
/// moves on and lets level-triggered epoll re-report the fd.
const READ_BUDGET: usize = 256 * 1024;

/// How many response buffers one `writev` gathers at most.
const WRITEV_BATCH: usize = 32;

/// A connection's idle deadline when no timeout is configured.
const FOREVER: Duration = Duration::from_secs(365 * 24 * 3600);

/// Incremental frame reassembly: a growable buffer with a consumed
/// prefix and a *resumable* length-prefix parse. Bytes are appended as
/// they arrive; complete frames are peeled off the front. The parsed
/// body length is cached across calls, so a frame arriving one byte at
/// a time costs one prefix parse and one checksum pass total — consumed
/// bytes are never re-scanned.
struct FrameBuffer {
    buf: Vec<u8>,
    pos: usize,
    /// Body length parsed from the current frame's prefix, once its
    /// four bytes have arrived.
    pending: Option<usize>,
}

/// How far the consumed prefix may grow before the buffer compacts.
const COMPACT_AT: usize = 64 * 1024;

impl FrameBuffer {
    fn new() -> FrameBuffer {
        FrameBuffer {
            buf: Vec::new(),
            pos: 0,
            pending: None,
        }
    }

    fn extend(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Unconsumed byte count.
    fn available(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// The first `n` unconsumed bytes, if that many have arrived.
    fn peek(&self, n: usize) -> Option<&[u8]> {
        (self.available() >= n).then(|| &self.buf[self.pos..self.pos + n])
    }

    /// Every unconsumed byte.
    fn unconsumed(&self) -> &[u8] {
        &self.buf[self.pos..]
    }

    /// Peels the next complete frame body off the front, `Ok(None)`
    /// when more bytes are needed. Frame-level damage (bad length,
    /// checksum mismatch) is an error — the stream position is garbage
    /// from there and the connection must close.
    fn next_frame(&mut self) -> Result<Option<Vec<u8>>, FrameError> {
        let body_len = match self.pending {
            Some(len) => len,
            None => {
                let Some(prefix) = self.peek(4) else {
                    return Ok(None);
                };
                let len = u32::from_le_bytes(prefix.try_into().expect("peeked 4"));
                if len == 0 || len > MAX_BODY {
                    return Err(FrameError::BadLength { len });
                }
                self.pending = Some(len as usize);
                len as usize
            }
        };
        if self.available() < 4 + body_len + 8 {
            return Ok(None);
        }
        let start = self.pos + 4;
        let body_end = start + body_len;
        let want = u64::from_le_bytes(
            self.buf[body_end..body_end + 8]
                .try_into()
                .expect("checksum bytes present"),
        );
        if checksum64(&self.buf[start..body_end]) != want {
            return Err(FrameError::Checksum);
        }
        let body = self.buf[start..body_end].to_vec();
        self.pos = body_end + 8;
        self.pending = None;
        if self.pos == self.buf.len() {
            self.buf.clear();
            self.pos = 0;
        } else if self.pos >= COMPACT_AT {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
        Ok(Some(body))
    }

    /// Whether another `next_frame` call would make progress: a full
    /// frame is buffered, or the buffered prefix is already known-bad
    /// (so the damage error is worth reporting).
    fn has_work(&self) -> bool {
        let avail = self.available();
        match self.pending {
            Some(len) => avail >= 4 + len + 8,
            None => {
                let Some(prefix) = self.peek(4) else {
                    return false;
                };
                let len = u32::from_le_bytes(prefix.try_into().expect("peeked 4"));
                if len == 0 || len > MAX_BODY {
                    return true;
                }
                avail >= 4 + len as usize + 8
            }
        }
    }
}

/// What a connection has been identified as.
enum Mode {
    /// Nothing sniffed yet: fewer than four bytes have arrived.
    Start,
    /// Length-prefixed binary protocol.
    Binary,
}

/// One nonblocking connection state machine.
struct Conn {
    stream: TcpStream,
    fd: RawFd,
    buf: FrameBuffer,
    mode: Mode,
    /// Buffered response frames, front partially written up to
    /// `out_head`.
    out: VecDeque<Vec<u8>>,
    out_head: usize,
    /// Total buffered response bytes (the writev backlog).
    backlog: usize,
    /// The interest set currently registered with epoll.
    interest: u32,
    /// Close once the backlog drains (frame damage answered, peer EOF
    /// served out, or idle expiry with a flush pending).
    close_after_flush: bool,
    /// The peer closed its write half; serve what is buffered, then go.
    read_closed: bool,
    /// Frame-level damage: ignore everything else the peer sends.
    discard_input: bool,
    /// Idle deadline, refreshed on any read or write progress.
    deadline: Instant,
    /// When the fairness cap deferred this connection, for queue_wait
    /// attribution when its turn comes back around.
    resumed_from: Option<Instant>,
    /// Already queued on the ready list.
    queued_ready: bool,
}

/// A coarse hashed timer wheel with lazy reinsertion: connections are
/// filed under the slot their deadline falls in; activity only stamps
/// `Conn::deadline`, and a slot coming due re-checks the real deadline,
/// closing or re-filing. O(1) per activity, O(slot) per tick.
struct Wheel {
    slots: Vec<Vec<(usize, u64)>>,
    tick: Duration,
    cursor: usize,
    last: Instant,
}

impl Wheel {
    fn new(timeout: Duration, now: Instant) -> Wheel {
        // Granularity: the timeout split over half the wheel, so a full
        // rotation comfortably covers one timeout, floored at 10ms.
        let tick = (timeout / 32).max(Duration::from_millis(10));
        Wheel {
            slots: (0..64).map(|_| Vec::new()).collect(),
            tick,
            cursor: 0,
            last: now,
        }
    }

    /// Files `(token, gen)` under the slot `deadline` falls in.
    fn schedule(&mut self, token: usize, gen: u64, deadline: Instant, now: Instant) {
        let ticks = (deadline.saturating_duration_since(now).as_nanos()
            / self.tick.as_nanos().max(1)) as usize
            + 1;
        let slot = (self.cursor + ticks.min(self.slots.len() - 1)) % self.slots.len();
        self.slots[slot].push((token, gen));
    }

    /// Advances the cursor to `now`, draining every slot that came due
    /// into `due` (candidates, not verdicts — deadlines are re-checked
    /// by the caller).
    fn advance(&mut self, now: Instant, due: &mut Vec<(usize, u64)>) {
        while now.saturating_duration_since(self.last) >= self.tick {
            self.last += self.tick;
            self.cursor = (self.cursor + 1) % self.slots.len();
            due.append(&mut self.slots[self.cursor]);
        }
    }
}

/// The running reactor fleet: round-robin dispatch plus shutdown.
pub(crate) struct ReactorSet {
    reactors: Vec<ReactorHandle>,
    next: AtomicUsize,
    stop: Arc<AtomicBool>,
}

struct ReactorHandle {
    wake: Arc<EventFd>,
    inbox: Arc<Mutex<Vec<TcpStream>>>,
    thread: Mutex<Option<thread::JoinHandle<()>>>,
}

impl ReactorSet {
    /// Spawns the reactor threads: `cfg.reactors` of them, or one per
    /// available core.
    pub(crate) fn start(
        shared: Arc<Shared>,
        cfg: &ServerConfig,
        count: Arc<ConnCount>,
    ) -> io::Result<Arc<ReactorSet>> {
        let n = if cfg.reactors > 0 {
            cfg.reactors
        } else {
            thread::available_parallelism().map_or(1, |p| p.get())
        };
        let stop = Arc::new(AtomicBool::new(false));
        let mut reactors = Vec::with_capacity(n);
        for idx in 0..n {
            let wake = Arc::new(EventFd::new()?);
            let inbox = Arc::new(Mutex::new(Vec::new()));
            let mut reactor = Reactor::new(
                idx,
                Arc::clone(&shared),
                cfg,
                Arc::clone(&count),
                Arc::clone(&wake),
                Arc::clone(&inbox),
                Arc::clone(&stop),
            )?;
            let thread = thread::Builder::new()
                .name(format!("reactor-{idx}"))
                .spawn(move || reactor.run())?;
            reactors.push(ReactorHandle {
                wake,
                inbox,
                thread: Mutex::new(Some(thread)),
            });
        }
        Ok(Arc::new(ReactorSet {
            reactors,
            next: AtomicUsize::new(0),
            stop,
        }))
    }

    /// Round-robins an accepted connection onto a reactor and rings its
    /// doorbell. The admission slot travels with the connection; the
    /// owning reactor releases it on close.
    pub(crate) fn dispatch(&self, stream: TcpStream) {
        let idx = self.next.fetch_add(1, Ordering::Relaxed) % self.reactors.len();
        let handle = &self.reactors[idx];
        handle
            .inbox
            .lock()
            .expect("reactor inbox poisoned")
            .push(stream);
        handle.wake.signal();
    }

    /// Stops every reactor and joins it; open connections are closed.
    pub(crate) fn shutdown(&self) {
        self.stop.store(true, Ordering::SeqCst);
        for handle in &self.reactors {
            handle.wake.signal();
        }
        for handle in &self.reactors {
            let joinable = handle
                .thread
                .lock()
                .expect("reactor handle poisoned")
                .take();
            if let Some(thread) = joinable {
                let _ = thread.join();
            }
        }
    }
}

/// One event loop: an epoll instance, a doorbell, and a slab of
/// connections.
struct Reactor {
    idx: usize,
    shared: Arc<Shared>,
    count: Arc<ConnCount>,
    epoll: Epoll,
    wake: Arc<EventFd>,
    inbox: Arc<Mutex<Vec<TcpStream>>>,
    stop: Arc<AtomicBool>,
    conns: Vec<Option<Conn>>,
    /// Per-slot generation counters, bumped on close so stale timer and
    /// epoll tokens from a previous occupant can never touch a new one.
    gens: Vec<u64>,
    free: Vec<usize>,
    /// Connections deferred by the fairness cap, served after the
    /// current event batch. Entries carry the slot generation so a
    /// queued connection that closes (and whose slot is reused) before
    /// its turn can never act on the new occupant — the same staleness
    /// check the timer wheel uses.
    ready: VecDeque<(usize, u64)>,
    wheel: Option<Wheel>,
    idle_timeout: Option<Duration>,
    max_frames: usize,
    /// Read timeout restored on fds handed off to blocking threads.
    handoff_timeout: Option<Duration>,
    counters: ReqCounters,
    conns_gauge: Arc<Gauge>,
    wakeups: Arc<Counter>,
    backlog_gauge: Arc<Gauge>,
}

impl Reactor {
    fn new(
        idx: usize,
        shared: Arc<Shared>,
        cfg: &ServerConfig,
        count: Arc<ConnCount>,
        wake: Arc<EventFd>,
        inbox: Arc<Mutex<Vec<TcpStream>>>,
        stop: Arc<AtomicBool>,
    ) -> io::Result<Reactor> {
        let epoll = Epoll::new()?;
        epoll.add(wake.raw(), sys::EPOLLIN, WAKE_TOKEN)?;
        let obs = cpplookup_obs::global();
        let label = idx.to_string();
        let now = Instant::now();
        Ok(Reactor {
            idx,
            shared,
            count,
            epoll,
            wake,
            inbox,
            stop,
            conns: Vec::new(),
            gens: Vec::new(),
            free: Vec::new(),
            ready: VecDeque::new(),
            wheel: cfg.read_timeout.map(|t| Wheel::new(t, now)),
            idle_timeout: cfg.read_timeout,
            max_frames: cfg.max_frames_per_turn.max(1),
            handoff_timeout: cfg.read_timeout,
            counters: ReqCounters::new(),
            conns_gauge: obs
                .gauge_family(
                    "reactor_connections",
                    "connections owned, by reactor",
                    "reactor",
                    64,
                )
                .with_label(&label),
            wakeups: obs
                .counter_family(
                    "reactor_wakeups_total",
                    "epoll wakeups handled, by reactor",
                    "reactor",
                )
                .with_label(&label),
            backlog_gauge: obs
                .gauge_family(
                    "reactor_writev_backlog_bytes",
                    "buffered response bytes awaiting writev, by reactor",
                    "reactor",
                    64,
                )
                .with_label(&label),
        })
    }

    fn run(&mut self) {
        let _ = self.idx;
        let mut events = vec![
            EpollEvent {
                events: 0,
                token: 0
            };
            256
        ];
        let mut due: Vec<(usize, u64)> = Vec::new();
        loop {
            let timeout_ms = if !self.ready.is_empty() {
                0
            } else if let Some(wheel) = &self.wheel {
                wheel.tick.as_millis().clamp(10, 500) as i32
            } else {
                500
            };
            let n = match self.epoll.wait(&mut events, timeout_ms) {
                Ok(n) => n,
                Err(_) => {
                    thread::sleep(Duration::from_millis(5));
                    0
                }
            };
            if n > 0 {
                self.wakeups.inc();
            }
            for event in events.iter().take(n) {
                let event = *event;
                if event.token == WAKE_TOKEN {
                    self.wake.drain();
                    self.drain_inbox();
                } else {
                    self.on_event(event.token as usize, event.events);
                }
            }
            if self.stop.load(Ordering::SeqCst) {
                self.close_all();
                return;
            }
            // Fairness continuation: connections the cap deferred get
            // one more turn each, after everyone readiness reported.
            for _ in 0..self.ready.len() {
                let Some((token, gen)) = self.ready.pop_front() else {
                    break;
                };
                if self.gens.get(token) != Some(&gen) {
                    continue; // slot closed and reused since queuing
                }
                if let Some(conn) = self.conns.get_mut(token).and_then(Option::as_mut) {
                    conn.queued_ready = false;
                    self.process_conn(token);
                }
            }
            // Idle sweep: candidates whose slot came due, deadlines
            // re-checked (activity may have pushed them out).
            if self.wheel.is_some() {
                let now = Instant::now();
                due.clear();
                if let Some(wheel) = &mut self.wheel {
                    wheel.advance(now, &mut due);
                }
                let mut expired = Vec::new();
                let mut refile = Vec::new();
                for &(token, gen) in &due {
                    if self.gens.get(token) != Some(&gen) {
                        continue;
                    }
                    let Some(conn) = self.conns.get(token).and_then(Option::as_ref) else {
                        continue;
                    };
                    if conn.deadline <= now {
                        expired.push(token);
                    } else {
                        refile.push((token, gen, conn.deadline));
                    }
                }
                for token in expired {
                    self.close(token);
                }
                if let Some(wheel) = &mut self.wheel {
                    for (token, gen, deadline) in refile {
                        wheel.schedule(token, gen, deadline, now);
                    }
                }
            }
        }
    }

    /// Adopts connections the acceptor round-robined to this reactor.
    fn drain_inbox(&mut self) {
        let streams: Vec<TcpStream> =
            std::mem::take(&mut *self.inbox.lock().expect("reactor inbox poisoned"));
        for stream in streams {
            self.register(stream);
        }
    }

    fn register(&mut self, stream: TcpStream) {
        if stream.set_nonblocking(true).is_err() {
            self.count.release();
            return;
        }
        let _ = stream.set_nodelay(true);
        let fd = stream.as_raw_fd();
        let token = self.free.pop().unwrap_or_else(|| {
            self.conns.push(None);
            self.gens.push(0);
            self.conns.len() - 1
        });
        if self
            .epoll
            .add(fd, sys::EPOLLIN | sys::EPOLLRDHUP, token as u64)
            .is_err()
        {
            self.free.push(token);
            self.count.release();
            return;
        }
        let now = Instant::now();
        let deadline = now + self.idle_timeout.unwrap_or(FOREVER);
        self.conns[token] = Some(Conn {
            stream,
            fd,
            buf: FrameBuffer::new(),
            mode: Mode::Start,
            out: VecDeque::new(),
            out_head: 0,
            backlog: 0,
            interest: sys::EPOLLIN | sys::EPOLLRDHUP,
            close_after_flush: false,
            read_closed: false,
            discard_input: false,
            deadline,
            resumed_from: None,
            queued_ready: false,
        });
        self.conns_gauge.add(1);
        if let Some(wheel) = &mut self.wheel {
            wheel.schedule(token, self.gens[token], deadline, now);
        }
    }

    fn on_event(&mut self, token: usize, bits: u32) {
        if self.conns.get(token).is_none_or(Option::is_none) {
            return; // stale token from a closed connection
        }
        if bits & (sys::EPOLLERR | sys::EPOLLHUP) != 0 {
            // Full hangup or error: nothing can be written back.
            self.close(token);
            return;
        }
        if bits & sys::EPOLLOUT != 0 && self.flush(token) {
            return; // closed while flushing
        }
        if bits & (sys::EPOLLIN | sys::EPOLLRDHUP) != 0 {
            self.fill(token);
        }
    }

    /// Pulls bytes off the socket into the frame buffer, up to the
    /// per-event budget (level-triggered epoll re-reports the rest),
    /// then processes what arrived.
    fn fill(&mut self, token: usize) {
        let mut scratch = [0u8; 16 * 1024];
        let mut total = 0usize;
        loop {
            let Some(conn) = self.conns.get_mut(token).and_then(Option::as_mut) else {
                return;
            };
            // Input high-water mark: stop ingesting once a budget's
            // worth of bytes sits unprocessed — `update_interest` parks
            // read interest until processing drains below it, so a
            // pipelining peer can never balloon the frame buffer faster
            // than the fairness cap serves it.
            if input_saturated(conn) {
                break;
            }
            match conn.stream.read(&mut scratch) {
                Ok(0) => {
                    conn.read_closed = true;
                    break;
                }
                Ok(n) => {
                    if !conn.discard_input {
                        conn.buf.extend(&scratch[..n]);
                    }
                    conn.deadline = Instant::now() + self.idle_timeout.unwrap_or(FOREVER);
                    total += n;
                    if total >= READ_BUDGET {
                        break;
                    }
                    // A short read means the socket is drained right
                    // now; skip the syscall that would confirm it with
                    // WouldBlock. Level-triggered epoll re-reports
                    // readiness if more bytes are already queued.
                    if n < scratch.len() {
                        break;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.close(token);
                    return;
                }
            }
        }
        self.process_conn(token);
    }

    /// Drains complete frames from the connection's buffer — at most
    /// the fairness cap per turn — and buffers their responses.
    fn process_conn(&mut self, token: usize) {
        // Sniff the first four bytes: HTTP admin traffic hands off.
        {
            let Some(conn) = self.conns.get_mut(token).and_then(Option::as_mut) else {
                return;
            };
            if matches!(conn.mode, Mode::Start) {
                match conn.buf.peek(4) {
                    Some(head) if head == b"GET " => {
                        self.handoff(token, Handoff::Admin);
                        return;
                    }
                    Some(_) => conn.mode = Mode::Binary,
                    None => {
                        if conn.read_closed {
                            self.close(token);
                        }
                        return;
                    }
                }
            }
        }
        let mut resumed = self
            .conns
            .get_mut(token)
            .and_then(Option::as_mut)
            .and_then(|c| c.resumed_from.take());
        let mut served = 0usize;
        while served < self.max_frames {
            let before = Instant::now();
            let Some(conn) = self.conns.get_mut(token).and_then(Option::as_mut) else {
                return;
            };
            if conn.discard_input {
                break;
            }
            let body = match conn.buf.next_frame() {
                Ok(Some(body)) => body,
                Ok(None) => break,
                Err(damage) => {
                    // Answer once, swallow whatever else arrives, close
                    // when the answer has flushed — mirroring the
                    // threaded model's frame-damage policy.
                    conn.discard_input = true;
                    conn.close_after_flush = true;
                    match frame_damage_response(&self.counters, &damage) {
                        Some(frame_body) => {
                            let mut framed = Vec::with_capacity(frame_body.len() + 12);
                            let _ = write_frame(&mut framed, &frame_body);
                            self.push_out(token, framed);
                        }
                        None => {
                            self.close(token);
                            return;
                        }
                    }
                    break;
                }
            };
            // queue_wait starts when the frame's turn began: the read
            // event (first frame), or the deferral instant when the
            // fairness cap pushed this connection to the back.
            let t0 = resumed.take().unwrap_or(before);
            let t1 = Instant::now();
            match process_body(&self.shared, &self.counters, &body, t0, t1) {
                Action::Reply(frame_body) => {
                    let mut framed = Vec::with_capacity(frame_body.len() + 12);
                    let _ = write_frame(&mut framed, &frame_body);
                    self.push_out(token, framed);
                }
                Action::Subscribe { from_seq } => {
                    self.handoff(token, Handoff::Subscribe { from_seq });
                    return;
                }
            }
            served += 1;
        }
        let Some(conn) = self.conns.get_mut(token).and_then(Option::as_mut) else {
            return;
        };
        if conn.read_closed && !conn.buf.has_work() {
            // Peer is done sending and every complete frame is
            // answered; a torn trailing frame can never complete.
            conn.close_after_flush = true;
        }
        // `flush` re-queues the connection for the frames still
        // buffered past this turn's budget — unless a write backlog
        // exists, in which case the requeue waits for the drain.
        self.flush(token);
    }

    fn push_out(&mut self, token: usize, framed: Vec<u8>) {
        let Some(conn) = self.conns.get_mut(token).and_then(Option::as_mut) else {
            return;
        };
        conn.backlog += framed.len();
        self.backlog_gauge.add(framed.len() as i64);
        conn.out.push_back(framed);
    }

    /// Writes the backlog out with vectored writes until empty or
    /// `WouldBlock`, keeping `EPOLLOUT` interest registered exactly
    /// while a backlog exists. Returns `true` when the connection was
    /// closed (error, or close-after-flush completing).
    fn flush(&mut self, token: usize) -> bool {
        enum Outcome {
            Drained,
            Blocked,
            Dead,
        }
        let outcome = loop {
            let Some(conn) = self.conns.get_mut(token).and_then(Option::as_mut) else {
                return true;
            };
            if conn.out.is_empty() {
                break Outcome::Drained;
            }
            let mut slices: Vec<IoSlice> = Vec::with_capacity(conn.out.len().min(WRITEV_BATCH));
            let mut iter = conn.out.iter();
            if let Some(first) = iter.next() {
                slices.push(IoSlice::new(&first[conn.out_head..]));
            }
            for buffer in iter.take(WRITEV_BATCH - 1) {
                slices.push(IoSlice::new(buffer));
            }
            match conn.stream.write_vectored(&slices) {
                Ok(0) => break Outcome::Dead,
                Ok(mut wrote) => {
                    conn.backlog -= wrote;
                    self.backlog_gauge.add(-(wrote as i64));
                    conn.deadline = Instant::now() + self.idle_timeout.unwrap_or(FOREVER);
                    while wrote > 0 {
                        let front_left = conn.out[0].len() - conn.out_head;
                        if wrote >= front_left {
                            wrote -= front_left;
                            conn.out.pop_front();
                            conn.out_head = 0;
                        } else {
                            conn.out_head += wrote;
                            wrote = 0;
                        }
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break Outcome::Blocked,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => break Outcome::Dead,
            }
        };
        let Some(conn) = self.conns.get_mut(token).and_then(Option::as_mut) else {
            return true;
        };
        match outcome {
            Outcome::Dead => {
                self.close(token);
                true
            }
            Outcome::Drained if conn.close_after_flush => {
                self.close(token);
                true
            }
            Outcome::Drained | Outcome::Blocked => {
                self.update_interest(token);
                let gen = self.gens[token];
                let Some(conn) = self.conns.get_mut(token).and_then(Option::as_mut) else {
                    return true;
                };
                if conn.out.is_empty()
                    && !conn.discard_input
                    && conn.buf.has_work()
                    && !conn.queued_ready
                {
                    // Fairness: more complete frames than the turn's
                    // budget, and no backlog holding them back.
                    conn.queued_ready = true;
                    conn.resumed_from = Some(Instant::now());
                    self.ready.push_back((token, gen));
                }
                false
            }
        }
    }

    /// Recomputes the fd's epoll interest from the connection's state
    /// and applies it if it changed:
    ///
    /// * write interest exactly while a response backlog exists;
    /// * read interest only while the reactor actually wants bytes —
    ///   the peer has not half-closed, no response backlog exists, and
    ///   the frame buffer is not [saturated](input_saturated). This is
    ///   backpressure by interest: a peer that pipelines requests
    ///   without reading responses stops being read from (TCP flow
    ///   control takes it from there), and both the frame buffer and
    ///   the response queue stay bounded;
    /// * `EPOLLIN` and `EPOLLRDHUP` always travel together — both are
    ///   level-triggered, so leaving either registered while reads are
    ///   parked (or after the EOF has been seen) would busy-spin the
    ///   reactor until the backlog drained. A peer that fully closes or
    ///   errors still punches through via `EPOLLHUP`/`EPOLLERR`, which
    ///   epoll always reports; a half-close is noticed when reads
    ///   resume, or by the idle timeout if they never do.
    fn update_interest(&mut self, token: usize) {
        let Some(conn) = self.conns.get_mut(token).and_then(Option::as_mut) else {
            return;
        };
        let reads_wanted = !conn.read_closed && conn.out.is_empty() && !input_saturated(conn);
        let mut interest = 0;
        if reads_wanted {
            interest |= sys::EPOLLIN | sys::EPOLLRDHUP;
        }
        if !conn.out.is_empty() {
            interest |= sys::EPOLLOUT;
        }
        if interest != conn.interest {
            conn.interest = interest;
            let fd = conn.fd;
            let _ = self.epoll.modify(fd, interest, token as u64);
        }
    }

    fn close(&mut self, token: usize) {
        if let Some(conn) = self.conns.get_mut(token).and_then(Option::take) {
            let _ = self.epoll.delete(conn.fd);
            self.backlog_gauge.add(-(conn.backlog as i64));
            self.gens[token] = self.gens[token].wrapping_add(1);
            self.free.push(token);
            self.conns_gauge.add(-1);
            self.count.release();
            // `conn.stream` drops here, closing the fd.
        }
    }

    fn close_all(&mut self) {
        for token in 0..self.conns.len() {
            self.close(token);
        }
    }

    /// Hands a connection-takeover request (HTTP admin, SUBSCRIBE) to a
    /// plain blocking thread: these are rare, long-lived, and have no
    /// business on the event loop. The admission slot follows the fd.
    fn handoff(&mut self, token: usize, kind: Handoff) {
        let Some(conn) = self.conns.get_mut(token).and_then(Option::take) else {
            return;
        };
        let _ = self.epoll.delete(conn.fd);
        self.backlog_gauge.add(-(conn.backlog as i64));
        self.gens[token] = self.gens[token].wrapping_add(1);
        self.free.push(token);
        self.conns_gauge.add(-1);
        let shared = Arc::clone(&self.shared);
        let count = Arc::clone(&self.count);
        let timeout = self.handoff_timeout;
        thread::spawn(move || {
            let Conn {
                mut stream,
                buf,
                out,
                out_head,
                ..
            } = conn;
            // If the fd cannot be returned to blocking mode, writing
            // would fail spuriously with `WouldBlock` mid-buffer; close
            // instead of speaking a takeover protocol on a broken fd.
            let mut flushed = stream.set_nonblocking(false).is_ok();
            let _ = stream.set_read_timeout(timeout);
            if flushed {
                // Flush responses buffered for earlier pipelined frames
                // before the takeover protocol speaks.
                for (i, buffer) in out.iter().enumerate() {
                    let from = if i == 0 { out_head } else { 0 };
                    if stream.write_all(&buffer[from..]).is_err() {
                        flushed = false;
                        break;
                    }
                }
            }
            if flushed {
                match kind {
                    Handoff::Admin => {
                        // The buffer still holds the sniffed `GET `;
                        // everything after it is the admin prefill.
                        let leftover = buf.unconsumed();
                        serve_admin(stream, &shared, &leftover[leftover.len().min(4)..]);
                    }
                    Handoff::Subscribe { from_seq } => {
                        serve_subscription(stream, &shared, from_seq);
                    }
                }
            }
            count.release();
        });
    }
}

enum Handoff {
    Admin,
    Subscribe { from_seq: u64 },
}

/// Whether a connection's input side has hit its high-water mark: a
/// budget's worth of bytes is buffered *and* at least one complete
/// frame waits among them, so processing (not reading) is what makes
/// progress next. The second condition matters — a single legal frame
/// can run to [`MAX_BODY`], far past the budget, and parking reads
/// mid-frame would deadlock it; one complete frame in the buffer
/// guarantees the ready-list keeps draining until reads resume.
fn input_saturated(conn: &Conn) -> bool {
    conn.buf.available() >= READ_BUDGET && conn.buf.has_work()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{write_frame, Request};

    fn frame_of(req: &Request) -> Vec<u8> {
        let mut wire = Vec::new();
        write_frame(&mut wire, &req.encode()).unwrap();
        wire
    }

    fn hello() -> Request {
        Request::Hello { version: 1 }
    }

    #[test]
    fn frame_buffer_reassembles_across_every_split() {
        let a = frame_of(&hello());
        let b = frame_of(&Request::Stats {
            tenant: "t".to_owned(),
        });
        let c = frame_of(&Request::Metrics);
        let stream: Vec<u8> = [a.clone(), b.clone(), c.clone()].concat();
        let bodies = [&a, &b, &c].map(|f| f[4..f.len() - 8].to_vec());
        // Every two-part split of the whole pipelined stream must yield
        // the same three bodies.
        for cut in 0..=stream.len() {
            let mut fb = FrameBuffer::new();
            fb.extend(&stream[..cut]);
            let mut got = Vec::new();
            while let Some(body) = fb.next_frame().unwrap() {
                got.push(body);
            }
            fb.extend(&stream[cut..]);
            while let Some(body) = fb.next_frame().unwrap() {
                got.push(body);
            }
            assert_eq!(got, bodies.to_vec(), "split at {cut}");
        }
        // And byte-at-a-time arrival resumes the parse, never
        // re-scanning: the cached pending length survives each call.
        let mut fb = FrameBuffer::new();
        let mut got = Vec::new();
        for &byte in &stream {
            fb.extend(&[byte]);
            while let Some(body) = fb.next_frame().unwrap() {
                got.push(body);
            }
        }
        assert_eq!(got, bodies.to_vec());
        assert_eq!(fb.available(), 0);
    }

    #[test]
    fn frame_buffer_rejects_bad_length_and_checksum() {
        let mut fb = FrameBuffer::new();
        fb.extend(&(MAX_BODY + 1).to_le_bytes());
        assert!(matches!(fb.next_frame(), Err(FrameError::BadLength { .. })));
        let mut fb = FrameBuffer::new();
        fb.extend(&0u32.to_le_bytes());
        assert!(matches!(
            fb.next_frame(),
            Err(FrameError::BadLength { len: 0 })
        ));
        let mut damaged = frame_of(&hello());
        let at = damaged.len() - 3; // inside the trailing checksum
        damaged[at] ^= 0x40;
        let mut fb = FrameBuffer::new();
        fb.extend(&damaged);
        assert!(matches!(fb.next_frame(), Err(FrameError::Checksum)));
    }

    #[test]
    fn frame_buffer_has_work_tracks_progress() {
        let frame = frame_of(&hello());
        let mut fb = FrameBuffer::new();
        assert!(!fb.has_work());
        fb.extend(&frame[..frame.len() - 1]);
        assert!(!fb.has_work(), "torn frame is not workable");
        fb.extend(&frame[frame.len() - 1..]);
        assert!(fb.has_work());
        fb.next_frame().unwrap().unwrap();
        assert!(!fb.has_work());
        // A known-bad prefix counts as work: the damage wants reporting.
        fb.extend(&(MAX_BODY + 1).to_le_bytes());
        assert!(fb.has_work());
    }

    #[test]
    fn frame_buffer_compacts_consumed_prefix() {
        let frame = frame_of(&hello());
        let mut fb = FrameBuffer::new();
        for _ in 0..3 {
            fb.extend(&frame);
        }
        assert!(fb.next_frame().unwrap().is_some());
        assert!(fb.pos > 0, "mid-stream keeps the offset");
        assert!(fb.next_frame().unwrap().is_some());
        assert!(fb.next_frame().unwrap().is_some());
        assert_eq!(fb.pos, 0, "fully-consumed buffer resets");
        assert!(fb.buf.is_empty());
    }

    #[test]
    fn wheel_files_and_expires_lazily() {
        let now = Instant::now();
        let mut wheel = Wheel::new(Duration::from_millis(400), now);
        wheel.schedule(3, 0, now + Duration::from_millis(30), now);
        let mut due = Vec::new();
        wheel.advance(now + Duration::from_millis(5), &mut due);
        assert!(due.is_empty(), "slot not due yet");
        wheel.advance(now + Duration::from_secs(2), &mut due);
        assert_eq!(due, vec![(3, 0)], "slot came due after the rotation");
    }
}
