//! The TCP server: framing loop, admission control, and the HTTP admin
//! endpoint, behind a choice of two I/O models.
//!
//! The default [`IoModel::Threads`] runs one OS thread per connection
//! over blocking I/O — a fine trade at modest concurrency: a
//! connection's requests are strictly sequential (the protocol is
//! request/response), the farm's read path is wait-free, so threads
//! spend their lives parked in `read()` costing a stack apiece.
//! [`IoModel::Epoll`] (Linux only; see [`crate::reactor`]) replaces the
//! parked threads with a few reactor threads multiplexing nonblocking
//! connection state machines — same protocol, same farm, byte-identical
//! responses, a fraction of the memory at high connection counts.
//! Admission control bounds the cost either way: past
//! [`ServerConfig::max_connections`] a new connection receives one
//! [`ErrorCode::Busy`] frame and is closed, deterministically, instead
//! of queueing invisibly in the accept backlog.
//!
//! The same port doubles as the admin endpoint: a connection whose
//! first four bytes are `GET ` is served as one HTTP request
//! (`/metrics` → Prometheus exposition text, `/healthz` → liveness,
//! `/tenants` → per-tenant lifecycle JSON, `/flightrecorder` → the
//! recent-request ring as JSON) and closed. Binary framing can never
//! collide with this — `GET ` as a length prefix would be a
//! 0x20544547-byte frame, far beyond
//! [`MAX_BODY`](crate::protocol::MAX_BODY).
//!
//! # Observability
//!
//! Every request is clocked at its phase boundaries (frame read,
//! decode, and — through [`ProbeTiming`](crate::farm::ProbeTiming) —
//! name resolution, promotion wait, and the directory probe). A
//! request carrying the protocol's TRACE flag gets those boundaries
//! back as a span tree in a [`Response::Traced`]; the spans are built
//! from contiguous instants, so the child phases partition the root
//! span *exactly* — their durations sum to the root's. With the
//! [`ObsConfig`] layer enabled the server additionally feeds
//! per-tenant metric families and the [`FlightRecorder`]; with it
//! disabled the request path is the bare PR-6 loop, which is what the
//! E24 overhead experiment compares against.
//!
//! # Error policy
//!
//! * Frame-level damage (bad length, checksum mismatch) → one error
//!   frame, then close: the stream position can no longer be trusted.
//! * Payload-level damage (unknown opcode, malformed payload) → one
//!   error frame, connection keeps going: framing is still sound.
//! * Truncation / peer close → close quietly.
//! * Never a panic, never an unbounded read.

use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use cpplookup_obs::{Counter, Family2, HistogramFamily, Span, SpanRecorder};
use cpplookup_wal::{TailCursor, WalStore};

use crate::farm::{Farm, FarmOptions, ProbeTiming};
use crate::protocol::{
    read_frame_body, write_frame, ErrorCode, FrameError, Request, Response, TracedEncoder,
    WireOutcome, WireSpan, PROTOCOL_VERSION,
};
use crate::recorder::FlightRecorder;
use crate::replication::wire_record;
use crate::shard::ShardPool;

/// Observability-layer configuration: per-tenant metric families and
/// the flight recorder. Request tracing (the protocol TRACE flag) is
/// always honored and is *not* gated here — it costs nothing unless a
/// client asks for it.
#[derive(Clone, Debug)]
pub struct ObsConfig {
    /// Master switch. `false` drops the per-tenant families and the
    /// flight recorder from the request path entirely — the baseline
    /// the E24 overhead experiment measures against.
    pub enabled: bool,
    /// Flight-recorder main ring size (recent completed requests).
    pub recorder_capacity: usize,
    /// Slow-query log size (full span trees).
    pub slow_capacity: usize,
    /// Requests at or over this latency also land in the slow log.
    pub slow_threshold: Duration,
    /// Bounded-cardinality limit for tenant-labelled families; tenants
    /// past the first `tenant_cardinality` distinct names share one
    /// `other` series.
    pub tenant_cardinality: usize,
}

impl Default for ObsConfig {
    fn default() -> Self {
        ObsConfig {
            enabled: true,
            recorder_capacity: 256,
            slow_capacity: 64,
            slow_threshold: Duration::from_millis(50),
            tenant_cardinality: 64,
        }
    }
}

/// Which I/O model the server multiplexes connections with. The wire
/// behaviour is identical either way — the reactor is pinned
/// byte-for-byte against the threaded model — only the cost model
/// differs.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum IoModel {
    /// One blocking OS thread per connection. The default and the
    /// portability fallback: works everywhere std does.
    #[default]
    Threads,
    /// A small set of epoll reactor threads driving nonblocking
    /// connection state machines (Linux only). Scales to thousands of
    /// mostly-idle connections without a parked stack apiece.
    Epoll,
}

impl IoModel {
    /// Parses the `--io-model` flag spelling.
    pub fn parse(s: &str) -> Option<IoModel> {
        match s {
            "threads" => Some(IoModel::Threads),
            "epoll" => Some(IoModel::Epoll),
            _ => None,
        }
    }

    /// The flag spelling, for usage text and metrics.
    pub fn label(self) -> &'static str {
        match self {
            IoModel::Threads => "threads",
            IoModel::Epoll => "epoll",
        }
    }
}

/// Server configuration.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Bind address; port 0 picks a free port (the default —
    /// `127.0.0.1:0`).
    pub addr: String,
    /// Admission-control bound on concurrent connections; the
    /// `max_connections + 1`-th connection is refused with
    /// [`ErrorCode::Busy`].
    pub max_connections: usize,
    /// Tenants to load before accepting traffic, as
    /// `(tenant, snapshot path)` pairs.
    pub preload: Vec<(String, PathBuf)>,
    /// Per-connection read timeout; an idle connection is dropped after
    /// this long (`None` = never).
    pub read_timeout: Option<Duration>,
    /// Observability layer: per-tenant metrics + flight recorder.
    pub obs: ObsConfig,
    /// Durable edit log file. `Some` makes this server a replication
    /// leader: loads and edits are appended (and recovered on restart),
    /// and `SUBSCRIBE` connections stream the log.
    pub wal_path: Option<PathBuf>,
    /// Group-commit policy for the edit log: fsync after every N
    /// appends (1 = every append; 0 = only on explicit syncs).
    pub fsync_every: usize,
    /// Published index epochs (current included) each tenant keeps
    /// loadable for `as-of` time-travel reads.
    pub retain_epochs: usize,
    /// Refuse client edits — the stance of a replication follower,
    /// whose only writer is the replayed log.
    pub read_only: bool,
    /// Shard-affine read workers: with `N > 0`, untraced `QUERY` /
    /// `BATCH` requests are executed by one of `N` worker threads
    /// chosen by a stable hash of the tenant name, so each tenant's
    /// probe directory stays cache-resident on one core. `0` (the
    /// default) answers reads on the connection thread.
    pub shards: usize,
    /// How connections are multiplexed: blocking threads (default) or
    /// the epoll reactor.
    pub io_model: IoModel,
    /// Reactor threads under [`IoModel::Epoll`]; `0` (the default) runs
    /// one per available core.
    pub reactors: usize,
    /// Fairness cap: the most pipelined requests one connection is
    /// served back-to-back before the server yields to its peers — per
    /// readiness event under the reactor, per yield point under the
    /// threaded model.
    pub max_frames_per_turn: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_owned(),
            max_connections: 64,
            preload: Vec::new(),
            read_timeout: Some(Duration::from_secs(120)),
            obs: ObsConfig::default(),
            wal_path: None,
            fsync_every: 1,
            retain_epochs: 1,
            read_only: false,
            shards: 0,
            io_model: IoModel::default(),
            reactors: 0,
            max_frames_per_turn: 32,
        }
    }
}

/// State shared by every connection, whichever I/O model drives it.
pub(crate) struct Shared {
    farm: Arc<Farm>,
    obs: Option<ObsState>,
    shards: Option<ShardPool>,
}

/// The observability layer's per-request handles, resolved once at
/// startup so the request path never touches the registry lock.
struct ObsState {
    recorder: Arc<FlightRecorder>,
    queries_by_tenant: Arc<Family2>,
    latency_by_tenant: Arc<HistogramFamily>,
    bytes_read: Arc<Counter>,
    bytes_written: Arc<Counter>,
}

impl ObsState {
    fn new(cfg: &ObsConfig) -> ObsState {
        let obs = cpplookup_obs::global();
        ObsState {
            recorder: Arc::new(FlightRecorder::new(
                cfg.recorder_capacity,
                cfg.slow_capacity,
                cfg.slow_threshold.as_nanos() as u64,
            )),
            queries_by_tenant: obs.counter_family2(
                "server_queries_total",
                "requests served, by tenant and operation",
                "tenant",
                "op",
                cfg.tenant_cardinality,
            ),
            latency_by_tenant: obs.histogram_family(
                "server_query_latency_ns",
                "end-to-end query/batch service latency, by tenant",
                "tenant",
                cpplookup_obs::Histogram::latency_ns(),
                cfg.tenant_cardinality,
            ),
            bytes_read: obs.counter("server_bytes_read_total", "request bytes read off the wire"),
            bytes_written: obs.counter(
                "server_bytes_written_total",
                "response bytes written to the wire",
            ),
        }
    }
}

/// The shutdown doorbell: a wakeup fd the acceptor polls beside the
/// listener, so stopping the server never needs the old "throwaway
/// connect to unblock accept" hack. Shared by both I/O models (the
/// reactors carry their own per-thread doorbells on top).
#[cfg(target_os = "linux")]
pub(crate) struct Wakeup(crate::sys::EventFd);

#[cfg(target_os = "linux")]
impl Wakeup {
    fn new() -> io::Result<Wakeup> {
        Ok(Wakeup(crate::sys::EventFd::new()?))
    }

    fn raw(&self) -> std::os::unix::io::RawFd {
        self.0.raw()
    }

    fn signal(&self) {
        self.0.signal();
    }

    fn drain(&self) {
        self.0.drain();
    }
}

/// Connection admission state shared between the acceptor and whichever
/// side retires connections (connection threads, reactors, or handoff
/// threads).
pub(crate) struct ConnCount {
    active: AtomicUsize,
    max: usize,
    gauge: Arc<cpplookup_obs::Gauge>,
    accepted: Arc<Counter>,
    rejected: Arc<Counter>,
}

impl ConnCount {
    fn new(max: usize) -> ConnCount {
        let obs = cpplookup_obs::global();
        ConnCount {
            active: AtomicUsize::new(0),
            max,
            gauge: obs.gauge("server_connections", "connections currently open"),
            accepted: obs.counter("server_connections_total", "connections accepted"),
            rejected: obs.counter(
                "server_rejected_total",
                "connections refused by admission control",
            ),
        }
    }

    /// Claims a connection slot; `false` means the caller must refuse.
    fn try_admit(&self) -> bool {
        if self.active.load(Ordering::SeqCst) >= self.max {
            self.rejected.inc();
            return false;
        }
        self.accepted.inc();
        self.active.fetch_add(1, Ordering::SeqCst);
        self.gauge.add(1);
        true
    }

    /// Returns a slot claimed by [`try_admit`](ConnCount::try_admit).
    pub(crate) fn release(&self) {
        self.active.fetch_sub(1, Ordering::SeqCst);
        self.gauge.add(-1);
    }
}

/// A running server; dropping it (or calling
/// [`shutdown`](Server::shutdown)) stops the acceptor.
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    stop: Arc<AtomicBool>,
    #[cfg(target_os = "linux")]
    wake: Arc<Wakeup>,
    #[cfg(target_os = "linux")]
    reactors: Option<Arc<crate::reactor::ReactorSet>>,
    acceptor: Option<thread::JoinHandle<()>>,
}

impl Server {
    /// Binds, preloads the configured tenants, and starts accepting.
    /// With an edit log configured, the log is recovered and replayed
    /// first, so a restarted leader answers from the state it crashed
    /// with before its first connection.
    ///
    /// # Errors
    ///
    /// Bind failures, edit-log recovery failures (non-crash damage is
    /// refused — see [`cpplookup_wal::WalWriter::open`]), and preload
    /// failures (a missing or corrupt snapshot on the command line is a
    /// startup error, not a latent per-request one).
    pub fn start(config: ServerConfig) -> io::Result<Server> {
        let (wal, recovered) = match &config.wal_path {
            Some(path) => {
                let (store, recovered) = WalStore::open(path, config.fsync_every)
                    .map_err(|e| io::Error::other(format!("edit log `{}`: {e}", path.display())))?;
                (Some(Arc::new(store)), recovered)
            }
            None => (None, Vec::new()),
        };
        let farm = Arc::new(Farm::with_options(FarmOptions {
            tenant_cardinality: config.obs.enabled.then_some(config.obs.tenant_cardinality),
            wal: wal.clone(),
            read_only: config.read_only,
            retain_epochs: config.retain_epochs,
        }));
        for stamped in &recovered {
            // Replay is load-shaped, not append-shaped: nothing here
            // goes back into the log.
            farm.apply_replica_record(&stamped.record)
                .map_err(|(_, msg)| {
                    io::Error::other(format!("edit log replay (seq {}): {msg}", stamped.seq))
                })?;
        }
        if !recovered.is_empty() {
            cpplookup_obs::global()
                .counter(
                    "server_wal_replayed_total",
                    "edit-log records replayed at startup",
                )
                .add(recovered.len() as u64);
        }
        for (tenant, path) in &config.preload {
            // A tenant the replay already restored carries edits the
            // pristine snapshot lacks; reloading it would wind the
            // state back and append a redundant Open to the log.
            if farm.has_tenant(tenant) {
                continue;
            }
            farm.load(tenant, path)
                .map_err(|(_, msg)| io::Error::other(format!("preload `{tenant}`: {msg}")))?;
        }
        let shards =
            (config.shards > 0).then(|| ShardPool::start(Arc::clone(&farm), config.shards));
        let shared = Arc::new(Shared {
            farm,
            obs: config.obs.enabled.then(|| ObsState::new(&config.obs)),
            shards,
        });
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let count = Arc::new(ConnCount::new(config.max_connections));
        cpplookup_obs::global()
            .gauge(
                "server_io_model",
                "active I/O model (0 = threads, 1 = epoll reactor)",
            )
            .set(match config.io_model {
                IoModel::Threads => 0,
                IoModel::Epoll => 1,
            });
        #[cfg(target_os = "linux")]
        {
            let wake = Arc::new(Wakeup::new()?);
            let reactors = match config.io_model {
                IoModel::Epoll => Some(crate::reactor::ReactorSet::start(
                    Arc::clone(&shared),
                    &config,
                    Arc::clone(&count),
                )?),
                IoModel::Threads => None,
            };
            let acceptor = {
                let shared = Arc::clone(&shared);
                let stop = Arc::clone(&stop);
                let wake = Arc::clone(&wake);
                let reactors = reactors.clone();
                thread::spawn(move || {
                    accept_loop(listener, shared, stop, config, count, wake, reactors)
                })
            };
            Ok(Server {
                addr,
                shared,
                stop,
                wake,
                reactors,
                acceptor: Some(acceptor),
            })
        }
        #[cfg(not(target_os = "linux"))]
        {
            if config.io_model == IoModel::Epoll {
                return Err(io::Error::other(
                    "--io-model epoll needs Linux; the threads model is the portable fallback",
                ));
            }
            let acceptor = {
                let shared = Arc::clone(&shared);
                let stop = Arc::clone(&stop);
                thread::spawn(move || accept_loop(listener, shared, stop, config, count))
            };
            Ok(Server {
                addr,
                shared,
                stop,
                acceptor: Some(acceptor),
            })
        }
    }

    /// The bound address (with the real port when `addr` asked for 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The farm, for in-process inspection (tests, benches).
    pub fn farm(&self) -> &Arc<Farm> {
        &self.shared.farm
    }

    /// The flight recorder, when the observability layer is enabled.
    pub fn recorder(&self) -> Option<&Arc<FlightRecorder>> {
        self.shared.obs.as_ref().map(|o| &o.recorder)
    }

    /// Stops the acceptor and waits for it. Under the threaded model
    /// already-open connections drain on their own threads; under the
    /// reactor the reactors are stopped and their connections closed.
    pub fn shutdown(&mut self) {
        if let Some(acceptor) = self.acceptor.take() {
            self.stop.store(true, Ordering::SeqCst);
            // Ring the doorbell the acceptor polls beside the listener.
            #[cfg(target_os = "linux")]
            self.wake.signal();
            // Portable fallback: no pollable wakeup without the syscall
            // shim, so unblock the accept with one throwaway connect.
            #[cfg(not(target_os = "linux"))]
            {
                let _ = TcpStream::connect(self.addr);
            }
            let _ = acceptor.join();
            #[cfg(target_os = "linux")]
            if let Some(reactors) = self.reactors.take() {
                reactors.shutdown();
            }
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Admits one accepted stream: refuses over the limit, otherwise hands
/// it to a reactor (epoll model) or a fresh connection thread.
fn admit(
    stream: TcpStream,
    shared: &Arc<Shared>,
    cfg: &ServerConfig,
    count: &Arc<ConnCount>,
    #[cfg(target_os = "linux")] reactors: &Option<Arc<crate::reactor::ReactorSet>>,
) {
    if !count.try_admit() {
        refuse(stream);
        return;
    }
    #[cfg(target_os = "linux")]
    if let Some(set) = reactors {
        set.dispatch(stream);
        return;
    }
    let shared = Arc::clone(shared);
    let count = Arc::clone(count);
    let timeout = cfg.read_timeout;
    let cap = cfg.max_frames_per_turn.max(1);
    thread::spawn(move || {
        let _ = stream.set_read_timeout(timeout);
        let _ = stream.set_nodelay(true);
        serve_connection(stream, &shared, cap);
        count.release();
    });
}

#[cfg(target_os = "linux")]
fn accept_loop(
    listener: TcpListener,
    shared: Arc<Shared>,
    stop: Arc<AtomicBool>,
    cfg: ServerConfig,
    count: Arc<ConnCount>,
    wake: Arc<Wakeup>,
    reactors: Option<Arc<crate::reactor::ReactorSet>>,
) {
    use std::os::unix::io::AsRawFd;
    // Nonblocking accept polled beside the shutdown doorbell: shutdown
    // is one eventfd write away, with no connect-to-self hack.
    if listener.set_nonblocking(true).is_err() {
        return;
    }
    loop {
        if stop.load(Ordering::SeqCst) {
            return;
        }
        let readable = match crate::sys::wait_two_readable(listener.as_raw_fd(), wake.raw(), 500) {
            Ok((l, w)) => {
                if w {
                    wake.drain();
                }
                l
            }
            Err(_) => {
                thread::sleep(Duration::from_millis(10));
                continue;
            }
        };
        if stop.load(Ordering::SeqCst) {
            return;
        }
        if !readable {
            continue;
        }
        loop {
            match listener.accept() {
                Ok((stream, _)) => admit(stream, &shared, &cfg, &count, &reactors),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => break,
            }
        }
    }
}

#[cfg(not(target_os = "linux"))]
fn accept_loop(
    listener: TcpListener,
    shared: Arc<Shared>,
    stop: Arc<AtomicBool>,
    cfg: ServerConfig,
    count: Arc<ConnCount>,
) {
    for stream in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        admit(stream, &shared, &cfg, &count);
    }
}

/// Tells an over-limit connection why it is being dropped.
fn refuse(mut stream: TcpStream) {
    let body = Response::Error {
        code: ErrorCode::Busy,
        message: "server at connection limit".to_owned(),
    }
    .encode();
    let _ = write_frame(&mut stream, &body);
    let _ = stream.shutdown(Shutdown::Both);
}

/// What the metrics and the flight recorder need to know about a
/// request after it has been consumed by [`handle`].
struct ReqMeta {
    op: &'static str,
    tenant: String,
    trace: bool,
}

impl ReqMeta {
    fn of(req: &Request) -> ReqMeta {
        let tenant = match req {
            Request::Load { tenant, .. }
            | Request::Query { tenant, .. }
            | Request::Batch { tenant, .. }
            | Request::Edit { tenant, .. }
            | Request::Stats { tenant } => tenant.clone(),
            Request::Hello { .. }
            | Request::Metrics
            | Request::Subscribe { .. }
            | Request::Ack { .. } => String::new(),
        };
        let trace = matches!(
            req,
            Request::Query { trace: true, .. } | Request::Batch { trace: true, .. }
        );
        ReqMeta {
            op: op_label(req),
            tenant,
            trace,
        }
    }
}

/// The per-operation request/error counter families, resolved once per
/// connection (threaded model) or per reactor.
pub(crate) struct ReqCounters {
    requests: Arc<cpplookup_obs::Family>,
    errors: Arc<cpplookup_obs::Family>,
}

impl ReqCounters {
    pub(crate) fn new() -> ReqCounters {
        let obs = cpplookup_obs::global();
        ReqCounters {
            requests: obs.counter_family(
                "server_requests_total",
                "requests served, by operation",
                "op",
            ),
            errors: obs.counter_family(
                "server_errors_total",
                "error responses sent, by code",
                "code",
            ),
        }
    }
}

/// What a processed request body asks of the connection driver.
pub(crate) enum Action {
    /// Send this response frame body back.
    Reply(Vec<u8>),
    /// The connection becomes a replication subscription: hand the
    /// stream to [`serve_subscription`].
    Subscribe {
        /// Stream the edit log after this sequence number.
        from_seq: u64,
    },
}

/// The response frame for frame-level damage, or `None` when the peer
/// simply went away (truncation / transport error — close quietly).
/// Either way the stream position can no longer be trusted: the caller
/// must close after sending.
pub(crate) fn frame_damage_response(counters: &ReqCounters, err: &FrameError) -> Option<Vec<u8>> {
    let (code, message) = match err {
        FrameError::BadLength { len } => (
            ErrorCode::BadLength,
            format!("frame length {len} outside bounds"),
        ),
        FrameError::Checksum => (ErrorCode::BadFrame, "frame checksum mismatch".to_owned()),
        FrameError::Eof | FrameError::Io(_) => return None,
    };
    counters.errors.with_label(code.label()).inc();
    Some(Response::Error { code, message }.encode())
}

/// Executes one request body — decode, dispatch, encode, metrics — and
/// returns what to do with the connection. This is the request core
/// both I/O models share, so their responses are byte-identical by
/// construction. `t0` is when the frame became the server's to read
/// (or, under the reactor, to process) and `t1` when its bytes were
/// fully acquired; together with the decode and farm phase stamps they
/// cut the traced span tree's exact partition.
pub(crate) fn process_body(
    shared: &Shared,
    counters: &ReqCounters,
    body: &[u8],
    t0: Instant,
    t1: Instant,
) -> Action {
    if let Some(obs) = &shared.obs {
        obs.bytes_read.add((4 + body.len() + 8) as u64);
    }
    let decoded = Request::decode(body);
    let t2 = Instant::now();
    let (meta, outcome) = match decoded {
        Ok(Request::Subscribe { from_seq }) => {
            // A subscription takes over the connection: from here the
            // stream speaks nothing but replicated records.
            counters.requests.with_label("subscribe").inc();
            return Action::Subscribe { from_seq };
        }
        Ok(req) => {
            counters.requests.with_label(op_label(&req)).inc();
            (ReqMeta::of(&req), handle(shared, req))
        }
        // Payload-level damage: framing is intact, keep going.
        Err((code, message)) => (
            ReqMeta {
                op: "invalid",
                tenant: String::new(),
                trace: false,
            },
            (Response::Error { code, message }, None),
        ),
    };
    let (response, timing) = outcome;
    if let Response::Error { code, .. } = &response {
        counters.errors.with_label(code.label()).inc();
    }
    let outcome_label = match &response {
        Response::Error { code, .. } => code.label(),
        _ => "ok",
    };
    // A traced probe that succeeded answers with its span tree;
    // everything else (including traced probes that failed) uses the
    // plain encoding.
    let mut spans: Vec<Span> = Vec::new();
    let frame_body = match (&response, meta.trace, timing) {
        (Response::Outcome(o), true, Some(t)) => {
            traced_body(std::slice::from_ref(o), t0, t1, t2, t, &mut spans)
        }
        (Response::Outcomes(os), true, Some(t)) => traced_body(os, t0, t1, t2, t, &mut spans),
        _ => response.encode(),
    };
    if let Some(obs) = &shared.obs {
        obs.bytes_written.add((4 + frame_body.len() + 8) as u64);
        let latency_ns = t0.elapsed().as_nanos() as u64;
        if !meta.tenant.is_empty() {
            obs.queries_by_tenant
                .with_labels(&meta.tenant, meta.op)
                .inc();
            if matches!(meta.op, "query" | "batch") {
                obs.latency_by_tenant
                    .with_label(&meta.tenant)
                    .observe(latency_ns);
            }
        }
        obs.recorder
            .record(&meta.tenant, meta.op, outcome_label, latency_ns, &spans);
    }
    Action::Reply(frame_body)
}

fn serve_connection(mut stream: TcpStream, shared: &Shared, max_frames_per_turn: usize) {
    let counters = ReqCounters::new();
    let mut served = 0u64;
    loop {
        // Read the 4-byte prefix ourselves so the first bytes can be
        // sniffed for HTTP admin traffic.
        let mut prefix = [0u8; 4];
        if read_exact_or_close(&mut stream, &mut prefix).is_err() {
            return;
        }
        if &prefix == b"GET " {
            serve_admin(stream, shared, &[]);
            return;
        }
        // t0: request visible. t1: frame fully read.
        let t0 = Instant::now();
        let body = match read_frame_body(&mut stream, u32::from_le_bytes(prefix)) {
            Ok(body) => body,
            Err(e) => {
                // Frame-level damage answers once, then closes — the
                // stream position is garbage from here. Truncation or
                // I/O failure closes quietly.
                if let Some(frame) = frame_damage_response(&counters, &e) {
                    let _ = write_frame(&mut stream, &frame);
                }
                return;
            }
        };
        let t1 = Instant::now();
        match process_body(shared, &counters, &body, t0, t1) {
            Action::Subscribe { from_seq } => {
                serve_subscription(stream, shared, from_seq);
                return;
            }
            Action::Reply(frame) => {
                if write_frame(&mut stream, &frame).is_err() {
                    return;
                }
            }
        }
        // Fairness: a client pipelining an unbroken run of requests
        // yields the core periodically so its peers' threads run —
        // the threaded model's analogue of the reactor's per-event cap.
        served += 1;
        if served.is_multiple_of(max_frames_per_turn.max(1) as u64) {
            thread::yield_now();
        }
    }
}

/// Builds the span tree for one traced probe and encodes the traced
/// response. The outcomes are encoded *before* the spans are stamped,
/// so the `encode` span reflects real outcome-encoding work; the six
/// phases are cut from contiguous instants, so their durations sum to
/// the root's exactly.
fn traced_body(
    outcomes: &[WireOutcome],
    t0: Instant,
    t1: Instant,
    t2: Instant,
    probe: ProbeTiming,
    spans_out: &mut Vec<Span>,
) -> Vec<u8> {
    let enc = TracedEncoder::new(outcomes);
    let t6 = Instant::now();
    let mut rec = SpanRecorder::new(t0, 16);
    let off = |t: Instant| t.saturating_duration_since(t0).as_nanos() as u64;
    let cuts = [
        ("queue_wait", off(t1)),
        ("frame_decode", off(t2)),
        ("tenant_resolve", off(probe.resolved)),
        ("promotion_wait", off(probe.promoted)),
        ("directory_probe", off(probe.probed)),
        ("encode", off(t6)),
    ];
    let total = cuts.last().map_or(0, |&(_, end)| end);
    let root = rec.record_ns("request", None, 0, total);
    let mut prev = 0u64;
    for (label, end) in cuts {
        let end = end.max(prev);
        rec.record_ns(label, Some(root), prev, end - prev);
        prev = end;
    }
    let (spans, _dropped) = rec.finish();
    let wire: Vec<WireSpan> = spans
        .iter()
        .map(|s| WireSpan {
            id: s.id,
            parent: s.parent.unwrap_or(u64::MAX),
            label: s.label.clone(),
            start_ns: s.start_ns,
            duration_ns: s.duration_ns,
        })
        .collect();
    *spans_out = spans;
    enc.finish(&wire)
}

fn op_label(req: &Request) -> &'static str {
    match req {
        Request::Hello { .. } => "hello",
        Request::Load { .. } => "load",
        Request::Query { .. } => "query",
        Request::Batch { .. } => "batch",
        Request::Edit { .. } => "edit",
        Request::Stats { .. } => "stats",
        Request::Metrics => "metrics",
        Request::Subscribe { .. } => "subscribe",
        Request::Ack { .. } => "ack",
    }
}

/// Executes one decoded request against the farm. Traced probes also
/// return the farm's phase timing, for the caller to cut spans from.
/// ([`Request::Subscribe`] never reaches here — it takes over the
/// connection in `serve_connection`.)
fn handle(shared: &Shared, req: Request) -> (Response, Option<ProbeTiming>) {
    let farm = &shared.farm;
    let err = |(code, message): (ErrorCode, String)| Response::Error { code, message };
    let plain = |r: Response| (r, None);
    match req {
        Request::Hello { version } => {
            if version != PROTOCOL_VERSION {
                return plain(Response::Error {
                    code: ErrorCode::BadVersion,
                    message: format!("client speaks v{version}, server v{PROTOCOL_VERSION}"),
                });
            }
            plain(Response::Hello {
                version: PROTOCOL_VERSION,
                tenants: farm.tenant_count(),
            })
        }
        Request::Load { tenant, path } => plain(match farm.load(&tenant, path.as_ref()) {
            Ok((entries, bytes)) => Response::Loaded { entries, bytes },
            Err(e) => err(e),
        }),
        Request::Query {
            tenant,
            class,
            member,
            trace: true,
            as_of,
        } => match farm.query_traced(&tenant, &class, &member, as_of) {
            Ok((outcome, timing)) => (Response::Outcome(outcome), Some(timing)),
            Err(e) => plain(err(e)),
        },
        Request::Query {
            tenant,
            class,
            member,
            trace: false,
            as_of,
        } => plain(match &shared.shards {
            Some(pool) => pool.query(tenant, class, member, as_of),
            None => match farm.query_at(&tenant, &class, &member, as_of) {
                Ok(outcome) => Response::Outcome(outcome),
                Err(e) => err(e),
            },
        }),
        Request::Batch {
            tenant,
            probes,
            trace: true,
            as_of,
        } => match farm.batch_traced(&tenant, &probes, as_of) {
            Ok((outcomes, timing)) => (Response::Outcomes(outcomes), Some(timing)),
            Err(e) => plain(err(e)),
        },
        Request::Batch {
            tenant,
            probes,
            trace: false,
            as_of,
        } => plain(match &shared.shards {
            Some(pool) => pool.batch(tenant, probes, as_of),
            None => match farm.batch_at(&tenant, &probes, as_of) {
                Ok(outcomes) => Response::Outcomes(outcomes),
                Err(e) => err(e),
            },
        }),
        Request::Edit { tenant, directive } => plain(match farm.edit(&tenant, &directive) {
            Ok(epoch) => Response::Edited { epoch },
            Err(e) => err(e),
        }),
        Request::Stats { tenant } => plain(match farm.stats_json(&tenant) {
            Ok(json) => Response::Stats { json },
            Err(e) => err(e),
        }),
        Request::Metrics => plain(Response::Metrics {
            text: cpplookup_obs::global().snapshot().render_prometheus(),
        }),
        Request::Subscribe { .. } => plain(Response::Error {
            code: ErrorCode::BadPayload,
            message: "subscribe is a connection-level request".to_owned(),
        }),
        Request::Ack { follower, seq } => plain(match farm.wal() {
            Some(wal) => {
                cpplookup_obs::global()
                    .gauge_family(
                        "server_follower_acked_seq",
                        "last log sequence number each follower reported applied",
                        "follower",
                        16,
                    )
                    .with_label(&follower)
                    .set(seq as i64);
                Response::Acked {
                    leader_seq: wal.last_seq(),
                }
            }
            None => Response::Error {
                code: ErrorCode::NotReplicating,
                message: "this server has no edit log".to_owned(),
            },
        }),
    }
}

/// Streams the edit log over a connection that sent
/// [`Request::Subscribe`]: everything after the subscriber's
/// `from_seq`, then new records as they are appended, until either side
/// disconnects. The subscriber is expected to stay quiet — its ACKs
/// travel on a separate connection — so inbound bytes (or EOF) end the
/// stream.
pub(crate) fn serve_subscription(mut stream: TcpStream, shared: &Shared, from_seq: u64) {
    let Some(wal) = shared.farm.wal().cloned() else {
        respond(
            &mut stream,
            Response::Error {
                code: ErrorCode::NotReplicating,
                message: "this server has no edit log".to_owned(),
            },
        );
        return;
    };
    let obs = cpplookup_obs::global();
    let subscribers = obs.gauge("server_subscribers", "replication subscriptions active");
    let shipped = obs.counter(
        "server_replicated_records_total",
        "edit-log records streamed to subscribers",
    );
    subscribers.add(1);
    let mut cursor = TailCursor::from_seq(from_seq);
    // The liveness probe below must not block: a quiet, connected
    // subscriber answers `peek` with a timeout, a gone one with EOF.
    let _ = stream.set_read_timeout(Some(Duration::from_millis(1)));
    loop {
        let batch = match wal.wait(&mut cursor, Duration::from_millis(250)) {
            Ok(batch) => batch,
            Err(e) => {
                // The writer validated this log at open; damage now is
                // rot under a live server. Tell the subscriber before
                // dropping it.
                respond(
                    &mut stream,
                    Response::Error {
                        code: ErrorCode::LoadFailed,
                        message: format!("edit log unreadable: {e}"),
                    },
                );
                break;
            }
        };
        if batch.is_empty() {
            // Idle: check the subscriber is still there, else this
            // thread outlives it parked in `wait` forever.
            match stream.peek(&mut [0u8; 1]) {
                Ok(0) => break,
                Ok(_) => break, // protocol violation: subscribers don't talk
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut => {}
                Err(_) => break,
            }
            continue;
        }
        let mut closed = false;
        for stamped in batch {
            let body = Response::Replicated {
                seq: stamped.seq,
                unix_nanos: stamped.unix_nanos,
                record: wire_record(&stamped.record),
            }
            .encode();
            if write_frame(&mut stream, &body).is_err() {
                closed = true;
                break;
            }
            shipped.inc();
            if let Some(o) = &shared.obs {
                o.bytes_written.add((4 + body.len() + 8) as u64);
            }
        }
        if closed {
            break;
        }
    }
    subscribers.add(-1);
}

fn respond(stream: &mut TcpStream, response: Response) -> bool {
    write_frame(stream, &response.encode()).is_ok()
}

fn read_exact_or_close(stream: &mut TcpStream, buf: &mut [u8]) -> Result<(), ()> {
    let mut got = 0;
    while got < buf.len() {
        match stream.read(&mut buf[got..]) {
            Ok(0) => return Err(()),
            Ok(n) => got += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => return Err(()),
        }
    }
    Ok(())
}

/// Serves one HTTP request on a connection whose first bytes were
/// `GET `; the rest of the header is read (bounded) and discarded
/// beyond the request target. `prefill` is any bytes past the sniffed
/// `GET ` that the caller already pulled off the socket — the reactor
/// hands over whatever its read buffer holds.
pub(crate) fn serve_admin(mut stream: TcpStream, shared: &Shared, prefill: &[u8]) {
    // Read until the end of the header block or an 8 KiB cap, consuming
    // the prefill before touching the socket again.
    let mut header = Vec::with_capacity(256);
    let mut pre = prefill.iter();
    let mut byte = [0u8; 1];
    while header.len() < 8192 && !header.ends_with(b"\r\n\r\n") {
        if let Some(&b) = pre.next() {
            header.push(b);
            continue;
        }
        match stream.read(&mut byte) {
            Ok(1) => header.push(byte[0]),
            Ok(_) => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => return,
        }
    }
    // `GET ` is already consumed: the target is the first token.
    let target = header
        .split(|&b| b == b' ' || b == b'\r')
        .next()
        .map(|t| String::from_utf8_lossy(t).into_owned())
        .unwrap_or_default();
    cpplookup_obs::global()
        .counter("server_admin_requests_total", "admin HTTP requests served")
        .inc();
    let (status, content_type, body) = match target.as_str() {
        "/metrics" => (
            "200 OK",
            "text/plain; version=0.0.4",
            cpplookup_obs::global().snapshot().render_prometheus(),
        ),
        "/healthz" => ("200 OK", "text/plain", "ok\n".to_owned()),
        "/tenants" => (
            "200 OK",
            "application/json",
            shared
                .farm
                .stats_json("")
                .unwrap_or_else(|(_, m)| format!("{{\"error\":{}}}", crate::farm::json_str(&m))),
        ),
        "/flightrecorder" => match &shared.obs {
            Some(obs) => ("200 OK", "application/json", obs.recorder.to_json()),
            None => (
                "404 Not Found",
                "text/plain",
                "flight recorder disabled\n".to_owned(),
            ),
        },
        _ => ("404 Not Found", "text/plain", "not found\n".to_owned()),
    };
    let _ = write!(
        stream,
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len(),
    );
    let _ = stream.shutdown(Shutdown::Both);
}
