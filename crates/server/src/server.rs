//! The threaded TCP server: framing loop, admission control, and the
//! HTTP admin endpoint.
//!
//! One OS thread per connection over blocking I/O — the right trade for
//! this workload: a connection's requests are strictly sequential (the
//! protocol is request/response), the farm's read path is wait-free, so
//! threads spend their lives parked in `read()` costing a stack apiece.
//! Admission control bounds that cost: past
//! [`ServerConfig::max_connections`] a new connection receives one
//! [`ErrorCode::Busy`] frame and is closed, deterministically, instead
//! of queueing invisibly in the accept backlog.
//!
//! The same port doubles as the admin endpoint: a connection whose
//! first four bytes are `GET ` is served as one HTTP request
//! (`/metrics` → the Prometheus exposition text from the global obs
//! registry) and closed. Binary framing can never collide with this —
//! `GET ` as a length prefix would be a 0x20544547-byte frame, far
//! beyond [`MAX_BODY`](crate::protocol::MAX_BODY).
//!
//! # Error policy
//!
//! * Frame-level damage (bad length, checksum mismatch) → one error
//!   frame, then close: the stream position can no longer be trusted.
//! * Payload-level damage (unknown opcode, malformed payload) → one
//!   error frame, connection keeps going: framing is still sound.
//! * Truncation / peer close → close quietly.
//! * Never a panic, never an unbounded read.

use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use crate::farm::Farm;
use crate::protocol::{
    read_frame_body, write_frame, ErrorCode, FrameError, Request, Response, PROTOCOL_VERSION,
};

/// Server configuration.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Bind address; port 0 picks a free port (the default —
    /// `127.0.0.1:0`).
    pub addr: String,
    /// Admission-control bound on concurrent connections; the
    /// `max_connections + 1`-th connection is refused with
    /// [`ErrorCode::Busy`].
    pub max_connections: usize,
    /// Tenants to load before accepting traffic, as
    /// `(tenant, snapshot path)` pairs.
    pub preload: Vec<(String, PathBuf)>,
    /// Per-connection read timeout; an idle connection is dropped after
    /// this long (`None` = never).
    pub read_timeout: Option<Duration>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_owned(),
            max_connections: 64,
            preload: Vec::new(),
            read_timeout: Some(Duration::from_secs(120)),
        }
    }
}

/// A running server; dropping it (or calling
/// [`shutdown`](Server::shutdown)) stops the acceptor.
pub struct Server {
    addr: SocketAddr,
    farm: Arc<Farm>,
    stop: Arc<AtomicBool>,
    acceptor: Option<thread::JoinHandle<()>>,
}

impl Server {
    /// Binds, preloads the configured tenants, and starts accepting.
    ///
    /// # Errors
    ///
    /// Bind failures, and preload failures (a missing or corrupt
    /// snapshot on the command line is a startup error, not a latent
    /// per-request one).
    pub fn start(config: ServerConfig) -> io::Result<Server> {
        let farm = Arc::new(Farm::new());
        for (tenant, path) in &config.preload {
            farm.load(tenant, path)
                .map_err(|(_, msg)| io::Error::other(format!("preload `{tenant}`: {msg}")))?;
        }
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let acceptor = {
            let farm = Arc::clone(&farm);
            let stop = Arc::clone(&stop);
            thread::spawn(move || accept_loop(listener, farm, stop, config))
        };
        Ok(Server {
            addr,
            farm,
            stop,
            acceptor: Some(acceptor),
        })
    }

    /// The bound address (with the real port when `addr` asked for 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The farm, for in-process inspection (tests, benches).
    pub fn farm(&self) -> &Arc<Farm> {
        &self.farm
    }

    /// Stops the acceptor and waits for it. Already-open connections
    /// drain on their own threads.
    pub fn shutdown(&mut self) {
        if let Some(acceptor) = self.acceptor.take() {
            self.stop.store(true, Ordering::SeqCst);
            // Unblock the blocking accept with one throwaway connect.
            let _ = TcpStream::connect(self.addr);
            let _ = acceptor.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(listener: TcpListener, farm: Arc<Farm>, stop: Arc<AtomicBool>, cfg: ServerConfig) {
    let obs = cpplookup_obs::global();
    let active = Arc::new(AtomicUsize::new(0));
    let active_gauge = obs.gauge("server_connections", "connections currently open");
    let accepted = obs.counter("server_connections_total", "connections accepted");
    let rejected = obs.counter(
        "server_rejected_total",
        "connections refused by admission control",
    );
    for stream in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        if active.load(Ordering::SeqCst) >= cfg.max_connections {
            rejected.inc();
            refuse(stream);
            continue;
        }
        accepted.inc();
        active.fetch_add(1, Ordering::SeqCst);
        active_gauge.add(1);
        let farm = Arc::clone(&farm);
        let active = Arc::clone(&active);
        let active_gauge = Arc::clone(&active_gauge);
        let timeout = cfg.read_timeout;
        thread::spawn(move || {
            let _ = stream.set_read_timeout(timeout);
            let _ = stream.set_nodelay(true);
            serve_connection(stream, &farm);
            active.fetch_sub(1, Ordering::SeqCst);
            active_gauge.add(-1);
        });
    }
}

/// Tells an over-limit connection why it is being dropped.
fn refuse(mut stream: TcpStream) {
    let body = Response::Error {
        code: ErrorCode::Busy,
        message: "server at connection limit".to_owned(),
    }
    .encode();
    let _ = write_frame(&mut stream, &body);
    let _ = stream.shutdown(Shutdown::Both);
}

fn serve_connection(mut stream: TcpStream, farm: &Farm) {
    let requests = cpplookup_obs::global().counter_family(
        "server_requests_total",
        "requests served, by operation",
        "op",
    );
    let errors = cpplookup_obs::global().counter_family(
        "server_errors_total",
        "error responses sent, by code",
        "code",
    );
    loop {
        // Read the 4-byte prefix ourselves so the first bytes can be
        // sniffed for HTTP admin traffic.
        let mut prefix = [0u8; 4];
        if read_exact_or_close(&mut stream, &mut prefix).is_err() {
            return;
        }
        if &prefix == b"GET " {
            serve_admin(stream);
            return;
        }
        let body = match read_frame_body(&mut stream, u32::from_le_bytes(prefix)) {
            Ok(body) => body,
            Err(FrameError::BadLength { len }) => {
                // The stream position is garbage from here; answer and
                // close.
                errors.with_label(ErrorCode::BadLength.label()).inc();
                respond(
                    &mut stream,
                    Response::Error {
                        code: ErrorCode::BadLength,
                        message: format!("frame length {len} outside bounds"),
                    },
                );
                return;
            }
            Err(FrameError::Checksum) => {
                errors.with_label(ErrorCode::BadFrame.label()).inc();
                respond(
                    &mut stream,
                    Response::Error {
                        code: ErrorCode::BadFrame,
                        message: "frame checksum mismatch".to_owned(),
                    },
                );
                return;
            }
            // Truncation or I/O failure: nothing sensible to say.
            Err(FrameError::Eof) | Err(FrameError::Io(_)) => return,
        };
        let response = match Request::decode(&body) {
            Ok(req) => {
                requests.with_label(op_label(&req)).inc();
                handle(farm, req)
            }
            // Payload-level damage: framing is intact, keep going.
            Err((code, message)) => Response::Error { code, message },
        };
        if let Response::Error { code, .. } = &response {
            errors.with_label(code.label()).inc();
        }
        if !respond(&mut stream, response) {
            return;
        }
    }
}

fn op_label(req: &Request) -> &'static str {
    match req {
        Request::Hello { .. } => "hello",
        Request::Load { .. } => "load",
        Request::Query { .. } => "query",
        Request::Batch { .. } => "batch",
        Request::Edit { .. } => "edit",
        Request::Stats { .. } => "stats",
        Request::Metrics => "metrics",
    }
}

/// Executes one decoded request against the farm.
fn handle(farm: &Farm, req: Request) -> Response {
    let err = |(code, message): (ErrorCode, String)| Response::Error { code, message };
    match req {
        Request::Hello { version } => {
            if version != PROTOCOL_VERSION {
                return Response::Error {
                    code: ErrorCode::BadVersion,
                    message: format!("client speaks v{version}, server v{PROTOCOL_VERSION}"),
                };
            }
            Response::Hello {
                version: PROTOCOL_VERSION,
                tenants: farm.tenant_count(),
            }
        }
        Request::Load { tenant, path } => match farm.load(&tenant, path.as_ref()) {
            Ok((entries, bytes)) => Response::Loaded { entries, bytes },
            Err(e) => err(e),
        },
        Request::Query {
            tenant,
            class,
            member,
        } => match farm.query(&tenant, &class, &member) {
            Ok(outcome) => Response::Outcome(outcome),
            Err(e) => err(e),
        },
        Request::Batch { tenant, probes } => match farm.batch(&tenant, &probes) {
            Ok(outcomes) => Response::Outcomes(outcomes),
            Err(e) => err(e),
        },
        Request::Edit { tenant, directive } => match farm.edit(&tenant, &directive) {
            Ok(epoch) => Response::Edited { epoch },
            Err(e) => err(e),
        },
        Request::Stats { tenant } => match farm.stats_json(&tenant) {
            Ok(json) => Response::Stats { json },
            Err(e) => err(e),
        },
        Request::Metrics => Response::Metrics {
            text: cpplookup_obs::global().snapshot().render_prometheus(),
        },
    }
}

fn respond(stream: &mut TcpStream, response: Response) -> bool {
    write_frame(stream, &response.encode()).is_ok()
}

fn read_exact_or_close(stream: &mut TcpStream, buf: &mut [u8]) -> Result<(), ()> {
    let mut got = 0;
    while got < buf.len() {
        match stream.read(&mut buf[got..]) {
            Ok(0) => return Err(()),
            Ok(n) => got += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => return Err(()),
        }
    }
    Ok(())
}

/// Serves one HTTP request on a connection whose first bytes were
/// `GET `; the rest of the header is read (bounded) and discarded
/// beyond the request target.
fn serve_admin(mut stream: TcpStream) {
    // Read until the end of the header block or an 8 KiB cap.
    let mut header = Vec::with_capacity(256);
    let mut byte = [0u8; 1];
    while header.len() < 8192 && !header.ends_with(b"\r\n\r\n") {
        match stream.read(&mut byte) {
            Ok(1) => header.push(byte[0]),
            Ok(_) => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => return,
        }
    }
    // `GET ` is already consumed: the target is the first token.
    let target = header
        .split(|&b| b == b' ' || b == b'\r')
        .next()
        .map(|t| String::from_utf8_lossy(t).into_owned())
        .unwrap_or_default();
    let (status, content_type, body) = if target == "/metrics" {
        cpplookup_obs::global()
            .counter("server_admin_requests_total", "admin HTTP requests served")
            .inc();
        (
            "200 OK",
            "text/plain; version=0.0.4",
            cpplookup_obs::global().snapshot().render_prometheus(),
        )
    } else {
        ("404 Not Found", "text/plain", "not found\n".to_owned())
    };
    let _ = write!(
        stream,
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len(),
    );
    let _ = stream.shutdown(Shutdown::Both);
}
