//! Shard-affine worker threads for the untraced read path.
//!
//! With sharding enabled, the connection threads stop answering
//! untraced `QUERY`/`BATCH` requests themselves and instead hand them
//! to a fixed pool of worker threads, routed by a stable hash of the
//! tenant name. Every request for a given tenant therefore executes on
//! the *same* worker, which is what makes the MPH probe directory pay
//! off under multi-tenant load: a tenant's displacement array and cell
//! blocks stay resident in one core's cache instead of bouncing between
//! however many connection threads its clients happen to arrive on.
//!
//! Only the untraced read path is routed. Traced probes measure *this
//! request's* cost, and a queue hop would attribute worker-side wait to
//! the wrong phase; edits, loads, and admin requests are rare enough
//! that affinity buys nothing. Those all stay on the connection thread.

use std::sync::mpsc;
use std::sync::Arc;
use std::thread;

use cpplookup_obs::Counter;

use crate::farm::Farm;
use crate::protocol::{ErrorCode, Response};

/// One queued read, carrying its reply channel. The rendezvous sender
/// is `SyncSender<Response>` with capacity 1: the worker never blocks
/// sending a reply, and a connection that died mid-flight just drops
/// the receiver.
enum Job {
    Query {
        tenant: String,
        class: String,
        member: String,
        as_of: Option<u64>,
        reply: mpsc::SyncSender<Response>,
    },
    Batch {
        tenant: String,
        probes: Vec<(String, String)>,
        as_of: Option<u64>,
        reply: mpsc::SyncSender<Response>,
    },
}

/// A fixed pool of shard-affine read workers over one farm.
///
/// Dropping the pool closes every shard's queue and joins the workers;
/// in-flight jobs drain first.
pub struct ShardPool {
    senders: Vec<mpsc::Sender<Job>>,
    workers: Vec<thread::JoinHandle<()>>,
}

impl ShardPool {
    /// Starts `shards` worker threads (at least one) over `farm`.
    pub fn start(farm: Arc<Farm>, shards: usize) -> ShardPool {
        let shards = shards.max(1);
        let obs = cpplookup_obs::global();
        obs.gauge("server_shards", "shard-affine read worker threads")
            .set(shards as i64);
        let requests = obs.counter_family(
            "server_shard_requests_total",
            "reads answered by shard workers, by shard",
            "shard",
        );
        let mut senders = Vec::with_capacity(shards);
        let mut workers = Vec::with_capacity(shards);
        for shard in 0..shards {
            let (tx, rx) = mpsc::channel::<Job>();
            let farm = Arc::clone(&farm);
            let answered = requests.with_label(&shard.to_string());
            workers.push(
                thread::Builder::new()
                    .name(format!("shard-{shard}"))
                    .spawn(move || worker_loop(&farm, &rx, &answered))
                    .expect("spawn shard worker"),
            );
            senders.push(tx);
        }
        ShardPool { senders, workers }
    }

    /// How many shards the pool runs.
    pub fn shards(&self) -> usize {
        self.senders.len()
    }

    /// The shard a tenant's reads are pinned to.
    pub fn shard_of(&self, tenant: &str) -> usize {
        (fnv1a(tenant.as_bytes()) % self.senders.len() as u64) as usize
    }

    /// Answers one untraced point query on the tenant's shard worker.
    pub fn query(
        &self,
        tenant: String,
        class: String,
        member: String,
        as_of: Option<u64>,
    ) -> Response {
        let (reply, answer) = mpsc::sync_channel(1);
        let shard = self.shard_of(&tenant);
        let job = Job::Query {
            tenant,
            class,
            member,
            as_of,
            reply,
        };
        self.dispatch(shard, job, answer)
    }

    /// Answers one untraced batch on the tenant's shard worker.
    pub fn batch(
        &self,
        tenant: String,
        probes: Vec<(String, String)>,
        as_of: Option<u64>,
    ) -> Response {
        let (reply, answer) = mpsc::sync_channel(1);
        let shard = self.shard_of(&tenant);
        let job = Job::Batch {
            tenant,
            probes,
            as_of,
            reply,
        };
        self.dispatch(shard, job, answer)
    }

    fn dispatch(&self, shard: usize, job: Job, answer: mpsc::Receiver<Response>) -> Response {
        if self.senders[shard].send(job).is_ok() {
            if let Ok(response) = answer.recv() {
                return response;
            }
        }
        // Only reachable if the worker died, which only a panic in the
        // farm can cause; answer something structured rather than
        // hanging the connection.
        Response::Error {
            code: ErrorCode::Busy,
            message: format!("shard {shard} worker is gone"),
        }
    }
}

impl Drop for ShardPool {
    fn drop(&mut self) {
        self.senders.clear();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

fn worker_loop(farm: &Farm, rx: &mpsc::Receiver<Job>, answered: &Counter) {
    while let Ok(job) = rx.recv() {
        answered.inc();
        match job {
            Job::Query {
                tenant,
                class,
                member,
                as_of,
                reply,
            } => {
                let response = match farm.query_at(&tenant, &class, &member, as_of) {
                    Ok(outcome) => Response::Outcome(outcome),
                    Err((code, message)) => Response::Error { code, message },
                };
                let _ = reply.send(response);
            }
            Job::Batch {
                tenant,
                probes,
                as_of,
                reply,
            } => {
                let response = match farm.batch_at(&tenant, &probes, as_of) {
                    Ok(outcomes) => Response::Outcomes(outcomes),
                    Err((code, message)) => Response::Error { code, message },
                };
                let _ = reply.send(response);
            }
        }
    }
}

/// FNV-1a over the tenant name: stable across runs (the routing is
/// observable through per-shard metrics, so it must not depend on
/// `RandomState`), and well-mixed enough that tenant counts far above
/// the shard count spread evenly.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::farm::FarmOptions;
    use crate::protocol::WireOutcome;

    fn farm_with_tenants(names: &[&str]) -> (Arc<Farm>, tempdir::Dir) {
        let dir = tempdir::Dir::new("shard");
        let farm = Arc::new(Farm::with_options(FarmOptions::default()));
        let snap = cpplookup_snapshot::Snapshot::compile(&cpplookup_chg::fixtures::fig2());
        let path = dir.file("fig2.snap");
        snap.write_to(&path).unwrap();
        for name in names {
            farm.load(name, &path).unwrap();
        }
        (farm, dir)
    }

    /// Minimal throwaway temp dir (the integration tests have their own
    /// copy; unit tests cannot reach it).
    mod tempdir {
        use std::path::{Path, PathBuf};

        pub struct Dir(PathBuf);

        impl Dir {
            pub fn new(tag: &str) -> Dir {
                let nanos = std::time::SystemTime::now()
                    .duration_since(std::time::UNIX_EPOCH)
                    .unwrap()
                    .as_nanos();
                let dir = std::env::temp_dir().join(format!("cpplookup-{tag}-{nanos:x}"));
                std::fs::create_dir_all(&dir).unwrap();
                Dir(dir)
            }

            pub fn file(&self, name: &str) -> PathBuf {
                self.0.join(name)
            }
        }

        impl Drop for Dir {
            fn drop(&mut self) {
                std::fs::remove_dir_all(Path::new(&self.0)).ok();
            }
        }
    }

    #[test]
    fn routing_is_stable_and_in_range() {
        let (farm, _dir) = farm_with_tenants(&["a"]);
        let pool = ShardPool::start(farm, 4);
        assert_eq!(pool.shards(), 4);
        for tenant in ["a", "b", "acme", "tenant-with-a-long-name"] {
            let first = pool.shard_of(tenant);
            assert!(first < 4);
            assert_eq!(first, pool.shard_of(tenant), "routing must be stable");
        }
        // Many tenants spread across every shard.
        let mut hit = [false; 4];
        for i in 0..64 {
            hit[pool.shard_of(&format!("t{i}"))] = true;
        }
        assert!(hit.iter().all(|&h| h), "64 tenants must cover 4 shards");
    }

    #[test]
    fn zero_shards_still_starts_one_worker() {
        let (farm, _dir) = farm_with_tenants(&["t"]);
        let pool = ShardPool::start(farm, 0);
        assert_eq!(pool.shards(), 1);
    }

    #[test]
    fn sharded_answers_match_the_inline_farm() {
        let (farm, _dir) = farm_with_tenants(&["t0", "t1", "t2"]);
        let pool = ShardPool::start(Arc::clone(&farm), 3);
        for tenant in ["t0", "t1", "t2"] {
            let want = farm.query_at(tenant, "E", "m", None).unwrap();
            match pool.query(tenant.to_owned(), "E".into(), "m".into(), None) {
                Response::Outcome(got) => assert_eq!(got, want),
                other => panic!("unexpected {other:?}"),
            }
            let probes = vec![
                ("E".to_owned(), "m".to_owned()),
                ("A".to_owned(), "m".to_owned()),
            ];
            let want = farm.batch_at(tenant, &probes, None).unwrap();
            match pool.batch(tenant.to_owned(), probes, None) {
                Response::Outcomes(got) => assert_eq!(got, want),
                other => panic!("unexpected {other:?}"),
            }
        }
        // Errors stay structured through the queue hop.
        match pool.query("ghost".into(), "E".into(), "m".into(), None) {
            Response::Error { code, .. } => assert_eq!(code, ErrorCode::NoSuchTenant),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn drop_joins_workers_cleanly() {
        let (farm, _dir) = farm_with_tenants(&["t"]);
        let pool = ShardPool::start(farm, 2);
        match pool.query("t".into(), "E".into(), "m".into(), None) {
            Response::Outcome(WireOutcome::Resolved { .. }) => {}
            other => panic!("unexpected {other:?}"),
        }
        drop(pool); // must not hang
    }
}
