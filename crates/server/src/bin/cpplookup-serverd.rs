//! `cpplookup-serverd` — the standalone server daemon.
//!
//! ```text
//! cpplookup-serverd [--addr HOST:PORT] [--max-connections N]
//!                   [--read-timeout-secs N] [--tenant NAME=PATH]...
//!                   [--no-obs] [--recorder-capacity N]
//!                   [--slow-threshold-ms N] [--tenant-cardinality N]
//!                   [--wal PATH] [--fsync-every N] [--retain-epochs N]
//!                   [--read-only] [--compact-every-secs N] [--compact-dir DIR]
//!                   [--follow ADDR | --follow-log PATH] [--follower-id NAME]
//! ```
//!
//! With `--wal` the server appends every accepted EDIT to a durable,
//! checksummed log before applying it, replays the log on restart, and
//! (with `--compact-every-secs`) periodically folds history into
//! per-tenant snapshot checkpoints. With `--follow` (wire SUBSCRIBE to
//! a leader) or `--follow-log` (tail a log file) the daemon becomes a
//! read-only replication follower. `--retain-epochs` keeps the last K
//! published epochs per tenant queryable via the protocol's AS_OF flag
//! (`cpplookup-cli query --as-of-epoch`).
//!
//! Prints `listening on ADDR` to stderr once the socket is bound (the
//! CLI's `serve` subcommand and the tests read the real port from that
//! line when port 0 was requested), then serves until killed.
//!
//! The `--no-obs` family of flags controls the observability layer:
//! per-tenant metric families and the flight recorder (dumped from
//! `GET /flightrecorder` on the same port; `GET /healthz`, `/tenants`,
//! and `/metrics` are always available). Request tracing via the
//! protocol TRACE flag is always honored and costs nothing when no
//! client asks for it.
//!
//! Flag parsing and the serve loop live in [`cpplookup_server::cli`],
//! shared with the main CLI's `serve` subcommand.

use std::process::ExitCode;

use cpplookup_server::cli::{parse_server_args, serve_forever, SERVE_USAGE};

fn usage() -> ExitCode {
    eprintln!("usage: cpplookup-serverd {SERVE_USAGE}");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        usage();
        return ExitCode::SUCCESS;
    }
    let config = match parse_server_args(&args) {
        Ok(config) => config,
        Err(e) => {
            eprintln!("error: {e}");
            return usage();
        }
    };
    let e = serve_forever(config);
    eprintln!("error: {e}");
    ExitCode::from(2)
}
