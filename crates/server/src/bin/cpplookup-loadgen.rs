//! `cpplookup-loadgen` — drive load at a running server.
//!
//! ```text
//! cpplookup-loadgen --addr HOST:PORT --snapshot PATH
//!                   [--tenants N] [--load] [--connections N]
//!                   [--duration-secs N] [--rate QPS] [--batch N]
//!                   [--tenant-skew S] [--probe-skew S] [--seed N]
//! ```
//!
//! The snapshot is opened *locally* to enumerate real class/member
//! names for the probe vocabulary; `--tenants N` fans the same snapshot
//! out as `t0..tN-1`, and `--load` issues the `LOAD` requests first
//! (the server must be able to read `PATH` too — same host). Without
//! `--rate` the run is closed-loop; with it, open-loop at that
//! aggregate rate. Prints the human summary line to stdout.
//!
//! Flag parsing and the run body live in [`cpplookup_server::cli`],
//! shared with the main CLI's `loadgen` subcommand.

use std::process::ExitCode;

use cpplookup_server::cli::{parse_loadgen_args, run_loadgen, LOADGEN_USAGE};

fn usage() -> ExitCode {
    eprintln!("usage: cpplookup-loadgen {LOADGEN_USAGE}");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        usage();
        return ExitCode::SUCCESS;
    }
    let parsed = match parse_loadgen_args(&args) {
        Ok(parsed) => parsed,
        Err(e) => {
            eprintln!("error: {e}");
            return usage();
        }
    };
    match run_loadgen(&parsed) {
        Ok(report) => {
            println!("{report}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(2)
        }
    }
}
