//! `cpplookup-loadgen` — drive load at a running server.
//!
//! ```text
//! cpplookup-loadgen --addr HOST:PORT --snapshot PATH
//!                   [--tenants N] [--load] [--connections N]
//!                   [--duration-secs N] [--rate QPS] [--batch N]
//!                   [--tenant-skew S] [--probe-skew S] [--seed N]
//!                   [--trace]
//! cpplookup-loadgen query --addr HOST:PORT --tenant NAME CLASS MEMBER
//!                   [--trace]
//! ```
//!
//! The snapshot is opened *locally* to enumerate real class/member
//! names for the probe vocabulary; `--tenants N` fans the same snapshot
//! out as `t0..tN-1`, and `--load` issues the `LOAD` requests first
//! (the server must be able to read `PATH` too — same host). Without
//! `--rate` the run is closed-loop; with it, open-loop at that
//! aggregate rate. Prints the human summary line to stdout; with
//! `--trace` every request carries the protocol TRACE flag and the
//! summary gains the server-side per-phase attribution.
//!
//! The `query` form sends one wire query and prints the outcome —
//! with `--trace`, the server's span tree follows as an attributed
//! breakdown.
//!
//! Flag parsing and the run body live in [`cpplookup_server::cli`],
//! shared with the main CLI's `loadgen` subcommand.

use std::process::ExitCode;

use cpplookup_server::cli::{
    parse_loadgen_args, parse_query_args, run_loadgen, run_wire_query, LOADGEN_USAGE, QUERY_USAGE,
};

fn usage() -> ExitCode {
    eprintln!("usage: cpplookup-loadgen {LOADGEN_USAGE}");
    eprintln!("       cpplookup-loadgen {QUERY_USAGE}");
    ExitCode::from(2)
}

fn report(result: Result<String, String>) -> ExitCode {
    match result {
        Ok(text) => {
            println!("{text}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(2)
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        usage();
        return ExitCode::SUCCESS;
    }
    if args.first().map(String::as_str) == Some("query") {
        return match parse_query_args(&args[1..]) {
            Ok(q) => report(run_wire_query(&q)),
            Err(e) => {
                eprintln!("error: {e}");
                usage()
            }
        };
    }
    let parsed = match parse_loadgen_args(&args) {
        Ok(parsed) => parsed,
        Err(e) => {
            eprintln!("error: {e}");
            return usage();
        }
    };
    report(run_loadgen(&parsed))
}
