//! The flight recorder: a bounded ring of recently completed requests
//! plus a slow-query log, dumped as JSON from the admin endpoint.
//!
//! Post-hoc debugging of a serving incident needs two different
//! memories: *breadth* — what were the last N requests, per tenant,
//! and how long did they take — and *depth* — for the pathological
//! ones, where inside the request did the time go. The recorder keeps
//! both in fixed space: every completed request lands in the main ring
//! as one compact [`FlightEntry`] (tenant, opcode, outcome, latency,
//! per-phase summary), and requests over the slow threshold
//! additionally keep their full span tree in a second, smaller ring.
//! Both rings evict oldest-first and count what they evicted, so a
//! dump is honest about what it no longer remembers.
//!
//! The write path is one short uncontended mutex hold per completed
//! request — no allocation beyond the entry itself, no I/O, no
//! formatting; JSON rendering happens only when an operator asks.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use cpplookup_obs::Span;

use crate::farm::json_str;

/// One completed request, as the main ring remembers it.
#[derive(Clone, Debug)]
pub struct FlightEntry {
    /// Monotonic sequence number, assigned at completion.
    pub seq: u64,
    /// The tenant the request addressed (empty for tenant-less ops).
    pub tenant: String,
    /// Operation label (`query`, `batch`, `edit`, …).
    pub op: &'static str,
    /// `ok`, or the error code label the client was sent.
    pub outcome: &'static str,
    /// End-to-end service latency in nanoseconds (first byte after the
    /// length prefix to response fully written).
    pub latency_ns: u64,
    /// Per-phase durations from the request's span tree (children of
    /// the root span, in recorded order); empty when untraced.
    pub phases: Vec<(String, u64)>,
}

/// A slow request: the ring entry plus its full span tree.
#[derive(Clone, Debug)]
pub struct SlowEntry {
    /// The compact entry, as in the main ring.
    pub entry: FlightEntry,
    /// The complete span tree (may be empty if the request was not
    /// traced and no phase stamps were available).
    pub spans: Vec<Span>,
}

/// Fixed-size recorder of recent and slow requests.
pub struct FlightRecorder {
    capacity: usize,
    slow_capacity: usize,
    slow_threshold_ns: u64,
    seq: AtomicU64,
    dropped: AtomicU64,
    slow_seen: AtomicU64,
    ring: Mutex<VecDeque<FlightEntry>>,
    slow: Mutex<VecDeque<SlowEntry>>,
}

impl FlightRecorder {
    /// A recorder remembering the last `capacity` requests and the last
    /// `slow_capacity` requests at or over `slow_threshold_ns`.
    /// Capacities are clamped to at least 1.
    pub fn new(capacity: usize, slow_capacity: usize, slow_threshold_ns: u64) -> FlightRecorder {
        let capacity = capacity.max(1);
        let slow_capacity = slow_capacity.max(1);
        FlightRecorder {
            capacity,
            slow_capacity,
            slow_threshold_ns,
            seq: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            slow_seen: AtomicU64::new(0),
            ring: Mutex::new(VecDeque::with_capacity(capacity)),
            slow: Mutex::new(VecDeque::with_capacity(slow_capacity)),
        }
    }

    /// The slow-query threshold in nanoseconds.
    pub fn slow_threshold_ns(&self) -> u64 {
        self.slow_threshold_ns
    }

    /// Records one completed request. `spans` is the request's span
    /// tree (root first) when it was traced, empty otherwise.
    pub fn record(
        &self,
        tenant: &str,
        op: &'static str,
        outcome: &'static str,
        latency_ns: u64,
        spans: &[Span],
    ) {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let root = spans.first().map(|s| s.id);
        let phases = spans
            .iter()
            .filter(|s| s.parent.is_some() && s.parent == root)
            .map(|s| (s.label.clone(), s.duration_ns))
            .collect();
        let entry = FlightEntry {
            seq,
            tenant: tenant.to_owned(),
            op,
            outcome,
            latency_ns,
            phases,
        };
        if latency_ns >= self.slow_threshold_ns {
            self.slow_seen.fetch_add(1, Ordering::Relaxed);
            let mut slow = self.slow.lock().expect("slow ring poisoned");
            if slow.len() == self.slow_capacity {
                slow.pop_front();
            }
            slow.push_back(SlowEntry {
                entry: entry.clone(),
                spans: spans.to_vec(),
            });
        }
        let mut ring = self.ring.lock().expect("flight ring poisoned");
        if ring.len() == self.capacity {
            ring.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        ring.push_back(entry);
    }

    /// Total requests recorded since startup.
    pub fn recorded(&self) -> u64 {
        self.seq.load(Ordering::Relaxed)
    }

    /// Entries evicted from the main ring since startup.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Requests that met the slow threshold since startup.
    pub fn slow_seen(&self) -> u64 {
        self.slow_seen.load(Ordering::Relaxed)
    }

    /// Entries currently held in the main ring.
    pub fn len(&self) -> usize {
        self.ring.lock().expect("flight ring poisoned").len()
    }

    /// Whether nothing has been recorded (or everything evicted).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The whole recorder as one JSON document.
    pub fn to_json(&self) -> String {
        let ring = self.ring.lock().expect("flight ring poisoned").clone();
        let slow = self.slow.lock().expect("slow ring poisoned").clone();
        let mut out = String::with_capacity(256 + ring.len() * 96);
        out.push_str(&format!(
            "{{\"capacity\":{},\"recorded\":{},\"dropped\":{},\
             \"slow_threshold_ns\":{},\"slow_capacity\":{},\"slow_recorded\":{},",
            self.capacity,
            self.recorded(),
            self.dropped(),
            self.slow_threshold_ns,
            self.slow_capacity,
            self.slow_seen(),
        ));
        out.push_str("\"requests\":[");
        for (i, e) in ring.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            entry_json(&mut out, e);
        }
        out.push_str("],\"slow\":[");
        for (i, s) in slow.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let mut doc = String::new();
            entry_json(&mut doc, &s.entry);
            // Splice the span tree into the entry document.
            doc.pop(); // trailing '}'
            doc.push_str(",\"tree\":[");
            for (j, span) in s.spans.iter().enumerate() {
                if j > 0 {
                    doc.push(',');
                }
                span_json(&mut doc, span);
            }
            doc.push_str("]}");
            out.push_str(&doc);
        }
        out.push_str("]}");
        out
    }
}

fn entry_json(out: &mut String, e: &FlightEntry) {
    out.push_str(&format!(
        "{{\"seq\":{},\"tenant\":{},\"op\":\"{}\",\"outcome\":\"{}\",\"latency_ns\":{},\"phases\":{{",
        e.seq,
        json_str(&e.tenant),
        e.op,
        e.outcome,
        e.latency_ns,
    ));
    for (i, (label, ns)) in e.phases.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("{}:{}", json_str(label), ns));
    }
    out.push_str("}}");
}

fn span_json(out: &mut String, s: &Span) {
    out.push_str(&format!(
        "{{\"id\":{},\"parent\":{},\"label\":{},\"start_ns\":{},\"duration_ns\":{}}}",
        s.id,
        s.parent
            .map_or_else(|| "null".to_owned(), |p| p.to_string()),
        json_str(&s.label),
        s.start_ns,
        s.duration_ns,
    ));
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(id: u64, parent: Option<u64>, label: &str, start_ns: u64, duration_ns: u64) -> Span {
        Span {
            id,
            parent,
            label: label.to_owned(),
            start_ns,
            duration_ns,
        }
    }

    #[test]
    fn ring_evicts_oldest_and_counts() {
        let r = FlightRecorder::new(2, 2, u64::MAX);
        r.record("a", "query", "ok", 10, &[]);
        r.record("b", "query", "ok", 20, &[]);
        r.record("c", "query", "ok", 30, &[]);
        assert_eq!(r.len(), 2);
        assert_eq!(r.recorded(), 3);
        assert_eq!(r.dropped(), 1);
        let json = r.to_json();
        assert!(!json.contains("\"tenant\":\"a\""), "oldest evicted: {json}");
        assert!(json.contains("\"tenant\":\"b\""));
        assert!(json.contains("\"tenant\":\"c\""));
        assert!(json.contains("\"dropped\":1"));
    }

    #[test]
    fn slow_requests_keep_their_full_tree() {
        let r = FlightRecorder::new(8, 8, 1_000);
        let tree = vec![
            span(0, None, "request", 0, 1_500),
            span(1, Some(0), "frame_decode", 0, 500),
            span(2, Some(0), "directory_probe", 500, 1_000),
        ];
        r.record("t", "query", "ok", 999, &[]);
        r.record("t", "query", "ok", 1_500, &tree);
        assert_eq!(r.slow_seen(), 1);
        let json = r.to_json();
        assert!(json.contains("\"slow_recorded\":1"));
        assert!(
            json.contains("\"tree\":[{\"id\":0,\"parent\":null,\"label\":\"request\""),
            "{json}"
        );
        assert!(json.contains("\"label\":\"directory_probe\""));
        // Phase summary in the compact entry comes from root children.
        assert!(json.contains("\"phases\":{\"frame_decode\":500,\"directory_probe\":1000}"));
    }

    #[test]
    fn hostile_tenant_names_stay_valid_json() {
        let r = FlightRecorder::new(4, 4, u64::MAX);
        r.record("evil\"\n\\tenant", "query", "no_such_tenant", 5, &[]);
        let json = r.to_json();
        assert!(
            json.contains("\"tenant\":\"evil\\\"\\n\\\\tenant\""),
            "{json}"
        );
    }

    #[test]
    fn untraced_entries_have_empty_phases() {
        let r = FlightRecorder::new(4, 4, u64::MAX);
        r.record("t", "edit", "ok", 7, &[]);
        assert!(r.to_json().contains("\"phases\":{}"));
        assert!(!r.is_empty());
    }
}
