//! Thin syscall shim for the epoll reactor: `epoll`, `eventfd`, and
//! `poll`, declared straight against libc (which std already links on
//! Linux — no new dependency) and wrapped in owned, close-on-drop
//! types.
//!
//! This is the only module in the crate allowed to use `unsafe`; the
//! crate root carries `#![deny(unsafe_code)]` and everything above this
//! layer works with safe wrappers: [`Epoll`], [`EventFd`], and
//! [`wait_two_readable`]. The module is compiled on Linux only — the
//! threaded I/O model is the portability fallback and never reaches
//! here.
#![allow(unsafe_code)]

use std::io;
use std::os::raw::{c_int, c_uint, c_ulong, c_void};
use std::os::unix::io::RawFd;

// Values from the Linux UAPI headers; they are identical across the
// architectures Linux supports (the historic alpha/mips/sparc O_CLOEXEC
// deviations do not apply to the epoll/eventfd flag words used here).
const EPOLL_CLOEXEC: c_int = 0o2000000;
const EPOLL_CTL_ADD: c_int = 1;
const EPOLL_CTL_DEL: c_int = 2;
const EPOLL_CTL_MOD: c_int = 3;

/// Readiness: data to read.
pub const EPOLLIN: u32 = 0x001;
/// Readiness: writable without blocking.
pub const EPOLLOUT: u32 = 0x004;
/// Condition: error on the fd (always reported, never registered).
pub const EPOLLERR: u32 = 0x008;
/// Condition: hangup (always reported, never registered).
pub const EPOLLHUP: u32 = 0x010;
/// Condition: peer closed its write half.
pub const EPOLLRDHUP: u32 = 0x2000;

const EFD_CLOEXEC: c_int = 0o2000000;
const EFD_NONBLOCK: c_int = 0o4000;

const POLLIN: i16 = 0x001;

/// One `struct epoll_event`, as the kernel lays it out on x86-64.
///
/// The kernel ABI packs this struct on x86-64 only (`__EPOLL_PACKED`
/// in the UAPI headers): 12 bytes, no padding. Declaring it packed on
/// any other architecture would make `epoll_wait` write its 16-byte
/// records past the ends of our 12-byte slots.
#[cfg(target_arch = "x86_64")]
#[repr(C, packed)]
#[derive(Clone, Copy)]
pub struct EpollEvent {
    /// Readiness bitmask (`EPOLLIN` | `EPOLLOUT` | ...).
    pub events: u32,
    /// The caller's token, returned verbatim with each event.
    pub token: u64,
}

/// One `struct epoll_event`, as the kernel lays it out everywhere but
/// x86-64: natural alignment, so `token` sits at offset 8 (16 bytes
/// total on 64-bit, 12 with 4-byte `u64` alignment on 32-bit x86 —
/// `repr(C)` matches the platform C ABI in both cases).
#[cfg(not(target_arch = "x86_64"))]
#[repr(C)]
#[derive(Clone, Copy)]
pub struct EpollEvent {
    /// Readiness bitmask (`EPOLLIN` | `EPOLLOUT` | ...).
    pub events: u32,
    /// The caller's token, returned verbatim with each event.
    pub token: u64,
}

#[repr(C)]
#[derive(Clone, Copy)]
struct PollFd {
    fd: c_int,
    events: i16,
    revents: i16,
}

extern "C" {
    fn epoll_create1(flags: c_int) -> c_int;
    fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
    fn epoll_wait(epfd: c_int, events: *mut EpollEvent, maxevents: c_int, timeout: c_int) -> c_int;
    fn eventfd(initval: c_uint, flags: c_int) -> c_int;
    fn poll(fds: *mut PollFd, nfds: c_ulong, timeout: c_int) -> c_int;
    fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
    fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
    fn close(fd: c_int) -> c_int;
}

fn cvt(ret: c_int) -> io::Result<c_int> {
    if ret < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(ret)
    }
}

/// An owned epoll instance; closed on drop.
pub struct Epoll {
    fd: RawFd,
}

impl Epoll {
    /// A fresh epoll instance (close-on-exec).
    pub fn new() -> io::Result<Epoll> {
        let fd = cvt(unsafe { epoll_create1(EPOLL_CLOEXEC) })?;
        Ok(Epoll { fd })
    }

    fn ctl(&self, op: c_int, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
        let mut ev = EpollEvent { events, token };
        cvt(unsafe { epoll_ctl(self.fd, op, fd, &mut ev) }).map(|_| ())
    }

    /// Registers `fd` with interest `events`, tagging its readiness
    /// reports with `token`.
    pub fn add(&self, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, events, token)
    }

    /// Replaces `fd`'s registered interest set.
    pub fn modify(&self, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd, events, token)
    }

    /// Deregisters `fd`.
    pub fn delete(&self, fd: RawFd) -> io::Result<()> {
        self.ctl(EPOLL_CTL_DEL, fd, 0, 0)
    }

    /// Blocks up to `timeout_ms` (`-1` = forever, `0` = poll) for
    /// readiness, filling `events` from the front; returns how many
    /// entries are valid. A signal-interrupted wait reports zero events
    /// rather than an error.
    pub fn wait(&self, events: &mut [EpollEvent], timeout_ms: i32) -> io::Result<usize> {
        let n = unsafe {
            epoll_wait(
                self.fd,
                events.as_mut_ptr(),
                events.len().min(c_int::MAX as usize) as c_int,
                timeout_ms,
            )
        };
        if n < 0 {
            let err = io::Error::last_os_error();
            if err.kind() == io::ErrorKind::Interrupted {
                return Ok(0);
            }
            return Err(err);
        }
        Ok(n as usize)
    }
}

impl Drop for Epoll {
    fn drop(&mut self) {
        unsafe { close(self.fd) };
    }
}

/// An owned eventfd used as a wakeup doorbell: any thread can
/// [`signal`](EventFd::signal) it, and a reader registered on its fd
/// wakes and [`drain`](EventFd::drain)s. Nonblocking; closed on drop.
pub struct EventFd {
    fd: RawFd,
}

impl EventFd {
    /// A fresh nonblocking eventfd.
    pub fn new() -> io::Result<EventFd> {
        let fd = cvt(unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) })?;
        Ok(EventFd { fd })
    }

    /// The raw fd, for registration with an [`Epoll`] or [`wait_two_readable`].
    pub fn raw(&self) -> RawFd {
        self.fd
    }

    /// Rings the doorbell. Never blocks: the counter saturating (a
    /// reader is behind) still leaves it readable, which is all a
    /// wakeup needs.
    pub fn signal(&self) {
        let one: u64 = 1;
        unsafe { write(self.fd, (&raw const one).cast(), 8) };
    }

    /// Clears the counter so the fd stops reporting readable.
    pub fn drain(&self) {
        let mut buf: u64 = 0;
        unsafe { read(self.fd, (&raw mut buf).cast(), 8) };
    }
}

impl Drop for EventFd {
    fn drop(&mut self) {
        unsafe { close(self.fd) };
    }
}

/// Blocks until `a` or `b` is readable (or `timeout_ms` passes; `-1` =
/// forever), reporting which. The acceptor's idiom: wait on the listener
/// and the shutdown doorbell at once, with no throwaway connection.
pub fn wait_two_readable(a: RawFd, b: RawFd, timeout_ms: i32) -> io::Result<(bool, bool)> {
    let mut fds = [
        PollFd {
            fd: a,
            events: POLLIN,
            revents: 0,
        },
        PollFd {
            fd: b,
            events: POLLIN,
            revents: 0,
        },
    ];
    let n = unsafe { poll(fds.as_mut_ptr(), 2, timeout_ms) };
    if n < 0 {
        let err = io::Error::last_os_error();
        if err.kind() == io::ErrorKind::Interrupted {
            return Ok((false, false));
        }
        return Err(err);
    }
    Ok((fds[0].revents != 0, fds[1].revents != 0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eventfd_signals_and_drains() {
        let efd = EventFd::new().unwrap();
        let ep = Epoll::new().unwrap();
        ep.add(efd.raw(), EPOLLIN, 7).unwrap();
        let mut events = [EpollEvent {
            events: 0,
            token: 0,
        }; 4];
        // Unsignalled: a zero-timeout wait reports nothing.
        assert_eq!(ep.wait(&mut events, 0).unwrap(), 0);
        efd.signal();
        efd.signal();
        assert_eq!(ep.wait(&mut events, 1000).unwrap(), 1);
        let first = events[0];
        assert_eq!({ first.token }, 7);
        efd.drain();
        assert_eq!(ep.wait(&mut events, 0).unwrap(), 0);
    }

    #[test]
    fn epoll_reports_socket_readiness() {
        use std::io::Write;
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = std::net::TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();
        let ep = Epoll::new().unwrap();
        {
            use std::os::unix::io::AsRawFd;
            ep.add(server.as_raw_fd(), EPOLLIN | EPOLLRDHUP, 42)
                .unwrap();
        }
        let mut events = [EpollEvent {
            events: 0,
            token: 0,
        }; 4];
        assert_eq!(ep.wait(&mut events, 0).unwrap(), 0, "idle socket");
        client.write_all(b"ping").unwrap();
        assert_eq!(ep.wait(&mut events, 1000).unwrap(), 1);
        let first = events[0];
        assert_eq!({ first.token }, 42);
        assert_ne!({ first.events } & EPOLLIN, 0);
        drop(client);
        assert_eq!(ep.wait(&mut events, 1000).unwrap(), 1);
        let first = events[0];
        assert_ne!({ first.events } & (EPOLLRDHUP | EPOLLHUP | EPOLLIN), 0);
    }

    #[test]
    fn wait_two_readable_sees_the_doorbell() {
        let a = EventFd::new().unwrap();
        let b = EventFd::new().unwrap();
        assert_eq!(
            wait_two_readable(a.raw(), b.raw(), 0).unwrap(),
            (false, false)
        );
        b.signal();
        assert_eq!(
            wait_two_readable(a.raw(), b.raw(), 1000).unwrap(),
            (false, true)
        );
    }
}
