//! Load generation: open- and closed-loop clients with zipfian skew.
//!
//! Two pacing disciplines, because they answer different questions:
//!
//! * **Closed loop** — each connection fires its next request the
//!   moment the previous response lands. Measures *capacity*: the
//!   sustained QPS the server can absorb at a given concurrency, with
//!   latency under saturation.
//! * **Open loop** — requests depart on a fixed schedule whether or not
//!   earlier ones have returned, and latency is measured from the
//!   *scheduled* departure, so a server that stalls accrues the stall
//!   in every queued request's latency rather than silently slowing the
//!   clock (the coordinated-omission trap).
//!
//! Tenant and probe choice are zipf-distributed: real multi-tenant
//! traffic concentrates on a few hot tenants and hot lookup keys, and
//! uniform traffic would understate both the win from promotion (hot
//! tenants stay hot) and the cache-residency behaviour of the dispatch
//! directory.

use std::collections::BTreeMap;
use std::io;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use cpplookup_obs::{Histogram, HistogramSnapshot};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::client::{Client, ClientError};
use crate::protocol::WireSpan;

/// One tenant a load run targets, with the probe vocabulary to draw
/// from (rank 0 is the hottest under zipf skew).
#[derive(Clone, Debug)]
pub struct TenantTarget {
    /// Tenant name as loaded on the server.
    pub name: String,
    /// `(class, member)` name pairs known to exist in the tenant.
    pub probes: Vec<(String, String)>,
}

/// Request pacing discipline.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Pacing {
    /// Fire the next request when the previous response lands.
    Closed,
    /// Fire on a fixed schedule of `rate` requests/second aggregate
    /// across all connections; latency is measured from the scheduled
    /// departure time.
    Open {
        /// Aggregate request rate, requests per second.
        rate: f64,
    },
}

/// A load run's shape.
#[derive(Clone, Debug)]
pub struct LoadConfig {
    /// Server address, `host:port`.
    pub addr: String,
    /// Concurrent connections.
    pub connections: usize,
    /// Wall-clock run length.
    pub duration: Duration,
    /// Closed or open loop.
    pub pacing: Pacing,
    /// Zipf exponent over tenant ranks (0.0 = uniform).
    pub tenant_skew: f64,
    /// Zipf exponent over probe ranks within a tenant (0.0 = uniform).
    pub probe_skew: f64,
    /// Probes per request: 1 sends `QUERY`, larger sends `BATCH`.
    pub batch: usize,
    /// RNG seed; worker `i` derives its stream from `seed + i`.
    pub seed: u64,
    /// Send every request with the TRACE flag and aggregate the
    /// server's per-phase attribution into the report.
    pub trace: bool,
    /// Every Nth request per worker is an `EDIT` adding a fresh member
    /// to the sampled tenant instead of a read (0 = reads only) — the
    /// write mix that drives the durable edit log in E25.
    pub edit_every: u64,
}

impl Default for LoadConfig {
    fn default() -> Self {
        LoadConfig {
            addr: String::new(),
            connections: 1,
            duration: Duration::from_secs(1),
            pacing: Pacing::Closed,
            tenant_skew: 1.0,
            probe_skew: 1.0,
            batch: 1,
            seed: 0xC0FFEE,
            trace: false,
            edit_every: 0,
        }
    }
}

/// What a run measured.
#[derive(Clone, Debug)]
pub struct LoadReport {
    /// Requests sent (a batch counts once).
    pub requests: u64,
    /// Probes answered (a batch counts its length).
    pub probes: u64,
    /// Error responses received (transport failures end a worker and
    /// also count here).
    pub errors: u64,
    /// Edit requests applied (counted inside
    /// [`requests`](LoadReport::requests) too).
    pub edits: u64,
    /// Wall-clock elapsed.
    pub elapsed: Duration,
    /// Per-request latency, nanoseconds.
    pub latency: HistogramSnapshot,
    /// Per-probe latency, nanoseconds: each request's latency divided
    /// evenly over the probes it carried, observed once per probe.
    /// Makes batched and unbatched runs comparable — a 16-probe batch
    /// is one slow *request* but sixteen fast *probes* — which is the
    /// comparison the E26 batch experiment reports.
    pub probe_latency: HistogramSnapshot,
    /// Traced responses aggregated into [`phases`](LoadReport::phases).
    pub traced: u64,
    /// Total server-side nanoseconds per request phase, summed over
    /// every traced response (empty unless the run traced).
    pub phases: BTreeMap<String, u64>,
}

impl LoadReport {
    /// Requests per second over the run.
    pub fn qps(&self) -> f64 {
        self.requests as f64 / self.elapsed.as_secs_f64().max(1e-9)
    }

    /// Probes per second over the run.
    pub fn pps(&self) -> f64 {
        self.probes as f64 / self.elapsed.as_secs_f64().max(1e-9)
    }

    /// Median request latency in microseconds (bucket upper bound).
    pub fn p50_us(&self) -> f64 {
        self.latency.quantile(0.50) as f64 / 1e3
    }

    /// Tail request latency in microseconds (bucket upper bound).
    pub fn p99_us(&self) -> f64 {
        self.latency.quantile(0.99) as f64 / 1e3
    }

    /// Median per-probe latency in microseconds (bucket upper bound).
    pub fn probe_p50_us(&self) -> f64 {
        self.probe_latency.quantile(0.50) as f64 / 1e3
    }

    /// Tail per-probe latency in microseconds (bucket upper bound).
    pub fn probe_p99_us(&self) -> f64 {
        self.probe_latency.quantile(0.99) as f64 / 1e3
    }

    /// One human-readable summary line (plus a per-phase breakdown
    /// when the run traced).
    pub fn render(&self) -> String {
        let mut out = format!(
            "{} requests ({} probes) in {:.2}s: {:.0} req/s, {:.0} probes/s, \
             p50 {:.1}us p99 {:.1}us, per-probe p50 {:.1}us p99 {:.1}us, {} errors",
            self.requests,
            self.probes,
            self.elapsed.as_secs_f64(),
            self.qps(),
            self.pps(),
            self.p50_us(),
            self.p99_us(),
            self.probe_p50_us(),
            self.probe_p99_us(),
            self.errors,
        );
        if self.edits > 0 {
            out.push_str(&format!(", {} edits", self.edits));
        }
        if self.traced > 0 {
            let total: u64 = self.phases.values().sum();
            out.push_str(&format!(
                "\nserver-side attribution over {} traced requests:",
                self.traced
            ));
            // Heaviest phase first; ties break on the label.
            let mut ranked: Vec<(&String, &u64)> = self.phases.iter().collect();
            ranked.sort_by(|a, b| b.1.cmp(a.1).then(a.0.cmp(b.0)));
            for (label, ns) in ranked {
                out.push_str(&format!(
                    "\n  {label:>16}: {:>9.1}us/req  {:5.1}%",
                    *ns as f64 / self.traced as f64 / 1e3,
                    100.0 * *ns as f64 / total.max(1) as f64,
                ));
            }
        }
        out
    }
}

/// A zipf sampler over ranks `0..n`: rank `i` is drawn with probability
/// proportional to `(i+1)^-s`. `s = 0` degenerates to uniform.
pub struct Zipf {
    cumulative: Vec<f64>,
}

impl Zipf {
    /// A sampler over `n` ranks with exponent `s`.
    pub fn new(n: usize, s: f64) -> Zipf {
        let mut cumulative = Vec::with_capacity(n.max(1));
        let mut total = 0.0;
        for i in 0..n.max(1) {
            total += 1.0 / ((i + 1) as f64).powf(s);
            cumulative.push(total);
        }
        Zipf { cumulative }
    }

    /// Draws one rank.
    pub fn sample(&self, rng: &mut SmallRng) -> usize {
        let total = *self.cumulative.last().unwrap();
        let x = rng.gen_range(0.0..total);
        self.cumulative.partition_point(|&c| c <= x)
    }
}

/// Runs the configured load against `targets`, blocking until the
/// duration elapses and every worker has drained.
///
/// # Errors
///
/// Configuration errors (no targets, a target with no probes) and
/// total connection failure — a run where *no* worker could connect.
pub fn run(config: &LoadConfig, targets: &[TenantTarget]) -> io::Result<LoadReport> {
    if targets.is_empty() || targets.iter().any(|t| t.probes.is_empty()) {
        return Err(io::Error::other("loadgen needs targets with probes"));
    }
    let targets: Arc<Vec<TenantTarget>> = Arc::new(targets.to_vec());
    let tenant_zipf = Arc::new(Zipf::new(targets.len(), config.tenant_skew));
    let probe_zipfs: Arc<Vec<Zipf>> = Arc::new(
        targets
            .iter()
            .map(|t| Zipf::new(t.probes.len(), config.probe_skew))
            .collect(),
    );
    let errors = Arc::new(AtomicU64::new(0));
    let connected = Arc::new(AtomicU64::new(0));
    let start = Instant::now();
    let deadline = start + config.duration;
    let workers: Vec<_> = (0..config.connections.max(1))
        .map(|worker| {
            let (config, targets) = (config.clone(), Arc::clone(&targets));
            let (tenant_zipf, probe_zipfs) = (Arc::clone(&tenant_zipf), Arc::clone(&probe_zipfs));
            let (errors, connected) = (Arc::clone(&errors), Arc::clone(&connected));
            thread::spawn(move || {
                let hist = Histogram::latency_ns();
                let probe_hist = Histogram::latency_ns();
                let mut traced = 0u64;
                let mut phases: BTreeMap<String, u64> = BTreeMap::new();
                let mut rng = SmallRng::seed_from_u64(config.seed.wrapping_add(worker as u64));
                let Ok(mut client) =
                    Client::connect(config.addr.as_str(), Some(Duration::from_secs(10)))
                else {
                    errors.fetch_add(1, Ordering::Relaxed);
                    return (
                        0u64,
                        0u64,
                        hist.snapshot(),
                        probe_hist.snapshot(),
                        0u64,
                        BTreeMap::new(),
                        0u64,
                    );
                };
                connected.fetch_add(1, Ordering::Relaxed);
                // Open loop: this worker owns every `connections`-th
                // slot of the aggregate schedule.
                let interval = match config.pacing {
                    Pacing::Open { rate } => Some(Duration::from_secs_f64(
                        config.connections.max(1) as f64 / rate.max(1e-9),
                    )),
                    Pacing::Closed => None,
                };
                let mut next_departure = Instant::now();
                let (mut requests, mut probes, mut edits) = (0u64, 0u64, 0u64);
                while Instant::now() < deadline {
                    let measure_from = if let Some(interval) = interval {
                        let now = Instant::now();
                        if next_departure > now {
                            thread::sleep(next_departure - now);
                        }
                        let scheduled = next_departure;
                        next_departure += interval;
                        scheduled
                    } else {
                        Instant::now()
                    };
                    let rank = tenant_zipf.sample(&mut rng);
                    let target = &targets[rank];
                    let zipf = &probe_zipfs[rank];
                    let outcome =
                        if config.edit_every > 0 && (requests + 1) % config.edit_every == 0 {
                            // A fresh, per-worker-unique member name keeps
                            // every edit applicable (and the log growing).
                            let (class, _) = &target.probes[zipf.sample(&mut rng)];
                            let directive = format!("member {class} lg_{worker}_{requests}");
                            client.edit(&target.name, &directive).map(|_| {
                                edits += 1;
                                1
                            })
                        } else if config.batch > 1 {
                            let picked: Vec<(String, String)> = (0..config.batch)
                                .map(|_| target.probes[zipf.sample(&mut rng)].clone())
                                .collect();
                            if config.trace {
                                client
                                    .batch_traced(&target.name, &picked)
                                    .map(|(o, spans)| {
                                        traced += 1;
                                        merge_phases(&mut phases, &spans);
                                        o.len() as u64
                                    })
                            } else {
                                client.batch(&target.name, &picked).map(|o| o.len() as u64)
                            }
                        } else {
                            let (class, member) = &target.probes[zipf.sample(&mut rng)];
                            if config.trace {
                                client.query_traced(&target.name, class, member).map(
                                    |(_, spans)| {
                                        traced += 1;
                                        merge_phases(&mut phases, &spans);
                                        1
                                    },
                                )
                            } else {
                                client.query(&target.name, class, member).map(|_| 1)
                            }
                        };
                    match outcome {
                        Ok(n) => {
                            requests += 1;
                            probes += n;
                            let elapsed_ns = measure_from.elapsed().as_nanos() as u64;
                            hist.observe(elapsed_ns);
                            // The request's cost amortized over its
                            // probes, observed once per probe so the
                            // distribution weights by probe count.
                            let per_probe = elapsed_ns / n.max(1);
                            for _ in 0..n {
                                probe_hist.observe(per_probe);
                            }
                        }
                        Err(ClientError::Server { .. }) => {
                            errors.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(_) => {
                            // Transport is gone; this worker is done.
                            errors.fetch_add(1, Ordering::Relaxed);
                            break;
                        }
                    }
                }
                (
                    requests,
                    probes,
                    hist.snapshot(),
                    probe_hist.snapshot(),
                    traced,
                    phases,
                    edits,
                )
            })
        })
        .collect();
    let mut requests = 0;
    let mut probes = 0;
    let mut latency = Histogram::latency_ns().snapshot();
    let mut probe_latency = Histogram::latency_ns().snapshot();
    let mut traced = 0;
    let mut phases: BTreeMap<String, u64> = BTreeMap::new();
    let mut edits = 0;
    for w in workers {
        let (r, p, h, ph_hist, t, ph, e) = w.join().expect("loadgen worker panicked");
        requests += r;
        probes += p;
        latency.merge(&h);
        probe_latency.merge(&ph_hist);
        traced += t;
        edits += e;
        for (label, ns) in ph {
            *phases.entry(label).or_insert(0) += ns;
        }
    }
    if connected.load(Ordering::Relaxed) == 0 {
        return Err(io::Error::other(format!(
            "no loadgen worker could connect to {}",
            config.addr
        )));
    }
    Ok(LoadReport {
        requests,
        probes,
        errors: errors.load(Ordering::Relaxed),
        edits,
        elapsed: start.elapsed(),
        latency,
        probe_latency,
        traced,
        phases,
    })
}

/// One level of a connection ramp: the full report at that concurrency
/// plus the process-wide resource readings taken while the level's
/// connections were still open.
#[derive(Clone, Debug)]
pub struct RampLevel {
    /// Concurrent connections at this level.
    pub connections: usize,
    /// The level's load report.
    pub report: LoadReport,
    /// Peak open file descriptors in *this* (loadgen) process sampled
    /// while the level ran — on a loopback run each connection holds
    /// one fd at each end, so this tracks the server's fd footprint
    /// too. `None` where `/proc` is unavailable.
    pub open_fds: Option<usize>,
    /// Peak resident set size of this process sampled while the level
    /// ran (`None` where `/proc` is unavailable). Meaningful for the
    /// server's footprint when the server shares the process, as the
    /// bench harness arranges.
    pub rss_bytes: Option<u64>,
}

/// Open fd count of this process, read from `/proc/self/fd`.
pub fn open_fds() -> Option<usize> {
    Some(std::fs::read_dir("/proc/self/fd").ok()?.count())
}

/// Resident set size of this process in bytes, from `/proc/self/status`
/// (`VmRSS` is reported in kB).
pub fn rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmRSS:"))?;
    let kb: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb * 1024)
}

/// Runs the load once per requested connection level — the
/// `--ramp` mode — holding everything else in `config` fixed. A
/// sampler thread reads the process fd/RSS footprint every few
/// milliseconds *while* each level's connections are up and keeps the
/// peak, since the workers close their sockets before [`run`] returns.
///
/// # Errors
///
/// As [`run`]: the first failing level aborts the ramp.
pub fn run_ramp(
    config: &LoadConfig,
    targets: &[TenantTarget],
    levels: &[usize],
) -> io::Result<Vec<RampLevel>> {
    let mut out = Vec::with_capacity(levels.len());
    for &connections in levels {
        let level_config = LoadConfig {
            connections,
            ..config.clone()
        };
        let stop = Arc::new(AtomicU64::new(0));
        let sampler = {
            let stop = Arc::clone(&stop);
            thread::spawn(move || {
                let (mut peak_fds, mut peak_rss) = (None, None);
                while stop.load(Ordering::Relaxed) == 0 {
                    peak_fds = peak_fds.max(open_fds());
                    peak_rss = peak_rss.max(rss_bytes());
                    thread::sleep(Duration::from_millis(20));
                }
                (peak_fds, peak_rss)
            })
        };
        let result = run(&level_config, targets);
        stop.store(1, Ordering::Relaxed);
        let (open_fds, rss_bytes) = sampler.join().expect("ramp sampler panicked");
        out.push(RampLevel {
            connections,
            report: result?,
            open_fds,
            rss_bytes,
        });
    }
    Ok(out)
}

/// Renders a ramp as an aligned per-level table.
pub fn render_ramp(levels: &[RampLevel]) -> String {
    let mut out =
        String::from("conns      qps       p50us      p99us     errors    open-fds     rss-mb");
    for level in levels {
        let fds = level
            .open_fds
            .map_or_else(|| "-".to_owned(), |n| n.to_string());
        let rss = level.rss_bytes.map_or_else(
            || "-".to_owned(),
            |b| format!("{:.1}", b as f64 / (1024.0 * 1024.0)),
        );
        out.push_str(&format!(
            "\n{:>5} {:>8.0} {:>10.1} {:>10.1} {:>10} {:>11} {:>10}",
            level.connections,
            level.report.qps(),
            level.report.p50_us(),
            level.report.p99_us(),
            level.report.errors,
            fds,
            rss,
        ));
    }
    out
}

/// Accumulates one traced response's child-phase durations (the spans
/// whose parent is the root) into the per-phase totals.
fn merge_phases(phases: &mut BTreeMap<String, u64>, spans: &[WireSpan]) {
    let root = spans.first().map(|s| s.id);
    for s in spans {
        if s.parent_id().is_some() && s.parent_id() == root {
            *phases.entry(s.label.clone()).or_insert(0) += s.duration_ns;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zipf_skews_toward_low_ranks() {
        let zipf = Zipf::new(100, 1.2);
        let mut rng = SmallRng::seed_from_u64(42);
        let mut counts = [0usize; 100];
        for _ in 0..10_000 {
            counts[zipf.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[10], "{} <= {}", counts[0], counts[10]);
        assert!(counts[0] > 10_000 / 20, "rank 0 should dominate");
    }

    #[test]
    fn zipf_zero_exponent_is_roughly_uniform() {
        let zipf = Zipf::new(4, 0.0);
        let mut rng = SmallRng::seed_from_u64(7);
        let mut counts = [0usize; 4];
        for _ in 0..8_000 {
            counts[zipf.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            assert!(
                (1600..2400).contains(&c),
                "uniform-ish expected: {counts:?}"
            );
        }
    }

    #[test]
    fn zipf_single_rank() {
        let zipf = Zipf::new(1, 1.0);
        let mut rng = SmallRng::seed_from_u64(1);
        assert_eq!(zipf.sample(&mut rng), 0);
    }

    #[test]
    fn run_rejects_empty_targets() {
        let cfg = LoadConfig {
            addr: "127.0.0.1:1".into(),
            ..LoadConfig::default()
        };
        assert!(run(&cfg, &[]).is_err());
        assert!(run(
            &cfg,
            &[TenantTarget {
                name: "t".into(),
                probes: vec![],
            }]
        )
        .is_err());
    }
}
