//! Shared command-line plumbing for the server and load-generator
//! front ends.
//!
//! Both standalone bins (`cpplookup-serverd`, `cpplookup-loadgen`) and
//! the main CLI's `serve` / `loadgen` subcommands parse the same flags
//! and run the same bodies; keeping the logic here means the two entry
//! points cannot drift apart.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use crate::client::Client;
use crate::loadgen::{self, LoadConfig, Pacing, TenantTarget};
use crate::protocol::WireSpan;
use crate::replication::{FollowSource, Follower, FollowerConfig};
use crate::server::{Server, ServerConfig};

/// Usage text for the server front end.
pub const SERVE_USAGE: &str = "[--addr HOST:PORT] [--max-connections N] \
     [--read-timeout-secs N] [--tenant NAME=PATH]... [--no-obs] \
     [--recorder-capacity N] [--slow-threshold-ms N] [--tenant-cardinality N] \
     [--shards N] [--io-model threads|epoll] [--reactors N] [--max-frames-per-turn N] \
     [--wal PATH] [--fsync-every N] [--retain-epochs N] [--read-only] \
     [--compact-every-secs N] [--compact-dir DIR] \
     [--follow ADDR | --follow-log PATH] [--follower-id NAME]";

/// Usage text for the load-generator front end.
pub const LOADGEN_USAGE: &str = "--addr HOST:PORT --snapshot PATH [--tenants N] [--load] \
     [--connections N] [--ramp N,N,...] [--duration-secs N] [--rate QPS] [--batch-size N] \
     [--tenant-skew S] [--probe-skew S] [--seed N] [--trace] [--edit-every N]";

/// Usage text for the one-shot wire query front end.
pub const QUERY_USAGE: &str =
    "query --addr HOST:PORT --tenant NAME CLASS MEMBER [--trace] [--as-of-epoch N]";

/// A parsed `serve` invocation: the server's own configuration plus the
/// pieces that live beside it (the follower loop, the compaction
/// schedule).
pub struct ServeArgs {
    /// The server configuration.
    pub config: ServerConfig,
    /// Follower mode: replicate a leader's edit log into this farm.
    pub follow: Option<FollowSource>,
    /// The name this follower reports in its ACKs.
    pub follower_id: String,
    /// Compact the edit log on this period.
    pub compact_every: Option<Duration>,
    /// Where compaction checkpoints land (default: the log path with
    /// a `.ckpt` extension, as a directory).
    pub compact_dir: Option<PathBuf>,
}

/// Parses server flags into a [`ServeArgs`].
///
/// # Errors
///
/// A one-line description of the offending flag.
pub fn parse_server_args(args: &[String]) -> Result<ServeArgs, String> {
    let mut out = ServeArgs {
        config: ServerConfig::default(),
        follow: None,
        follower_id: "follower".to_owned(),
        compact_every: None,
        compact_dir: None,
    };
    let config = &mut out.config;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--addr" => {
                config.addr = it.next().ok_or("--addr wants HOST:PORT")?.clone();
            }
            "--max-connections" => {
                config.max_connections = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--max-connections wants a number")?;
            }
            "--read-timeout-secs" => {
                let n: u64 = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--read-timeout-secs wants a number (0 = no timeout)")?;
                config.read_timeout = (n > 0).then(|| Duration::from_secs(n));
            }
            "--tenant" => {
                let spec = it.next().ok_or("--tenant wants NAME=PATH")?;
                match spec.split_once('=') {
                    Some((name, path)) if !name.is_empty() && !path.is_empty() => {
                        config.preload.push((name.to_owned(), path.into()));
                    }
                    _ => return Err(format!("--tenant wants NAME=PATH, got `{spec}`")),
                }
            }
            "--no-obs" => config.obs.enabled = false,
            "--recorder-capacity" => {
                config.obs.recorder_capacity = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n > 0)
                    .ok_or("--recorder-capacity wants a positive number")?;
            }
            "--slow-threshold-ms" => {
                let ms: u64 = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--slow-threshold-ms wants a number")?;
                config.obs.slow_threshold = Duration::from_millis(ms);
            }
            "--tenant-cardinality" => {
                config.obs.tenant_cardinality = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n > 0)
                    .ok_or("--tenant-cardinality wants a positive number")?;
            }
            "--wal" => {
                config.wal_path = Some(it.next().ok_or("--wal wants PATH")?.into());
            }
            "--fsync-every" => {
                config.fsync_every = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n > 0)
                    .ok_or("--fsync-every wants a positive number")?;
            }
            "--retain-epochs" => {
                config.retain_epochs = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n > 0)
                    .ok_or("--retain-epochs wants a positive number")?;
            }
            "--read-only" => config.read_only = true,
            "--shards" => {
                config.shards = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--shards wants a worker count (0 = answer on connection threads)")?;
            }
            "--io-model" => {
                config.io_model = it
                    .next()
                    .and_then(|v| crate::server::IoModel::parse(v))
                    .ok_or("--io-model wants `threads` or `epoll`")?;
            }
            "--reactors" => {
                config.reactors = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--reactors wants a thread count (0 = one per core)")?;
            }
            "--max-frames-per-turn" => {
                config.max_frames_per_turn = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n > 0)
                    .ok_or("--max-frames-per-turn wants a positive frame count")?;
            }
            "--follow" => {
                let addr = it.next().ok_or("--follow wants HOST:PORT")?.clone();
                out.follow = Some(FollowSource::Wire(addr));
                config.read_only = true;
            }
            "--follow-log" => {
                let path = it.next().ok_or("--follow-log wants PATH")?;
                out.follow = Some(FollowSource::File(path.into()));
                config.read_only = true;
            }
            "--follower-id" => {
                out.follower_id = it.next().ok_or("--follower-id wants NAME")?.clone();
            }
            "--compact-every-secs" => {
                let n: u64 = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n > 0)
                    .ok_or("--compact-every-secs wants a positive number")?;
                out.compact_every = Some(Duration::from_secs(n));
            }
            "--compact-dir" => {
                out.compact_dir = Some(it.next().ok_or("--compact-dir wants DIR")?.into());
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    if out.compact_every.is_some() && out.config.wal_path.is_none() {
        return Err("--compact-every-secs needs --wal".to_owned());
    }
    Ok(out)
}

/// Starts the server — plus the follower loop with `--follow` /
/// `--follow-log` and the periodic edit-log compactor with
/// `--compact-every-secs` — announces `listening on ADDR` on stderr
/// (tests and wrapper scripts read the real port from that line when
/// port 0 was requested), and serves until the process is killed.
///
/// # Errors
///
/// Bind or preload failure; on success this never returns.
pub fn serve_forever(args: ServeArgs) -> std::io::Error {
    let wal_path = args.config.wal_path.clone();
    let io_model = args.config.io_model;
    let server = match Server::start(args.config) {
        Ok(server) => server,
        Err(e) => return e,
    };
    // The announcement line is a parse contract: wrapper scripts and
    // the CLI e2e test read everything after "listening on " as the
    // bound address (port 0 requests land on a real port). Anything
    // else goes on its own line — written fallibly, because a wrapper
    // that only wanted the address may close our stderr right after
    // reading it, and `eprintln!` panics on the resulting EPIPE.
    eprintln!("listening on {}", server.addr());
    {
        use std::io::Write as _;
        let _ = writeln!(std::io::stderr(), "io model: {}", io_model.label());
    }
    if let Some(source) = args.follow {
        let follower = Follower::start(
            Arc::clone(server.farm()),
            FollowerConfig {
                source,
                follower_id: args.follower_id,
                ..FollowerConfig::default()
            },
        );
        // The follower runs for the life of the process; there is no
        // clean shutdown path past this point, so leak the handle
        // rather than join it in a Drop that never runs.
        std::mem::forget(follower);
    }
    if let Some(every) = args.compact_every {
        let dir = args
            .compact_dir
            .or_else(|| wal_path.map(|p| p.with_extension("ckpt")))
            .expect("--compact-every-secs needs --wal");
        let farm = Arc::clone(server.farm());
        std::thread::spawn(move || loop {
            std::thread::sleep(every);
            match farm.compact_wal(&dir) {
                Ok(dropped) => eprintln!("compacted edit log: {dropped} records dropped"),
                Err(e) => eprintln!("edit log compaction failed: {e:?}"),
            }
        });
    }
    loop {
        std::thread::sleep(Duration::from_secs(3600));
    }
}

/// Parsed load-generator invocation.
pub struct LoadgenArgs {
    /// The run shape (addr filled in from `--addr`).
    pub config: LoadConfig,
    /// Snapshot path opened locally for the probe vocabulary (and sent
    /// in `LOAD` requests with `--load`).
    pub snapshot: String,
    /// Number of tenants to fan the snapshot out as (`t0..tN-1`).
    pub tenants: usize,
    /// Whether to issue `LOAD` for each tenant before the run.
    pub load_first: bool,
    /// Connection-ramp mode: run once per listed concurrency level and
    /// report per-level QPS/latency plus process fd/RSS footprint
    /// (empty = a single run at `config.connections`).
    pub ramp: Vec<usize>,
}

/// Parses load-generator flags.
///
/// # Errors
///
/// A one-line description of the offending flag.
pub fn parse_loadgen_args(args: &[String]) -> Result<LoadgenArgs, String> {
    let mut out = LoadgenArgs {
        config: LoadConfig {
            connections: 4,
            duration: Duration::from_secs(2),
            ..LoadConfig::default()
        },
        snapshot: String::new(),
        tenants: 1,
        load_first: false,
        ramp: Vec::new(),
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--addr" => out.config.addr = it.next().ok_or("--addr wants HOST:PORT")?.clone(),
            "--snapshot" => out.snapshot = it.next().ok_or("--snapshot wants PATH")?.clone(),
            "--load" => out.load_first = true,
            "--tenants" => {
                out.tenants = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n > 0)
                    .ok_or("--tenants wants a positive number")?;
            }
            "--connections" => {
                out.config.connections = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n > 0)
                    .ok_or("--connections wants a positive number")?;
            }
            "--ramp" => {
                let levels = it
                    .next()
                    .map(|v| {
                        v.split(',')
                            .map(|part| part.trim().parse::<usize>())
                            .collect::<Result<Vec<usize>, _>>()
                    })
                    .and_then(Result::ok)
                    .filter(|levels| !levels.is_empty() && levels.iter().all(|&n| n > 0))
                    .ok_or("--ramp wants a comma-separated list of connection counts")?;
                out.ramp = levels;
            }
            "--duration-secs" => {
                let s: f64 = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&s| s > 0.0)
                    .ok_or("--duration-secs wants a positive number")?;
                out.config.duration = Duration::from_secs_f64(s);
            }
            "--rate" => {
                let rate: f64 = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&r| r > 0.0)
                    .ok_or("--rate wants a positive request rate")?;
                out.config.pacing = Pacing::Open { rate };
            }
            // `--batch-size` is the documented spelling; `--batch` is
            // kept as an alias for scripts written against earlier
            // releases.
            "--batch" | "--batch-size" => {
                out.config.batch = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n > 0)
                    .ok_or("--batch-size wants a positive probe count")?;
            }
            "--tenant-skew" => {
                out.config.tenant_skew = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--tenant-skew wants a number")?;
            }
            "--probe-skew" => {
                out.config.probe_skew = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--probe-skew wants a number")?;
            }
            "--seed" => {
                out.config.seed = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--seed wants a number")?;
            }
            "--trace" => out.config.trace = true,
            "--edit-every" => {
                out.config.edit_every = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--edit-every wants a number (0 = reads only)")?;
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    if out.config.addr.is_empty() {
        return Err("--addr is required".to_owned());
    }
    if out.snapshot.is_empty() {
        return Err("--snapshot is required".to_owned());
    }
    Ok(out)
}

/// Enumerates every `(class, member)` pair with a lookup entry in the
/// snapshot — the live probe vocabulary a load run draws from.
pub fn live_probes(table: &cpplookup_snapshot::SnapshotTable) -> Vec<(String, String)> {
    let mut probes = Vec::new();
    for (c, m, _) in table.entries() {
        if let (Some(class), Some(member)) = (table.class_name(c), table.member_name(m)) {
            probes.push((class.to_owned(), member.to_owned()));
        }
    }
    probes
}

/// Runs a parsed load-generator invocation end to end: opens the
/// snapshot locally for probe names, optionally `LOAD`s the tenants,
/// drives the load, and returns the human summary line.
///
/// # Errors
///
/// A one-line description of what failed.
pub fn run_loadgen(args: &LoadgenArgs) -> Result<String, String> {
    let table = cpplookup_snapshot::SnapshotTable::load(&args.snapshot)
        .map_err(|e| format!("cannot open snapshot `{}`: {e}", args.snapshot))?;
    let probes = live_probes(&table);
    if probes.is_empty() {
        return Err(format!(
            "snapshot `{}` has no lookup entries to probe",
            args.snapshot
        ));
    }
    let targets: Vec<TenantTarget> = (0..args.tenants)
        .map(|i| TenantTarget {
            name: format!("t{i}"),
            probes: probes.clone(),
        })
        .collect();
    if args.load_first {
        let mut client = Client::connect(args.config.addr.as_str(), Some(Duration::from_secs(10)))
            .map_err(|e| format!("cannot connect to {}: {e}", args.config.addr))?;
        for t in &targets {
            client
                .load(&t.name, &args.snapshot)
                .map_err(|e| format!("LOAD {}: {e}", t.name))?;
        }
    }
    if !args.ramp.is_empty() {
        let levels =
            loadgen::run_ramp(&args.config, &targets, &args.ramp).map_err(|e| e.to_string())?;
        return Ok(loadgen::render_ramp(&levels));
    }
    let report = loadgen::run(&args.config, &targets).map_err(|e| e.to_string())?;
    Ok(report.render())
}

/// Parsed one-shot wire query invocation.
pub struct QueryArgs {
    /// Server address, `host:port`.
    pub addr: String,
    /// Tenant to query.
    pub tenant: String,
    /// Class name.
    pub class: String,
    /// Member name.
    pub member: String,
    /// Ask the server for the span tree and print the breakdown.
    pub trace: bool,
    /// Resolve against a retained past epoch instead of the current one.
    pub as_of: Option<u64>,
}

/// Parses one-shot query flags (positional `CLASS MEMBER` plus flags).
///
/// # Errors
///
/// A one-line description of the offending flag.
pub fn parse_query_args(args: &[String]) -> Result<QueryArgs, String> {
    let mut out = QueryArgs {
        addr: String::new(),
        tenant: String::new(),
        class: String::new(),
        member: String::new(),
        trace: false,
        as_of: None,
    };
    let mut positional = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--addr" => out.addr = it.next().ok_or("--addr wants HOST:PORT")?.clone(),
            "--tenant" => out.tenant = it.next().ok_or("--tenant wants NAME")?.clone(),
            "--trace" => out.trace = true,
            "--as-of-epoch" => {
                out.as_of = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .ok_or("--as-of-epoch wants an epoch number")?,
                );
            }
            other if !other.starts_with("--") => positional.push(other.to_owned()),
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    match positional.as_slice() {
        [class, member] => {
            out.class = class.clone();
            out.member = member.clone();
        }
        _ => return Err("expected exactly CLASS MEMBER".to_owned()),
    }
    if out.addr.is_empty() {
        return Err("--addr is required".to_owned());
    }
    if out.tenant.is_empty() {
        return Err("--tenant is required".to_owned());
    }
    if out.trace && out.as_of.is_some() {
        return Err("--trace and --as-of-epoch cannot be combined".to_owned());
    }
    Ok(out)
}

/// Runs one wire query and renders the outcome — with `--trace`, the
/// server's span tree follows as an attributed breakdown.
///
/// # Errors
///
/// A one-line description of what failed.
pub fn run_wire_query(args: &QueryArgs) -> Result<String, String> {
    let mut client = Client::connect(args.addr.as_str(), Some(Duration::from_secs(10)))
        .map_err(|e| format!("cannot connect to {}: {e}", args.addr))?;
    if args.trace {
        let (outcome, spans) = client
            .query_traced(&args.tenant, &args.class, &args.member)
            .map_err(|e| e.to_string())?;
        Ok(format!("{outcome:?}\n{}", render_spans(&spans)))
    } else {
        let outcome = client
            .query_at(&args.tenant, &args.class, &args.member, args.as_of)
            .map_err(|e| e.to_string())?;
        Ok(format!("{outcome:?}"))
    }
}

/// Renders a span tree as an indented, percent-attributed breakdown —
/// what `--trace` prints under the outcome.
pub fn render_spans(spans: &[WireSpan]) -> String {
    let total = spans
        .iter()
        .find(|s| s.parent_id().is_none())
        .map_or(0, |root| root.duration_ns);
    let mut out = String::new();
    for s in spans {
        let indent = if s.parent_id().is_none() { "" } else { "  " };
        out.push_str(&format!(
            "{indent}{:<18} {:>9.1}us  {:5.1}%\n",
            s.label,
            s.duration_ns as f64 / 1e3,
            100.0 * s.duration_ns as f64 / total.max(1) as f64,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strs(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| (*s).to_owned()).collect()
    }

    #[test]
    fn server_args_parse() {
        let cfg = parse_server_args(&strs(&[
            "--addr",
            "127.0.0.1:7777",
            "--max-connections",
            "9",
            "--read-timeout-secs",
            "0",
            "--tenant",
            "a=/tmp/a.snap",
        ]))
        .unwrap()
        .config;
        assert_eq!(cfg.addr, "127.0.0.1:7777");
        assert_eq!(cfg.max_connections, 9);
        assert_eq!(cfg.read_timeout, None);
        assert_eq!(cfg.preload.len(), 1);
        assert!(parse_server_args(&strs(&["--tenant", "nope"])).is_err());
        assert!(parse_server_args(&strs(&["--wat"])).is_err());
    }

    #[test]
    fn server_replication_flags_parse() {
        let args = parse_server_args(&strs(&[
            "--wal",
            "/tmp/edits.wal",
            "--fsync-every",
            "8",
            "--retain-epochs",
            "4",
            "--compact-every-secs",
            "60",
            "--compact-dir",
            "/tmp/ckpt",
        ]))
        .unwrap();
        assert_eq!(
            args.config.wal_path.as_deref(),
            Some("/tmp/edits.wal".as_ref())
        );
        assert_eq!(args.config.fsync_every, 8);
        assert_eq!(args.config.retain_epochs, 4);
        assert!(!args.config.read_only);
        assert_eq!(args.compact_every, Some(Duration::from_secs(60)));
        assert_eq!(args.compact_dir.as_deref(), Some("/tmp/ckpt".as_ref()));
        assert!(
            parse_server_args(&strs(&["--compact-every-secs", "60"])).is_err(),
            "compaction without a log"
        );
        assert!(parse_server_args(&strs(&["--fsync-every", "0"])).is_err());
        assert!(parse_server_args(&strs(&["--retain-epochs", "0"])).is_err());
    }

    #[test]
    fn follower_flags_imply_read_only() {
        let args = parse_server_args(&strs(&[
            "--follow",
            "127.0.0.1:9999",
            "--follower-id",
            "replica-a",
        ]))
        .unwrap();
        assert!(matches!(args.follow, Some(FollowSource::Wire(ref a)) if a == "127.0.0.1:9999"));
        assert_eq!(args.follower_id, "replica-a");
        assert!(args.config.read_only);
        let args = parse_server_args(&strs(&["--follow-log", "/tmp/edits.wal"])).unwrap();
        assert!(matches!(args.follow, Some(FollowSource::File(_))));
        assert!(args.config.read_only);
        let args = parse_server_args(&strs(&["--read-only"])).unwrap();
        assert!(args.config.read_only);
        assert!(args.follow.is_none());
    }

    #[test]
    fn loadgen_args_parse_and_validate() {
        let args = parse_loadgen_args(&strs(&[
            "--addr",
            "h:1",
            "--snapshot",
            "x.snap",
            "--tenants",
            "3",
            "--load",
            "--rate",
            "500",
            "--batch",
            "16",
        ]))
        .unwrap();
        assert_eq!(args.tenants, 3);
        assert!(args.load_first);
        assert_eq!(args.config.batch, 16);
        assert!(matches!(args.config.pacing, Pacing::Open { rate } if rate == 500.0));
        assert!(
            parse_loadgen_args(&strs(&["--addr", "h:1"])).is_err(),
            "snapshot required"
        );
        assert!(
            parse_loadgen_args(&strs(&["--snapshot", "x"])).is_err(),
            "addr required"
        );
        assert!(
            parse_loadgen_args(&strs(&["--addr", "h:1", "--snapshot", "x", "--rate", "-1"]))
                .is_err()
        );
    }

    #[test]
    fn server_shards_flag_parses() {
        let cfg = parse_server_args(&strs(&["--shards", "8"])).unwrap().config;
        assert_eq!(cfg.shards, 8);
        let cfg = parse_server_args(&strs(&[])).unwrap().config;
        assert_eq!(cfg.shards, 0, "inline by default");
        assert!(parse_server_args(&strs(&["--shards", "four"])).is_err());
    }

    #[test]
    fn server_io_model_flags_parse() {
        use crate::server::IoModel;
        let cfg = parse_server_args(&strs(&["--io-model", "epoll"]))
            .unwrap()
            .config;
        assert_eq!(cfg.io_model, IoModel::Epoll);
        let cfg = parse_server_args(&strs(&["--io-model", "threads"]))
            .unwrap()
            .config;
        assert_eq!(cfg.io_model, IoModel::Threads);
        let cfg = parse_server_args(&strs(&[])).unwrap().config;
        assert_eq!(cfg.io_model, IoModel::Threads, "threads is the default");
        assert!(parse_server_args(&strs(&["--io-model", "uring"])).is_err());
        assert!(parse_server_args(&strs(&["--io-model"])).is_err());

        let cfg = parse_server_args(&strs(&["--reactors", "4"]))
            .unwrap()
            .config;
        assert_eq!(cfg.reactors, 4);
        let cfg = parse_server_args(&strs(&[])).unwrap().config;
        assert_eq!(cfg.reactors, 0, "one reactor per core by default");
        assert!(parse_server_args(&strs(&["--reactors", "many"])).is_err());

        let cfg = parse_server_args(&strs(&["--max-frames-per-turn", "8"]))
            .unwrap()
            .config;
        assert_eq!(cfg.max_frames_per_turn, 8);
        assert!(parse_server_args(&strs(&["--max-frames-per-turn", "0"])).is_err());
    }

    #[test]
    fn loadgen_ramp_flag_parses() {
        let args = parse_loadgen_args(&strs(&[
            "--addr",
            "h:1",
            "--snapshot",
            "x",
            "--ramp",
            "1,8,64,256,1024",
        ]))
        .unwrap();
        assert_eq!(args.ramp, vec![1, 8, 64, 256, 1024]);
        let args = parse_loadgen_args(&strs(&["--addr", "h:1", "--snapshot", "x"])).unwrap();
        assert!(args.ramp.is_empty(), "single-run mode by default");
        assert!(
            parse_loadgen_args(&strs(&["--addr", "h:1", "--snapshot", "x", "--ramp", ""])).is_err()
        );
        assert!(parse_loadgen_args(&strs(&[
            "--addr",
            "h:1",
            "--snapshot",
            "x",
            "--ramp",
            "1,0,4"
        ]))
        .is_err());
        assert!(parse_loadgen_args(&strs(&[
            "--addr",
            "h:1",
            "--snapshot",
            "x",
            "--ramp",
            "1,two"
        ]))
        .is_err());
    }

    #[test]
    fn loadgen_batch_size_aliases_batch() {
        let args = parse_loadgen_args(&strs(&[
            "--addr",
            "h:1",
            "--snapshot",
            "x",
            "--batch-size",
            "32",
        ]))
        .unwrap();
        assert_eq!(args.config.batch, 32);
        assert!(parse_loadgen_args(&strs(&[
            "--addr",
            "h:1",
            "--snapshot",
            "x",
            "--batch-size",
            "0"
        ]))
        .is_err());
    }

    #[test]
    fn loadgen_trace_flag_parses() {
        let args =
            parse_loadgen_args(&strs(&["--addr", "h:1", "--snapshot", "x", "--trace"])).unwrap();
        assert!(args.config.trace);
        let args = parse_loadgen_args(&strs(&["--addr", "h:1", "--snapshot", "x"])).unwrap();
        assert!(!args.config.trace);
    }

    #[test]
    fn server_obs_flags_parse() {
        let cfg = parse_server_args(&strs(&[
            "--no-obs",
            "--recorder-capacity",
            "32",
            "--slow-threshold-ms",
            "5",
            "--tenant-cardinality",
            "8",
        ]))
        .unwrap()
        .config;
        assert!(!cfg.obs.enabled);
        assert_eq!(cfg.obs.recorder_capacity, 32);
        assert_eq!(cfg.obs.slow_threshold, Duration::from_millis(5));
        assert_eq!(cfg.obs.tenant_cardinality, 8);
        assert!(parse_server_args(&strs(&["--recorder-capacity", "0"])).is_err());
    }

    #[test]
    fn query_args_parse_and_validate() {
        let q = parse_query_args(&strs(&[
            "--addr", "h:1", "--tenant", "t", "--trace", "E", "m",
        ]))
        .unwrap();
        assert_eq!((q.class.as_str(), q.member.as_str()), ("E", "m"));
        assert!(q.trace);
        assert!(parse_query_args(&strs(&["--addr", "h:1", "E", "m"])).is_err());
        assert!(parse_query_args(&strs(&["--addr", "h:1", "--tenant", "t", "E"])).is_err());
    }

    #[test]
    fn query_as_of_epoch_parses_and_excludes_trace() {
        let q = parse_query_args(&strs(&[
            "--addr",
            "h:1",
            "--tenant",
            "t",
            "--as-of-epoch",
            "3",
            "E",
            "m",
        ]))
        .unwrap();
        assert_eq!(q.as_of, Some(3));
        assert!(parse_query_args(&strs(&[
            "--addr",
            "h:1",
            "--tenant",
            "t",
            "--trace",
            "--as-of-epoch",
            "3",
            "E",
            "m",
        ]))
        .is_err());
    }

    #[test]
    fn loadgen_edit_every_parses() {
        let args = parse_loadgen_args(&strs(&[
            "--addr",
            "h:1",
            "--snapshot",
            "x",
            "--edit-every",
            "50",
        ]))
        .unwrap();
        assert_eq!(args.config.edit_every, 50);
        assert!(parse_loadgen_args(&strs(&[
            "--addr",
            "h:1",
            "--snapshot",
            "x",
            "--edit-every",
            "z"
        ]))
        .is_err());
    }

    #[test]
    fn render_spans_attributes_percentages() {
        let spans = vec![
            WireSpan {
                id: 0,
                parent: u64::MAX,
                label: "request".into(),
                start_ns: 0,
                duration_ns: 1000,
            },
            WireSpan {
                id: 1,
                parent: 0,
                label: "directory_probe".into(),
                start_ns: 0,
                duration_ns: 750,
            },
        ];
        let text = render_spans(&spans);
        assert!(text.contains("request"), "{text}");
        assert!(text.contains("75.0%"), "{text}");
    }
}
