//! A small blocking client: one socket, one request/response per call.
//!
//! This is the client the CLI, the load generator, the benches, and the
//! integration tests all share, so "what the server answered" means the
//! same thing everywhere. Methods that carry a domain result return
//! `Result<T, ClientError>`: transport and framing problems are
//! [`ClientError::Transport`] / [`ClientError::Protocol`], a server-side
//! [`Response::Error`] is [`ClientError::Server`] with its structured
//! code.

use std::io;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use crate::protocol::{
    read_frame, write_frame, ErrorCode, FrameError, Request, Response, WireOutcome, WireRecord,
    WireSpan, PROTOCOL_VERSION,
};

/// Client-side failure.
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure (connect, read, write, truncation).
    Transport(io::Error),
    /// The server's bytes did not parse as a frame or response.
    Protocol(String),
    /// The server answered with a structured error.
    Server {
        /// The error class.
        code: ErrorCode,
        /// The server's message.
        message: String,
    },
    /// The server answered, but with a response type that does not
    /// match the request.
    Unexpected(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Transport(e) => write!(f, "transport: {e}"),
            ClientError::Protocol(m) => write!(f, "protocol: {m}"),
            ClientError::Server { code, message } => {
                write!(f, "server error {}: {message}", code.label())
            }
            ClientError::Unexpected(m) => write!(f, "unexpected response: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<FrameError> for ClientError {
    fn from(e: FrameError) -> Self {
        match e {
            FrameError::Io(e) => ClientError::Transport(e),
            FrameError::Eof => ClientError::Transport(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            )),
            other => ClientError::Protocol(other.to_string()),
        }
    }
}

/// A connected client.
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connects (with `timeout` applied to reads and writes too).
    ///
    /// # Errors
    ///
    /// Connection failures.
    pub fn connect(addr: impl ToSocketAddrs, timeout: Option<Duration>) -> io::Result<Client> {
        let addr = addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| io::Error::other("no address resolved"))?;
        let stream = match timeout {
            Some(t) => TcpStream::connect_timeout(&addr, t)?,
            None => TcpStream::connect(addr)?,
        };
        stream.set_read_timeout(timeout)?;
        stream.set_write_timeout(timeout)?;
        stream.set_nodelay(true)?;
        Ok(Client { stream })
    }

    /// Sends one request and reads one response.
    ///
    /// # Errors
    ///
    /// Transport and framing failures; a server [`Response::Error`] is
    /// returned as `Ok` here (callers that want the typed result use
    /// the specific methods below).
    pub fn roundtrip(&mut self, req: &Request) -> Result<Response, ClientError> {
        write_frame(&mut self.stream, &req.encode()).map_err(ClientError::Transport)?;
        let body = read_frame(&mut self.stream)?;
        Response::decode(&body).map_err(ClientError::Protocol)
    }

    fn expect<T>(
        &mut self,
        req: &Request,
        pick: impl FnOnce(Response) -> Result<T, Response>,
    ) -> Result<T, ClientError> {
        match self.roundtrip(req)? {
            Response::Error { code, message } => Err(ClientError::Server { code, message }),
            other => pick(other).map_err(|r| ClientError::Unexpected(format!("{r:?}"))),
        }
    }

    /// Version handshake; returns the server's tenant count.
    ///
    /// # Errors
    ///
    /// [`ErrorCode::BadVersion`] among the usual failures.
    pub fn hello(&mut self) -> Result<u32, ClientError> {
        self.expect(
            &Request::Hello {
                version: PROTOCOL_VERSION,
            },
            |r| match r {
                Response::Hello { tenants, .. } => Ok(tenants),
                other => Err(other),
            },
        )
    }

    /// Loads a tenant from a server-side snapshot path; returns
    /// `(entries, snapshot bytes)`.
    ///
    /// # Errors
    ///
    /// [`ErrorCode::LoadFailed`] among the usual failures.
    pub fn load(&mut self, tenant: &str, path: &str) -> Result<(u64, u64), ClientError> {
        self.expect(
            &Request::Load {
                tenant: tenant.to_owned(),
                path: path.to_owned(),
            },
            |r| match r {
                Response::Loaded { entries, bytes } => Ok((entries, bytes)),
                other => Err(other),
            },
        )
    }

    /// One point lookup.
    ///
    /// # Errors
    ///
    /// [`ErrorCode::NoSuchTenant`] / [`ErrorCode::UnknownName`] among
    /// the usual failures.
    pub fn query(
        &mut self,
        tenant: &str,
        class: &str,
        member: &str,
    ) -> Result<WireOutcome, ClientError> {
        self.query_at(tenant, class, member, None)
    }

    /// One point lookup, optionally pinned to a retained epoch
    /// ([`flags::AS_OF`](crate::protocol::flags::AS_OF)) for a
    /// repeatable point-in-time read.
    ///
    /// # Errors
    ///
    /// [`ErrorCode::EpochRetired`] when the epoch aged out of the
    /// retention window, plus [`query`](Client::query)'s failures.
    pub fn query_at(
        &mut self,
        tenant: &str,
        class: &str,
        member: &str,
        as_of: Option<u64>,
    ) -> Result<WireOutcome, ClientError> {
        self.expect(
            &Request::Query {
                tenant: tenant.to_owned(),
                class: class.to_owned(),
                member: member.to_owned(),
                trace: false,
                as_of,
            },
            |r| match r {
                Response::Outcome(o) => Ok(o),
                other => Err(other),
            },
        )
    }

    /// One point lookup with the TRACE flag set; returns the outcome
    /// plus the server's span tree attributing where the request's
    /// time went.
    ///
    /// # Errors
    ///
    /// As for [`query`](Client::query).
    pub fn query_traced(
        &mut self,
        tenant: &str,
        class: &str,
        member: &str,
    ) -> Result<(WireOutcome, Vec<WireSpan>), ClientError> {
        self.expect(
            &Request::Query {
                tenant: tenant.to_owned(),
                class: class.to_owned(),
                member: member.to_owned(),
                trace: true,
                as_of: None,
            },
            |r| match r {
                Response::Traced {
                    mut outcomes,
                    spans,
                } if outcomes.len() == 1 => Ok((outcomes.remove(0), spans)),
                other => Err(other),
            },
        )
    }

    /// A batch of lookups, answered in probe order.
    ///
    /// # Errors
    ///
    /// As for [`query`](Client::query).
    pub fn batch(
        &mut self,
        tenant: &str,
        probes: &[(String, String)],
    ) -> Result<Vec<WireOutcome>, ClientError> {
        self.batch_at(tenant, probes, None)
    }

    /// A batch of lookups, optionally pinned to a retained epoch; every
    /// probe is answered from the same frozen index version.
    ///
    /// # Errors
    ///
    /// As for [`query_at`](Client::query_at).
    pub fn batch_at(
        &mut self,
        tenant: &str,
        probes: &[(String, String)],
        as_of: Option<u64>,
    ) -> Result<Vec<WireOutcome>, ClientError> {
        self.expect(
            &Request::Batch {
                tenant: tenant.to_owned(),
                probes: probes.to_vec(),
                trace: false,
                as_of,
            },
            |r| match r {
                Response::Outcomes(o) => Ok(o),
                other => Err(other),
            },
        )
    }

    /// A batch of lookups with the TRACE flag set; the span tree
    /// attributes the whole batch, not each probe.
    ///
    /// # Errors
    ///
    /// As for [`batch`](Client::batch).
    pub fn batch_traced(
        &mut self,
        tenant: &str,
        probes: &[(String, String)],
    ) -> Result<(Vec<WireOutcome>, Vec<WireSpan>), ClientError> {
        self.expect(
            &Request::Batch {
                tenant: tenant.to_owned(),
                probes: probes.to_vec(),
                trace: true,
                as_of: None,
            },
            |r| match r {
                Response::Traced { outcomes, spans } => Ok((outcomes, spans)),
                other => Err(other),
            },
        )
    }

    /// Applies one edit directive; returns the new index epoch.
    ///
    /// # Errors
    ///
    /// [`ErrorCode::EditRejected`] among the usual failures.
    pub fn edit(&mut self, tenant: &str, directive: &str) -> Result<u64, ClientError> {
        self.expect(
            &Request::Edit {
                tenant: tenant.to_owned(),
                directive: directive.to_owned(),
            },
            |r| match r {
                Response::Edited { epoch } => Ok(epoch),
                other => Err(other),
            },
        )
    }

    /// Reports a follower's applied log position to the leader;
    /// returns the leader's current last sequence number.
    ///
    /// # Errors
    ///
    /// [`ErrorCode::NotReplicating`] when the server has no edit log.
    pub fn ack(&mut self, follower: &str, seq: u64) -> Result<u64, ClientError> {
        self.expect(
            &Request::Ack {
                follower: follower.to_owned(),
                seq,
            },
            |r| match r {
                Response::Acked { leader_seq } => Ok(leader_seq),
                other => Err(other),
            },
        )
    }

    /// Tenant (or farm-wide, with `""`) statistics as JSON.
    ///
    /// # Errors
    ///
    /// [`ErrorCode::NoSuchTenant`] among the usual failures.
    pub fn stats(&mut self, tenant: &str) -> Result<String, ClientError> {
        self.expect(
            &Request::Stats {
                tenant: tenant.to_owned(),
            },
            |r| match r {
                Response::Stats { json } => Ok(json),
                other => Err(other),
            },
        )
    }

    /// The Prometheus metrics text over the binary protocol.
    ///
    /// # Errors
    ///
    /// The usual transport/framing failures.
    pub fn metrics(&mut self) -> Result<String, ClientError> {
        self.expect(&Request::Metrics, |r| match r {
            Response::Metrics { text } => Ok(text),
            other => Err(other),
        })
    }

    /// Converts this connection into a replication subscription: the
    /// server streams every edit-log record after `from_seq` (then new
    /// ones as they are appended) until either side disconnects. The
    /// connection speaks nothing but `R_REPLICATED` frames afterwards,
    /// so the client is consumed.
    ///
    /// # Errors
    ///
    /// Transport failures, or a structured server error
    /// ([`ErrorCode::NotReplicating`]) refusing the subscription.
    pub fn subscribe(mut self, from_seq: u64) -> Result<Subscription, ClientError> {
        write_frame(&mut self.stream, &Request::Subscribe { from_seq }.encode())
            .map_err(ClientError::Transport)?;
        // The server answers the subscription itself with the first
        // frame: an error frame to refuse, else the record stream just
        // begins (possibly after a quiet wait), so no handshake frame
        // is read here.
        Ok(Subscription {
            stream: self.stream,
        })
    }
}

/// A live replication stream (see [`Client::subscribe`]).
pub struct Subscription {
    stream: TcpStream,
}

impl Subscription {
    /// Blocks for the next replicated record: `(seq, leader append
    /// time in unix nanoseconds, record)`.
    ///
    /// # Errors
    ///
    /// Transport failures (including the read timeout the client was
    /// connected with), a structured server error, or a malformed
    /// frame.
    pub fn next_record(&mut self) -> Result<(u64, u64, WireRecord), ClientError> {
        let body = read_frame(&mut self.stream)?;
        match Response::decode(&body).map_err(ClientError::Protocol)? {
            Response::Replicated {
                seq,
                unix_nanos,
                record,
            } => Ok((seq, unix_nanos, record)),
            Response::Error { code, message } => Err(ClientError::Server { code, message }),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }
}
