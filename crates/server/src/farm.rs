//! The tenant farm: many hierarchies, one server.
//!
//! Each tenant is born as a loaded
//! [`SnapshotTable`](cpplookup_snapshot::SnapshotTable) — cheap,
//! validated, zero-copy — and climbs a lifecycle ladder strictly on
//! demand:
//!
//! ```text
//!           LOAD                    first QUERY              first EDIT
//! (nothing) ────► SnapshotTable ───────────────► promoted ──────────────► live
//!                 cold, no index    DispatchIndex packed     engine warmed,
//!                                   once (coalesced), pub-   attached to the
//!                                   lished on a ServeHandle  SAME ServeHandle
//! ```
//!
//! The promotion step packs the snapshot through the backend-generic
//! [`IntoDispatchIndex`](cpplookup_core::IntoDispatchIndex) surface and
//! publishes epoch 0 on the tenant's
//! [`ServeHandle`](cpplookup_core::ServeHandle); the edit step warms a
//! [`LookupEngine`](cpplookup_core::LookupEngine) from the snapshot and
//! [`IndexedEngine::attach`](cpplookup_core::IndexedEngine::attach)es it
//! to that same handle, so readers migrate to engine-backed epochs
//! without re-resolving anything. A 1000-tenant farm where only a dozen
//! tenants see traffic pays for exactly a dozen index builds.
//!
//! Identical concurrent *cold* probes — the stampede when a popular
//! tenant is first touched — are coalesced: one connection packs the
//! index and answers, the rest block briefly and reuse its verdict. The
//! warm fast path never touches the coalescer.

use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, RwLock};
use std::time::{Instant, SystemTime, UNIX_EPOCH};

use cpplookup_chg::fxmap::FxHashMap;
use cpplookup_chg::{Chg, ClassId, Edit, Inheritance, MemberDecl, MemberId, MemberKind};
use cpplookup_core::{IndexedEngine, LeastVirtual, LookupOutcome, OutcomeRef, ServeHandle};
use cpplookup_snapshot::{Snapshot, SnapshotTable};
use cpplookup_wal::{Stamped, WalRecord, WalStore};

use crate::coalesce::Coalescer;
use crate::protocol::{ErrorCode, WireLv, WireOutcome};

/// A request-level failure: the structured code plus a human message.
pub type FarmError = (ErrorCode, String);

/// Phase boundaries captured inside a traced probe, as instants: after
/// name resolution, after the serve handle was obtained (on a cold
/// tenant this absorbs the index build — the "promotion wait"), and
/// after the directory probe produced wire outcomes. Together with the
/// caller's own decode/encode stamps these partition a request
/// end-to-end.
#[derive(Clone, Copy, Debug)]
pub struct ProbeTiming {
    /// Names resolved to ids (includes the tenant-map lookup).
    pub resolved: Instant,
    /// Publication handle loaded; cold tenants pay the index pack here.
    pub promoted: Instant,
    /// Directory probed and outcomes converted back to names.
    pub probed: Instant,
}

/// Per-tenant metric families, shared by every tenant in a farm.
/// `None` on a farm built with observability off — the E19/E24
/// baseline — in which case tenants keep only their local atomics.
struct FarmMetrics {
    /// `tenant_promotions_total{tenant}`.
    promotions: Arc<cpplookup_obs::Family>,
    /// `tenant_epoch{tenant}`: the currently published index epoch.
    epoch: Arc<cpplookup_obs::GaugeFamily>,
}

impl FarmMetrics {
    fn new(cardinality: usize) -> FarmMetrics {
        let obs = cpplookup_obs::global();
        FarmMetrics {
            promotions: obs.counter_family_bounded(
                "tenant_promotions_total",
                "snapshot-to-index promotions, by tenant",
                "tenant",
                cardinality,
            ),
            epoch: obs.gauge_family(
                "tenant_epoch",
                "currently published index epoch, by tenant",
                "tenant",
                cardinality,
            ),
        }
    }
}

/// Name ↔ id mapping for one tenant, rebuilt wholesale on edit (edits
/// are rare and append-only; queries only take the read lock).
struct Names {
    classes: FxHashMap<String, ClassId>,
    members: FxHashMap<String, MemberId>,
    class_names: Vec<String>,
}

impl Names {
    fn from_snapshot(table: &SnapshotTable) -> Names {
        let mut n = Names {
            classes: FxHashMap::default(),
            members: FxHashMap::default(),
            class_names: Vec::with_capacity(table.class_count()),
        };
        for i in 0..table.class_count() {
            let c = ClassId::from_index(i);
            let name = table.class_name(c).unwrap_or_default().to_owned();
            n.classes.insert(name.clone(), c);
            n.class_names.push(name);
        }
        for i in 0..table.member_name_count() {
            let m = MemberId::from_index(i);
            if let Some(name) = table.member_name(m) {
                n.members.insert(name.to_owned(), m);
            }
        }
        n
    }

    fn from_chg(chg: &Chg) -> Names {
        let mut n = Names {
            classes: FxHashMap::default(),
            members: FxHashMap::default(),
            class_names: Vec::with_capacity(chg.class_count()),
        };
        for i in 0..chg.class_count() {
            let c = ClassId::from_index(i);
            let name = chg.class_name(c).to_owned();
            n.classes.insert(name.clone(), c);
            n.class_names.push(name);
        }
        for i in 0..chg.member_name_count() {
            let m = MemberId::from_index(i);
            n.members.insert(chg.member_name(m).to_owned(), m);
        }
        n
    }

    fn class(&self, name: &str) -> Result<ClassId, FarmError> {
        self.classes
            .get(name)
            .copied()
            .ok_or_else(|| (ErrorCode::UnknownName, format!("unknown class `{name}`")))
    }

    fn member(&self, name: &str) -> Result<MemberId, FarmError> {
        self.members
            .get(name)
            .copied()
            .ok_or_else(|| (ErrorCode::UnknownName, format!("unknown member `{name}`")))
    }

    fn lv(&self, lv: &LeastVirtual) -> WireLv {
        match lv {
            LeastVirtual::Omega => WireLv::Omega,
            LeastVirtual::Class(c) => WireLv::Class(self.class_name(*c)),
        }
    }

    fn class_name(&self, c: ClassId) -> String {
        self.class_names
            .get(c.index())
            .cloned()
            .unwrap_or_else(|| format!("{c}"))
    }

    fn wire(&self, outcome: &LookupOutcome) -> WireOutcome {
        match outcome {
            LookupOutcome::NotFound => WireOutcome::NotFound,
            LookupOutcome::Resolved {
                class,
                least_virtual,
            } => WireOutcome::Resolved {
                class: self.class_name(*class),
                least_virtual: self.lv(least_virtual),
            },
            LookupOutcome::Ambiguous { witnesses } => WireOutcome::Ambiguous {
                witnesses: witnesses.iter().map(|w| self.lv(w)).collect(),
            },
        }
    }

    /// [`wire`](Names::wire) over a borrowed outcome, so the batch path
    /// can go straight from [`DispatchIndex::lookup_batch_into`]
    /// (cpplookup_core::DispatchIndex::lookup_batch_into)'s pool
    /// borrows to wire strings without materializing `LookupOutcome`s
    /// in between.
    fn wire_ref(&self, outcome: &OutcomeRef<'_>) -> WireOutcome {
        match outcome {
            OutcomeRef::NotFound => WireOutcome::NotFound,
            OutcomeRef::Resolved {
                class,
                least_virtual,
            } => WireOutcome::Resolved {
                class: self.class_name(*class),
                least_virtual: self.lv(least_virtual),
            },
            OutcomeRef::Ambiguous { witnesses } => WireOutcome::Ambiguous {
                witnesses: witnesses.iter().map(|w| self.lv(&w)).collect(),
            },
        }
    }
}

/// One tenant: a snapshot plus its lazily built serving state.
pub struct Tenant {
    name: String,
    snapshot: Arc<SnapshotTable>,
    /// Set exactly once, at promotion; `get_or_init` makes concurrent
    /// promoters single-flight.
    serve: OnceLock<ServeHandle>,
    /// The engine-backed write path; `Some` after the first edit. The
    /// mutex serializes edits per tenant (queries never take it).
    live: Mutex<Option<IndexedEngine>>,
    names: RwLock<Arc<Names>>,
    queries: AtomicU64,
    edits: AtomicU64,
    /// Epochs (current included) kept loadable for as-of reads.
    retain_epochs: usize,
    metrics: Option<Arc<FarmMetrics>>,
}

impl Tenant {
    fn new(
        name: String,
        table: SnapshotTable,
        retain_epochs: usize,
        metrics: Option<Arc<FarmMetrics>>,
    ) -> Tenant {
        let names = Names::from_snapshot(&table);
        Tenant {
            name,
            snapshot: Arc::new(table),
            serve: OnceLock::new(),
            live: Mutex::new(None),
            names: RwLock::new(Arc::new(names)),
            queries: AtomicU64::new(0),
            edits: AtomicU64::new(0),
            retain_epochs,
            metrics,
        }
    }

    /// Whether the dispatch index has been built.
    pub fn is_promoted(&self) -> bool {
        self.serve.get().is_some()
    }

    /// Packs the snapshot into a `DispatchIndex` (once, single-flight)
    /// and returns the tenant's publication handle.
    fn promote(&self) -> &ServeHandle {
        self.serve.get_or_init(|| {
            cpplookup_obs::global()
                .counter(
                    "server_promotions_total",
                    "tenants promoted from snapshot to dispatch index",
                )
                .inc();
            if let Some(m) = &self.metrics {
                m.promotions.with_label(&self.name).inc();
                m.epoch.with_label(&self.name).set(0);
            }
            let handle = ServeHandle::serving(&*self.snapshot);
            if self.retain_epochs > 1 {
                handle.set_retention(self.retain_epochs);
            }
            handle
        })
    }

    fn names(&self) -> Arc<Names> {
        self.names.read().expect("names lock poisoned").clone()
    }

    /// Loads the publication to answer from: the current one, or — for
    /// an as-of read — the retained epoch the request pinned.
    fn published_at(
        &self,
        as_of: Option<u64>,
    ) -> Result<Arc<cpplookup_core::PublishedIndex>, FarmError> {
        let handle = self.promote();
        match as_of {
            None => Ok(handle.load()),
            Some(epoch) => handle.load_at(epoch).ok_or_else(|| {
                (
                    ErrorCode::EpochRetired,
                    format!(
                        "epoch {epoch} of `{}` is not retained (retained: {:?})",
                        self.name,
                        handle.retained_epochs()
                    ),
                )
            }),
        }
    }

    fn query_now(
        &self,
        class: &str,
        member: &str,
        as_of: Option<u64>,
    ) -> Result<WireOutcome, FarmError> {
        Ok(self.query_now_timed(class, member, as_of)?.0)
    }

    fn query_now_timed(
        &self,
        class: &str,
        member: &str,
        as_of: Option<u64>,
    ) -> Result<(WireOutcome, ProbeTiming), FarmError> {
        self.queries.fetch_add(1, Ordering::Relaxed);
        let names = self.names();
        let (c, m) = (names.class(class)?, names.member(member)?);
        let resolved = Instant::now();
        let published = self.published_at(as_of)?;
        let promoted = Instant::now();
        let outcome = names.wire(&published.index().lookup(c, m));
        let probed = Instant::now();
        Ok((
            outcome,
            ProbeTiming {
                resolved,
                promoted,
                probed,
            },
        ))
    }

    fn batch_now(
        &self,
        probes: &[(String, String)],
        as_of: Option<u64>,
    ) -> Result<Vec<WireOutcome>, FarmError> {
        Ok(self.batch_now_timed(probes, as_of)?.0)
    }

    fn batch_now_timed(
        &self,
        probes: &[(String, String)],
        as_of: Option<u64>,
    ) -> Result<(Vec<WireOutcome>, ProbeTiming), FarmError> {
        self.queries
            .fetch_add(probes.len() as u64, Ordering::Relaxed);
        let names = self.names();
        let ids = probes
            .iter()
            .map(|(class, member)| Ok((names.class(class)?, names.member(member)?)))
            .collect::<Result<Vec<_>, FarmError>>()?;
        let resolved = Instant::now();
        let published = self.published_at(as_of)?;
        let promoted = Instant::now();
        // The SWAR stripe probe: all the directory loads happen inside
        // `lookup_batch_into` over borrowed outcomes; only the wire
        // conversion afterwards allocates.
        let mut refs = Vec::new();
        published.index().lookup_batch_into(&ids, &mut refs);
        let outcomes = refs.iter().map(|o| names.wire_ref(o)).collect();
        let probed = Instant::now();
        Ok((
            outcomes,
            ProbeTiming {
                resolved,
                promoted,
                probed,
            },
        ))
    }

    fn edit_now(&self, directive: &str, wal: Option<&WalStore>) -> Result<u64, FarmError> {
        let mut live = self.live.lock().expect("live lock poisoned");
        if live.is_none() {
            let engine = self.snapshot.warm_engine().map_err(|e| {
                (
                    ErrorCode::EditRejected,
                    format!("cannot warm engine for `{}`: {e}", self.name),
                )
            })?;
            // Attach to the SAME handle queries already hold, so
            // readers see engine-backed epochs from here on.
            *live = Some(IndexedEngine::attach(engine, self.promote().clone()));
        }
        let serving = live.as_mut().unwrap();
        let edit = parse_directive(directive, &self.names())?;
        // Append-before-apply, still under the live lock: the log's
        // record order is exactly the apply order, so a replayer that
        // walks the log reproduces the engine state (directives the
        // engine deterministically rejects below stay in the log and
        // are skipped identically by every replayer).
        if let Some(wal) = wal {
            wal.append(WalRecord::Edit {
                tenant: self.name.clone(),
                directive: directive.to_owned(),
            })
            .map_err(|e| {
                (
                    ErrorCode::EditRejected,
                    format!("edit log append failed: {e}"),
                )
            })?;
        }
        let epoch = serving
            .apply(std::slice::from_ref(&edit))
            .map_err(|e| (ErrorCode::EditRejected, format!("edit rejected: {e}")))?;
        *self.names.write().expect("names lock poisoned") =
            Arc::new(Names::from_chg(serving.engine().chg()));
        self.edits.fetch_add(1, Ordering::Relaxed);
        if let Some(m) = &self.metrics {
            m.epoch.with_label(&self.name).set(epoch as i64);
        }
        Ok(epoch)
    }

    fn stats_json(&self) -> String {
        let live = self.live.lock().expect("live lock poisoned").is_some();
        format!(
            "{{\"tenant\":{},\"classes\":{},\"entries\":{},\"snapshot_bytes\":{},\
             \"promoted\":{},\"live\":{},\"epoch\":{},\"queries\":{},\"edits\":{}}}",
            json_str(&self.name),
            self.snapshot.class_count(),
            self.snapshot.entry_count(),
            self.snapshot.size_bytes(),
            self.is_promoted(),
            live,
            self.serve.get().map(|h| h.epoch()).unwrap_or(0),
            self.queries.load(Ordering::Relaxed),
            self.edits.load(Ordering::Relaxed),
        )
    }
}

/// Parses an edit directive against the tenant's current names:
/// `class NAME`, `member CLASS NAME`, or `edge DERIVED BASE [virtual]`
/// — the same grammar the CLI's `!`-directives use in batch mode.
fn parse_directive(directive: &str, names: &Names) -> Result<Edit, FarmError> {
    let bad = |m: String| (ErrorCode::BadPayload, m);
    let words: Vec<&str> = directive.split_whitespace().collect();
    match words.as_slice() {
        ["class", name] => Ok(Edit::AddClass {
            name: (*name).to_owned(),
        }),
        ["member", class, name] => Ok(Edit::AddMember {
            class: names.class(class)?,
            name: (*name).to_owned(),
            decl: MemberDecl::public(MemberKind::Function),
        }),
        ["edge", derived, base] => Ok(Edit::AddEdge {
            derived: names.class(derived)?,
            base: names.class(base)?,
            inheritance: Inheritance::NonVirtual,
            access: cpplookup_chg::Access::Public,
        }),
        ["edge", derived, base, "virtual"] => Ok(Edit::AddEdge {
            derived: names.class(derived)?,
            base: names.class(base)?,
            inheritance: Inheritance::Virtual,
            access: cpplookup_chg::Access::Public,
        }),
        [] => Err(bad("empty edit directive".to_owned())),
        _ => Err(bad(format!(
            "bad edit directive `{directive}` (expected `class NAME`, \
             `member CLASS NAME`, or `edge DERIVED BASE [virtual]`)"
        ))),
    }
}

/// Tenant names become checkpoint file names; anything outside
/// `[A-Za-z0-9._-]` is mapped to `_` so a hostile name cannot escape
/// the checkpoint directory.
fn sanitize_name(name: &str) -> String {
    let mut out: String = name
        .chars()
        .map(|c| match c {
            'a'..='z' | 'A'..='Z' | '0'..='9' | '.' | '_' | '-' => c,
            _ => '_',
        })
        .collect();
    if out.is_empty() || out.bytes().all(|b| b == b'.') {
        out = "tenant".to_owned();
    }
    out
}

/// Minimal JSON string encoding (names are operator-controlled, but a
/// quote in a tenant name must not corrupt the stats document).
pub(crate) fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// How a replayed log record changed the farm — see
/// [`Farm::apply_replica_record`].
#[derive(Debug, PartialEq, Eq)]
pub enum ReplicaApply {
    /// An `Open` (or a `Checkpoint` for an unknown tenant) loaded a
    /// snapshot.
    Loaded,
    /// An `Edit` applied; the tenant's new published epoch.
    Edited(u64),
    /// An `Edit` the engine deterministically rejects — the leader
    /// logged it and failed it too, so skipping keeps replicas
    /// byte-identical. Carries the rejection message.
    EditSkipped(String),
    /// A `Checkpoint` for a tenant already live from earlier records;
    /// its state already subsumes the checkpoint.
    CheckpointSkipped,
}

/// Construction-time knobs for a [`Farm`].
pub struct FarmOptions {
    /// Bounds the per-tenant metric label space (`None` disables the
    /// per-tenant families — the observability-off baseline).
    pub tenant_cardinality: Option<usize>,
    /// The durable edit log: loads and edits are appended before they
    /// apply, making the farm a replication leader.
    pub wal: Option<Arc<WalStore>>,
    /// Refuse client edits — the stance of a replication follower,
    /// whose only writer is the replayed log.
    pub read_only: bool,
    /// Published index epochs (current included) each tenant keeps
    /// loadable for `as-of` time-travel reads. Clamped to at least 1.
    pub retain_epochs: usize,
}

impl Default for FarmOptions {
    fn default() -> FarmOptions {
        FarmOptions {
            tenant_cardinality: Some(64),
            wal: None,
            read_only: false,
            retain_epochs: 1,
        }
    }
}

/// The farm: the tenant map plus the cold-probe coalescer.
pub struct Farm {
    tenants: RwLock<FxHashMap<String, Arc<Tenant>>>,
    cold_probes: Coalescer<(String, String, String), Result<WireOutcome, FarmError>>,
    metrics: Option<Arc<FarmMetrics>>,
    wal: Option<Arc<WalStore>>,
    read_only: bool,
    retain_epochs: usize,
    /// Serializes compactions (each burns sequence numbers and rewrites
    /// the log file).
    compact: Mutex<()>,
}

impl Farm {
    /// An empty farm with per-tenant metrics at the default label
    /// cardinality.
    pub fn new() -> Farm {
        Farm::with_options(FarmOptions::default())
    }

    /// An empty farm; `cardinality` bounds the per-tenant label space
    /// of the `tenant_promotions_total` / `tenant_epoch` families
    /// (tenants past the bound share an `other` series), and `None`
    /// disables the per-tenant families entirely — the observability-off
    /// baseline the E24 overhead experiment compares against.
    pub fn with_tenant_cardinality(cardinality: Option<usize>) -> Farm {
        Farm::with_options(FarmOptions {
            tenant_cardinality: cardinality,
            ..FarmOptions::default()
        })
    }

    /// An empty farm with every knob explicit — see [`FarmOptions`].
    pub fn with_options(options: FarmOptions) -> Farm {
        Farm {
            tenants: RwLock::new(FxHashMap::default()),
            cold_probes: Coalescer::new(),
            metrics: options
                .tenant_cardinality
                .map(|k| Arc::new(FarmMetrics::new(k))),
            wal: options.wal,
            read_only: options.read_only,
            retain_epochs: options.retain_epochs.max(1),
            compact: Mutex::new(()),
        }
    }

    /// The edit log this farm appends to, if it has one.
    pub fn wal(&self) -> Option<&Arc<WalStore>> {
        self.wal.as_ref()
    }

    /// Whether client edits are refused (replication-follower stance).
    pub fn is_read_only(&self) -> bool {
        self.read_only
    }

    /// Loads (or replaces) a tenant from a snapshot file, returning
    /// `(entries, snapshot bytes)`. A replaced tenant restarts its
    /// lifecycle from cold; readers of the old tenant finish on the old
    /// state. On a logging farm the load is appended to the edit log
    /// (after it validated locally) so a replayer loads the same
    /// snapshot — snapshot files are treated as content-stable
    /// artifacts that outlive the log.
    ///
    /// # Errors
    ///
    /// [`ErrorCode::LoadFailed`] with the loader's message (or the log
    /// append failure).
    pub fn load(&self, tenant: &str, path: &Path) -> Result<(u64, u64), FarmError> {
        let stats = self.load_unlogged(tenant, path)?;
        if let (Some(wal), false) = (&self.wal, self.read_only) {
            wal.append(WalRecord::Open {
                tenant: tenant.to_owned(),
                path: path.display().to_string(),
            })
            .map_err(|e| {
                (
                    ErrorCode::LoadFailed,
                    format!("edit log append failed: {e}"),
                )
            })?;
        }
        Ok(stats)
    }

    /// [`load`](Farm::load) without the log append — the replay path,
    /// and the body both share.
    fn load_unlogged(&self, tenant: &str, path: &Path) -> Result<(u64, u64), FarmError> {
        let table = SnapshotTable::load(path).map_err(|e| {
            (
                ErrorCode::LoadFailed,
                format!("loading `{}`: {e}", path.display()),
            )
        })?;
        let stats = (table.entry_count() as u64, table.size_bytes() as u64);
        let t = Arc::new(Tenant::new(
            tenant.to_owned(),
            table,
            self.retain_epochs,
            self.metrics.clone(),
        ));
        let count = {
            let mut tenants = self.tenants.write().expect("tenants lock poisoned");
            tenants.insert(tenant.to_owned(), t);
            tenants.len()
        };
        cpplookup_obs::global()
            .gauge("server_tenants", "tenants currently loaded")
            .set(count as i64);
        Ok(stats)
    }

    /// Number of loaded tenants.
    pub fn tenant_count(&self) -> u32 {
        self.tenants.read().expect("tenants lock poisoned").len() as u32
    }

    fn get(&self, tenant: &str) -> Result<Arc<Tenant>, FarmError> {
        self.tenants
            .read()
            .expect("tenants lock poisoned")
            .get(tenant)
            .cloned()
            .ok_or_else(|| (ErrorCode::NoSuchTenant, format!("no tenant `{tenant}`")))
    }

    /// One point lookup. Warm tenants answer straight from their
    /// published index; cold tenants coalesce identical concurrent
    /// probes around the one index build.
    ///
    /// # Errors
    ///
    /// [`ErrorCode::NoSuchTenant`] or [`ErrorCode::UnknownName`].
    pub fn query(&self, tenant: &str, class: &str, member: &str) -> Result<WireOutcome, FarmError> {
        self.query_at(tenant, class, member, None)
    }

    /// One point lookup, optionally pinned to a retained epoch — the
    /// time-travel read. As-of probes on a cold tenant still coalesce
    /// (the pinned epoch is part of the answer, not the key, only
    /// because a cold tenant has exactly one epoch to pin).
    ///
    /// # Errors
    ///
    /// [`query`](Farm::query)'s, plus [`ErrorCode::EpochRetired`] when
    /// the epoch aged out of the retention window.
    pub fn query_at(
        &self,
        tenant: &str,
        class: &str,
        member: &str,
        as_of: Option<u64>,
    ) -> Result<WireOutcome, FarmError> {
        let t = self.get(tenant)?;
        if t.is_promoted() || as_of.is_some() {
            return t.query_now(class, member, as_of);
        }
        let key = (tenant.to_owned(), class.to_owned(), member.to_owned());
        let (outcome, leader) = self
            .cold_probes
            .run(key, || t.query_now(class, member, None));
        if !leader {
            cpplookup_obs::global()
                .counter(
                    "server_coalesced_probes_total",
                    "cold probes answered by another connection's in-flight computation",
                )
                .inc();
        }
        outcome
    }

    /// One point lookup with phase timing, for traced requests. Traced
    /// probes bypass the cold-probe coalescer on purpose: a trace asks
    /// "what did *this* request pay", and riding another connection's
    /// in-flight build would attribute the leader's work to the
    /// follower.
    ///
    /// # Errors
    ///
    /// As for [`query`](Farm::query).
    pub fn query_traced(
        &self,
        tenant: &str,
        class: &str,
        member: &str,
        as_of: Option<u64>,
    ) -> Result<(WireOutcome, ProbeTiming), FarmError> {
        self.get(tenant)?.query_now_timed(class, member, as_of)
    }

    /// A batch of lookups with phase timing, for traced requests.
    ///
    /// # Errors
    ///
    /// As for [`batch`](Farm::batch).
    pub fn batch_traced(
        &self,
        tenant: &str,
        probes: &[(String, String)],
        as_of: Option<u64>,
    ) -> Result<(Vec<WireOutcome>, ProbeTiming), FarmError> {
        self.get(tenant)?.batch_now_timed(probes, as_of)
    }

    /// A batch of lookups against one tenant, answered in probe order.
    ///
    /// # Errors
    ///
    /// [`ErrorCode::NoSuchTenant`] or [`ErrorCode::UnknownName`] (the
    /// whole batch fails on the first unresolvable name).
    pub fn batch(
        &self,
        tenant: &str,
        probes: &[(String, String)],
    ) -> Result<Vec<WireOutcome>, FarmError> {
        self.batch_at(tenant, probes, None)
    }

    /// A batch of lookups pinned to a retained epoch: every probe is
    /// answered from the same frozen index version.
    ///
    /// # Errors
    ///
    /// As for [`query_at`](Farm::query_at).
    pub fn batch_at(
        &self,
        tenant: &str,
        probes: &[(String, String)],
        as_of: Option<u64>,
    ) -> Result<Vec<WireOutcome>, FarmError> {
        self.get(tenant)?.batch_now(probes, as_of)
    }

    /// Applies one edit directive through the tenant's engine, warming
    /// it on first use, and returns the newly published epoch. On a
    /// logging farm the directive is appended to the edit log before it
    /// applies.
    ///
    /// # Errors
    ///
    /// [`ErrorCode::NoSuchTenant`], [`ErrorCode::UnknownName`],
    /// [`ErrorCode::BadPayload`] for an unparseable directive, or
    /// [`ErrorCode::EditRejected`] from the engine, a failed log
    /// append, or (always) a read-only follower.
    pub fn edit(&self, tenant: &str, directive: &str) -> Result<u64, FarmError> {
        if self.read_only {
            return Err((
                ErrorCode::EditRejected,
                "this server is a read-only replication follower".to_owned(),
            ));
        }
        self.get(tenant)?.edit_now(directive, self.wal.as_deref())
    }

    /// Whether a tenant of that name is loaded.
    pub fn has_tenant(&self, tenant: &str) -> bool {
        self.tenants
            .read()
            .expect("tenants lock poisoned")
            .contains_key(tenant)
    }

    /// The epochs a tenant currently serves `as-of` reads for,
    /// oldest-first and ending with the current epoch. A cold tenant
    /// has no published epochs yet and reports an empty list.
    ///
    /// # Errors
    ///
    /// [`ErrorCode::NoSuchTenant`].
    pub fn retained_epochs(&self, tenant: &str) -> Result<Vec<u64>, FarmError> {
        let t = self.get(tenant)?;
        Ok(match t.serve.get() {
            Some(handle) => handle.retained_epochs(),
            None => Vec::new(),
        })
    }

    /// Applies one replayed log record — the follower's (and the
    /// startup recovery's) write path. The replay rules keep every
    /// replayer byte-identical to the leader: `Open` loads the named
    /// snapshot, `Edit` applies through the same lifecycle the leader
    /// used (deterministic engine rejections are skipped, exactly as
    /// the leader failed them), and `Checkpoint` loads its snapshot
    /// only for tenants this replica has no earlier records for.
    ///
    /// # Errors
    ///
    /// [`ErrorCode::LoadFailed`] when a named snapshot is gone, or
    /// [`ErrorCode::NoSuchTenant`] when an `Edit` precedes its
    /// tenant's `Open` — both mean the log and its artifacts are out
    /// of step, which a replica must surface, not paper over.
    pub fn apply_replica_record(&self, record: &WalRecord) -> Result<ReplicaApply, FarmError> {
        match record {
            WalRecord::Open { tenant, path } => {
                self.load_unlogged(tenant, Path::new(path))?;
                Ok(ReplicaApply::Loaded)
            }
            WalRecord::Edit { tenant, directive } => {
                match self.get(tenant)?.edit_now(directive, None) {
                    Ok(epoch) => Ok(ReplicaApply::Edited(epoch)),
                    Err((
                        ErrorCode::BadPayload | ErrorCode::UnknownName | ErrorCode::EditRejected,
                        message,
                    )) => Ok(ReplicaApply::EditSkipped(message)),
                    Err(e) => Err(e),
                }
            }
            WalRecord::Checkpoint { tenant, path, .. } => {
                if self.has_tenant(tenant) {
                    Ok(ReplicaApply::CheckpointSkipped)
                } else {
                    self.load_unlogged(tenant, Path::new(path))?;
                    Ok(ReplicaApply::Loaded)
                }
            }
        }
    }

    /// Compacts the edit log: captures every tenant's current state as
    /// a checkpoint snapshot under `dir`, then rewrites the log to drop
    /// the records those checkpoints subsume. Returns the number of
    /// records dropped.
    ///
    /// Each tenant's cutoff sequence number is reserved *under its
    /// edit lock*, so an edit racing the capture lands after the
    /// cutoff and survives the rewrite. Sequence numbers are preserved
    /// across the rewrite; a tailer mid-stream sees nothing re-delivered.
    ///
    /// # Errors
    ///
    /// [`ErrorCode::NotReplicating`] on a farm with no log;
    /// [`ErrorCode::LoadFailed`] for checkpoint-write or rewrite I/O
    /// failures (the log itself is replaced atomically or not at all).
    pub fn compact_wal(&self, dir: &Path) -> Result<usize, FarmError> {
        let wal = self.wal.as_ref().ok_or_else(|| {
            (
                ErrorCode::NotReplicating,
                "this server has no edit log to compact".to_owned(),
            )
        })?;
        let _serial = self.compact.lock().expect("compact lock poisoned");
        let io = |what: &str, e: &dyn std::fmt::Display| {
            (ErrorCode::LoadFailed, format!("compaction {what}: {e}"))
        };
        std::fs::create_dir_all(dir).map_err(|e| io("mkdir", &e))?;
        let tenants: Vec<Arc<Tenant>> = {
            let map = self.tenants.read().expect("tenants lock poisoned");
            let mut all: Vec<Arc<Tenant>> = map.values().cloned().collect();
            all.sort_by(|a, b| a.name.cmp(&b.name));
            all
        };
        let now = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0);
        let mut cutoffs: FxHashMap<String, u64> = FxHashMap::default();
        let mut checkpoints: Vec<Stamped> = Vec::with_capacity(tenants.len());
        for t in &tenants {
            // Capture under the tenant's edit lock: the reserved seq
            // orders before any edit that starts after we release it.
            let live = t.live.lock().expect("live lock poisoned");
            let cutoff = wal.reserve_seq();
            let captured = live
                .as_ref()
                .map(|engine| (engine.engine().chg().clone(), t.promote().epoch()));
            drop(live);
            let file = dir.join(format!("{}-seq{cutoff}.snap", sanitize_name(&t.name)));
            let epoch = match captured {
                Some((chg, epoch)) => {
                    Snapshot::compile_with(&chg, t.snapshot.options())
                        .write_to(&file)
                        .map_err(|e| io("checkpoint write", &e))?;
                    epoch
                }
                None => {
                    // Never edited: the validated snapshot image is the
                    // state, verbatim.
                    std::fs::write(&file, t.snapshot.as_bytes())
                        .map_err(|e| io("checkpoint write", &e))?;
                    0
                }
            };
            cutoffs.insert(t.name.clone(), cutoff);
            checkpoints.push(Stamped {
                seq: cutoff,
                unix_nanos: now,
                record: WalRecord::Checkpoint {
                    tenant: t.name.clone(),
                    path: file.display().to_string(),
                    epoch,
                },
            });
        }
        let mut dropped = 0usize;
        wal.rewrite(|records| {
            let mut kept: Vec<Stamped> = records
                .into_iter()
                .filter(|r| match cutoffs.get(r.record.tenant()) {
                    // Records up to the tenant's cutoff are subsumed by
                    // its checkpoint; unknown tenants (unloaded since)
                    // keep their history verbatim.
                    Some(&cutoff) => {
                        let keep = r.seq > cutoff;
                        if !keep {
                            dropped += 1;
                        }
                        keep
                    }
                    None => true,
                })
                .collect();
            kept.extend(checkpoints);
            kept.sort_by_key(|r| r.seq);
            kept
        })
        .map_err(|e| io("rewrite", &e))?;
        cpplookup_obs::global()
            .counter(
                "server_wal_compactions_total",
                "edit-log compaction rewrites",
            )
            .inc();
        Ok(dropped)
    }

    /// Farm statistics as JSON: one tenant's document, or
    /// `{"tenants":[...]}` for the whole farm when `tenant` is empty.
    ///
    /// # Errors
    ///
    /// [`ErrorCode::NoSuchTenant`].
    pub fn stats_json(&self, tenant: &str) -> Result<String, FarmError> {
        if !tenant.is_empty() {
            return Ok(self.get(tenant)?.stats_json());
        }
        let tenants = self.tenants.read().expect("tenants lock poisoned");
        let mut names: Vec<&String> = tenants.keys().collect();
        names.sort();
        let docs: Vec<String> = names
            .iter()
            .map(|n| tenants[n.as_str()].stats_json())
            .collect();
        Ok(format!("{{\"tenants\":[{}]}}", docs.join(",")))
    }
}

impl Default for Farm {
    fn default() -> Self {
        Farm::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpplookup_chg::fixtures;
    use cpplookup_snapshot::Snapshot;

    fn farm_with(name: &str, chg: &Chg) -> Farm {
        let farm = Farm::new();
        let dir = std::env::temp_dir().join(format!("cpplookup-farm-test-{name}-{:x}", {
            use std::time::{SystemTime, UNIX_EPOCH};
            SystemTime::now()
                .duration_since(UNIX_EPOCH)
                .unwrap()
                .as_nanos()
        }));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.snap");
        Snapshot::compile(chg).write_to(&path).unwrap();
        farm.load(name, &path).unwrap();
        std::fs::remove_dir_all(&dir).ok();
        farm
    }

    #[test]
    fn query_promotes_lazily_and_matches_snapshot_semantics() {
        let farm = farm_with("t", &fixtures::fig2());
        {
            let tenants = farm.tenants.read().unwrap();
            assert!(!tenants["t"].is_promoted(), "LOAD must not build the index");
        }
        let out = farm.query("t", "E", "m").unwrap();
        match out {
            WireOutcome::Resolved { class, .. } => assert_eq!(class, "D"),
            other => panic!("unexpected {other:?}"),
        }
        let tenants = farm.tenants.read().unwrap();
        assert!(tenants["t"].is_promoted());
    }

    #[test]
    fn unknown_names_and_tenants_are_structured() {
        let farm = farm_with("t", &fixtures::fig2());
        assert_eq!(
            farm.query("x", "E", "m").unwrap_err().0,
            ErrorCode::NoSuchTenant
        );
        assert_eq!(
            farm.query("t", "Nope", "m").unwrap_err().0,
            ErrorCode::UnknownName
        );
        assert_eq!(
            farm.query("t", "E", "nope").unwrap_err().0,
            ErrorCode::UnknownName
        );
    }

    #[test]
    fn edit_attaches_engine_and_queries_see_new_members() {
        let farm = farm_with("t", &fixtures::fig2());
        // Epoch 0 is the snapshot promotion; attach publishes 1; the
        // edit publishes 2.
        let epoch = farm.edit("t", "member E fresh").unwrap();
        assert_eq!(epoch, 2);
        let out = farm.query("t", "E", "fresh").unwrap();
        match out {
            WireOutcome::Resolved { class, .. } => assert_eq!(class, "E"),
            other => panic!("unexpected {other:?}"),
        }
        // New classes become addressable by name too.
        farm.edit("t", "class Z").unwrap();
        let epoch = farm.edit("t", "edge Z E").unwrap();
        assert_eq!(epoch, 4);
        assert!(farm
            .query("t", "Z", "fresh")
            .unwrap()
            .ne(&WireOutcome::NotFound));
    }

    #[test]
    fn edit_before_any_query_promotes_first() {
        let farm = farm_with("t", &fixtures::fig1());
        let epoch = farm.edit("t", "class Q").unwrap();
        assert_eq!(epoch, 2, "promotion epoch 0, attach 1, edit 2");
    }

    #[test]
    fn bad_directives_are_rejected() {
        let farm = farm_with("t", &fixtures::fig1());
        assert_eq!(farm.edit("t", "").unwrap_err().0, ErrorCode::BadPayload);
        assert_eq!(
            farm.edit("t", "drop table").unwrap_err().0,
            ErrorCode::BadPayload
        );
        assert_eq!(
            farm.edit("t", "member Nope x").unwrap_err().0,
            ErrorCode::UnknownName
        );
        // A cycle is caught by the engine and leaves the tenant serving.
        farm.edit("t", "class R").unwrap();
        farm.edit("t", "class S").unwrap();
        farm.edit("t", "edge R S").unwrap();
        assert_eq!(
            farm.edit("t", "edge S R").unwrap_err().0,
            ErrorCode::EditRejected
        );
        assert!(farm.query("t", "A", "m").is_ok());
    }

    #[test]
    fn stats_json_shape() {
        let farm = farm_with("alpha", &fixtures::fig2());
        let one = farm.stats_json("alpha").unwrap();
        assert!(one.starts_with("{\"tenant\":\"alpha\""), "{one}");
        assert!(one.contains("\"promoted\":false"));
        let all = farm.stats_json("").unwrap();
        assert!(all.starts_with("{\"tenants\":["), "{all}");
        assert_eq!(
            farm.stats_json("nope").unwrap_err().0,
            ErrorCode::NoSuchTenant
        );
    }

    #[test]
    fn batch_matches_point_queries() {
        let farm = farm_with("t", &fixtures::fig2());
        let probes = vec![
            ("E".to_owned(), "m".to_owned()),
            ("D".to_owned(), "m".to_owned()),
            ("E".to_owned(), "m".to_owned()),
        ];
        let batch = farm.batch("t", &probes).unwrap();
        for ((class, member), got) in probes.iter().zip(&batch) {
            assert_eq!(got, &farm.query("t", class, member).unwrap());
        }
    }

    /// A scratch directory that survives for the test (WAL replay needs
    /// the snapshot paths in the log to stay resolvable).
    fn scratch(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "cpplookup-farm-wal-{name}-{}-{:x}",
            std::process::id(),
            {
                use std::time::{SystemTime, UNIX_EPOCH};
                SystemTime::now()
                    .duration_since(UNIX_EPOCH)
                    .unwrap()
                    .as_nanos()
            }
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn logging_farm(dir: &Path, chg: &Chg) -> Farm {
        let snap = dir.join("t.snap");
        Snapshot::compile(chg).write_to(&snap).unwrap();
        let (wal, recovered) = WalStore::open(&dir.join("edits.wal"), 1).unwrap();
        assert!(recovered.is_empty());
        let farm = Farm::with_options(FarmOptions {
            wal: Some(Arc::new(wal)),
            ..FarmOptions::default()
        });
        farm.load("t", &snap).unwrap();
        farm
    }

    #[test]
    fn edits_append_to_the_log_before_applying() {
        let dir = scratch("append");
        let farm = logging_farm(&dir, &fixtures::fig2());
        farm.edit("t", "member E fresh").unwrap();
        farm.edit("t", "class R").unwrap();
        farm.edit("t", "class S").unwrap();
        farm.edit("t", "edge R S").unwrap();
        // A deterministic engine rejection (the cycle) is logged too —
        // every replayer fails it identically — but a parse failure
        // never reaches the log.
        assert_eq!(
            farm.edit("t", "edge S R").unwrap_err().0,
            ErrorCode::EditRejected
        );
        assert_eq!(
            farm.edit("t", "drop table").unwrap_err().0,
            ErrorCode::BadPayload
        );
        let records = cpplookup_wal::read_all(farm.wal().unwrap().path()).unwrap();
        let shapes: Vec<String> = records
            .iter()
            .map(|r| match &r.record {
                WalRecord::Open { tenant, .. } => format!("open {tenant}"),
                WalRecord::Edit { directive, .. } => directive.clone(),
                WalRecord::Checkpoint { .. } => "checkpoint".to_owned(),
            })
            .collect();
        assert_eq!(
            shapes,
            vec![
                "open t",
                "member E fresh",
                "class R",
                "class S",
                "edge R S",
                "edge S R",
            ]
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn replaying_the_log_reproduces_the_leader() {
        let dir = scratch("replay");
        let leader = logging_farm(&dir, &fixtures::fig2());
        leader.edit("t", "member E fresh").unwrap();
        leader.edit("t", "class Z").unwrap();
        let leader_epoch = leader.edit("t", "edge Z E").unwrap();
        // A cycle attempt: deterministically rejected, but logged.
        assert_eq!(
            leader.edit("t", "edge E Z").unwrap_err().0,
            ErrorCode::EditRejected
        );
        let follower = Farm::with_options(FarmOptions {
            read_only: true,
            ..FarmOptions::default()
        });
        for r in cpplookup_wal::read_all(leader.wal().unwrap().path()).unwrap() {
            follower.apply_replica_record(&r.record).unwrap();
        }
        assert_eq!(
            follower.retained_epochs("t").unwrap().last().copied(),
            Some(leader_epoch),
            "a full-history replay lands on the leader's epoch"
        );
        for (c, m) in [("E", "m"), ("E", "fresh"), ("Z", "fresh"), ("D", "m")] {
            assert_eq!(follower.query("t", c, m), leader.query("t", c, m));
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn read_only_farms_refuse_edits() {
        let dir = scratch("readonly");
        let snap = dir.join("t.snap");
        Snapshot::compile(&fixtures::fig1())
            .write_to(&snap)
            .unwrap();
        let farm = Farm::with_options(FarmOptions {
            read_only: true,
            ..FarmOptions::default()
        });
        farm.load("t", &snap).unwrap();
        assert_eq!(
            farm.edit("t", "class Q").unwrap_err().0,
            ErrorCode::EditRejected
        );
        assert!(farm.query("t", "A", "m").is_ok());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn as_of_reads_serve_retained_epochs() {
        let dir = scratch("asof");
        let snap = dir.join("t.snap");
        Snapshot::compile(&fixtures::fig2())
            .write_to(&snap)
            .unwrap();
        let farm = Farm::with_options(FarmOptions {
            retain_epochs: 8,
            ..FarmOptions::default()
        });
        farm.load("t", &snap).unwrap();
        farm.query("t", "E", "m").unwrap(); // promote: epoch 0
        let epoch = farm.edit("t", "member E fresh").unwrap(); // attach 1, edit 2
        assert_eq!(farm.retained_epochs("t").unwrap(), vec![0, 1, 2]);
        // The new member exists now but not in the pinned past.
        assert!(matches!(
            farm.query_at("t", "E", "fresh", Some(epoch)).unwrap(),
            WireOutcome::Resolved { .. }
        ));
        assert_eq!(
            farm.query_at("t", "E", "fresh", Some(0)).unwrap(),
            WireOutcome::NotFound
        );
        // Batches pin the same frozen version.
        let probes = vec![("E".to_owned(), "fresh".to_owned())];
        assert_eq!(
            farm.batch_at("t", &probes, Some(0)).unwrap(),
            vec![WireOutcome::NotFound]
        );
        assert_eq!(
            farm.query_at("t", "E", "m", Some(99)).unwrap_err().0,
            ErrorCode::EpochRetired
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn default_retention_retires_past_epochs() {
        let farm = farm_with("t", &fixtures::fig2());
        farm.query("t", "E", "m").unwrap();
        farm.edit("t", "member E fresh").unwrap();
        assert_eq!(
            farm.query_at("t", "E", "m", Some(0)).unwrap_err().0,
            ErrorCode::EpochRetired
        );
    }

    #[test]
    fn compaction_checkpoints_subsume_history_and_rejoiners_converge() {
        let dir = scratch("compact");
        let leader = logging_farm(&dir, &fixtures::fig2());
        leader.edit("t", "member E fresh").unwrap();
        leader.edit("t", "class Z").unwrap();
        leader.edit("t", "edge Z E").unwrap();
        // open + 3 edits are subsumed by the checkpoint.
        let dropped = leader.compact_wal(&dir.join("ckpt")).unwrap();
        assert_eq!(dropped, 4);
        let records = cpplookup_wal::read_all(leader.wal().unwrap().path()).unwrap();
        assert_eq!(records.len(), 1);
        assert!(matches!(records[0].record, WalRecord::Checkpoint { .. }));
        // The leader keeps serving and logging after the rewrite, with
        // sequence numbers still increasing.
        let before = records[0].seq;
        leader.edit("t", "class Q").unwrap();
        let records = cpplookup_wal::read_all(leader.wal().unwrap().path()).unwrap();
        assert_eq!(records.len(), 2);
        assert!(records[1].seq > before);
        // A fresh replayer of the compacted log converges to
        // byte-identical answers.
        let follower = Farm::with_options(FarmOptions {
            read_only: true,
            ..FarmOptions::default()
        });
        for r in &records {
            follower.apply_replica_record(&r.record).unwrap();
        }
        for (c, m) in [("E", "m"), ("E", "fresh"), ("Z", "fresh")] {
            assert_eq!(follower.query("t", c, m), leader.query("t", c, m));
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn compaction_preserves_cold_tenants_verbatim() {
        let dir = scratch("coldckpt");
        let leader = logging_farm(&dir, &fixtures::fig2());
        // Never edited: the checkpoint must be the validated snapshot
        // image, byte for byte.
        leader.compact_wal(&dir.join("ckpt")).unwrap();
        let records = cpplookup_wal::read_all(leader.wal().unwrap().path()).unwrap();
        assert_eq!(records.len(), 1);
        let ckpt_path = match &records[0].record {
            WalRecord::Checkpoint { path, .. } => path.clone(),
            other => panic!("unexpected {other:?}"),
        };
        let original = std::fs::read(dir.join("t.snap")).unwrap();
        let checkpoint = std::fs::read(&ckpt_path).unwrap();
        assert_eq!(original, checkpoint);
        std::fs::remove_dir_all(&dir).ok();
    }
}
