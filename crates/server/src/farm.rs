//! The tenant farm: many hierarchies, one server.
//!
//! Each tenant is born as a loaded
//! [`SnapshotTable`](cpplookup_snapshot::SnapshotTable) — cheap,
//! validated, zero-copy — and climbs a lifecycle ladder strictly on
//! demand:
//!
//! ```text
//!           LOAD                    first QUERY              first EDIT
//! (nothing) ────► SnapshotTable ───────────────► promoted ──────────────► live
//!                 cold, no index    DispatchIndex packed     engine warmed,
//!                                   once (coalesced), pub-   attached to the
//!                                   lished on a ServeHandle  SAME ServeHandle
//! ```
//!
//! The promotion step packs the snapshot through the backend-generic
//! [`IntoDispatchIndex`](cpplookup_core::IntoDispatchIndex) surface and
//! publishes epoch 0 on the tenant's
//! [`ServeHandle`](cpplookup_core::ServeHandle); the edit step warms a
//! [`LookupEngine`](cpplookup_core::LookupEngine) from the snapshot and
//! [`IndexedEngine::attach`](cpplookup_core::IndexedEngine::attach)es it
//! to that same handle, so readers migrate to engine-backed epochs
//! without re-resolving anything. A 1000-tenant farm where only a dozen
//! tenants see traffic pays for exactly a dozen index builds.
//!
//! Identical concurrent *cold* probes — the stampede when a popular
//! tenant is first touched — are coalesced: one connection packs the
//! index and answers, the rest block briefly and reuse its verdict. The
//! warm fast path never touches the coalescer.

use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, RwLock};
use std::time::Instant;

use cpplookup_chg::fxmap::FxHashMap;
use cpplookup_chg::{Chg, ClassId, Edit, Inheritance, MemberDecl, MemberId, MemberKind};
use cpplookup_core::{IndexedEngine, LeastVirtual, LookupOutcome, ServeHandle};
use cpplookup_snapshot::SnapshotTable;

use crate::coalesce::Coalescer;
use crate::protocol::{ErrorCode, WireLv, WireOutcome};

/// A request-level failure: the structured code plus a human message.
pub type FarmError = (ErrorCode, String);

/// Phase boundaries captured inside a traced probe, as instants: after
/// name resolution, after the serve handle was obtained (on a cold
/// tenant this absorbs the index build — the "promotion wait"), and
/// after the directory probe produced wire outcomes. Together with the
/// caller's own decode/encode stamps these partition a request
/// end-to-end.
#[derive(Clone, Copy, Debug)]
pub struct ProbeTiming {
    /// Names resolved to ids (includes the tenant-map lookup).
    pub resolved: Instant,
    /// Publication handle loaded; cold tenants pay the index pack here.
    pub promoted: Instant,
    /// Directory probed and outcomes converted back to names.
    pub probed: Instant,
}

/// Per-tenant metric families, shared by every tenant in a farm.
/// `None` on a farm built with observability off — the E19/E24
/// baseline — in which case tenants keep only their local atomics.
struct FarmMetrics {
    /// `tenant_promotions_total{tenant}`.
    promotions: Arc<cpplookup_obs::Family>,
    /// `tenant_epoch{tenant}`: the currently published index epoch.
    epoch: Arc<cpplookup_obs::GaugeFamily>,
}

impl FarmMetrics {
    fn new(cardinality: usize) -> FarmMetrics {
        let obs = cpplookup_obs::global();
        FarmMetrics {
            promotions: obs.counter_family_bounded(
                "tenant_promotions_total",
                "snapshot-to-index promotions, by tenant",
                "tenant",
                cardinality,
            ),
            epoch: obs.gauge_family(
                "tenant_epoch",
                "currently published index epoch, by tenant",
                "tenant",
                cardinality,
            ),
        }
    }
}

/// Name ↔ id mapping for one tenant, rebuilt wholesale on edit (edits
/// are rare and append-only; queries only take the read lock).
struct Names {
    classes: FxHashMap<String, ClassId>,
    members: FxHashMap<String, MemberId>,
    class_names: Vec<String>,
}

impl Names {
    fn from_snapshot(table: &SnapshotTable) -> Names {
        let mut n = Names {
            classes: FxHashMap::default(),
            members: FxHashMap::default(),
            class_names: Vec::with_capacity(table.class_count()),
        };
        for i in 0..table.class_count() {
            let c = ClassId::from_index(i);
            let name = table.class_name(c).unwrap_or_default().to_owned();
            n.classes.insert(name.clone(), c);
            n.class_names.push(name);
        }
        for i in 0..table.member_name_count() {
            let m = MemberId::from_index(i);
            if let Some(name) = table.member_name(m) {
                n.members.insert(name.to_owned(), m);
            }
        }
        n
    }

    fn from_chg(chg: &Chg) -> Names {
        let mut n = Names {
            classes: FxHashMap::default(),
            members: FxHashMap::default(),
            class_names: Vec::with_capacity(chg.class_count()),
        };
        for i in 0..chg.class_count() {
            let c = ClassId::from_index(i);
            let name = chg.class_name(c).to_owned();
            n.classes.insert(name.clone(), c);
            n.class_names.push(name);
        }
        for i in 0..chg.member_name_count() {
            let m = MemberId::from_index(i);
            n.members.insert(chg.member_name(m).to_owned(), m);
        }
        n
    }

    fn class(&self, name: &str) -> Result<ClassId, FarmError> {
        self.classes
            .get(name)
            .copied()
            .ok_or_else(|| (ErrorCode::UnknownName, format!("unknown class `{name}`")))
    }

    fn member(&self, name: &str) -> Result<MemberId, FarmError> {
        self.members
            .get(name)
            .copied()
            .ok_or_else(|| (ErrorCode::UnknownName, format!("unknown member `{name}`")))
    }

    fn lv(&self, lv: &LeastVirtual) -> WireLv {
        match lv {
            LeastVirtual::Omega => WireLv::Omega,
            LeastVirtual::Class(c) => WireLv::Class(self.class_name(*c)),
        }
    }

    fn class_name(&self, c: ClassId) -> String {
        self.class_names
            .get(c.index())
            .cloned()
            .unwrap_or_else(|| format!("{c}"))
    }

    fn wire(&self, outcome: &LookupOutcome) -> WireOutcome {
        match outcome {
            LookupOutcome::NotFound => WireOutcome::NotFound,
            LookupOutcome::Resolved {
                class,
                least_virtual,
            } => WireOutcome::Resolved {
                class: self.class_name(*class),
                least_virtual: self.lv(least_virtual),
            },
            LookupOutcome::Ambiguous { witnesses } => WireOutcome::Ambiguous {
                witnesses: witnesses.iter().map(|w| self.lv(w)).collect(),
            },
        }
    }
}

/// One tenant: a snapshot plus its lazily built serving state.
pub struct Tenant {
    name: String,
    snapshot: Arc<SnapshotTable>,
    /// Set exactly once, at promotion; `get_or_init` makes concurrent
    /// promoters single-flight.
    serve: OnceLock<ServeHandle>,
    /// The engine-backed write path; `Some` after the first edit. The
    /// mutex serializes edits per tenant (queries never take it).
    live: Mutex<Option<IndexedEngine>>,
    names: RwLock<Arc<Names>>,
    queries: AtomicU64,
    edits: AtomicU64,
    metrics: Option<Arc<FarmMetrics>>,
}

impl Tenant {
    fn new(name: String, table: SnapshotTable, metrics: Option<Arc<FarmMetrics>>) -> Tenant {
        let names = Names::from_snapshot(&table);
        Tenant {
            name,
            snapshot: Arc::new(table),
            serve: OnceLock::new(),
            live: Mutex::new(None),
            names: RwLock::new(Arc::new(names)),
            queries: AtomicU64::new(0),
            edits: AtomicU64::new(0),
            metrics,
        }
    }

    /// Whether the dispatch index has been built.
    pub fn is_promoted(&self) -> bool {
        self.serve.get().is_some()
    }

    /// Packs the snapshot into a `DispatchIndex` (once, single-flight)
    /// and returns the tenant's publication handle.
    fn promote(&self) -> &ServeHandle {
        self.serve.get_or_init(|| {
            cpplookup_obs::global()
                .counter(
                    "server_promotions_total",
                    "tenants promoted from snapshot to dispatch index",
                )
                .inc();
            if let Some(m) = &self.metrics {
                m.promotions.with_label(&self.name).inc();
                m.epoch.with_label(&self.name).set(0);
            }
            ServeHandle::serving(&*self.snapshot)
        })
    }

    fn names(&self) -> Arc<Names> {
        self.names.read().expect("names lock poisoned").clone()
    }

    fn query_now(&self, class: &str, member: &str) -> Result<WireOutcome, FarmError> {
        Ok(self.query_now_timed(class, member)?.0)
    }

    fn query_now_timed(
        &self,
        class: &str,
        member: &str,
    ) -> Result<(WireOutcome, ProbeTiming), FarmError> {
        self.queries.fetch_add(1, Ordering::Relaxed);
        let names = self.names();
        let (c, m) = (names.class(class)?, names.member(member)?);
        let resolved = Instant::now();
        let published = self.promote().load();
        let promoted = Instant::now();
        let outcome = names.wire(&published.index().lookup(c, m));
        let probed = Instant::now();
        Ok((
            outcome,
            ProbeTiming {
                resolved,
                promoted,
                probed,
            },
        ))
    }

    fn batch_now(&self, probes: &[(String, String)]) -> Result<Vec<WireOutcome>, FarmError> {
        Ok(self.batch_now_timed(probes)?.0)
    }

    fn batch_now_timed(
        &self,
        probes: &[(String, String)],
    ) -> Result<(Vec<WireOutcome>, ProbeTiming), FarmError> {
        self.queries
            .fetch_add(probes.len() as u64, Ordering::Relaxed);
        let names = self.names();
        let ids = probes
            .iter()
            .map(|(class, member)| Ok((names.class(class)?, names.member(member)?)))
            .collect::<Result<Vec<_>, FarmError>>()?;
        let resolved = Instant::now();
        let published = self.promote().load();
        let promoted = Instant::now();
        let outcomes = published
            .index()
            .lookup_batch(&ids)
            .iter()
            .map(|o| names.wire(o))
            .collect();
        let probed = Instant::now();
        Ok((
            outcomes,
            ProbeTiming {
                resolved,
                promoted,
                probed,
            },
        ))
    }

    fn edit_now(&self, directive: &str) -> Result<u64, FarmError> {
        let mut live = self.live.lock().expect("live lock poisoned");
        if live.is_none() {
            let engine = self.snapshot.warm_engine().map_err(|e| {
                (
                    ErrorCode::EditRejected,
                    format!("cannot warm engine for `{}`: {e}", self.name),
                )
            })?;
            // Attach to the SAME handle queries already hold, so
            // readers see engine-backed epochs from here on.
            *live = Some(IndexedEngine::attach(engine, self.promote().clone()));
        }
        let serving = live.as_mut().unwrap();
        let edit = parse_directive(directive, &self.names())?;
        let epoch = serving
            .apply(std::slice::from_ref(&edit))
            .map_err(|e| (ErrorCode::EditRejected, format!("edit rejected: {e}")))?;
        *self.names.write().expect("names lock poisoned") =
            Arc::new(Names::from_chg(serving.engine().chg()));
        self.edits.fetch_add(1, Ordering::Relaxed);
        if let Some(m) = &self.metrics {
            m.epoch.with_label(&self.name).set(epoch as i64);
        }
        Ok(epoch)
    }

    fn stats_json(&self) -> String {
        let live = self.live.lock().expect("live lock poisoned").is_some();
        format!(
            "{{\"tenant\":{},\"classes\":{},\"entries\":{},\"snapshot_bytes\":{},\
             \"promoted\":{},\"live\":{},\"epoch\":{},\"queries\":{},\"edits\":{}}}",
            json_str(&self.name),
            self.snapshot.class_count(),
            self.snapshot.entry_count(),
            self.snapshot.size_bytes(),
            self.is_promoted(),
            live,
            self.serve.get().map(|h| h.epoch()).unwrap_or(0),
            self.queries.load(Ordering::Relaxed),
            self.edits.load(Ordering::Relaxed),
        )
    }
}

/// Parses an edit directive against the tenant's current names:
/// `class NAME`, `member CLASS NAME`, or `edge DERIVED BASE [virtual]`
/// — the same grammar the CLI's `!`-directives use in batch mode.
fn parse_directive(directive: &str, names: &Names) -> Result<Edit, FarmError> {
    let bad = |m: String| (ErrorCode::BadPayload, m);
    let words: Vec<&str> = directive.split_whitespace().collect();
    match words.as_slice() {
        ["class", name] => Ok(Edit::AddClass {
            name: (*name).to_owned(),
        }),
        ["member", class, name] => Ok(Edit::AddMember {
            class: names.class(class)?,
            name: (*name).to_owned(),
            decl: MemberDecl::public(MemberKind::Function),
        }),
        ["edge", derived, base] => Ok(Edit::AddEdge {
            derived: names.class(derived)?,
            base: names.class(base)?,
            inheritance: Inheritance::NonVirtual,
            access: cpplookup_chg::Access::Public,
        }),
        ["edge", derived, base, "virtual"] => Ok(Edit::AddEdge {
            derived: names.class(derived)?,
            base: names.class(base)?,
            inheritance: Inheritance::Virtual,
            access: cpplookup_chg::Access::Public,
        }),
        [] => Err(bad("empty edit directive".to_owned())),
        _ => Err(bad(format!(
            "bad edit directive `{directive}` (expected `class NAME`, \
             `member CLASS NAME`, or `edge DERIVED BASE [virtual]`)"
        ))),
    }
}

/// Minimal JSON string encoding (names are operator-controlled, but a
/// quote in a tenant name must not corrupt the stats document).
pub(crate) fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// The farm: the tenant map plus the cold-probe coalescer.
pub struct Farm {
    tenants: RwLock<FxHashMap<String, Arc<Tenant>>>,
    cold_probes: Coalescer<(String, String, String), Result<WireOutcome, FarmError>>,
    metrics: Option<Arc<FarmMetrics>>,
}

impl Farm {
    /// An empty farm with per-tenant metrics at the default label
    /// cardinality.
    pub fn new() -> Farm {
        Farm::with_tenant_cardinality(Some(64))
    }

    /// An empty farm; `cardinality` bounds the per-tenant label space
    /// of the `tenant_promotions_total` / `tenant_epoch` families
    /// (tenants past the bound share an `other` series), and `None`
    /// disables the per-tenant families entirely — the observability-off
    /// baseline the E24 overhead experiment compares against.
    pub fn with_tenant_cardinality(cardinality: Option<usize>) -> Farm {
        Farm {
            tenants: RwLock::new(FxHashMap::default()),
            cold_probes: Coalescer::new(),
            metrics: cardinality.map(|k| Arc::new(FarmMetrics::new(k))),
        }
    }

    /// Loads (or replaces) a tenant from a snapshot file, returning
    /// `(entries, snapshot bytes)`. A replaced tenant restarts its
    /// lifecycle from cold; readers of the old tenant finish on the old
    /// state.
    ///
    /// # Errors
    ///
    /// [`ErrorCode::LoadFailed`] with the loader's message.
    pub fn load(&self, tenant: &str, path: &Path) -> Result<(u64, u64), FarmError> {
        let table = SnapshotTable::load(path).map_err(|e| {
            (
                ErrorCode::LoadFailed,
                format!("loading `{}`: {e}", path.display()),
            )
        })?;
        let stats = (table.entry_count() as u64, table.size_bytes() as u64);
        let t = Arc::new(Tenant::new(tenant.to_owned(), table, self.metrics.clone()));
        let count = {
            let mut tenants = self.tenants.write().expect("tenants lock poisoned");
            tenants.insert(tenant.to_owned(), t);
            tenants.len()
        };
        cpplookup_obs::global()
            .gauge("server_tenants", "tenants currently loaded")
            .set(count as i64);
        Ok(stats)
    }

    /// Number of loaded tenants.
    pub fn tenant_count(&self) -> u32 {
        self.tenants.read().expect("tenants lock poisoned").len() as u32
    }

    fn get(&self, tenant: &str) -> Result<Arc<Tenant>, FarmError> {
        self.tenants
            .read()
            .expect("tenants lock poisoned")
            .get(tenant)
            .cloned()
            .ok_or_else(|| (ErrorCode::NoSuchTenant, format!("no tenant `{tenant}`")))
    }

    /// One point lookup. Warm tenants answer straight from their
    /// published index; cold tenants coalesce identical concurrent
    /// probes around the one index build.
    ///
    /// # Errors
    ///
    /// [`ErrorCode::NoSuchTenant`] or [`ErrorCode::UnknownName`].
    pub fn query(&self, tenant: &str, class: &str, member: &str) -> Result<WireOutcome, FarmError> {
        let t = self.get(tenant)?;
        if t.is_promoted() {
            return t.query_now(class, member);
        }
        let key = (tenant.to_owned(), class.to_owned(), member.to_owned());
        let (outcome, leader) = self.cold_probes.run(key, || t.query_now(class, member));
        if !leader {
            cpplookup_obs::global()
                .counter(
                    "server_coalesced_probes_total",
                    "cold probes answered by another connection's in-flight computation",
                )
                .inc();
        }
        outcome
    }

    /// One point lookup with phase timing, for traced requests. Traced
    /// probes bypass the cold-probe coalescer on purpose: a trace asks
    /// "what did *this* request pay", and riding another connection's
    /// in-flight build would attribute the leader's work to the
    /// follower.
    ///
    /// # Errors
    ///
    /// As for [`query`](Farm::query).
    pub fn query_traced(
        &self,
        tenant: &str,
        class: &str,
        member: &str,
    ) -> Result<(WireOutcome, ProbeTiming), FarmError> {
        self.get(tenant)?.query_now_timed(class, member)
    }

    /// A batch of lookups with phase timing, for traced requests.
    ///
    /// # Errors
    ///
    /// As for [`batch`](Farm::batch).
    pub fn batch_traced(
        &self,
        tenant: &str,
        probes: &[(String, String)],
    ) -> Result<(Vec<WireOutcome>, ProbeTiming), FarmError> {
        self.get(tenant)?.batch_now_timed(probes)
    }

    /// A batch of lookups against one tenant, answered in probe order.
    ///
    /// # Errors
    ///
    /// [`ErrorCode::NoSuchTenant`] or [`ErrorCode::UnknownName`] (the
    /// whole batch fails on the first unresolvable name).
    pub fn batch(
        &self,
        tenant: &str,
        probes: &[(String, String)],
    ) -> Result<Vec<WireOutcome>, FarmError> {
        self.get(tenant)?.batch_now(probes)
    }

    /// Applies one edit directive through the tenant's engine, warming
    /// it on first use, and returns the newly published epoch.
    ///
    /// # Errors
    ///
    /// [`ErrorCode::NoSuchTenant`], [`ErrorCode::UnknownName`],
    /// [`ErrorCode::BadPayload`] for an unparseable directive, or
    /// [`ErrorCode::EditRejected`] from the engine.
    pub fn edit(&self, tenant: &str, directive: &str) -> Result<u64, FarmError> {
        self.get(tenant)?.edit_now(directive)
    }

    /// Farm statistics as JSON: one tenant's document, or
    /// `{"tenants":[...]}` for the whole farm when `tenant` is empty.
    ///
    /// # Errors
    ///
    /// [`ErrorCode::NoSuchTenant`].
    pub fn stats_json(&self, tenant: &str) -> Result<String, FarmError> {
        if !tenant.is_empty() {
            return Ok(self.get(tenant)?.stats_json());
        }
        let tenants = self.tenants.read().expect("tenants lock poisoned");
        let mut names: Vec<&String> = tenants.keys().collect();
        names.sort();
        let docs: Vec<String> = names
            .iter()
            .map(|n| tenants[n.as_str()].stats_json())
            .collect();
        Ok(format!("{{\"tenants\":[{}]}}", docs.join(",")))
    }
}

impl Default for Farm {
    fn default() -> Self {
        Farm::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpplookup_chg::fixtures;
    use cpplookup_snapshot::Snapshot;

    fn farm_with(name: &str, chg: &Chg) -> Farm {
        let farm = Farm::new();
        let dir = std::env::temp_dir().join(format!("cpplookup-farm-test-{name}-{:x}", {
            use std::time::{SystemTime, UNIX_EPOCH};
            SystemTime::now()
                .duration_since(UNIX_EPOCH)
                .unwrap()
                .as_nanos()
        }));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.snap");
        Snapshot::compile(chg).write_to(&path).unwrap();
        farm.load(name, &path).unwrap();
        std::fs::remove_dir_all(&dir).ok();
        farm
    }

    #[test]
    fn query_promotes_lazily_and_matches_snapshot_semantics() {
        let farm = farm_with("t", &fixtures::fig2());
        {
            let tenants = farm.tenants.read().unwrap();
            assert!(!tenants["t"].is_promoted(), "LOAD must not build the index");
        }
        let out = farm.query("t", "E", "m").unwrap();
        match out {
            WireOutcome::Resolved { class, .. } => assert_eq!(class, "D"),
            other => panic!("unexpected {other:?}"),
        }
        let tenants = farm.tenants.read().unwrap();
        assert!(tenants["t"].is_promoted());
    }

    #[test]
    fn unknown_names_and_tenants_are_structured() {
        let farm = farm_with("t", &fixtures::fig2());
        assert_eq!(
            farm.query("x", "E", "m").unwrap_err().0,
            ErrorCode::NoSuchTenant
        );
        assert_eq!(
            farm.query("t", "Nope", "m").unwrap_err().0,
            ErrorCode::UnknownName
        );
        assert_eq!(
            farm.query("t", "E", "nope").unwrap_err().0,
            ErrorCode::UnknownName
        );
    }

    #[test]
    fn edit_attaches_engine_and_queries_see_new_members() {
        let farm = farm_with("t", &fixtures::fig2());
        // Epoch 0 is the snapshot promotion; attach publishes 1; the
        // edit publishes 2.
        let epoch = farm.edit("t", "member E fresh").unwrap();
        assert_eq!(epoch, 2);
        let out = farm.query("t", "E", "fresh").unwrap();
        match out {
            WireOutcome::Resolved { class, .. } => assert_eq!(class, "E"),
            other => panic!("unexpected {other:?}"),
        }
        // New classes become addressable by name too.
        farm.edit("t", "class Z").unwrap();
        let epoch = farm.edit("t", "edge Z E").unwrap();
        assert_eq!(epoch, 4);
        assert!(farm
            .query("t", "Z", "fresh")
            .unwrap()
            .ne(&WireOutcome::NotFound));
    }

    #[test]
    fn edit_before_any_query_promotes_first() {
        let farm = farm_with("t", &fixtures::fig1());
        let epoch = farm.edit("t", "class Q").unwrap();
        assert_eq!(epoch, 2, "promotion epoch 0, attach 1, edit 2");
    }

    #[test]
    fn bad_directives_are_rejected() {
        let farm = farm_with("t", &fixtures::fig1());
        assert_eq!(farm.edit("t", "").unwrap_err().0, ErrorCode::BadPayload);
        assert_eq!(
            farm.edit("t", "drop table").unwrap_err().0,
            ErrorCode::BadPayload
        );
        assert_eq!(
            farm.edit("t", "member Nope x").unwrap_err().0,
            ErrorCode::UnknownName
        );
        // A cycle is caught by the engine and leaves the tenant serving.
        farm.edit("t", "class R").unwrap();
        farm.edit("t", "class S").unwrap();
        farm.edit("t", "edge R S").unwrap();
        assert_eq!(
            farm.edit("t", "edge S R").unwrap_err().0,
            ErrorCode::EditRejected
        );
        assert!(farm.query("t", "A", "m").is_ok());
    }

    #[test]
    fn stats_json_shape() {
        let farm = farm_with("alpha", &fixtures::fig2());
        let one = farm.stats_json("alpha").unwrap();
        assert!(one.starts_with("{\"tenant\":\"alpha\""), "{one}");
        assert!(one.contains("\"promoted\":false"));
        let all = farm.stats_json("").unwrap();
        assert!(all.starts_with("{\"tenants\":["), "{all}");
        assert_eq!(
            farm.stats_json("nope").unwrap_err().0,
            ErrorCode::NoSuchTenant
        );
    }

    #[test]
    fn batch_matches_point_queries() {
        let farm = farm_with("t", &fixtures::fig2());
        let probes = vec![
            ("E".to_owned(), "m".to_owned()),
            ("D".to_owned(), "m".to_owned()),
            ("E".to_owned(), "m".to_owned()),
        ];
        let batch = farm.batch("t", &probes).unwrap();
        for ((class, member), got) in probes.iter().zip(&batch) {
            assert_eq!(got, &farm.query("t", class, member).unwrap());
        }
    }
}
