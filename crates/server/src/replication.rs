//! Follower-side replication: tail a leader's edit log and apply it.
//!
//! A [`Follower`] is a background thread that keeps a read-only
//! [`Farm`] converged with a leader by replaying the leader's log in
//! sequence order through [`Farm::apply_replica_record`] — the same
//! replay path the leader itself uses for crash recovery, so "follower
//! state" and "restarted-leader state" are the same thing by
//! construction. Two transports ship the records:
//!
//! * **Wire** ([`FollowSource::Wire`]): a `SUBSCRIBE` connection to the
//!   leader streams records as they are appended; a second, plain
//!   connection reports progress back with `ACK` frames. Disconnects
//!   and leader restarts are survived by resubscribing from the last
//!   applied sequence number — records carry their identity, so replay
//!   is idempotent by construction.
//! * **File** ([`FollowSource::File`]): the leader's log file is tailed
//!   directly (same host or shared filesystem) with
//!   [`FileTailer`](cpplookup_wal::FileTailer); a torn tail — the
//!   leader mid-append — reads as "no new records yet".
//!
//! Replication lag is measured per record as apply-time minus the
//! leader's append timestamp and lands in the
//! `replication_lag_ns` histogram; `replication_applied_seq` gauges the
//! follower's position for dashboards and the E25 experiment.

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, SystemTime, UNIX_EPOCH};

use cpplookup_wal::{FileTailer, WalRecord};

use crate::client::Client;
use crate::farm::Farm;
use crate::protocol::WireRecord;

/// Converts a log record to its wire twin (the protocol stays free of
/// a `cpplookup-wal` dependency; the two enums mirror field for field).
pub fn wire_record(r: &WalRecord) -> WireRecord {
    match r {
        WalRecord::Open { tenant, path } => WireRecord::Open {
            tenant: tenant.clone(),
            path: path.clone(),
        },
        WalRecord::Edit { tenant, directive } => WireRecord::Edit {
            tenant: tenant.clone(),
            directive: directive.clone(),
        },
        WalRecord::Checkpoint {
            tenant,
            path,
            epoch,
        } => WireRecord::Checkpoint {
            tenant: tenant.clone(),
            path: path.clone(),
            epoch: *epoch,
        },
    }
}

/// Converts a wire record back to the log record it mirrors.
pub fn wal_record(r: &WireRecord) -> WalRecord {
    match r {
        WireRecord::Open { tenant, path } => WalRecord::Open {
            tenant: tenant.clone(),
            path: path.clone(),
        },
        WireRecord::Edit { tenant, directive } => WalRecord::Edit {
            tenant: tenant.clone(),
            directive: directive.clone(),
        },
        WireRecord::Checkpoint {
            tenant,
            path,
            epoch,
        } => WalRecord::Checkpoint {
            tenant: tenant.clone(),
            path: path.clone(),
            epoch: *epoch,
        },
    }
}

/// Where a follower's records come from.
#[derive(Clone, Debug)]
pub enum FollowSource {
    /// Subscribe to a leader over the wire protocol (`host:port`).
    Wire(String),
    /// Tail the leader's log file directly.
    File(PathBuf),
}

/// Follower configuration.
#[derive(Clone, Debug)]
pub struct FollowerConfig {
    /// The leader's log, by wire or by file.
    pub source: FollowSource,
    /// Name this follower reports in its ACKs (and metrics labels).
    pub follower_id: String,
    /// Resume point: apply only records after this sequence number
    /// (0 = from the beginning).
    pub from_seq: u64,
    /// Idle poll interval (file mode) / reconnect backoff (wire mode).
    pub poll_interval: Duration,
    /// Wire mode: report progress to the leader after this many applied
    /// records (0 disables ACKs).
    pub ack_every: u64,
}

impl Default for FollowerConfig {
    fn default() -> Self {
        FollowerConfig {
            source: FollowSource::File(PathBuf::from("edits.wal")),
            follower_id: "follower".to_owned(),
            from_seq: 0,
            poll_interval: Duration::from_millis(20),
            ack_every: 32,
        }
    }
}

/// Shared live state of a running follower.
struct Progress {
    /// Last sequence number applied to the farm.
    applied: AtomicU64,
    /// Records applied since start.
    records: AtomicU64,
    stop: AtomicBool,
}

/// A background replication loop — see the module docs.
pub struct Follower {
    progress: Arc<Progress>,
    worker: Option<thread::JoinHandle<()>>,
}

impl Follower {
    /// Starts replicating `config.source` into `farm` on a background
    /// thread. The farm is typically read-only (client edits refused),
    /// but that is the caller's choice — replay bypasses the read-only
    /// gate by design.
    pub fn start(farm: Arc<Farm>, config: FollowerConfig) -> Follower {
        let progress = Arc::new(Progress {
            applied: AtomicU64::new(config.from_seq),
            records: AtomicU64::new(0),
            stop: AtomicBool::new(false),
        });
        let worker = {
            let progress = Arc::clone(&progress);
            thread::spawn(move || match &config.source {
                FollowSource::Wire(addr) => follow_wire(&farm, &config, addr, &progress),
                FollowSource::File(path) => follow_file(&farm, &config, path, &progress),
            })
        };
        Follower {
            progress,
            worker: Some(worker),
        }
    }

    /// Last log sequence number applied to the farm.
    pub fn applied_seq(&self) -> u64 {
        self.progress.applied.load(Ordering::SeqCst)
    }

    /// Records applied since start.
    pub fn records_applied(&self) -> u64 {
        self.progress.records.load(Ordering::SeqCst)
    }

    /// Blocks until the follower has applied through `seq` (or the
    /// timeout passes); returns whether it got there.
    pub fn wait_for_seq(&self, seq: u64, timeout: Duration) -> bool {
        let deadline = std::time::Instant::now() + timeout;
        while self.applied_seq() < seq {
            if std::time::Instant::now() >= deadline {
                return false;
            }
            thread::sleep(Duration::from_millis(2));
        }
        true
    }

    /// Stops the loop and joins the thread.
    pub fn stop(mut self) {
        self.halt();
    }

    fn halt(&mut self) {
        self.progress.stop.store(true, Ordering::SeqCst);
        if let Some(worker) = self.worker.take() {
            let _ = worker.join();
        }
    }
}

impl Drop for Follower {
    fn drop(&mut self) {
        self.halt();
    }
}

/// Per-follower metric handles, resolved once.
struct LagMeter {
    lag: Arc<cpplookup_obs::Histogram>,
    applied: Arc<cpplookup_obs::Gauge>,
    skipped: Arc<cpplookup_obs::Counter>,
    errors: Arc<cpplookup_obs::Counter>,
}

impl LagMeter {
    fn new() -> LagMeter {
        let obs = cpplookup_obs::global();
        LagMeter {
            lag: obs.histogram(
                "replication_lag_ns",
                "per-record apply-time minus leader append-time",
                cpplookup_obs::Histogram::latency_ns(),
            ),
            applied: obs.gauge(
                "replication_applied_seq",
                "last leader log sequence number applied locally",
            ),
            skipped: obs.counter(
                "replication_skipped_total",
                "replayed records deterministically skipped (leader rejected them too)",
            ),
            errors: obs.counter(
                "replication_errors_total",
                "records that failed to apply or stream errors",
            ),
        }
    }
}

fn unix_nanos_now() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0)
}

/// Applies one record, advancing progress and the lag histogram.
fn apply_one(
    farm: &Farm,
    meter: &LagMeter,
    progress: &Progress,
    seq: u64,
    leader_nanos: u64,
    record: &WalRecord,
) {
    match farm.apply_replica_record(record) {
        Ok(crate::farm::ReplicaApply::EditSkipped(_)) => meter.skipped.inc(),
        Ok(_) => {}
        Err(_) => {
            // A missing snapshot artifact or an out-of-order stream:
            // count it and keep the position honest — retrying the same
            // record forever would wedge the stream.
            meter.errors.inc();
        }
    }
    progress.applied.store(seq, Ordering::SeqCst);
    progress.records.fetch_add(1, Ordering::SeqCst);
    meter.applied.set(seq as i64);
    meter
        .lag
        .observe(unix_nanos_now().saturating_sub(leader_nanos));
}

/// The wire loop: subscribe, apply, ack; reconnect on any stream error.
fn follow_wire(farm: &Farm, config: &FollowerConfig, addr: &str, progress: &Progress) {
    let meter = LagMeter::new();
    // Short read timeouts keep the loop responsive to `stop` while the
    // leader is quiet: a timeout is an idle tick, not a failure.
    let timeout = Some(Duration::from_millis(250));
    while !progress.stop.load(Ordering::SeqCst) {
        let from = progress.applied.load(Ordering::SeqCst);
        let Ok(client) = Client::connect(addr, timeout) else {
            thread::sleep(config.poll_interval);
            continue;
        };
        let Ok(mut sub) = client.subscribe(from) else {
            thread::sleep(config.poll_interval);
            continue;
        };
        let mut acker: Option<Client> = None;
        let mut unacked = 0u64;
        loop {
            if progress.stop.load(Ordering::SeqCst) {
                return;
            }
            match sub.next_record() {
                Ok((seq, leader_nanos, record)) => {
                    apply_one(
                        farm,
                        &meter,
                        progress,
                        seq,
                        leader_nanos,
                        &wal_record(&record),
                    );
                    unacked += 1;
                    if config.ack_every > 0 && unacked >= config.ack_every {
                        if acker.is_none() {
                            acker = Client::connect(addr, timeout).ok();
                        }
                        if let Some(c) = &mut acker {
                            if c.ack(&config.follower_id, seq).is_err() {
                                acker = None;
                            }
                        }
                        unacked = 0;
                    }
                }
                Err(crate::client::ClientError::Transport(e))
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    // Idle leader; take the chance to flush a final ack
                    // so the leader's view converges when writes stop.
                    if config.ack_every > 0 && unacked > 0 {
                        let seq = progress.applied.load(Ordering::SeqCst);
                        if acker.is_none() {
                            acker = Client::connect(addr, timeout).ok();
                        }
                        if let Some(c) = &mut acker {
                            if c.ack(&config.follower_id, seq).is_ok() {
                                unacked = 0;
                            } else {
                                acker = None;
                            }
                        }
                    }
                }
                Err(_) => {
                    // Leader gone or stream damaged: resubscribe from
                    // the applied position after a breath.
                    meter.errors.inc();
                    break;
                }
            }
        }
        thread::sleep(config.poll_interval);
    }
}

/// The file loop: poll the leader's log with a [`FileTailer`].
fn follow_file(farm: &Farm, config: &FollowerConfig, path: &std::path::Path, progress: &Progress) {
    let meter = LagMeter::new();
    let mut tailer = FileTailer::new(path, progress.applied.load(Ordering::SeqCst));
    while !progress.stop.load(Ordering::SeqCst) {
        match tailer.poll() {
            Ok(batch) if batch.is_empty() => thread::sleep(config.poll_interval),
            Ok(batch) => {
                for stamped in batch {
                    apply_one(
                        farm,
                        &meter,
                        progress,
                        stamped.seq,
                        stamped.unix_nanos,
                        &stamped.record,
                    );
                }
            }
            Err(_) => {
                // Mid-rewrite rename or real damage: the tailer dedupes
                // by seq, so retrying after a pause is always safe.
                meter.errors.inc();
                thread::sleep(config.poll_interval);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_conversions_roundtrip() {
        let records = [
            WalRecord::Open {
                tenant: "t".into(),
                path: "/snap/t.snap".into(),
            },
            WalRecord::Edit {
                tenant: "t".into(),
                directive: "member E fresh".into(),
            },
            WalRecord::Checkpoint {
                tenant: "t".into(),
                path: "/ckpt/t-seq9.snap".into(),
                epoch: 4,
            },
        ];
        for r in &records {
            assert_eq!(&wal_record(&wire_record(r)), r);
        }
    }
}
