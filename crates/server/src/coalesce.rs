//! Single-flight coalescing: N concurrent requests for the same key,
//! one computation.
//!
//! The farm uses this on the tenant *cold path*: the first probe
//! against a freshly loaded tenant pays a full `DispatchIndex` build,
//! and under fan-out traffic hundreds of connections can hit the same
//! cold tenant in the same millisecond. Without coalescing each one
//! would either build its own index (wasted work) or serialize on a
//! lock for the whole build (convoy). Here the first caller becomes the
//! *leader* and computes; followers park on a condvar and wake with a
//! clone of the leader's value.

use std::collections::HashMap;
use std::hash::Hash;
use std::sync::{Arc, Condvar, Mutex};

struct Flight<V> {
    slot: Mutex<Option<V>>,
    ready: Condvar,
}

/// A keyed single-flight gate. `V` must be `Clone` — followers receive
/// copies of the leader's result.
pub struct Coalescer<K, V> {
    flights: Mutex<HashMap<K, Arc<Flight<V>>>>,
}

impl<K: Eq + Hash + Clone, V: Clone> Coalescer<K, V> {
    /// An empty gate.
    pub fn new() -> Self {
        Coalescer {
            flights: Mutex::new(HashMap::new()),
        }
    }

    /// Runs `compute` for `key`, unless an identical flight is already
    /// in the air — then blocks until that flight lands and returns its
    /// value. The boolean is `true` for the leader (the caller that
    /// actually computed), so callers can count coalesced requests.
    pub fn run(&self, key: K, compute: impl FnOnce() -> V) -> (V, bool) {
        let (flight, leader) = {
            let mut flights = self.flights.lock().unwrap();
            match flights.get(&key) {
                Some(f) => (Arc::clone(f), false),
                None => {
                    let f = Arc::new(Flight {
                        slot: Mutex::new(None),
                        ready: Condvar::new(),
                    });
                    flights.insert(key.clone(), Arc::clone(&f));
                    (f, true)
                }
            }
        };
        if leader {
            let value = compute();
            *flight.slot.lock().unwrap() = Some(value.clone());
            flight.ready.notify_all();
            // Late arrivals after this point start a fresh flight,
            // which is correct: the interesting window is concurrent
            // cold probes, and the farm's fast path stops consulting
            // the coalescer once the tenant is warm.
            self.flights.lock().unwrap().remove(&key);
            (value, true)
        } else {
            let mut slot = flight.slot.lock().unwrap();
            while slot.is_none() {
                slot = flight.ready.wait(slot).unwrap();
            }
            (slot.clone().unwrap(), false)
        }
    }
}

impl<K: Eq + Hash + Clone, V: Clone> Default for Coalescer<K, V> {
    fn default() -> Self {
        Coalescer::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn sequential_runs_each_compute() {
        let c = Coalescer::new();
        let (v, leader) = c.run("k", || 1);
        assert_eq!((v, leader), (1, true));
        let (v, leader) = c.run("k", || 2);
        assert_eq!((v, leader), (2, true), "flight is cleared after landing");
    }

    #[test]
    fn concurrent_same_key_computes_once() {
        let c = Arc::new(Coalescer::new());
        let computes = Arc::new(AtomicUsize::new(0));
        let gate = Arc::new(std::sync::Barrier::new(8));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let (c, computes, gate) =
                    (Arc::clone(&c), Arc::clone(&computes), Arc::clone(&gate));
                std::thread::spawn(move || {
                    gate.wait();
                    c.run("tenant", || {
                        computes.fetch_add(1, Ordering::SeqCst);
                        // Widen the window so followers really pile up.
                        std::thread::sleep(std::time::Duration::from_millis(20));
                        42
                    })
                })
            })
            .collect();
        let results: Vec<(i32, bool)> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert!(results.iter().all(|(v, _)| *v == 42));
        let leaders = results.iter().filter(|(_, l)| *l).count();
        assert_eq!(leaders, computes.load(Ordering::SeqCst));
        assert!(leaders >= 1, "someone must have computed");
    }

    #[test]
    fn distinct_keys_do_not_coalesce() {
        let c = Coalescer::new();
        assert_eq!(c.run(1, || 10).0, 10);
        assert_eq!(c.run(2, || 20).0, 20);
    }
}
