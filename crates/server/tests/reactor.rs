//! The epoll reactor is an I/O-model swap, not a semantic one: over
//! any wire session, a `--io-model epoll` server must answer
//! byte-identically to a `--io-model threads` server — across every
//! possible partial-read reassembly, pipelining burst, torn frame, and
//! damaged frame. These tests pin that, plus the reactor-specific
//! behaviors: fairness under pipelining, idle timeouts, admin and
//! subscription handoff, and prompt shutdown without the old
//! throwaway-connect hack.
#![cfg(target_os = "linux")]

use std::io::{Read, Write};
use std::net::TcpStream;
use std::net::{Shutdown, SocketAddr};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use cpplookup_chg::{fixtures, Chg};
use cpplookup_server::client::Client;
use cpplookup_server::protocol::{
    read_frame, write_frame, FrameError, Request, Response, WireOutcome, PROTOCOL_VERSION,
};
use cpplookup_server::server::{IoModel, Server, ServerConfig};
use cpplookup_snapshot::Snapshot;
use proptest::prelude::*;

/// A throwaway directory, removed on drop.
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .as_nanos();
        let dir = std::env::temp_dir().join(format!("cpplookup-reactor-{tag}-{nanos:x}"));
        std::fs::create_dir_all(&dir).unwrap();
        TempDir(dir)
    }

    fn file(&self, name: &str) -> PathBuf {
        self.0.join(name)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        std::fs::remove_dir_all(&self.0).ok();
    }
}

fn write_snapshot(chg: &Chg, path: &Path) {
    Snapshot::compile(chg).write_to(path).unwrap();
}

fn config(io_model: IoModel, preload: &[(String, PathBuf)]) -> ServerConfig {
    ServerConfig {
        io_model,
        preload: preload.to_vec(),
        ..ServerConfig::default()
    }
}

/// A server pair over identical preloads: the reactor under test and
/// the threaded reference.
fn start_pair(preload: &[(String, PathBuf)]) -> (Server, Server) {
    let epoll = Server::start(config(IoModel::Epoll, preload)).unwrap();
    let threads = Server::start(config(IoModel::Threads, preload)).unwrap();
    (epoll, threads)
}

fn frame_of(req: &Request) -> Vec<u8> {
    let mut wire = Vec::new();
    write_frame(&mut wire, &req.encode()).unwrap();
    wire
}

/// Plays a raw byte stream at a server — written as the given chunks,
/// flushed between each — and collects one response frame per request.
fn play_chunks(addr: SocketAddr, chunks: &[&[u8]], expect: usize) -> Vec<Vec<u8>> {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(20)))
        .unwrap();
    stream.set_nodelay(true).unwrap();
    for chunk in chunks {
        stream.write_all(chunk).unwrap();
        stream.flush().unwrap();
    }
    stream.shutdown(Shutdown::Write).unwrap();
    let mut responses = Vec::with_capacity(expect);
    for _ in 0..expect {
        responses.push(read_frame(&mut stream).unwrap());
    }
    assert!(
        matches!(read_frame(&mut stream), Err(FrameError::Eof)),
        "server must close cleanly after the write half shuts"
    );
    responses
}

/// Plays a full session (one write) at a server.
fn play(addr: SocketAddr, requests: &[Request]) -> Vec<Vec<u8>> {
    let wire: Vec<u8> = requests.iter().flat_map(frame_of).collect();
    play_chunks(addr, &[&wire], requests.len())
}

/// One snapshot, loadable by both servers of a pair.
fn fig2_preload(dir: &TempDir) -> Vec<(String, PathBuf)> {
    let snap = dir.file("fig2.snap");
    write_snapshot(&fixtures::fig2(), &snap);
    vec![("t0".to_owned(), snap)]
}

fn query(class: &str, member: &str) -> Request {
    Request::Query {
        tenant: "t0".to_owned(),
        class: class.to_owned(),
        member: member.to_owned(),
        trace: false,
        as_of: None,
    }
}

/// A deterministic-response session exercising every pinnable opcode:
/// hello, point queries (hit, miss, unknown-name error), batch, edits,
/// as-of reads back at the pre-edit epoch, and stats.
fn recorded_session() -> Vec<Request> {
    vec![
        Request::Hello {
            version: PROTOCOL_VERSION,
        },
        query("E", "m"),
        query("A", "m"),
        query("E", "nope"),
        Request::Batch {
            tenant: "t0".to_owned(),
            probes: vec![
                ("E".to_owned(), "m".to_owned()),
                ("C".to_owned(), "m".to_owned()),
                ("A".to_owned(), "m".to_owned()),
            ],
            trace: false,
            as_of: None,
        },
        Request::Edit {
            tenant: "t0".to_owned(),
            directive: "member E fresh".to_owned(),
        },
        query("E", "fresh"),
        Request::Query {
            tenant: "t0".to_owned(),
            class: "E".to_owned(),
            member: "fresh".to_owned(),
            trace: false,
            as_of: Some(1),
        },
        Request::Stats {
            tenant: "t0".to_owned(),
        },
        query("E", "m"),
    ]
}

/// The epoll model must answer the full recorded session byte-for-byte
/// like the threaded model, and both `Client` conveniences must work
/// against it unchanged.
#[test]
fn epoll_full_session_matches_threads_byte_for_byte() {
    let dir = TempDir::new("differential");
    let preload = fig2_preload(&dir);
    let (epoll, threads) = start_pair(&preload);
    let session = recorded_session();
    let got = play(epoll.addr(), &session);
    let want = play(threads.addr(), &session);
    assert_eq!(got, want, "reactor diverged from the threaded model");

    // The blocking client speaks to the reactor unchanged.
    let mut c = Client::connect(epoll.addr(), Some(Duration::from_secs(10))).unwrap();
    assert_eq!(c.hello().unwrap(), 1);
    match c.query("t0", "E", "m").unwrap() {
        WireOutcome::Resolved { class, .. } => assert_eq!(class, "D"),
        other => panic!("unexpected {other:?}"),
    }
    // The io-model gauge is exported (its value is process-global, so
    // concurrent tests starting threaded servers may overwrite it —
    // asserting presence here, the value in e27-smoke's single-server
    // runs).
    assert!(c.metrics().unwrap().contains("server_io_model"));
}

/// Traced responses carry measured durations, so they are compared
/// structurally: same outcome, same span tree shape, and the exact
/// six-phase partition must hold under the reactor too.
#[test]
fn epoll_traced_partition_stays_exact() {
    let dir = TempDir::new("traced");
    let preload = fig2_preload(&dir);
    let (epoll, threads) = start_pair(&preload);
    let spans_of = |server: &Server| {
        let mut c = Client::connect(server.addr(), Some(Duration::from_secs(10))).unwrap();
        c.query_traced("t0", "E", "m").unwrap()
    };
    let (outcome_e, spans_e) = spans_of(&epoll);
    let (outcome_t, spans_t) = spans_of(&threads);
    assert_eq!(outcome_e, outcome_t);
    let shape = |s: &[cpplookup_server::WireSpan]| -> Vec<(u64, u64, String)> {
        s.iter()
            .map(|x| (x.id, x.parent, x.label.clone()))
            .collect()
    };
    assert_eq!(shape(&spans_e), shape(&spans_t), "span trees must match");
    // Exact partition: children chain contiguously and sum to the root.
    let root = &spans_e[0];
    let mut cursor = 0u64;
    for span in &spans_e[1..] {
        assert_eq!(span.parent_id(), Some(root.id));
        assert_eq!(span.start_ns, cursor, "phases must stay contiguous");
        cursor += span.duration_ns;
    }
    assert_eq!(cursor, root.duration_ns, "partition must stay exact");
}

/// A pipelined burst far beyond the per-turn fairness cap: every frame
/// still gets its answer, in order, in both models.
#[test]
fn pipelined_burst_beyond_fairness_cap_answers_in_order() {
    let dir = TempDir::new("burst");
    let preload = fig2_preload(&dir);
    let small_cap = |io_model| ServerConfig {
        max_frames_per_turn: 4,
        ..config(io_model, &preload)
    };
    let session: Vec<Request> = (0..100)
        .map(|i| {
            if i % 2 == 0 {
                query("E", "m")
            } else {
                query("A", "m")
            }
        })
        .collect();
    for io_model in [IoModel::Epoll, IoModel::Threads] {
        let server = Server::start(small_cap(io_model)).unwrap();
        let responses = play(server.addr(), &session);
        assert_eq!(responses.len(), 100);
        for (i, body) in responses.iter().enumerate() {
            let decoded = Response::decode(body).unwrap();
            match decoded {
                Response::Outcome(WireOutcome::Resolved { ref class, .. }) => {
                    assert_eq!(class, if i % 2 == 0 { "D" } else { "A" }, "frame {i}")
                }
                other => panic!("frame {i}: unexpected {other:?}"),
            }
        }
    }
}

/// Frame damage mid-pipeline: the frames before the damage are
/// answered, the damage draws exactly one error frame, and the
/// connection closes — identically in both models.
#[test]
fn damaged_frame_mid_pipeline_answers_prefix_then_one_error() {
    let dir = TempDir::new("damage");
    let preload = fig2_preload(&dir);
    let (epoll, threads) = start_pair(&preload);
    let good = frame_of(&query("E", "m"));
    let mut damaged = good.clone();
    let at = damaged.len() / 2;
    damaged[at] ^= 0x20; // body damage => trailing checksum mismatch
    let mut wire = Vec::new();
    wire.extend_from_slice(&good);
    wire.extend_from_slice(&good);
    wire.extend_from_slice(&damaged);
    wire.extend_from_slice(&good); // never answered: stream is garbage
    let run = |server: &Server| -> Vec<Vec<u8>> {
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(20)))
            .unwrap();
        stream.write_all(&wire).unwrap();
        let mut responses = Vec::new();
        // Reads until the server closes (EOF or reset) after the error frame.
        while let Ok(body) = read_frame(&mut stream) {
            responses.push(body);
        }
        responses
    };
    let got = run(&epoll);
    let want = run(&threads);
    assert_eq!(got, want, "damage handling diverged");
    assert_eq!(got.len(), 3, "two answers + one error frame");
    assert!(
        matches!(Response::decode(&got[2]), Ok(Response::Error { .. })),
        "third frame must be the damage report"
    );
}

/// A torn frame at the end of a pipeline (the peer gives up mid-frame
/// and closes): the complete frames are answered, the torn one draws
/// nothing, and the connection closes cleanly.
#[test]
fn torn_trailing_frame_is_dropped_after_complete_ones_answer() {
    let dir = TempDir::new("torn");
    let preload = fig2_preload(&dir);
    let (epoll, threads) = start_pair(&preload);
    let good = frame_of(&query("E", "m"));
    for cut in 1..good.len() {
        let mut wire = Vec::new();
        wire.extend_from_slice(&good);
        wire.extend_from_slice(&good[..cut]);
        let got = play_chunks(epoll.addr(), &[&wire], 1);
        let want = play_chunks(threads.addr(), &[&wire], 1);
        assert_eq!(got, want, "torn at {cut} diverged");
    }
}

/// A peer that pipelines a multi-megabyte burst of responses' worth of
/// requests while refusing to read: the reactor parks its read interest
/// under the write backlog (backpressure by interest — its buffers stay
/// bounded by TCP flow control) and must still answer every frame,
/// byte-identical to the threaded model, once the peer starts draining.
#[test]
fn unread_pipelined_backlog_parks_reads_then_drains_completely() {
    let dir = TempDir::new("backlog");
    let preload = fig2_preload(&dir);
    let small_cap = |io_model| ServerConfig {
        max_frames_per_turn: 4,
        ..config(io_model, &preload)
    };
    // 256 batches of 256 probes each: ~2 MB of responses, far past the
    // socket buffers, so the server is forced through its blocked-write
    // state while the client deliberately sits on the unread backlog.
    let probes: Vec<(String, String)> = (0..256)
        .map(|i| {
            let class = if i % 2 == 0 { "E" } else { "A" };
            (class.to_owned(), "m".to_owned())
        })
        .collect();
    let batch = frame_of(&Request::Batch {
        tenant: "t0".to_owned(),
        probes,
        trace: false,
        as_of: None,
    });
    let count = 256usize;
    let wire: Vec<u8> = batch.repeat(count);
    let mut per_model = Vec::new();
    for io_model in [IoModel::Epoll, IoModel::Threads] {
        let server = Server::start(small_cap(io_model)).unwrap();
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .unwrap();
        stream.set_nodelay(true).unwrap();
        // The requests flow from a separate thread: once the response
        // backlog stalls the server, the request stream backs up too,
        // and this writer blocks until the main thread starts reading.
        let mut writer_half = stream.try_clone().unwrap();
        let writer_wire = wire.clone();
        let writer = std::thread::spawn(move || {
            writer_half.write_all(&writer_wire).unwrap();
            writer_half.flush().unwrap();
            writer_half.shutdown(Shutdown::Write).unwrap();
        });
        // Hold every response unread long enough for the backlog (and
        // the parked read interest) to actually form.
        std::thread::sleep(Duration::from_millis(200));
        let responses: Vec<Vec<u8>> = (0..count)
            .map(|i| read_frame(&mut stream).unwrap_or_else(|e| panic!("frame {i}: {e:?}")))
            .collect();
        writer.join().unwrap();
        assert!(
            matches!(read_frame(&mut stream), Err(FrameError::Eof)),
            "server must close cleanly after the drain"
        );
        per_model.push(responses);
    }
    assert_eq!(
        per_model[0], per_model[1],
        "epoll and threads diverged under an unread backlog"
    );
}

/// A single frame far larger than the reactor's per-event read budget
/// (which doubles as the input high-water mark): the park must never
/// engage mid-frame — a complete frame has to be able to finish
/// arriving — and the answer must match the threaded model's.
#[test]
fn frame_larger_than_read_budget_completes_in_both_models() {
    let dir = TempDir::new("bigframe");
    let preload = fig2_preload(&dir);
    let (epoll, threads) = start_pair(&preload);
    // ~80k probes ≈ 480 KiB of frame, past the 256 KiB read budget.
    let probes: Vec<(String, String)> = (0..80_000)
        .map(|i| {
            let class = if i % 2 == 0 { "E" } else { "A" };
            (class.to_owned(), "m".to_owned())
        })
        .collect();
    let big = Request::Batch {
        tenant: "t0".to_owned(),
        probes,
        trace: false,
        as_of: None,
    };
    let wire = frame_of(&big);
    assert!(wire.len() > 256 * 1024, "frame must exceed the budget");
    // A small frame ahead of the giant one, so the buffer holds
    // complete work while the big frame is still arriving.
    let session: Vec<u8> = [frame_of(&query("E", "m")), wire].concat();
    let got = play_chunks(epoll.addr(), &[&session], 2);
    let want = play_chunks(threads.addr(), &[&session], 2);
    assert_eq!(got, want, "oversized frame diverged between models");
}

/// The tentpole reassembly property: splitting the recorded session at
/// EVERY byte boundary (two writes with a flush between) must leave the
/// reactor's responses byte-identical to the threaded model's answers
/// for the unsplit session.
#[test]
fn every_byte_boundary_split_reassembles_identically() {
    let dir = TempDir::new("splits");
    let preload = fig2_preload(&dir);
    let (epoll, threads) = start_pair(&preload);
    // A short session keeps every-boundary exhaustive yet fast.
    let session = vec![
        Request::Hello {
            version: PROTOCOL_VERSION,
        },
        query("E", "m"),
        Request::Batch {
            tenant: "t0".to_owned(),
            probes: vec![
                ("E".to_owned(), "m".to_owned()),
                ("A".to_owned(), "m".to_owned()),
            ],
            trace: false,
            as_of: None,
        },
    ];
    let wire: Vec<u8> = session.iter().flat_map(frame_of).collect();
    let want = play(threads.addr(), &session);
    for cut in 0..=wire.len() {
        let got = play_chunks(epoll.addr(), &[&wire[..cut], &wire[cut..]], session.len());
        assert_eq!(got, want, "split at byte {cut} diverged");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Arbitrary multi-way splits of the recorded multi-frame session —
    /// partial writes tearing frames anywhere, many times over — always
    /// reassemble to the threaded model's byte-exact answers.
    #[test]
    fn arbitrary_partial_writes_reassemble_identically(
        cuts in proptest::collection::vec(0.0f64..1.0, 0..12),
    ) {
        let dir = TempDir::new("prop");
        let preload = fig2_preload(&dir);
        let (epoll, threads) = start_pair(&preload);
        let session = recorded_session();
        let wire: Vec<u8> = session.iter().flat_map(frame_of).collect();
        let mut offsets: Vec<usize> = cuts
            .iter()
            .map(|f| (f * wire.len() as f64) as usize)
            .collect();
        offsets.push(0);
        offsets.push(wire.len());
        offsets.sort_unstable();
        offsets.dedup();
        let chunks: Vec<&[u8]> = offsets
            .windows(2)
            .map(|w| &wire[w[0]..w[1]])
            .collect();
        let got = play_chunks(epoll.addr(), &chunks, session.len());
        let want = play(threads.addr(), &session);
        prop_assert_eq!(got, want, "chunking {:?} diverged", offsets);
    }
}

/// Both models enforce the idle timeout: a connection that goes quiet
/// is dropped, and one that stays active is not.
#[test]
fn idle_connections_time_out_in_both_models() {
    let dir = TempDir::new("idle");
    let preload = fig2_preload(&dir);
    for io_model in [IoModel::Epoll, IoModel::Threads] {
        let server = Server::start(ServerConfig {
            read_timeout: Some(Duration::from_millis(250)),
            ..config(io_model, &preload)
        })
        .unwrap();
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        // Prove the connection is live, then go quiet.
        stream.write_all(&frame_of(&query("E", "m"))).unwrap();
        read_frame(&mut stream).unwrap();
        let start = Instant::now();
        let mut buf = [0u8; 1];
        let n = stream.read(&mut buf).unwrap_or(0);
        assert_eq!(n, 0, "idle connection must be closed ({io_model:?})");
        assert!(
            start.elapsed() < Duration::from_secs(8),
            "timeout must fire promptly ({io_model:?})"
        );
    }
}

/// The HTTP admin endpoint still answers when the connection lands on a
/// reactor: the sniffed `GET ` hands the fd off to a blocking thread.
#[test]
fn admin_endpoint_works_under_epoll() {
    let dir = TempDir::new("admin");
    let preload = fig2_preload(&dir);
    let server = Server::start(config(IoModel::Epoll, &preload)).unwrap();
    let mut c = Client::connect(server.addr(), Some(Duration::from_secs(10))).unwrap();
    c.query("t0", "E", "m").unwrap();
    let mut stream = TcpStream::connect(server.addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    write!(stream, "GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).unwrap();
    assert!(response.starts_with("HTTP/1.1 200 OK"), "{response}");
    assert!(response.contains("server_io_model 1"), "{response}");
    assert!(
        response.contains("reactor_connections"),
        "per-reactor gauges must be exported: {response}"
    );
}

/// `SUBSCRIBE` under the reactor: the connection is handed off to a
/// blocking subscription stream and delivers replicated records.
#[test]
fn subscription_stream_works_under_epoll() {
    let dir = TempDir::new("subscribe");
    let preload = fig2_preload(&dir);
    let server = Server::start(ServerConfig {
        wal_path: Some(dir.file("edits.wal")),
        ..config(IoModel::Epoll, &preload)
    })
    .unwrap();
    let mut writer = Client::connect(server.addr(), Some(Duration::from_secs(10))).unwrap();
    writer.edit("t0", "member E fresh").unwrap();
    let follower = Client::connect(server.addr(), Some(Duration::from_secs(10))).unwrap();
    let mut sub = follower.subscribe(0).unwrap();
    // Seq 1 is the preload's Open record, seq 2 the edit.
    let (seq, _epoch, record) = sub.next_record().unwrap();
    assert_eq!(seq, 1);
    assert!(
        matches!(record, cpplookup_server::protocol::WireRecord::Open { ref tenant, .. } if tenant == "t0"),
        "unexpected {record:?}"
    );
    let (seq, _epoch, record) = sub.next_record().unwrap();
    assert_eq!(seq, 2);
    assert!(
        matches!(record, cpplookup_server::protocol::WireRecord::Edit { ref tenant, .. } if tenant == "t0"),
        "unexpected {record:?}"
    );
}

/// Shutdown is prompt in both models with open idle connections and no
/// throwaway self-connect: the eventfd doorbell unblocks the acceptor,
/// and the reactors close their slabs.
#[test]
fn shutdown_is_prompt_with_open_connections() {
    let dir = TempDir::new("shutdown");
    let preload = fig2_preload(&dir);
    for io_model in [IoModel::Epoll, IoModel::Threads] {
        let mut server = Server::start(config(io_model, &preload)).unwrap();
        // Park a couple of live, idle connections.
        let mut held: Vec<Client> = (0..2)
            .map(|_| Client::connect(server.addr(), Some(Duration::from_secs(10))).unwrap())
            .collect();
        for c in &mut held {
            c.hello().unwrap();
        }
        let start = Instant::now();
        server.shutdown();
        assert!(
            start.elapsed() < Duration::from_secs(5),
            "shutdown must not hang ({io_model:?})"
        );
    }
}

/// Round-robin across multiple reactors: connections spread over the
/// configured reactor threads and all of them serve traffic.
#[test]
fn multiple_reactors_share_the_accept_stream() {
    let dir = TempDir::new("spread");
    let preload = fig2_preload(&dir);
    let server = Server::start(ServerConfig {
        reactors: 3,
        ..config(IoModel::Epoll, &preload)
    })
    .unwrap();
    let mut clients: Vec<Client> = (0..6)
        .map(|_| Client::connect(server.addr(), Some(Duration::from_secs(10))).unwrap())
        .collect();
    for c in &mut clients {
        match c.query("t0", "E", "m").unwrap() {
            WireOutcome::Resolved { class, .. } => assert_eq!(class, "D"),
            other => panic!("unexpected {other:?}"),
        }
    }
    // All three reactors took connections (the registry is
    // process-global, so reactor 0 also carries other tests' servers —
    // labels 1 and 2 exist only because round-robin reached them).
    let metrics = clients[0].metrics().unwrap();
    for reactor in 0..3 {
        assert!(
            metrics.contains(&format!("reactor_connections{{reactor=\"{reactor}\"}}")),
            "round-robin must reach reactor {reactor}: {metrics}"
        );
    }
}
