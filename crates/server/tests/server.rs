//! End-to-end tests over real sockets: wire correctness against the
//! in-process `DispatchIndex`, malformed-bytes robustness, admission
//! control, and the HTTP admin endpoint.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::time::Duration;

use cpplookup_chg::{fixtures, Chg};
use cpplookup_core::{LeastVirtual, LookupOutcome};
use cpplookup_server::client::Client;
use cpplookup_server::protocol::{
    read_frame, write_frame, ErrorCode, Request, Response, WireLv, WireOutcome, MAX_BODY,
};
use cpplookup_server::server::{Server, ServerConfig};
use cpplookup_snapshot::{Snapshot, SnapshotTable};

/// A throwaway directory, removed on drop.
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .as_nanos();
        let dir = std::env::temp_dir().join(format!("cpplookup-server-{tag}-{nanos:x}"));
        std::fs::create_dir_all(&dir).unwrap();
        TempDir(dir)
    }

    fn file(&self, name: &str) -> PathBuf {
        self.0.join(name)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        std::fs::remove_dir_all(&self.0).ok();
    }
}

fn write_snapshot(chg: &Chg, path: &Path) {
    Snapshot::compile(chg).write_to(path).unwrap();
}

fn start_server(config: ServerConfig) -> (Server, String) {
    let server = Server::start(config).unwrap();
    let addr = server.addr().to_string();
    (server, addr)
}

fn connect(addr: &str) -> Client {
    Client::connect(addr, Some(Duration::from_secs(10))).unwrap()
}

/// The reference encoding: what the wire answer MUST byte-equal, built
/// from the in-process outcome plus the snapshot's name tables.
fn expect_wire(table: &SnapshotTable, outcome: &LookupOutcome) -> WireOutcome {
    let name = |c| table.class_name(c).unwrap().to_owned();
    let lv = |v: &LeastVirtual| match v {
        LeastVirtual::Omega => WireLv::Omega,
        LeastVirtual::Class(c) => WireLv::Class(name(*c)),
    };
    match outcome {
        LookupOutcome::NotFound => WireOutcome::NotFound,
        LookupOutcome::Resolved {
            class,
            least_virtual,
        } => WireOutcome::Resolved {
            class: name(*class),
            least_virtual: lv(least_virtual),
        },
        LookupOutcome::Ambiguous { witnesses } => WireOutcome::Ambiguous {
            witnesses: witnesses.iter().map(lv).collect(),
        },
    }
}

#[test]
fn full_session_load_query_batch_edit_stats_metrics() {
    let dir = TempDir::new("session");
    let snap = dir.file("fig2.snap");
    write_snapshot(&fixtures::fig2(), &snap);
    let (_server, addr) = start_server(ServerConfig::default());
    let mut c = connect(&addr);

    assert_eq!(c.hello().unwrap(), 0, "farm starts empty");
    let (entries, bytes) = c.load("t0", snap.to_str().unwrap()).unwrap();
    assert!(entries > 0 && bytes > 0);
    assert_eq!(c.hello().unwrap(), 1);

    match c.query("t0", "E", "m").unwrap() {
        WireOutcome::Resolved { class, .. } => assert_eq!(class, "D"),
        other => panic!("unexpected {other:?}"),
    }
    let probes = vec![
        ("E".to_owned(), "m".to_owned()),
        ("A".to_owned(), "m".to_owned()),
    ];
    let outcomes = c.batch("t0", &probes).unwrap();
    assert_eq!(outcomes.len(), 2);

    // Promotion epoch 0, engine attach 1, first edit 2.
    assert_eq!(c.edit("t0", "member E fresh").unwrap(), 2);
    match c.query("t0", "E", "fresh").unwrap() {
        WireOutcome::Resolved { class, .. } => assert_eq!(class, "E"),
        other => panic!("unexpected {other:?}"),
    }

    let stats = c.stats("t0").unwrap();
    assert!(stats.contains("\"tenant\":\"t0\""), "{stats}");
    assert!(stats.contains("\"live\":true"), "{stats}");
    let all = c.stats("").unwrap();
    assert!(all.starts_with("{\"tenants\":["), "{all}");

    let metrics = c.metrics().unwrap();
    assert!(
        metrics.contains("server_requests_total"),
        "prometheus text should carry server counters: {metrics}"
    );
}

#[test]
fn wire_answers_byte_equal_in_process_dispatch_index() {
    let corpus_dir = Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/../../tests/corpus"));
    let mut snaps: Vec<PathBuf> = std::fs::read_dir(corpus_dir)
        .expect("tests/corpus must exist")
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "snap"))
        .collect();
    snaps.sort();
    assert!(snaps.len() >= 10, "corpus families missing: {snaps:?}");

    let (_server, addr) = start_server(ServerConfig::default());
    let mut c = connect(&addr);
    for snap in &snaps {
        let tenant = snap.file_stem().unwrap().to_str().unwrap();
        c.load(tenant, snap.to_str().unwrap()).unwrap();
        let table = SnapshotTable::load(snap).unwrap();
        let index = table.dispatch_index();
        // Probe the full cross product of declared names: hits, misses,
        // and ambiguities all travel the wire.
        let mut probes = Vec::new();
        for ci in 0..table.class_count() {
            let class = cpplookup_chg::ClassId::from_index(ci);
            for mi in 0..table.member_name_count() {
                let member = cpplookup_chg::MemberId::from_index(mi);
                probes.push((class, member));
            }
        }
        let expected: Vec<WireOutcome> = index
            .lookup_batch(&probes)
            .iter()
            .map(|o| expect_wire(&table, o))
            .collect();
        let named: Vec<(String, String)> = probes
            .iter()
            .map(|&(cl, m)| {
                (
                    table.class_name(cl).unwrap().to_owned(),
                    table.member_name(m).unwrap().to_owned(),
                )
            })
            .collect();
        let got = c.batch(tenant, &named).unwrap();
        assert_eq!(got, expected, "batch mismatch in {tenant}");
        // Spot-check the point-query path too (first 25 probes).
        for (i, (class, member)) in named.iter().take(25).enumerate() {
            assert_eq!(
                c.query(tenant, class, member).unwrap(),
                expected[i],
                "query mismatch in {tenant} for ({class}, {member})"
            );
        }
    }
}

#[test]
fn concurrent_clients_many_tenants_differential() {
    let dir = TempDir::new("concurrent");
    let graphs = [fixtures::fig1(), fixtures::fig2(), fixtures::fig9()];
    let mut tenants = Vec::new();
    for (i, g) in graphs.iter().enumerate() {
        let path = dir.file(&format!("g{i}.snap"));
        write_snapshot(g, &path);
        tenants.push((format!("g{i}"), path));
    }
    let (server, addr) = start_server(ServerConfig {
        preload: tenants.clone(),
        ..ServerConfig::default()
    });

    // Reference answers from in-process indexes over the same files.
    let refs: Vec<(String, SnapshotTable)> = tenants
        .iter()
        .map(|(name, path)| (name.clone(), SnapshotTable::load(path).unwrap()))
        .collect();
    let refs = std::sync::Arc::new(refs);

    let workers: Vec<_> = (0..8)
        .map(|worker| {
            let addr = addr.clone();
            let refs = std::sync::Arc::clone(&refs);
            std::thread::spawn(move || {
                let mut c = connect(&addr);
                for round in 0..50 {
                    let (tenant, table) = &refs[(worker + round) % refs.len()];
                    let index = table.dispatch_index();
                    for ci in 0..table.class_count() {
                        let class = cpplookup_chg::ClassId::from_index(ci);
                        for mi in 0..table.member_name_count() {
                            let member = cpplookup_chg::MemberId::from_index(mi);
                            let got = c
                                .query(
                                    tenant,
                                    table.class_name(class).unwrap(),
                                    table.member_name(member).unwrap(),
                                )
                                .unwrap();
                            let want = expect_wire(table, &index.lookup(class, member));
                            assert_eq!(got, want, "{tenant} diverged under concurrency");
                        }
                    }
                }
            })
        })
        .collect();
    for w in workers {
        w.join().unwrap();
    }
    drop(server);
}

/// Sharding is a routing change, not a semantic one: a server running
/// shard-affine read workers must answer every query, batch, traced
/// probe, and error byte-identically to an inline server over the same
/// snapshots — and edits (which stay on the connection thread) must
/// still be visible to subsequent sharded reads.
#[test]
fn sharded_server_answers_identically_to_inline() {
    let dir = TempDir::new("sharded");
    let graphs = [fixtures::fig1(), fixtures::fig2(), fixtures::fig9()];
    let mut tenants = Vec::new();
    for (i, g) in graphs.iter().enumerate() {
        let path = dir.file(&format!("g{i}.snap"));
        write_snapshot(g, &path);
        tenants.push((format!("g{i}"), path));
    }
    let (_inline, inline_addr) = start_server(ServerConfig {
        preload: tenants.clone(),
        ..ServerConfig::default()
    });
    let (_sharded, sharded_addr) = start_server(ServerConfig {
        preload: tenants.clone(),
        shards: 4,
        ..ServerConfig::default()
    });
    let mut a = connect(&inline_addr);
    let mut b = connect(&sharded_addr);
    for (tenant, path) in &tenants {
        let table = SnapshotTable::load(path).unwrap();
        let mut probes = Vec::new();
        for ci in 0..table.class_count() {
            for mi in 0..table.member_name_count() {
                probes.push((
                    table
                        .class_name(cpplookup_chg::ClassId::from_index(ci))
                        .unwrap()
                        .to_owned(),
                    table
                        .member_name(cpplookup_chg::MemberId::from_index(mi))
                        .unwrap()
                        .to_owned(),
                ));
            }
        }
        assert_eq!(
            a.batch(tenant, &probes).unwrap(),
            b.batch(tenant, &probes).unwrap(),
            "{tenant}: sharded batch diverged"
        );
        for (class, member) in &probes {
            assert_eq!(
                a.query(tenant, class, member).unwrap(),
                b.query(tenant, class, member).unwrap(),
                "{tenant}: sharded query diverged on ({class}, {member})"
            );
        }
        // Traced probes bypass the pool but must agree on the outcome.
        let (outcome, spans) = b.query_traced(tenant, &probes[0].0, &probes[0].1).unwrap();
        assert_eq!(
            outcome,
            a.query(tenant, &probes[0].0, &probes[0].1).unwrap()
        );
        assert!(!spans.is_empty());
    }
    // Structured errors survive the queue hop.
    for c in [&mut a, &mut b] {
        match c.query("ghost", "A", "m") {
            Err(cpplookup_server::client::ClientError::Server { code, .. }) => {
                assert_eq!(code, ErrorCode::NoSuchTenant)
            }
            other => panic!("unexpected {other:?}"),
        }
    }
    // An edit lands on the connection thread; the sharded read path
    // must see the republished epoch.
    b.edit("g1", "member E freshly_sharded").unwrap();
    match b.query("g1", "E", "freshly_sharded").unwrap() {
        WireOutcome::Resolved { class, .. } => assert_eq!(class, "E"),
        other => panic!("unexpected {other:?}"),
    }
}

#[test]
fn admission_control_refuses_with_busy_frame() {
    let (_server, addr) = start_server(ServerConfig {
        max_connections: 2,
        ..ServerConfig::default()
    });
    // Two held-open connections fill the server.
    let mut a = connect(&addr);
    let mut b = connect(&addr);
    assert_eq!(a.hello().unwrap(), 0);
    assert_eq!(b.hello().unwrap(), 0);
    // The third is told why it is refused, deterministically.
    let mut stream = TcpStream::connect(&addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let body = read_frame(&mut stream).unwrap();
    match Response::decode(&body).unwrap() {
        Response::Error { code, .. } => assert_eq!(code, ErrorCode::Busy),
        other => panic!("unexpected {other:?}"),
    }
    // Draining one slot readmits. The refused connection has closed and
    // its slot was never counted; give the server a beat to notice the
    // drop of `a`.
    drop(a);
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        let mut retry = connect(&addr);
        match retry.hello() {
            Ok(_) => break,
            Err(_) if std::time::Instant::now() < deadline => {
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(e) => panic!("server never readmitted: {e}"),
        }
    }
    drop(b);
}

#[test]
fn malformed_bytes_produce_structured_errors_never_hangs() {
    let dir = TempDir::new("fuzz");
    let snap = dir.file("t.snap");
    write_snapshot(&fixtures::fig2(), &snap);
    let (_server, addr) = start_server(ServerConfig {
        preload: vec![("t".to_owned(), snap)],
        ..ServerConfig::default()
    });

    let frame_of = |req: &Request| {
        let mut wire = Vec::new();
        write_frame(&mut wire, &req.encode()).unwrap();
        wire
    };
    let query = Request::Query {
        tenant: "t".to_owned(),
        class: "E".to_owned(),
        member: "m".to_owned(),
        trace: false,
        as_of: None,
    };

    // 1. Oversized length prefix → BadLength, then close.
    {
        let mut s = TcpStream::connect(&addr).unwrap();
        s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        s.write_all(&(MAX_BODY + 1).to_le_bytes()).unwrap();
        let body = read_frame(&mut s).unwrap();
        match Response::decode(&body).unwrap() {
            Response::Error { code, .. } => assert_eq!(code, ErrorCode::BadLength),
            other => panic!("unexpected {other:?}"),
        }
        let mut rest = Vec::new();
        assert_eq!(s.read_to_end(&mut rest).unwrap(), 0, "server must close");
    }

    // 2. Every single-bit flip of a valid frame → a structured error
    //    (and a checksum-damaged stream is closed), never a hang.
    {
        let wire = frame_of(&query);
        for at in 0..wire.len() {
            let mut damaged = wire.clone();
            damaged[at] ^= 0x10;
            let mut s = TcpStream::connect(&addr).unwrap();
            s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
            s.write_all(&damaged).unwrap();
            // Depending on where the flip landed the server answers
            // BadLength/BadFrame and closes, answers BadPayload /
            // UnknownOpcode / NoSuchTenant / UnknownName and continues,
            // or (length shrank) waits for more bytes — close our end
            // and let it drop the truncated frame.
            drop(s.shutdown(std::net::Shutdown::Write));
            // An Err from read_frame means the server closed quietly:
            // also fine.
            if let Ok(body) = read_frame(&mut s) {
                let resp = Response::decode(&body).unwrap();
                match resp {
                    Response::Error { .. } => {}
                    Response::Outcome(_) => {
                        panic!("flip at byte {at} went undetected")
                    }
                    other => panic!("unexpected {other:?}"),
                }
            }
        }
    }

    // 3. Unknown opcode and garbage payloads keep the connection alive.
    {
        let mut s = TcpStream::connect(&addr).unwrap();
        s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        for garbage in [vec![0x7Fu8], vec![0x03, 0xFF, 0xFF], vec![0x03]] {
            let mut wire = Vec::new();
            write_frame(&mut wire, &garbage).unwrap();
            s.write_all(&wire).unwrap();
            let body = read_frame(&mut s).unwrap();
            match Response::decode(&body).unwrap() {
                Response::Error { code, .. } => {
                    assert!(
                        matches!(code, ErrorCode::UnknownOpcode | ErrorCode::BadPayload),
                        "got {code:?}"
                    );
                }
                other => panic!("unexpected {other:?}"),
            }
        }
        // The same connection still answers real queries.
        s.write_all(&frame_of(&query)).unwrap();
        let body = read_frame(&mut s).unwrap();
        assert!(matches!(
            Response::decode(&body).unwrap(),
            Response::Outcome(WireOutcome::Resolved { .. })
        ));
    }

    // 4. Deterministic pseudo-random garbage streams: the server either
    //    answers errors or closes; afterwards it still serves.
    {
        let mut state = 0x243F6A8885A308D3u64;
        for _ in 0..16 {
            let mut s = TcpStream::connect(&addr).unwrap();
            s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
            let len = 1 + (state % 512) as usize;
            let bytes: Vec<u8> = (0..len)
                .map(|_| {
                    state = state
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    (state >> 33) as u8
                })
                .collect();
            let _ = s.write_all(&bytes);
            let _ = s.shutdown(std::net::Shutdown::Write);
            // Drain whatever the server says until it closes; bounded
            // by the read timeout.
            let mut sink = Vec::new();
            let _ = s.read_to_end(&mut sink);
        }
    }
    let mut c = connect(&addr);
    assert!(c.query("t", "E", "m").is_ok(), "server survived the fuzz");
}

#[test]
fn hello_version_mismatch_is_rejected() {
    let (_server, addr) = start_server(ServerConfig::default());
    let mut s = TcpStream::connect(&addr).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    let mut wire = Vec::new();
    write_frame(&mut wire, &Request::Hello { version: 999 }.encode()).unwrap();
    s.write_all(&wire).unwrap();
    let body = read_frame(&mut s).unwrap();
    match Response::decode(&body).unwrap() {
        Response::Error { code, .. } => assert_eq!(code, ErrorCode::BadVersion),
        other => panic!("unexpected {other:?}"),
    }
}

#[test]
fn http_admin_serves_prometheus_on_the_same_port() {
    let (_server, addr) = start_server(ServerConfig::default());
    let fetch = |target: &str| {
        let mut s = TcpStream::connect(&addr).unwrap();
        s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        write!(s, "GET {target} HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        let mut response = String::new();
        s.read_to_string(&mut response).unwrap();
        response
    };
    let metrics = fetch("/metrics");
    assert!(metrics.starts_with("HTTP/1.1 200 OK"), "{metrics}");
    assert!(metrics.contains("# TYPE"), "prometheus text: {metrics}");
    let missing = fetch("/nope");
    assert!(missing.starts_with("HTTP/1.1 404"), "{missing}");
}

/// The six request phases, in server order.
const PHASES: [&str; 6] = [
    "queue_wait",
    "frame_decode",
    "tenant_resolve",
    "promotion_wait",
    "directory_probe",
    "encode",
];

fn http_get(addr: &str, target: &str) -> String {
    let mut s = TcpStream::connect(addr).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    write!(s, "GET {target} HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
    let mut response = String::new();
    s.read_to_string(&mut response).unwrap();
    response
}

#[test]
fn traced_query_returns_exact_phase_partition() {
    let dir = TempDir::new("traced");
    let snap = dir.file("fig2.snap");
    write_snapshot(&fixtures::fig2(), &snap);
    let (_server, addr) = start_server(ServerConfig::default());
    let mut c = connect(&addr);
    c.load("t0", snap.to_str().unwrap()).unwrap();

    let (outcome, spans) = c.query_traced("t0", "E", "m").unwrap();
    assert!(matches!(outcome, WireOutcome::Resolved { .. }));
    assert_eq!(spans.len(), 1 + PHASES.len(), "root + six phases");
    let root = &spans[0];
    assert_eq!(root.label, "request");
    assert_eq!(root.parent_id(), None);
    assert_eq!(root.start_ns, 0);
    // Children carry the fixed phase labels, chain contiguously from
    // the root's start, and partition its duration exactly.
    let mut cursor = 0u64;
    for (span, phase) in spans[1..].iter().zip(PHASES) {
        assert_eq!(span.label, phase);
        assert_eq!(span.parent_id(), Some(root.id));
        assert_eq!(span.start_ns, cursor, "phases must be contiguous");
        cursor += span.duration_ns;
    }
    assert_eq!(
        cursor, root.duration_ns,
        "phase durations must sum to the root exactly"
    );
    // Ids are per-trace monotonic from zero: a second trace starts
    // over, so the tree *structure* is byte-stable run to run.
    let (_, again) = c.query_traced("t0", "E", "m").unwrap();
    let shape = |s: &[cpplookup_server::WireSpan]| -> Vec<(u64, u64, String)> {
        s.iter()
            .map(|x| (x.id, x.parent, x.label.clone()))
            .collect()
    };
    assert_eq!(shape(&spans), shape(&again));

    // A traced batch traces the batch as one request.
    let probes = vec![
        ("E".to_owned(), "m".to_owned()),
        ("A".to_owned(), "m".to_owned()),
    ];
    let (outcomes, bspans) = c.batch_traced("t0", &probes).unwrap();
    assert_eq!(outcomes.len(), 2);
    assert_eq!(outcomes, c.batch("t0", &probes).unwrap());
    assert_eq!(bspans.len(), 1 + PHASES.len());

    // An untraced query still answers with the plain response shape.
    assert_eq!(outcome, c.query("t0", "E", "m").unwrap());
}

#[test]
fn admin_endpoints_tenants_and_flightrecorder_work_end_to_end() {
    let dir = TempDir::new("admin");
    let snap = dir.file("fig2.snap");
    write_snapshot(&fixtures::fig2(), &snap);
    let (_server, addr) = start_server(ServerConfig::default());
    let mut c = connect(&addr);
    c.load("acme", snap.to_str().unwrap()).unwrap();
    c.query("acme", "E", "m").unwrap();
    c.query_traced("acme", "E", "m").unwrap();

    let health = http_get(&addr, "/healthz");
    assert!(health.starts_with("HTTP/1.1 200 OK"), "{health}");
    assert!(health.ends_with("ok\n"), "{health}");

    let tenants = http_get(&addr, "/tenants");
    assert!(tenants.starts_with("HTTP/1.1 200 OK"), "{tenants}");
    assert!(tenants.contains("application/json"), "{tenants}");
    assert!(tenants.contains("\"tenant\":\"acme\""), "{tenants}");
    assert!(tenants.contains("\"promoted\":true"), "{tenants}");
    assert!(tenants.contains("\"epoch\":0"), "{tenants}");

    let fr = http_get(&addr, "/flightrecorder");
    assert!(fr.starts_with("HTTP/1.1 200 OK"), "{fr}");
    assert!(fr.contains("\"requests\":["), "{fr}");
    assert!(fr.contains("\"tenant\":\"acme\""), "{fr}");
    assert!(fr.contains("\"op\":\"query\""), "{fr}");
    // The traced query's phase summary made it into the ring.
    assert!(fr.contains("\"directory_probe\":"), "{fr}");

    // Per-tenant families show up in the Prometheus exposition.
    let metrics = http_get(&addr, "/metrics");
    assert!(
        metrics.contains("server_queries_total{tenant=\"acme\",op=\"query\"}"),
        "{metrics}"
    );
    assert!(
        metrics.contains("tenant_promotions_total{tenant=\"acme\"}"),
        "{metrics}"
    );
    assert!(
        metrics.contains("tenant_epoch{tenant=\"acme\"}"),
        "{metrics}"
    );
}

#[test]
fn obs_disabled_server_still_traces_but_has_no_flight_recorder() {
    let dir = TempDir::new("obsless");
    let snap = dir.file("fig1.snap");
    write_snapshot(&fixtures::fig1(), &snap);
    let (server, addr) = start_server(ServerConfig {
        obs: cpplookup_server::ObsConfig {
            enabled: false,
            ..Default::default()
        },
        ..Default::default()
    });
    assert!(server.recorder().is_none());
    let mut c = connect(&addr);
    c.load("t", snap.to_str().unwrap()).unwrap();
    // Tracing is request-scoped, not part of the obs layer: it still
    // answers with a full span tree.
    let (_, spans) = c.query_traced("t", "A", "m").unwrap();
    assert_eq!(spans.len(), 1 + PHASES.len());
    let fr = http_get(&addr, "/flightrecorder");
    assert!(fr.starts_with("HTTP/1.1 404"), "{fr}");
    let health = http_get(&addr, "/healthz");
    assert!(health.starts_with("HTTP/1.1 200 OK"), "{health}");
}

#[test]
fn load_failures_and_unknown_tenants_are_structured() {
    let (_server, addr) = start_server(ServerConfig::default());
    let mut c = connect(&addr);
    match c.load("t", "/nonexistent/path.snap") {
        Err(cpplookup_server::client::ClientError::Server { code, .. }) => {
            assert_eq!(code, ErrorCode::LoadFailed)
        }
        other => panic!("unexpected {other:?}"),
    }
    match c.query("ghost", "A", "m") {
        Err(cpplookup_server::client::ClientError::Server { code, .. }) => {
            assert_eq!(code, ErrorCode::NoSuchTenant)
        }
        other => panic!("unexpected {other:?}"),
    }
}
