//! The unified query interface implemented by every lookup strategy.
//!
//! The crate grew several ways to answer `lookup(C, m)` — the eager
//! [`LookupTable`](crate::LookupTable), the memoising
//! [`LazyLookup`](crate::LazyLookup), the incremental
//! [`LookupEngine`](crate::LookupEngine), and the baseline algorithms in
//! `cpplookup-baselines`. [`MemberLookup`] gives them one signature so
//! differential tests, benches, and callers can be generic over strategy.
//!
//! Receivers are `&mut self` because several strategies (lazy, engine in
//! lazy mode, the caching baseline adapters) memoise under the hood;
//! stateless strategies simply ignore the mutability. `resolve_path`
//! takes the [`Chg`] explicitly — the eager table's shape — so
//! strategies that do not retain a graph reference can still implement
//! it.

use cpplookup_chg::{Chg, ClassId, MemberId, Path};

use crate::result::{Entry, LookupOutcome};

/// A strategy answering C++ member lookup queries over a class
/// hierarchy.
///
/// # Examples
///
/// Generic driver code working over any strategy:
///
/// ```
/// use cpplookup_chg::fixtures;
/// use cpplookup_core::{LazyLookup, LookupOutcome, LookupTable, MemberLookup};
///
/// fn ambiguous_count<L: MemberLookup>(l: &mut L, g: &cpplookup_chg::Chg) -> usize {
///     g.classes()
///         .flat_map(|c| g.member_ids().map(move |m| (c, m)))
///         .filter(|&(c, m)| matches!(l.lookup(c, m), LookupOutcome::Ambiguous { .. }))
///         .count()
/// }
///
/// let g = fixtures::fig1();
/// let mut eager = LookupTable::build(&g);
/// let mut lazy = LazyLookup::new(&g);
/// assert_eq!(ambiguous_count(&mut eager, &g), ambiguous_count(&mut lazy, &g));
/// ```
pub trait MemberLookup {
    /// Answers `lookup(c, m)`.
    fn lookup(&mut self, c: ClassId, m: MemberId) -> LookupOutcome;

    /// The table entry for `(c, m)`, or `None` when `m ∉ Members[c]`.
    ///
    /// Returned by value: caching strategies cannot lend references into
    /// their internal storage (the engine's entries live behind shard
    /// locks).
    fn entry(&mut self, c: ClassId, m: MemberId) -> Option<Entry>;

    /// Recovers a concrete definition path for an unambiguous lookup by
    /// walking the `via` parent pointers of red entries (Section 4's
    /// triple abstraction). Returns `None` for missing or ambiguous
    /// entries.
    ///
    /// `chg` must be the hierarchy this strategy answers queries for.
    fn resolve_path(&mut self, chg: &Chg, c: ClassId, m: MemberId) -> Option<Path> {
        let mut rev = vec![c];
        let mut cur = c;
        loop {
            match self.entry(cur, m)? {
                Entry::Red { via: Some(x), .. } => {
                    rev.push(x);
                    cur = x;
                }
                Entry::Red { via: None, .. } => break,
                Entry::Blue(_) => return None,
            }
        }
        rev.reverse();
        Some(Path::new(chg, rev).expect("parent pointers follow real edges"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{LazyLookup, LookupTable};
    use cpplookup_chg::fixtures;

    /// Exercises the trait through a `dyn` object to pin object safety.
    #[test]
    fn object_safe_and_consistent() {
        let g = fixtures::fig3();
        let table = LookupTable::build(&g);
        let mut strategies: Vec<Box<dyn MemberLookup + '_>> =
            vec![Box::new(table), Box::new(LazyLookup::new(&g))];
        let h = g.class_by_name("H").unwrap();
        let foo = g.member_by_name("foo").unwrap();
        let bar = g.member_by_name("bar").unwrap();
        for s in &mut strategies {
            assert!(s.lookup(h, foo).is_resolved());
            assert!(matches!(s.lookup(h, bar), LookupOutcome::Ambiguous { .. }));
            assert_eq!(
                s.resolve_path(&g, h, foo).unwrap().display(&g).to_string(),
                "GH"
            );
            assert_eq!(s.resolve_path(&g, h, bar), None);
        }
    }
}
