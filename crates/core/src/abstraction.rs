//! The path abstractions of Section 4 of the paper: `leastVirtual`, the
//! `∘` extension operator (Definition 15), and the constant-time dominance
//! test of Lemma 4.
//!
//! The efficiency of the algorithm rests on not propagating paths at all:
//!
//! * a **blue** (ambiguous) definition `β` is abstracted to
//!   `leastVirtual(β) ∈ N ∪ {Ω}`,
//! * a **red** (unambiguous) definition `α` is abstracted to the pair
//!   `(ldc(α), leastVirtual(α))`,
//!
//! and both abstractions can be pushed through an inheritance edge with
//! the `∘` operator without consulting the underlying path.

use std::fmt;

use cpplookup_chg::{Chg, ClassId, Inheritance, MemberId, Path};

/// `leastVirtual(β)` (Definition 14): `mdc(fixed(β))` when `β` contains a
/// virtual edge, and `Ω` otherwise.
///
/// `Ω` is the paper's fresh symbol meaning "not a v-path"; the whole
/// domain is `N ∪ {Ω}` (written `N_Ω`).
///
/// # Examples
///
/// ```
/// use cpplookup_chg::{fixtures, Path};
/// use cpplookup_core::LeastVirtual;
///
/// let g = fixtures::fig3();
/// let abdfh = Path::parse(&g, "ABDFH")?;
/// let efh = Path::parse(&g, "EFH")?;
/// let d = g.class_by_name("D").unwrap();
/// assert_eq!(LeastVirtual::of_path(&g, &abdfh), LeastVirtual::Class(d));
/// assert_eq!(LeastVirtual::of_path(&g, &efh), LeastVirtual::Omega);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum LeastVirtual {
    /// The path contains no virtual edge.
    Omega,
    /// The path's fixed part ends at this class (the first virtual edge
    /// leaves from it).
    Class(ClassId),
}

impl LeastVirtual {
    /// Computes `leastVirtual` of a concrete path (used by tests and the
    /// naive baseline; the algorithm itself never touches paths).
    pub fn of_path(chg: &Chg, path: &Path) -> Self {
        if path.is_v_path(chg) {
            LeastVirtual::Class(path.fixed(chg).mdc())
        } else {
            LeastVirtual::Omega
        }
    }

    /// The `∘` operator (Definition 15): extends the abstraction through
    /// the edge `base -> derived` with inheritance kind `inh`:
    ///
    /// ```text
    /// X ∘ (B→D) = X           if X ≠ Ω
    ///           = B           if B→D is virtual
    ///           = Ω           otherwise
    /// ```
    ///
    /// satisfying `leastVirtual(β ∘ (B→D)) = leastVirtual(β) ∘ (B→D)`.
    pub fn extend(self, base: ClassId, inh: Inheritance) -> Self {
        match self {
            LeastVirtual::Class(_) => self,
            LeastVirtual::Omega => {
                if inh.is_virtual() {
                    LeastVirtual::Class(base)
                } else {
                    LeastVirtual::Omega
                }
            }
        }
    }

    /// Whether this is `Ω`.
    pub fn is_omega(self) -> bool {
        matches!(self, LeastVirtual::Omega)
    }

    /// Renders the abstraction with class names (`Ω` or the class name).
    pub fn display<'a>(&'a self, chg: &'a Chg) -> DisplayLv<'a> {
        DisplayLv { lv: self, chg }
    }
}

impl fmt::Debug for LeastVirtual {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LeastVirtual::Omega => write!(f, "Ω"),
            LeastVirtual::Class(c) => write!(f, "{c}"),
        }
    }
}

/// Helper returned by [`LeastVirtual::display`].
pub struct DisplayLv<'a> {
    lv: &'a LeastVirtual,
    chg: &'a Chg,
}

impl fmt::Display for DisplayLv<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.lv {
            LeastVirtual::Omega => write!(f, "Ω"),
            LeastVirtual::Class(c) => write!(f, "{}", self.chg.class_name(*c)),
        }
    }
}

/// The red-definition abstraction `(ldc(α), leastVirtual(α))`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct RedAbs {
    /// The class that declares the member — `ldc(α)`.
    pub ldc: ClassId,
    /// `leastVirtual(α)`.
    pub lv: LeastVirtual,
}

impl RedAbs {
    /// The abstraction of a *generated* definition at `class`: the trivial
    /// path, `(class, Ω)`.
    pub fn generated(class: ClassId) -> Self {
        RedAbs {
            ldc: class,
            lv: LeastVirtual::Omega,
        }
    }

    /// Extends the abstraction through an edge (the red `∘`): the `ldc`
    /// component is unchanged, `lv` is extended.
    pub fn extend(self, base: ClassId, inh: Inheritance) -> Self {
        RedAbs {
            ldc: self.ldc,
            lv: self.lv.extend(base, inh),
        }
    }
}

/// The dominance test of Lemma 4, extended with the static-member rule of
/// Section 6: a red definition `a` dominates a definition with abstraction
/// `b` iff
///
/// 1. `b.lv` is a virtual base of `a.ldc`, or
/// 2. `a.lv == b.lv ≠ Ω`, or
/// 3. `a.ldc == b.ldc` and `m` is a static member of `a.ldc`
///    (only with [`StaticRule::Cpp`]).
///
/// The left argument **must** abstract a red definition — the lemma's
/// hypothesis. Every comparison the algorithm performs satisfies it.
pub fn red_dominates(chg: &Chg, m: MemberId, a: RedAbs, b: RedAbs, statics: StaticRule) -> bool {
    if let LeastVirtual::Class(v2) = b.lv {
        if chg.is_virtual_base_of(v2, a.ldc) {
            return true;
        }
    }
    if a.lv == b.lv && !a.lv.is_omega() {
        return true;
    }
    statics == StaticRule::Cpp
        && a.ldc == b.ldc
        && chg
            .member_decl(a.ldc, m)
            .is_some_and(|d| d.kind.is_static_for_lookup())
}

/// Dominance of a red candidate over a *blue* abstraction, of which only
/// `leastVirtual` survives (Figure 8, lines 37–40): conditions 1–2 of
/// [`red_dominates`] restricted to what a bare `N_Ω` value permits.
pub fn red_dominates_blue(chg: &Chg, a: RedAbs, b: LeastVirtual) -> bool {
    match b {
        LeastVirtual::Class(v) => {
            chg.is_virtual_base_of(v, a.ldc) || LeastVirtual::Class(v) == a.lv
        }
        LeastVirtual::Omega => false,
    }
}

/// Whether the static-member rule of Definition 17 participates in
/// dominance.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum StaticRule {
    /// Full C++ semantics (Definition 17): multiple maximal definitions of
    /// the *same* static member do not make a lookup ambiguous.
    #[default]
    Cpp,
    /// Pure Definition 9 semantics: staticness is ignored. Useful for
    /// comparing against the plain Rossie–Friedman `lookup`.
    Ignore,
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpplookup_chg::fixtures;

    #[test]
    fn least_virtual_of_paper_paths() {
        let g = fixtures::fig3();
        let d = g.class_by_name("D").unwrap();
        for (text, expect) in [
            ("ABDFH", LeastVirtual::Class(d)),
            ("ABDGH", LeastVirtual::Class(d)),
            ("DGH", LeastVirtual::Class(d)),
            ("GH", LeastVirtual::Omega),
            ("EFH", LeastVirtual::Omega),
            ("ABD", LeastVirtual::Omega),
        ] {
            let p = Path::parse(&g, text).unwrap();
            assert_eq!(
                LeastVirtual::of_path(&g, &p),
                expect,
                "leastVirtual({text})"
            );
        }
    }

    #[test]
    fn extend_matches_definition15() {
        let g = fixtures::fig3();
        let d = g.class_by_name("D").unwrap();
        let f = g.class_by_name("F").unwrap();
        // X ≠ Ω is unchanged.
        assert_eq!(
            LeastVirtual::Class(d).extend(f, Inheritance::NonVirtual),
            LeastVirtual::Class(d)
        );
        assert_eq!(
            LeastVirtual::Class(d).extend(f, Inheritance::Virtual),
            LeastVirtual::Class(d)
        );
        // Ω through a virtual edge becomes the edge's base.
        assert_eq!(
            LeastVirtual::Omega.extend(d, Inheritance::Virtual),
            LeastVirtual::Class(d)
        );
        // Ω through a non-virtual edge stays Ω.
        assert_eq!(
            LeastVirtual::Omega.extend(d, Inheritance::NonVirtual),
            LeastVirtual::Omega
        );
        let _ = g;
    }

    #[test]
    fn extend_commutes_with_of_path() {
        // leastVirtual(β·(B→D)) = leastVirtual(β) ∘ (B→D) on every edge
        // extension available in fig3.
        let g = fixtures::fig3();
        for text in ["ABD", "DF", "DG", "ABDF", "EF", "ACDG"] {
            let p = Path::parse(&g, text).unwrap();
            for &derived in g.direct_derived(p.mdc()) {
                let inh = g.edge(p.mdc(), derived).unwrap();
                let extended = p.extended(&g, derived);
                assert_eq!(
                    LeastVirtual::of_path(&g, &extended),
                    LeastVirtual::of_path(&g, &p).extend(p.mdc(), inh),
                    "path {text} extended to {}",
                    g.class_name(derived)
                );
            }
        }
    }

    #[test]
    fn dominance_examples_fig3() {
        let g = fixtures::fig3();
        let gh = RedAbs::generated(g.class_by_name("G").unwrap());
        let foo = g.member_by_name("foo").unwrap();
        let d = g.class_by_name("D").unwrap();
        let a = g.class_by_name("A").unwrap();
        // (G,Ω) dominates (A,D): D is a virtual base of G.
        let abdxh = RedAbs {
            ldc: a,
            lv: LeastVirtual::Class(d),
        };
        assert!(red_dominates(&g, foo, gh, abdxh, StaticRule::Cpp));
        // The converse fails: is (A,D) dominating (G,Ω)? Ω is not a
        // virtual base, lvs differ, ldcs differ.
        assert!(!red_dominates(&g, foo, abdxh, gh, StaticRule::Cpp));
    }

    #[test]
    fn rule2_same_least_virtual() {
        let g = fixtures::fig3();
        let d = g.class_by_name("D").unwrap();
        let a = g.class_by_name("A").unwrap();
        let e = g.class_by_name("E").unwrap();
        let foo = g.member_by_name("foo").unwrap();
        let x = RedAbs {
            ldc: a,
            lv: LeastVirtual::Class(d),
        };
        let y = RedAbs {
            ldc: e,
            lv: LeastVirtual::Class(d),
        };
        assert!(red_dominates(&g, foo, x, y, StaticRule::Cpp));
        assert!(red_dominates(&g, foo, y, x, StaticRule::Cpp));
        // But Ω == Ω never triggers rule 2.
        let xo = RedAbs {
            ldc: a,
            lv: LeastVirtual::Omega,
        };
        let yo = RedAbs {
            ldc: e,
            lv: LeastVirtual::Omega,
        };
        assert!(!red_dominates(&g, foo, xo, yo, StaticRule::Cpp));
    }

    #[test]
    fn rule3_static_members() {
        let g = fixtures::static_diamond();
        let a = g.class_by_name("A").unwrap();
        let s = g.member_by_name("s").unwrap();
        let d = g.member_by_name("d").unwrap();
        let x = RedAbs {
            ldc: a,
            lv: LeastVirtual::Omega,
        };
        // Static member: same-ldc definitions dominate each other.
        assert!(red_dominates(&g, s, x, x, StaticRule::Cpp));
        // But not when the rule is disabled or the member is non-static.
        assert!(!red_dominates(&g, s, x, x, StaticRule::Ignore));
        assert!(!red_dominates(&g, d, x, x, StaticRule::Cpp));
    }

    #[test]
    fn blue_dominance() {
        let g = fixtures::fig3();
        let gh = RedAbs::generated(g.class_by_name("G").unwrap());
        let d = g.class_by_name("D").unwrap();
        assert!(red_dominates_blue(&g, gh, LeastVirtual::Class(d)));
        assert!(!red_dominates_blue(&g, gh, LeastVirtual::Omega));
        // Equality with the candidate's own non-Ω lv also counts.
        let red_d = RedAbs {
            ldc: g.class_by_name("E").unwrap(),
            lv: LeastVirtual::Class(d),
        };
        assert!(red_dominates_blue(&g, red_d, LeastVirtual::Class(d)));
    }

    #[test]
    fn display_forms() {
        let g = fixtures::fig3();
        let d = g.class_by_name("D").unwrap();
        assert_eq!(LeastVirtual::Omega.display(&g).to_string(), "Ω");
        assert_eq!(LeastVirtual::Class(d).display(&g).to_string(), "D");
        assert_eq!(format!("{:?}", LeastVirtual::Omega), "Ω");
    }

    #[test]
    fn generated_is_omega() {
        let g = fixtures::fig3();
        let a = g.class_by_name("A").unwrap();
        let r = RedAbs::generated(a);
        assert_eq!(r.ldc, a);
        assert!(r.lv.is_omega());
    }
}
