//! Fixed-seed FxHash maps for the hot memo/cache paths.
//!
//! Re-exports [`cpplookup_chg::fxmap`] (the hasher lives next to the
//! name interner, its first user) so lookup-side code — the engine's
//! memo shards, the lazy cache, the table's per-class entry maps, and
//! the batched builder's dedup arenas — shares one hasher definition.
//!
//! The hasher is seeded with a compile-time constant, so the same key
//! hashes identically in every process: cache behaviour, probe
//! sequences, and resize points are reproducible run-to-run, which the
//! benchmarks and the determinism tests rely on. Iteration order is
//! still unspecified (like any `HashMap`) and must never leak into
//! output; everything serialized sorts first.

pub use cpplookup_chg::fxmap::{fxhash, FxBuildHasher, FxHashMap, FxHashSet, FxHasher};

#[cfg(test)]
mod tests {
    use crate::{LookupEngine, LookupTable};
    use cpplookup_chg::fixtures;

    /// The outputs that matter — table entries, stats, engine answers —
    /// must not depend on map iteration order, and with the fixed-seed
    /// hasher they are identical across repeated builds in one process
    /// (and, unlike `RandomState`, across processes too).
    #[test]
    fn rebuilds_are_iteration_order_independent() {
        let g = fixtures::fig3();
        let t1 = LookupTable::build(&g);
        let t2 = LookupTable::build(&g);
        assert_eq!(t1.stats(), t2.stats());
        for c in g.classes() {
            for m in g.member_ids() {
                assert_eq!(t1.entry(c, m), t2.entry(c, m));
            }
        }
        // members_of iterates an FxHashMap; with the same insertion
        // sequence the order is reproducible as well.
        for c in g.classes() {
            let a: Vec<_> = t1.members_of(c).collect();
            let b: Vec<_> = t2.members_of(c).collect();
            assert_eq!(a, b);
        }
        let e1 = LookupEngine::new(fixtures::fig9());
        let e2 = LookupEngine::new(fixtures::fig9());
        for c in e1.chg().classes().collect::<Vec<_>>() {
            for m in e1.chg().member_ids().collect::<Vec<_>>() {
                assert_eq!(e1.lookup(c, m), e2.lookup(c, m));
            }
        }
    }
}
